//! vxlint — the workspace's own lint pass. Pure `std`, token/line-level; no
//! crates.io dependencies, so it runs anywhere the toolchain does.
//!
//! Rules (all CI-fatal — the `vxlint` CI job runs this binary and fails on
//! any diagnostic):
//!
//! * **sync-seam** — no `std::sync::{Mutex, RwLock, Condvar, atomic}` and no
//!   `parking_lot::` references in any `.rs` file under `crates/` outside
//!   the seam (`crates/common/src/sync/`) and the shims (`crates/shims/`).
//!   Every lock, condvar, atomic, and fence must come from
//!   `vertexica_common::sync`, the single instrumentation point the model
//!   checker relies on. Brace imports (`use std::sync::{Mutex, ...}`) are
//!   caught too; `Arc`, `Weak`, `OnceLock`, and `mpsc` are out of scope.
//! * **no-unwrap-recovery** — no `.unwrap()` / `.expect(` in non-test code
//!   of the recovery-critical files (`storage/src/wal.rs`, `persist.rs`,
//!   `catalog.rs`). Crash recovery must degrade to typed `StorageError`s,
//!   never panic on bad bytes. `#[cfg(test)]` regions are exempt (tracked by
//!   brace depth).
//! * **env-var-docs** — every `VERTEXICA_*` environment variable referenced
//!   anywhere in the source must be documented in both the README
//!   configuration table and `docs/ARCHITECTURE.md`.
//! * **exp-ci-smoke** — every `--exp` ablation mode the bench binary
//!   dispatches on must have a smoke invocation (`--exp <mode>`) in
//!   `.github/workflows/ci.yml`, so no experiment can silently rot.
//!
//! Line-level suppression (first two rules only), reason mandatory:
//!
//! ```text
//! // vxlint: allow(<rule>) -- <why this occurrence is sound>
//! ```
//!
//! on the offending line or the line directly above it. An `allow` without
//! a ` -- reason` is itself a diagnostic.
//!
//! Usage: `cargo run -p vxlint [-- --root <repo-root>]`. Exits 1 on any
//! diagnostic. Known limits (accepted for a zero-dependency linter): matching
//! is per line, so a multi-line `use` statement or a brace inside a string
//! literal can confuse region tracking; neither occurs in this workspace.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const RULE_SYNC_SEAM: &str = "sync-seam";
const RULE_NO_UNWRAP: &str = "no-unwrap-recovery";
const RULE_ENV_DOCS: &str = "env-var-docs";
const RULE_EXP_SMOKE: &str = "exp-ci-smoke";

/// Paths (relative, `/`-separated) whose files the sync-seam rule skips.
const SEAM_ALLOWED: &[&str] = &["crates/shims/", "crates/common/src/sync/"];

/// The recovery-critical files for no-unwrap-recovery.
const RECOVERY_FILES: &[&str] = &[
    "crates/storage/src/wal.rs",
    "crates/storage/src/persist.rs",
    "crates/storage/src/catalog.rs",
];

/// `std::sync::` items that must come from the seam instead.
const SEALED_STD_SYNC: &[&str] = &["Mutex", "RwLock", "Condvar", "atomic"];

#[derive(Debug, PartialEq, Eq)]
struct Diagnostic {
    rule: &'static str,
    file: String,
    line: usize,
    message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
        } else {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.message)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let root = args
        .iter()
        .position(|a| a == "--root")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));

    let mut diags = Vec::new();
    let mut checked = 0usize;
    diags.extend(check_sync_seam(&root, &mut checked));
    diags.extend(check_no_unwrap_recovery(&root));
    diags.extend(check_env_var_docs(&root));
    diags.extend(check_exp_ci_smoke(&root));

    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("vxlint: {checked} source files checked, 0 diagnostics");
        ExitCode::SUCCESS
    } else {
        println!("vxlint: {} diagnostic(s)", diags.len());
        ExitCode::FAILURE
    }
}

/// Recursively collects `.rs` files under `dir`, skipping build output and
/// VCS internals.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    out.sort();
}

/// The repo-relative, `/`-separated form of `path` used in diagnostics and
/// allow-list matching.
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// Whether line `idx` (0-based) carries a well-formed suppression for `rule`
/// on itself or on the line directly above.
fn is_suppressed(lines: &[&str], idx: usize, rule: &str) -> bool {
    let hit = |line: &str| {
        parse_allow(line).is_some_and(|(r, reason)| r == rule && !reason.trim().is_empty())
    };
    hit(lines[idx]) || (idx > 0 && hit(lines[idx - 1]))
}

/// Parses `// vxlint: allow(<rule>) -- <reason>` out of a line, returning
/// the rule name and the (possibly empty) reason.
fn parse_allow(line: &str) -> Option<(&str, &str)> {
    let start = line.find("vxlint: allow(")?;
    let rest = &line[start + "vxlint: allow(".len()..];
    let close = rest.find(')')?;
    let rule = &rest[..close];
    let reason = rest[close + 1..].trim_start().strip_prefix("--").unwrap_or("").trim();
    Some((rule, reason))
}

/// Diagnostics for malformed suppressions: an `allow` missing its mandatory
/// ` -- reason` justification.
fn check_allow_syntax(file: &str, lines: &[&str]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if let Some((rule, reason)) = parse_allow(line) {
            if reason.trim().is_empty() {
                diags.push(Diagnostic {
                    rule: RULE_NO_UNWRAP,
                    file: file.to_string(),
                    line: i + 1,
                    message: format!(
                        "suppression for `{rule}` is missing its justification \
                         (`// vxlint: allow({rule}) -- <reason>`)"
                    ),
                });
            }
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// #[cfg(test)] region tracking
// ---------------------------------------------------------------------------

/// A per-line mask: `true` where the line is inside a `#[cfg(test)]`- or
/// `#[cfg(all(test, ...))]`-gated item, tracked by brace depth from the
/// item's opening brace.
fn test_region_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut pending = false; // saw the attribute, waiting for the opening brace
    let mut depth = 0usize; // brace depth inside the gated item (0 = outside)
    for (i, line) in lines.iter().enumerate() {
        let trimmed = line.trim_start();
        if depth == 0 && !pending {
            if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[cfg(all(test") {
                pending = true;
                mask[i] = true;
            }
            continue;
        }
        mask[i] = true;
        let opens = line.matches('{').count();
        let closes = line.matches('}').count();
        if pending && opens > 0 {
            pending = false;
        }
        depth += opens;
        depth = depth.saturating_sub(closes);
        if !pending && depth == 0 {
            // Item closed on this line; subsequent lines are live again.
        }
    }
    mask
}

// ---------------------------------------------------------------------------
// Rule: sync-seam
// ---------------------------------------------------------------------------

/// Whether `line` references a sealed `std::sync` item or `parking_lot`.
/// Catches both path references (`std::sync::Mutex`, `std::sync::atomic::…`)
/// and brace imports (`use std::sync::{Mutex, Arc}`).
fn sync_seam_hit(line: &str) -> Option<String> {
    if line.contains("parking_lot::") {
        return Some("`parking_lot::` reference".into());
    }
    let mut rest = line;
    while let Some(pos) = rest.find("std::sync::") {
        let after = &rest[pos + "std::sync::".len()..];
        for item in SEALED_STD_SYNC {
            if after.starts_with(item) {
                return Some(format!("`std::sync::{item}` reference"));
            }
        }
        if let Some(brace) = after.strip_prefix('{') {
            let list = brace.split('}').next().unwrap_or(brace);
            for part in list.split(',') {
                let tok = part.trim().split("::").next().unwrap_or("").trim();
                if SEALED_STD_SYNC.contains(&tok) {
                    return Some(format!("`std::sync::{{… {tok} …}}` import"));
                }
            }
        }
        rest = after;
    }
    None
}

fn check_sync_seam(root: &Path, checked: &mut usize) -> Vec<Diagnostic> {
    // Only `crates/` is product code; the linter's own source (pattern
    // fixtures, this doc text) would be full of false positives.
    let mut files = Vec::new();
    rs_files(&root.join("crates"), &mut files);
    let mut diags = Vec::new();
    for path in files {
        let file = rel(root, &path);
        if SEAM_ALLOWED.iter().any(|p| file.starts_with(p)) {
            continue;
        }
        let Ok(src) = fs::read_to_string(&path) else { continue };
        *checked += 1;
        let lines: Vec<&str> = src.lines().collect();
        diags.extend(check_allow_syntax(&file, &lines));
        for (i, line) in lines.iter().enumerate() {
            if let Some(what) = sync_seam_hit(line) {
                if !is_suppressed(&lines, i, RULE_SYNC_SEAM) {
                    diags.push(Diagnostic {
                        rule: RULE_SYNC_SEAM,
                        file: file.clone(),
                        line: i + 1,
                        message: format!("{what}; use `vertexica_common::sync` instead"),
                    });
                }
            }
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// Rule: no-unwrap-recovery
// ---------------------------------------------------------------------------

fn check_no_unwrap_recovery(root: &Path) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in RECOVERY_FILES {
        let Ok(src) = fs::read_to_string(root.join(file)) else {
            diags.push(Diagnostic {
                rule: RULE_NO_UNWRAP,
                file: (*file).to_string(),
                line: 0,
                message: "recovery-critical file missing (update RECOVERY_FILES?)".into(),
            });
            continue;
        };
        let lines: Vec<&str> = src.lines().collect();
        let in_test = test_region_mask(&lines);
        for (i, line) in lines.iter().enumerate() {
            if in_test[i] {
                continue;
            }
            let what = if line.contains(".unwrap()") {
                ".unwrap()"
            } else if line.contains(".expect(") {
                ".expect(…)"
            } else {
                continue;
            };
            if !is_suppressed(&lines, i, RULE_NO_UNWRAP) {
                diags.push(Diagnostic {
                    rule: RULE_NO_UNWRAP,
                    file: (*file).to_string(),
                    line: i + 1,
                    message: format!(
                        "{what} on a recovery-critical path; return a StorageError \
                         (or justify with a vxlint allow comment)"
                    ),
                });
            }
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// Rule: env-var-docs
// ---------------------------------------------------------------------------

/// Extracts every `VERTEXICA_[A-Z0-9_]+` token from `src`.
fn scan_env_vars(src: &str, out: &mut BTreeSet<String>) {
    let mut rest = src;
    while let Some(pos) = rest.find("VERTEXICA_") {
        let tail = &rest[pos..];
        let len = tail
            .char_indices()
            .find(|(_, c)| !(c.is_ascii_uppercase() || c.is_ascii_digit() || *c == '_'))
            .map(|(i, _)| i)
            .unwrap_or(tail.len());
        // A bare "VERTEXICA_" prefix (e.g. in prose) is not a variable.
        if len > "VERTEXICA_".len() {
            out.insert(tail[..len].trim_end_matches('_').to_string());
        }
        rest = &tail[len.max(1)..];
    }
}

fn check_env_var_docs(root: &Path) -> Vec<Diagnostic> {
    let mut files = Vec::new();
    rs_files(&root.join("crates"), &mut files);
    let mut vars = BTreeSet::new();
    for path in &files {
        if let Ok(src) = fs::read_to_string(path) {
            scan_env_vars(&src, &mut vars);
        }
    }
    let mut diags = Vec::new();
    for (doc, label) in
        [("README.md", "README config table"), ("docs/ARCHITECTURE.md", "docs/ARCHITECTURE.md")]
    {
        let content = fs::read_to_string(root.join(doc)).unwrap_or_default();
        for var in &vars {
            if !content.contains(var.as_str()) {
                diags.push(Diagnostic {
                    rule: RULE_ENV_DOCS,
                    file: doc.to_string(),
                    line: 0,
                    message: format!("`{var}` is read by the code but undocumented in the {label}"),
                });
            }
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// Rule: exp-ci-smoke
// ---------------------------------------------------------------------------

/// Extracts the ablation mode names the bench binary dispatches on
/// (`exp == "<mode>"` comparisons), excluding the `all` meta-mode.
fn scan_exp_modes(src: &str) -> BTreeSet<String> {
    let mut modes = BTreeSet::new();
    let mut rest = src;
    while let Some(pos) = rest.find("exp == \"") {
        let tail = &rest[pos + "exp == \"".len()..];
        if let Some(end) = tail.find('"') {
            let mode = &tail[..end];
            if mode != "all" && !mode.is_empty() {
                modes.insert(mode.to_string());
            }
            rest = &tail[end..];
        } else {
            break;
        }
    }
    modes
}

fn check_exp_ci_smoke(root: &Path) -> Vec<Diagnostic> {
    let bench = root.join("crates/bench/src/bin/ablation.rs");
    let Ok(src) = fs::read_to_string(&bench) else { return Vec::new() };
    let ci = fs::read_to_string(root.join(".github/workflows/ci.yml")).unwrap_or_default();
    let mut diags = Vec::new();
    for mode in scan_exp_modes(&src) {
        if !ci.contains(&format!("--exp {mode}")) {
            diags.push(Diagnostic {
                rule: RULE_EXP_SMOKE,
                file: ".github/workflows/ci.yml".to_string(),
                line: 0,
                message: format!(
                    "ablation mode `--exp {mode}` has no CI smoke invocation; \
                     add a job step running it at a tiny scale"
                ),
            });
        }
    }
    diags
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_seam_matcher_hits_paths_and_brace_imports() {
        assert!(sync_seam_hit("let m = std::sync::Mutex::new(0);").is_some());
        assert!(sync_seam_hit("use std::sync::RwLock;").is_some());
        assert!(sync_seam_hit("use std::sync::Condvar;").is_some());
        assert!(sync_seam_hit("use std::sync::atomic::{AtomicU64, Ordering};").is_some());
        assert!(sync_seam_hit("use parking_lot::Mutex;").is_some());
        assert!(sync_seam_hit("use std::sync::{Arc, Mutex};").is_some());
        assert!(sync_seam_hit("use std::sync::{Arc, atomic::AtomicU64};").is_some());
        // Out-of-scope std::sync items stay allowed.
        assert!(sync_seam_hit("use std::sync::{Arc, Weak};").is_none());
        assert!(sync_seam_hit("use std::sync::Arc;").is_none());
        assert!(sync_seam_hit("use std::sync::OnceLock;").is_none());
        assert!(sync_seam_hit("use std::sync::mpsc;").is_none());
        assert!(sync_seam_hit("let x = 1; // prose about parking lots").is_none());
    }

    #[test]
    fn suppression_requires_rule_match_and_reason() {
        let lines = vec![
            "// vxlint: allow(sync-seam) -- shim-internal fallback",
            "use parking_lot::Mutex;",
            "use parking_lot::RwLock; // vxlint: allow(sync-seam) -- same line works",
            "// vxlint: allow(sync-seam)",
            "use parking_lot::Condvar;",
            "// vxlint: allow(no-unwrap-recovery) -- wrong rule",
            "use parking_lot::Once;",
        ];
        assert!(is_suppressed(&lines, 1, RULE_SYNC_SEAM));
        assert!(is_suppressed(&lines, 2, RULE_SYNC_SEAM));
        // Missing reason: not a valid suppression…
        assert!(!is_suppressed(&lines, 4, RULE_SYNC_SEAM));
        // …and it is reported as malformed.
        let diags = check_allow_syntax("f.rs", &lines);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 4);
        // A suppression for a different rule does not apply.
        assert!(!is_suppressed(&lines, 6, RULE_SYNC_SEAM));
    }

    #[test]
    fn test_region_mask_tracks_braces() {
        let src = vec![
            "fn live() {",                         // 0: live
            "    x.unwrap();",                     // 1: live
            "}",                                   // 2
            "#[cfg(test)]",                        // 3: test region starts
            "mod tests {",                         // 4
            "    fn t() { x.unwrap(); }",          // 5: inside
            "    struct S { a: u32 }",             // 6: inside (nested braces)
            "}",                                   // 7: region ends here
            "fn live_again() { y.expect(\"\"); }", // 8: live
            "#[cfg(all(test, vertexica_model))]",  // 9: also a test region
            "mod model_tests {}",                  // 10
            "fn tail() {}",                        // 11: live
        ];
        let mask = test_region_mask(&src);
        assert!(!mask[0] && !mask[1] && !mask[2]);
        assert!(mask[3] && mask[4] && mask[5] && mask[6] && mask[7]);
        assert!(!mask[8]);
        assert!(mask[9] && mask[10]);
        assert!(!mask[11]);
    }

    #[test]
    fn env_var_scanner_extracts_names() {
        let mut vars = BTreeSet::new();
        scan_env_vars(
            "std::env::var(\"VERTEXICA_SCALE\") VERTEXICA_MEMORY_BUDGET=64m \
             and the bare VERTEXICA_ prefix is prose",
            &mut vars,
        );
        assert_eq!(
            vars.into_iter().collect::<Vec<_>>(),
            vec!["VERTEXICA_MEMORY_BUDGET".to_string(), "VERTEXICA_SCALE".to_string()]
        );
    }

    #[test]
    fn exp_mode_scanner_extracts_dispatch_arms() {
        let modes = scan_exp_modes(
            r#"if exp == "wal" || exp == "all" {} if exp == "pool-size" || exp == "all" {}"#,
        );
        assert_eq!(
            modes.into_iter().collect::<Vec<_>>(),
            vec!["pool-size".to_string(), "wal".to_string()]
        );
    }

    #[test]
    fn allow_parser_shapes() {
        assert_eq!(
            parse_allow("// vxlint: allow(sync-seam) -- because"),
            Some(("sync-seam", "because"))
        );
        assert_eq!(parse_allow("// vxlint: allow(x)"), Some(("x", "")));
        assert_eq!(parse_allow("no suppression here"), None);
    }
}
