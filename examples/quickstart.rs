//! Quickstart: load a graph into the relational engine, write a vertex
//! program, run it, and query the results with SQL.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use vertexica::common::graph::EdgeList;
use vertexica::common::pregel::{InitContext, VertexContext, VertexContextExt, VertexProgram};
use vertexica::common::VertexId;
use vertexica::sql::Database;
use vertexica::{run_program, GraphSession, VertexicaConfig};

/// "Degrees of separation": every vertex learns its hop distance from
/// vertex 0 — a ten-line vertex program instead of a page of SQL.
struct HopDistance;

impl VertexProgram for HopDistance {
    type Value = f64;
    type Message = f64;

    fn initial_value(&self, id: VertexId, _init: &InitContext) -> f64 {
        if id == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn compute(&self, ctx: &mut dyn VertexContext<f64, f64>, messages: &[f64]) {
        let best = messages.iter().copied().fold(*ctx.value(), f64::min);
        if best < *ctx.value() || ctx.superstep() == 0 {
            if best < *ctx.value() {
                ctx.set_value(best);
            }
            if ctx.value().is_finite() {
                let next = *ctx.value() + 1.0;
                ctx.send_to_all_neighbors(next);
            }
        }
        ctx.vote_to_halt();
    }

    fn combine(&self, a: &f64, b: &f64) -> Option<f64> {
        Some(a.min(*b))
    }

    fn name(&self) -> &'static str {
        "hop-distance"
    }
}

fn main() {
    // 1. An embedded relational database — Vertexica lives *inside* it.
    let db = Arc::new(Database::new());

    // 2. Create a graph session (three tables: vertex, edge, message) and
    //    load a small social graph.
    let session = GraphSession::create(db.clone(), "social").expect("create graph");
    let graph = EdgeList::from_pairs([
        (0, 1),
        (1, 0),
        (1, 2),
        (2, 1),
        (2, 3),
        (3, 2),
        (3, 4),
        (4, 3),
        (1, 3),
        (3, 1),
    ]);
    session.load_edges(&graph).expect("load");
    println!(
        "loaded graph: {} vertices, {} edges",
        session.num_vertices().unwrap(),
        session.num_edges().unwrap()
    );

    // 3. Run the vertex program through the coordinator (a stored procedure
    //    driving worker UDFs over the three tables).
    let stats =
        run_program(&session, Arc::new(HopDistance), &VertexicaConfig::default()).expect("run");
    println!(
        "converged in {} supersteps, {} messages, {:.1} ms",
        stats.supersteps,
        stats.total_messages,
        stats.total_secs * 1000.0
    );

    // 4. Results are rows in the vertex table — read them back as values…
    let distances: Vec<(VertexId, f64)> = session.vertex_values().expect("values");
    for (id, d) in &distances {
        println!("vertex {id}: {d} hop(s) from vertex 0");
    }

    // 5. …or keep going in SQL: this is the whole point of Vertexica.
    let far = db.query_int("SELECT COUNT(*) FROM social_vertex WHERE halted = TRUE").expect("sql");
    println!("{far} vertices have voted to halt (all of them, naturally)");

    // 6. Swap in a different vertex program on the same three tables — the
    //    paper's flagship workload, PageRank — without reloading anything.
    let stats = run_program(
        &session,
        Arc::new(vertexica_algorithms::vc::PageRank::new(20, 0.85)),
        &VertexicaConfig::default(),
    )
    .expect("pagerank");
    let mut ranks: Vec<(VertexId, f64)> = session.vertex_values().expect("ranks");
    ranks.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("pagerank: {} supersteps over the same vertex/edge/message tables", stats.supersteps);
    for (id, rank) in ranks.iter().take(3) {
        println!("  top vertex {id}: rank {rank:.4}");
    }
    let mass: f64 = ranks.iter().map(|(_, r)| r).sum();
    assert!((mass - 1.0).abs() < 1e-6, "PageRank mass must stay 1.0, got {mass}");
}
