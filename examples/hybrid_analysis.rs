//! Hybrid graph analysis (§3.2, §4.2.2): 1-hop SQL algorithms, combinations
//! with vertex-centric PageRank, and localized PageRank over a typed
//! subgraph.
//!
//! ```text
//! cargo run --release --example hybrid_analysis
//! ```

use std::sync::Arc;

use vertexica::sql::Database;
use vertexica::GraphSession;
use vertexica_algorithms::hybrid::{
    important_bridges, localized_pagerank, sssp_from_most_clustered,
};
use vertexica_algorithms::sqlalgo::{
    global_clustering_sql, strong_overlap_sql, triangle_count_sql, weak_ties_sql,
};
use vertexica_common::graph::Edge;
use vertexica_graphgen::metadata::edge_metadata;
use vertexica_graphgen::models::barabasi_albert;

fn main() {
    let db = Arc::new(Database::new());
    let session = GraphSession::create(db.clone(), "hub").expect("create");

    // A preferential-attachment graph (hubs + periphery) with §4 metadata.
    let graph = barabasi_albert(400, 3, 11);
    let metas = edge_metadata(&graph, 0, 1000, 11);
    let edges: Vec<(Edge, i64, Option<String>)> = metas
        .iter()
        .map(|m| (Edge::weighted(m.src, m.dst, 1.0), m.created, Some(m.etype.to_string())))
        .collect();
    session.load_edges_with_metadata(&edges, graph.num_vertices).expect("load");

    // --- the five SQL 1-hop algorithms on the toolbar -------------------
    let triangles = triangle_count_sql(&session).expect("triangles");
    println!("triangles: {triangles}");

    let overlaps = strong_overlap_sql(&session, 4).expect("overlap");
    println!("strong-overlap pairs (≥4 common neighbours): {}", overlaps.len());
    if let Some((a, b, c)) = overlaps.first() {
        println!("  e.g. vertices {a} and {b} share {c} neighbours");
    }

    let ties = weak_ties_sql(&session).expect("weak ties");
    let mut top_ties: Vec<_> = ties.iter().filter(|&&(_, c)| c > 0).collect();
    top_ties.sort_by_key(|&&(_, c)| std::cmp::Reverse(c));
    println!(
        "bridging nodes: {} (top bridges {:?})",
        top_ties.len(),
        &top_ties[..3.min(top_ties.len())]
    );

    let gcc = global_clustering_sql(&session).expect("clustering");
    println!("global clustering coefficient: {gcc:.4}");

    // --- hybrid combo #1: important bridges -----------------------------
    // "find sufficiently important nodes which act as bridges"
    let n = session.num_vertices().unwrap() as f64;
    let bridges = important_bridges(&session, 10, 1.0 / n, 10).expect("bridges");
    println!("\nimportant bridges (rank > 1/n AND ≥10 weak ties): {}", bridges.len());
    for (id, rank, tie_count) in bridges.iter().take(5) {
        println!("  vertex {id:<4} rank {rank:.4}  ties {tie_count}");
    }

    // --- hybrid combo #2: SSSP from the most clustered node -------------
    let (source, dist) = sssp_from_most_clustered(&session).expect("sssp");
    let reachable = dist.iter().filter(|(_, d)| d.is_finite()).count();
    println!("\nSSSP from most-clustered vertex {source}: {reachable}/{} reachable", dist.len());

    // --- hybrid combo #3: localized PageRank on the 'family' subgraph ----
    let (sub, ranks) =
        localized_pagerank(&session, "etype = 'family'", "hub_family", 10).expect("localized");
    let top = ranks.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
    println!(
        "\nlocalized PageRank over 'family' edges ({} of {} edges): top vertex {} ({:.4})",
        sub.num_edges().unwrap(),
        session.num_edges().unwrap(),
        top.0,
        top.1
    );

    // Everything above also composes with ad-hoc SQL, e.g. do heavy
    // bridges cluster less?
    vertexica_algorithms::sqlalgo::store_scores(
        &session,
        "tie_scores",
        &ties.iter().map(|&(id, c)| (id, c as f64)).collect::<Vec<_>>(),
    )
    .unwrap();
    let rows = db
        .query(
            "SELECT CASE WHEN score >= 10 THEN 'bridge' ELSE 'regular' END AS kind, \
                    COUNT(*), AVG(score) \
             FROM tie_scores GROUP BY 1 ORDER BY kind",
        )
        .unwrap();
    println!("\ntie-count summary by node kind:");
    for r in rows {
        println!("  {:<8} n={:<5} avg ties {}", r[0], r[1], r[2]);
    }
}
