//! Dynamic and time-series graph analysis (§3.3, §4.2.3): mutations via DML,
//! continuous re-analysis, and "how did PageRank change over the last year?"
//! via temporal snapshots.
//!
//! ```text
//! cargo run --release --example dynamic_graphs
//! ```

use std::sync::Arc;

use vertexica::sql::Database;
use vertexica::{run_program, GraphSession, VertexicaConfig};
use vertexica_algorithms::sqlalgo::{sssp_sql, store_scores};
use vertexica_algorithms::vc::PageRank;
use vertexica_common::graph::Edge;

/// Seconds per (nominal) year, for readable timestamps.
const YEAR: i64 = 31_536_000;

fn ranks_of(session: &GraphSession) -> Vec<(u64, f64)> {
    run_program(session, Arc::new(PageRank::new(10, 0.85)), &VertexicaConfig::default())
        .expect("pagerank");
    session.vertex_values().expect("values")
}

fn main() {
    let db = Arc::new(Database::new());
    let session = GraphSession::create(db.clone(), "live").expect("create");

    // A graph whose edges appeared over three "years".
    let t0 = 0i64;
    let edges: Vec<(Edge, i64, Option<String>)> = vec![
        // Year 1: a chain community.
        (Edge::new(0, 1), t0, None),
        (Edge::new(1, 2), t0, None),
        (Edge::new(2, 3), t0 + 1000, None),
        // Year 2: vertex 4 joins and links back to 0.
        (Edge::new(3, 4), t0 + YEAR, None),
        (Edge::new(4, 0), t0 + YEAR + 5, None),
        // Year 3: shortcuts appear, pulling everyone closer.
        (Edge::new(0, 3), t0 + 2 * YEAR, None),
        (Edge::new(1, 4), t0 + 2 * YEAR + 7, None),
    ];
    session.load_edges_with_metadata(&edges, 5).expect("load");

    // --- Time-series analysis: PageRank on yearly snapshots -------------
    println!("== time series: PageRank of vertex 0 per yearly snapshot ==");
    let mut series = Vec::new();
    for year in 1..=3 {
        let snap =
            session.snapshot_at(t0 + year * YEAR - 1, &format!("live_y{year}")).expect("snapshot");
        let ranks = ranks_of(&snap);
        series.push(ranks[0].1);
        println!(
            "  year {year}: |E| = {}, pagerank(v0) = {:.4}",
            snap.num_edges().unwrap(),
            ranks[0].1
        );
    }
    assert!(series[1] > series[0], "v0 gains rank when 4→0 appears");

    // "Which node-pairs have come closer in the last year?" — compare SSSP
    // on consecutive snapshots relationally.
    println!("\n== which vertices moved closer to vertex 0 in year 3? ==");
    let y2 = GraphSession::open(db.clone(), "live_y2").expect("open");
    let y3 = GraphSession::open(db.clone(), "live_y3").expect("open");
    let d2 = sssp_sql(&y2, 0).expect("sssp y2");
    let d3 = sssp_sql(&y3, 0).expect("sssp y3");
    store_scores(&y2, "dist_y2", &finite(&d2)).unwrap();
    store_scores(&y3, "dist_y3", &finite(&d3)).unwrap();
    let closer = db
        .query(
            "SELECT a.id, a.score - b.score FROM dist_y2 a JOIN dist_y3 b ON a.id = b.id \
             WHERE b.score < a.score ORDER BY a.id",
        )
        .unwrap();
    for row in &closer {
        println!("  vertex {} is {} hop(s) closer", row[0], row[1]);
    }
    assert!(!closer.is_empty());

    // --- Continuous analysis: mutate, re-run, observe --------------------
    println!("\n== continuous: mutate the live graph and re-rank ==");
    let before = ranks_of(&session);
    // A new influencer (vertex 5) appears and everyone links to it.
    session.add_vertex(5).expect("add vertex");
    for v in 0..5 {
        session.add_edge(v, 5, 1.0, t0 + 3 * YEAR, Some("friend")).expect("add edge");
    }
    let after = ranks_of(&session);
    println!("  pagerank(v5) after mutation: {:.4}", after[5].1);
    let top = after.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
    println!("  top-ranked vertex is now {} (rank {:.4})", top.0, top.1);
    assert_eq!(top.0, 5);

    // Metadata update through plain SQL — "simply impossible" in Giraph.
    let n = db
        .execute("UPDATE live_edge SET etype = 'classmate' WHERE created >= 63072000")
        .unwrap()
        .affected();
    println!("  relabelled {n} recent edges as 'classmate' with one UPDATE");

    let _ = before;
}

fn finite(d: &[(u64, f64)]) -> Vec<(u64, f64)> {
    d.iter().filter(|(_, x)| x.is_finite()).copied().collect()
}
