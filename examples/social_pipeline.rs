//! End-to-end pipeline (§3.4, §4.2.2): metadata-rich graph → relational
//! pre-processing → vertex-centric PageRank → relational post-processing
//! (top-k, histogram) — the demo GUI's Dataflow panel as code.
//!
//! ```text
//! cargo run --release --example social_pipeline
//! ```

use std::sync::Arc;

use vertexica::pipeline::Pipeline;
use vertexica::sql::Database;
use vertexica::storage::Value;
use vertexica::{run_program, GraphSession, VertexicaConfig};
use vertexica_algorithms::sqlalgo::store_scores;
use vertexica_algorithms::vc::PageRank;
use vertexica_common::graph::Edge;
use vertexica_graphgen::metadata::{edge_metadata, EDGE_TYPES};
use vertexica_graphgen::rmat::{rmat_graph, RmatConfig};

fn main() {
    let db = Arc::new(Database::new());
    let session = GraphSession::create(db.clone(), "net").expect("create");

    // A power-law graph with the §4 edge metadata: weight, creation
    // timestamp, type ∈ {friend, family, classmate}.
    let graph =
        rmat_graph(&RmatConfig { scale: 10, num_edges: 8000, seed: 7, ..Default::default() });
    let metas = edge_metadata(&graph, 1_600_000_000, 1_700_000_000, 7);
    let edges: Vec<(Edge, i64, Option<String>)> = metas
        .iter()
        .map(|m| (Edge::weighted(m.src, m.dst, m.weight), m.created, Some(m.etype.to_string())))
        .collect();
    session.load_edges_with_metadata(&edges, graph.num_vertices).expect("load");
    println!(
        "graph: {} vertices, {} edges with metadata {:?}",
        graph.num_vertices,
        graph.num_edges(),
        EDGE_TYPES
    );

    // The pipeline: inspect → select subgraph → rank → aggregate.
    let pipeline = Pipeline::new()
        // Relational pre-processing: how is the data shaped?
        .add_sql(
            "edge_type_counts",
            "SELECT etype, COUNT(*) FROM net_edge GROUP BY etype ORDER BY etype",
        )
        // Select the "family" subgraph (§4.2.1: scope of analysis).
        .add_stage("family_subgraph", |session, ctx| {
            let db = session.db();
            db.catalog().drop_table_if_exists("fam_vertex").unwrap();
            db.catalog().drop_table_if_exists("fam_edge").unwrap();
            db.catalog().drop_table_if_exists("fam_message").unwrap();
            let sub = GraphSession::create(db.clone(), "fam")?;
            db.execute(&format!(
                "INSERT INTO fam_vertex SELECT id, CAST(NULL AS VARBINARY), FALSE FROM {}",
                session.vertex_table()
            ))?;
            db.execute(&format!(
                "INSERT INTO fam_edge SELECT src, dst, weight, created, etype FROM {} \
                 WHERE etype = 'family'",
                session.edge_table()
            ))?;
            ctx.values.insert("family_edges".into(), Value::Int(sub.num_edges()? as i64));
            Ok(())
        })
        // The graph algorithm, vertex-centrically, on the subgraph.
        .add_stage("pagerank", |session, _ctx| {
            let sub = GraphSession::open(session.db().clone(), "fam")?;
            run_program(&sub, Arc::new(PageRank::new(10, 0.85)), &VertexicaConfig::default())?;
            let ranks = sub.vertex_values::<f64>()?;
            store_scores(&sub, "fam_rank", &ranks)?;
            Ok(())
        })
        // Relational post-processing: top-5 and a histogram (§4.2.2: "the
        // users might be interested in looking at the distribution of
        // PageRank values").
        .add_sql("top5", "SELECT id, score FROM fam_rank ORDER BY score DESC, id LIMIT 5")
        .add_sql(
            "histogram",
            "SELECT CAST(FLOOR(score * 2000.0) AS BIGINT) AS bucket, COUNT(*) \
             FROM fam_rank GROUP BY 1 ORDER BY bucket",
        );

    let (ctx, timings) = pipeline.run(&session).expect("pipeline");

    println!("\nedge type distribution:");
    for row in ctx.rows_of("edge_type_counts").unwrap() {
        println!("  {:<10} {}", row[0], row[1]);
    }
    println!("family subgraph edges: {}", ctx.value("family_edges").unwrap());
    println!("\ntop-5 family-PageRank vertices:");
    for row in ctx.rows_of("top5").unwrap() {
        println!("  vertex {:<6} rank {}", row[0], row[1]);
    }
    println!("\nPageRank histogram (bucket = rank * 2000):");
    for row in ctx.rows_of("histogram").unwrap().iter().take(8) {
        println!("  bucket {:<4} count {}", row[0], row[1]);
    }

    println!("\nstage timings:");
    for t in timings {
        println!("  {:<18} {:>8.2} ms", t.name, t.elapsed.as_secs_f64() * 1000.0);
    }
}
