//! Umbrella package for the Vertexica reproduction: hosts the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`).
//! The library itself just re-exports the workspace crates.

pub use vertexica;
pub use vertexica_algorithms as algorithms;
pub use vertexica_common as common;
pub use vertexica_giraph as giraph;
pub use vertexica_graphdb as graphdb;
pub use vertexica_graphgen as graphgen;
