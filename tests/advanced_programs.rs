//! The richer vertex programs (collaborative filtering, random walk with
//! restart, label propagation) running on the *relational* engine — these
//! exercise composite value types (latent vectors as VARBINARY blobs) and
//! message payloads with sender ids through the full table machinery.

use std::sync::Arc;

use vertexica::sql::Database;
use vertexica::{run_program, GraphSession, VertexicaConfig};
use vertexica_algorithms::vc::{
    cf_rmse, CollaborativeFiltering, LabelPropagation, RandomWalkWithRestart,
};
use vertexica_common::graph::{EdgeList, VertexId};
use vertexica_giraph::GiraphEngine;
use vertexica_graphgen::models::bipartite_ratings;

fn session_for(graph: &EdgeList) -> GraphSession {
    let db = Arc::new(Database::new());
    let s = GraphSession::create(db, "adv").expect("create");
    s.load_edges(graph).expect("load");
    s
}

#[test]
fn collaborative_filtering_trains_on_relational_engine() {
    let users = 20;
    let graph = bipartite_ratings(users, 15, 5, 33);
    let session = session_for(&graph);
    let program = Arc::new(CollaborativeFiltering::new(users, 20));

    // Baseline RMSE from the untrained initial vectors.
    let init: Vec<Vec<f64>> = (0..graph.num_vertices)
        .map(|id| {
            use vertexica_common::pregel::InitContext;
            use vertexica_common::VertexProgram;
            program
                .initial_value(id, &InitContext { num_vertices: graph.num_vertices, out_degree: 0 })
        })
        .collect();
    let rmse_before = cf_rmse(&graph, users, &init);

    let stats = run_program(&session, program.clone(), &VertexicaConfig::default()).unwrap();
    assert!(stats.supersteps >= 20);

    let trained: Vec<(VertexId, Vec<f64>)> = session.vertex_values().unwrap();
    let vectors: Vec<Vec<f64>> = trained.into_iter().map(|(_, v)| v).collect();
    let rmse_after = cf_rmse(&graph, users, &vectors);
    assert!(
        rmse_after < rmse_before * 0.5,
        "training did not converge: {rmse_before} → {rmse_after}"
    );

    // Aggregators observed the squared error stream.
    assert!(stats.aggregates.contains_key("sq_err") || stats.aggregates.is_empty());
}

#[test]
fn collaborative_filtering_matches_giraph_engine() {
    let users = 12;
    let graph = bipartite_ratings(users, 9, 4, 5);
    let program = CollaborativeFiltering::new(users, 12);

    let (giraph_vecs, _) = GiraphEngine::default().with_workers(1).run(&graph, &program);

    let session = session_for(&graph);
    run_program(
        &session,
        Arc::new(CollaborativeFiltering::new(users, 12)),
        &VertexicaConfig::default(),
    )
    .unwrap();
    let vx: Vec<(VertexId, Vec<f64>)> = session.vertex_values().unwrap();

    // Both engines implement the same synchronous schedule — the latent
    // vectors must agree to floating-point tolerance.
    for (id, vec) in vx {
        let g = &giraph_vecs[id as usize];
        assert_eq!(vec.len(), g.len());
        for (a, b) in vec.iter().zip(g) {
            assert!((a - b).abs() < 1e-9, "vertex {id}: {a} vs {b}");
        }
    }
}

#[test]
fn random_walk_with_restart_on_relational_engine() {
    // Chain with a side branch.
    let graph = EdgeList::from_pairs([(0, 1), (1, 2), (1, 3), (3, 4)]);
    let session = session_for(&graph);
    run_program(&session, Arc::new(RandomWalkWithRestart::new(0, 25)), &VertexicaConfig::default())
        .unwrap();
    let vals: Vec<(VertexId, f64)> = session.vertex_values().unwrap();
    let v: Vec<f64> = vals.iter().map(|&(_, x)| x).collect();
    assert!(v[0] > v[1] && v[1] > v[2]);
    assert!(v[1] > v[3] && v[3] > v[4]);

    let (giraph_vals, _) = GiraphEngine::default().run(&graph, &RandomWalkWithRestart::new(0, 25));
    for (id, x) in vals {
        assert!((x - giraph_vals[id as usize]).abs() < 1e-12, "vertex {id}");
    }
}

#[test]
fn label_propagation_on_relational_engine() {
    // Two tight communities bridged weakly.
    let mut pairs = Vec::new();
    for a in 0..4u64 {
        for b in 0..4u64 {
            if a != b {
                pairs.push((a, b));
            }
        }
    }
    for a in 4..8u64 {
        for b in 4..8u64 {
            if a != b {
                pairs.push((a, b));
            }
        }
    }
    pairs.push((3, 4));
    let graph = EdgeList::from_pairs(pairs);
    let session = session_for(&graph);
    run_program(&session, Arc::new(LabelPropagation::new(8)), &VertexicaConfig::default()).unwrap();
    let labels: Vec<(VertexId, u64)> = session.vertex_values().unwrap();
    // Community A coheres on one label.
    assert_eq!(labels[0].1, labels[1].1);
    assert_eq!(labels[1].1, labels[2].1);
    // Community B coheres on one label.
    assert_eq!(labels[5].1, labels[6].1);
    assert_eq!(labels[6].1, labels[7].1);
}
