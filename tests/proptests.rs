//! Cross-crate property-based tests: algorithm invariants on random graphs,
//! engine equivalence, partitioner completeness.

use std::sync::Arc;

use proptest::prelude::*;
use vertexica::sql::Database;
use vertexica::{run_program, GraphSession, VertexicaConfig};
use vertexica_algorithms::reference;
use vertexica_algorithms::vc::{ConnectedComponents, PageRank, Sssp};
use vertexica_common::graph::{Edge, EdgeList, VertexId};
use vertexica_giraph::GiraphEngine;

/// Strategy: a random directed graph with up to `max_n` vertices.
fn arb_graph(max_n: u64, max_m: usize) -> impl Strategy<Value = EdgeList> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, 0.1f64..10.0), 1..=max_m).prop_map(move |pairs| {
            let edges: Vec<Edge> =
                pairs.into_iter().map(|(s, d, w)| Edge::weighted(s, d, w)).collect();
            EdgeList::new(n, edges)
        })
    })
}

fn session_for(graph: &EdgeList) -> GraphSession {
    let db = Arc::new(Database::new());
    let s = GraphSession::create(db, "g").expect("create");
    s.load_edges(graph).expect("load");
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// PageRank is a probability distribution on any graph.
    #[test]
    fn pagerank_sums_to_one(graph in arb_graph(40, 150)) {
        let ranks = reference::pagerank(&graph, 12, 0.85);
        let total: f64 = ranks.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total {total}");
        prop_assert!(ranks.iter().all(|&r| r > 0.0));
    }

    /// The relational engine and the BSP engine agree with the reference
    /// on arbitrary graphs.
    #[test]
    fn engines_agree_on_random_graphs(graph in arb_graph(24, 80)) {
        let expected = reference::pagerank(&graph, 5, 0.85);
        let (giraph_vals, _) = GiraphEngine::default().run(&graph, &PageRank::new(5, 0.85));
        for (id, rank) in giraph_vals.iter().enumerate() {
            prop_assert!((rank - expected[id]).abs() < 1e-9, "giraph vertex {id}");
        }
        let session = session_for(&graph);
        run_program(&session, Arc::new(PageRank::new(5, 0.85)), &VertexicaConfig::default())
            .unwrap();
        let vx: Vec<(VertexId, f64)> = session.vertex_values().unwrap();
        for (id, rank) in vx {
            prop_assert!((rank - expected[id as usize]).abs() < 1e-9, "vertexica vertex {id}");
        }
    }

    /// SSSP distances form a relaxation fixpoint: d[src]=0, and for every
    /// edge (u,v,w): d[v] <= d[u] + w; every finite d[v] is witnessed by an
    /// incoming relaxed edge.
    #[test]
    fn sssp_is_a_relaxation_fixpoint(graph in arb_graph(30, 120)) {
        let dist = reference::sssp(&graph, 0);
        prop_assert_eq!(dist[0], 0.0);
        for e in &graph.edges {
            if dist[e.src as usize].is_finite() {
                prop_assert!(
                    dist[e.dst as usize] <= dist[e.src as usize] + e.weight + 1e-9,
                    "edge {}->{} violates triangle inequality", e.src, e.dst
                );
            }
        }
        for (v, &d) in dist.iter().enumerate() {
            if v != 0 && d.is_finite() {
                let witnessed = graph.edges.iter().any(|e| {
                    e.dst as usize == v
                        && dist[e.src as usize].is_finite()
                        && (dist[e.src as usize] + e.weight - d).abs() < 1e-9
                });
                prop_assert!(witnessed, "vertex {v} distance {d} has no witness");
            }
        }
    }

    /// The vertex-centric SSSP matches Dijkstra on random weighted graphs.
    #[test]
    fn vertex_centric_sssp_matches_dijkstra(graph in arb_graph(24, 80)) {
        let expected = reference::sssp(&graph, 0);
        let (vals, _) = GiraphEngine::default().run(&graph, &Sssp::new(0));
        for (id, d) in vals.iter().enumerate() {
            let want = expected[id];
            prop_assert!(
                (d.is_infinite() && want.is_infinite()) || (d - want).abs() < 1e-9,
                "vertex {id}: {d} vs {want}"
            );
        }
    }

    /// Connected-component labels are consistent: endpoints of every edge
    /// share a label, and each label is the minimum id of its class.
    #[test]
    fn wcc_is_a_valid_partition(graph in arb_graph(30, 100)) {
        let und = graph.undirected();
        let labels = reference::weakly_connected_components(&und);
        for e in &und.edges {
            prop_assert_eq!(labels[e.src as usize], labels[e.dst as usize]);
        }
        for (v, &l) in labels.iter().enumerate() {
            prop_assert!(l <= v as u64, "label must be a min id");
            prop_assert_eq!(labels[l as usize], l, "label must be its own root");
        }
        // And the vertex-centric version agrees.
        let (vc_labels, _) = GiraphEngine::default().run(&und, &ConnectedComponents);
        prop_assert_eq!(vc_labels, labels);
    }

    /// Triangle counting invariants: per-node counts sum to 3× the total,
    /// and match across the SQL implementation.
    #[test]
    fn triangle_counts_consistent(graph in arb_graph(20, 80)) {
        let per_node = reference::per_node_triangles(&graph);
        let total = reference::triangle_count(&graph);
        prop_assert_eq!(per_node.iter().sum::<u64>(), 3 * total);

        let session = session_for(&graph);
        let sql_total = vertexica_algorithms::sqlalgo::triangle_count_sql(&session).unwrap();
        prop_assert_eq!(sql_total, total);
    }

    /// Hash partitioning loses nothing and separates nothing that belongs
    /// together.
    #[test]
    fn partitioner_is_complete_and_consistent(
        keys in proptest::collection::vec(0i64..50, 1..300),
        parts in 1usize..12,
    ) {
        use vertexica::storage::{partition::hash_partition, DataType, Field, RecordBatch, Schema, Value};
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]);
        let rows: Vec<Vec<Value>> = keys.iter().map(|&k| vec![Value::Int(k)]).collect();
        let batch = RecordBatch::from_rows(schema, &rows).unwrap();
        let out = hash_partition(&[batch], &[0], parts).unwrap();
        let total: usize = out.iter().flat_map(|p| p.iter().map(|b| b.num_rows())).sum();
        prop_assert_eq!(total, keys.len());
        // Each key appears in exactly one partition.
        for k in keys.iter().copied().collect::<std::collections::HashSet<i64>>() {
            let holders = out
                .iter()
                .filter(|p| {
                    p.iter().any(|b| {
                        b.column(0).iter().any(|v| v == Value::Int(k))
                    })
                })
                .count();
            prop_assert_eq!(holders, 1, "key {} split across partitions", k);
        }
    }

    /// Segmented storage, engine level: any random chunk split of the same
    /// rows, hash-partitioned into per-partition segment batches and
    /// committed through the parallel-apply fast path
    /// (`replace_table_segmented`), must equal the one-shot table build.
    #[test]
    fn segmented_replace_matches_one_shot_build(
        rows in proptest::collection::vec((0i64..500, -1000i64..1000), 1..120),
        chunks in (1usize..6).prop_flat_map(|n| {
            proptest::collection::vec(1usize..40, n..n + 1)
        }),
        parts in 1usize..6,
    ) {
        use vertexica::storage::{partition::hash_partition, DataType, Field, RecordBatch, Schema, Value};
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("payload", DataType::Int),
        ]);
        let to_batch = |rows: &[(i64, i64)]| {
            let vals: Vec<Vec<Value>> =
                rows.iter().map(|&(k, p)| vec![Value::Int(k), Value::Int(p)]).collect();
            RecordBatch::from_rows(schema.clone(), &vals).unwrap()
        };

        let db = Database::new();
        db.execute("CREATE TABLE one_shot (k BIGINT, payload BIGINT)").unwrap();
        db.execute("CREATE TABLE segmented (k BIGINT, payload BIGINT)").unwrap();
        // Pre-populate the replacement target with junk that must vanish.
        db.execute("INSERT INTO segmented VALUES (-77, -77)").unwrap();

        db.append_batches("one_shot", &[to_batch(&rows)]).unwrap();

        // Random chunk split (chunk lengths cycle through `chunks`), then a
        // hash partition of the chunks — the same shape the parallel apply
        // path produces (per-partition segment batches).
        let mut chunked: Vec<RecordBatch> = Vec::new();
        let mut rest: &[(i64, i64)] = &rows;
        let mut ci = 0;
        while !rest.is_empty() {
            let take = chunks[ci % chunks.len()].min(rest.len());
            chunked.push(to_batch(&rest[..take]));
            rest = &rest[take..];
            ci += 1;
        }
        let partitions = hash_partition(&chunked, &[0], parts).unwrap();
        let segment_batches: Vec<RecordBatch> =
            partitions.into_iter().flatten().collect();
        let n = db.replace_table_segmented("segmented", segment_batches).unwrap();
        prop_assert_eq!(n, rows.len());

        let canon = |table: &str| {
            let mut r = db.query(&format!("SELECT k, payload FROM {table}")).unwrap();
            r.sort_by(|a, b| {
                a.iter().map(|v| v.as_int()).cmp(b.iter().map(|v| v.as_int()))
            });
            r
        };
        prop_assert_eq!(canon("segmented"), canon("one_shot"));
    }

    /// Segmented storage, table level: building segments off-table
    /// (`Segment::build`), adopting them into a staging table and
    /// atomically swapping it in (`Catalog::swap`) equals the one-shot
    /// build, for any chunk split.
    #[test]
    fn adopted_segments_plus_swap_match_one_shot_build(
        keys in proptest::collection::vec(0i64..300, 1..150),
        split_at in proptest::collection::vec(1usize..150, 1..5),
    ) {
        use vertexica::storage::{
            Catalog, DataType, Field, RecordBatch, Schema, Segment, Table, TableOptions, Value,
        };
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]);
        let to_batch = |keys: &[i64]| {
            let vals: Vec<Vec<Value>> = keys.iter().map(|&k| vec![Value::Int(k)]).collect();
            RecordBatch::from_rows(schema.clone(), &vals).unwrap()
        };

        let catalog = Catalog::new();
        let live = catalog.create_table("t", schema.clone(), TableOptions::default()).unwrap();
        live.write().insert_row(vec![Value::Int(-1)]).unwrap(); // junk to replace

        let mut one_shot = Table::new("ref", schema.clone(), TableOptions::default());
        one_shot.append_batch(&to_batch(&keys)).unwrap();

        // Split points (mod len, deduped) cut the keys into chunks; each
        // chunk becomes one off-table segment adopted into the staging table.
        let mut cuts: Vec<usize> = split_at.iter().map(|&s| s % keys.len()).collect();
        cuts.push(0);
        cuts.push(keys.len());
        cuts.sort_unstable();
        cuts.dedup();
        let mut staging = Table::new("t_new", schema.clone(), TableOptions::default());
        for w in cuts.windows(2) {
            let seg = Segment::build(&schema, &to_batch(&keys[w[0]..w[1]]), false).unwrap();
            staging.adopt_segment(seg).unwrap();
        }
        catalog.register(staging).unwrap();
        catalog.swap("t", "t_new").unwrap();
        catalog.drop_table("t_new").unwrap();

        let canon = |t: &Table| {
            let mut rows: Vec<i64> = t
                .scan(None, &[])
                .unwrap()
                .iter()
                .flat_map(|b| b.column(0).iter().map(|v| v.as_int().unwrap()).collect::<Vec<_>>())
                .collect();
            rows.sort_unstable();
            rows
        };
        let live = catalog.get("t").unwrap();
        let guard = live.read();
        prop_assert_eq!(guard.num_rows(), keys.len());
        prop_assert_eq!(canon(&guard), canon(&one_shot));
    }

    /// Random-walk-with-restart masses stay in [0, 1], the source retains at
    /// least its restart mass, and vertices unreachable from the source get
    /// exactly zero. (The source is *not* necessarily the maximum — an
    /// absorbing cycle can out-accumulate it.)
    #[test]
    fn rwr_probabilities_bounded(graph in arb_graph(20, 60)) {
        use vertexica_algorithms::vc::RandomWalkWithRestart;
        let prog = RandomWalkWithRestart::new(0, 20);
        let restart = prog.restart;
        let (vals, _) = GiraphEngine::default().run(&graph, &prog);
        for (id, v) in vals.iter().enumerate() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(v), "vertex {id}: {v}");
        }
        prop_assert!(vals[0] >= restart - 1e-9, "source lost its restart mass");
        // BFS reachability from the source.
        let adj = vertexica_common::graph::Adjacency::from_edge_list(&graph);
        let mut reachable = vec![false; graph.num_vertices as usize];
        let mut stack = vec![0u64];
        reachable[0] = true;
        while let Some(v) = stack.pop() {
            for &n in adj.neighbors(v) {
                if !reachable[n as usize] {
                    reachable[n as usize] = true;
                    stack.push(n);
                }
            }
        }
        for (id, v) in vals.iter().enumerate() {
            if !reachable[id] {
                prop_assert_eq!(*v, 0.0, "unreachable vertex {} has mass", id);
            }
        }
    }
}
