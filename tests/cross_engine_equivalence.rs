//! Cross-engine equivalence: the same `VertexProgram` must produce identical
//! results on the relational Vertexica engine, the Giraph-like BSP baseline,
//! the transactional graph database, the hand-written SQL implementations
//! and the in-memory reference implementations — the correctness backbone of
//! the Figure-2 comparison.

use std::sync::Arc;
use std::time::Duration;

use vertexica::sql::Database;
use vertexica::{run_program, GraphSession, InputMode, VertexicaConfig};
use vertexica_algorithms::reference;
use vertexica_algorithms::sqlalgo;
use vertexica_algorithms::vc::{ConnectedComponents, PageRank, Sssp};
use vertexica_common::graph::{EdgeList, VertexId};
use vertexica_giraph::GiraphEngine;
use vertexica_graphdb::GraphDb;
use vertexica_graphgen::models::erdos_renyi;
use vertexica_graphgen::rmat::{rmat_graph, RmatConfig};

fn session_for(graph: &EdgeList) -> GraphSession {
    let db = Arc::new(Database::new());
    let s = GraphSession::create(db, "g").expect("create");
    s.load_edges(graph).expect("load");
    s
}

fn test_graphs() -> Vec<EdgeList> {
    vec![
        erdos_renyi(60, 240, 3),
        rmat_graph(&RmatConfig { scale: 7, num_edges: 600, seed: 9, ..Default::default() }),
        EdgeList::from_pairs([(0, 1), (1, 2), (2, 0), (3, 4)]), // disconnected
        EdgeList::from_pairs((0..30u64).map(|i| (i, i + 1))),   // chain
    ]
}

#[test]
fn pagerank_agrees_across_all_engines() {
    for (gi, graph) in test_graphs().into_iter().enumerate() {
        let expected = reference::pagerank(&graph, 8, 0.85);

        // Vertexica (vertex-centric on the relational engine).
        let session = session_for(&graph);
        run_program(&session, Arc::new(PageRank::new(8, 0.85)), &VertexicaConfig::default())
            .unwrap();
        let vx: Vec<(VertexId, f64)> = session.vertex_values().unwrap();
        assert_eq!(vx.len(), expected.len(), "graph {gi}");
        for (id, rank) in &vx {
            assert!(
                (rank - expected[*id as usize]).abs() < 1e-9,
                "graph {gi} vertexica vertex {id}: {rank} vs {}",
                expected[*id as usize]
            );
        }

        // Giraph baseline.
        let (giraph_vals, _) = GiraphEngine::default().run(&graph, &PageRank::new(8, 0.85));
        for (id, rank) in giraph_vals.iter().enumerate() {
            assert!((rank - expected[id]).abs() < 1e-9, "graph {gi} giraph vertex {id}");
        }

        // Vertexica (SQL).
        let sql = sqlalgo::pagerank_sql(&session, 8, 0.85).unwrap();
        for (id, rank) in sql {
            assert!((rank - expected[id as usize]).abs() < 1e-9, "graph {gi} sql vertex {id}");
        }

        // Graph database.
        let db = GraphDb::ephemeral();
        db.load_edges(&graph).unwrap();
        let out = vertexica_graphdb::algo::pagerank(
            &db,
            graph.num_vertices,
            8,
            0.85,
            Duration::from_secs(120),
        )
        .unwrap();
        let gdb = out.finished().expect("graphdb finishes").clone();
        for (id, rank) in gdb.iter().enumerate() {
            assert!((rank - expected[id]).abs() < 1e-9, "graph {gi} graphdb vertex {id}");
        }
    }
}

#[test]
fn sssp_agrees_across_all_engines() {
    for (gi, graph) in test_graphs().into_iter().enumerate() {
        let expected = reference::sssp(&graph, 0);
        let close = |a: f64, b: f64| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9;

        let session = session_for(&graph);
        run_program(&session, Arc::new(Sssp::new(0)), &VertexicaConfig::default()).unwrap();
        let vx: Vec<(VertexId, f64)> = session.vertex_values().unwrap();
        for (id, d) in &vx {
            assert!(
                close(*d, expected[*id as usize]),
                "graph {gi} vertexica vertex {id}: {d} vs {}",
                expected[*id as usize]
            );
        }

        let (giraph_vals, _) = GiraphEngine::default().run(&graph, &Sssp::new(0));
        for (id, d) in giraph_vals.iter().enumerate() {
            assert!(close(*d, expected[id]), "graph {gi} giraph vertex {id}");
        }

        let sql = sqlalgo::sssp_sql(&session, 0).unwrap();
        for (id, d) in sql {
            assert!(close(d, expected[id as usize]), "graph {gi} sql vertex {id}");
        }

        let db = GraphDb::ephemeral();
        db.load_edges(&graph).unwrap();
        let out =
            vertexica_graphdb::algo::sssp(&db, graph.num_vertices, 0, Duration::from_secs(120))
                .unwrap();
        let gdb = out.finished().expect("graphdb finishes").clone();
        for (id, d) in gdb.iter().enumerate() {
            assert!(close(*d, expected[id]), "graph {gi} graphdb vertex {id}");
        }
    }
}

#[test]
fn connected_components_agree() {
    let graph = erdos_renyi(50, 60, 5).undirected();
    let expected = reference::weakly_connected_components(&graph);

    let session = session_for(&graph);
    run_program(&session, Arc::new(ConnectedComponents), &VertexicaConfig::default()).unwrap();
    let vx: Vec<(VertexId, u64)> = session.vertex_values().unwrap();
    for (id, label) in &vx {
        assert_eq!(*label, expected[*id as usize], "vertexica vertex {id}");
    }

    let (giraph_vals, _) = GiraphEngine::default().run(&graph, &ConnectedComponents);
    assert_eq!(giraph_vals, expected);

    let sql = sqlalgo::connected_components_sql(&session).unwrap();
    for (id, label) in sql {
        assert_eq!(label, expected[id as usize], "sql vertex {id}");
    }
}

#[test]
fn every_vertexica_configuration_agrees() {
    // All four §2.3 optimizations toggled — results must never change.
    let graph = rmat_graph(&RmatConfig { scale: 6, num_edges: 300, seed: 4, ..Default::default() });
    let expected = reference::pagerank(&graph, 6, 0.85);
    let configs = vec![
        VertexicaConfig::default(),
        VertexicaConfig::default().with_input_mode(InputMode::ThreeWayJoin),
        VertexicaConfig::default().with_workers(1).with_partitions(1),
        VertexicaConfig::default().with_workers(8).with_partitions(64),
        VertexicaConfig::default().with_replace_threshold(0.0),
        VertexicaConfig::default().with_replace_threshold(1.01),
        VertexicaConfig::default().with_combiner(false),
    ];
    for (ci, config) in configs.into_iter().enumerate() {
        let session = session_for(&graph);
        run_program(&session, Arc::new(PageRank::new(6, 0.85)), &config).unwrap();
        let vx: Vec<(VertexId, f64)> = session.vertex_values().unwrap();
        for (id, rank) in vx {
            assert!((rank - expected[id as usize]).abs() < 1e-9, "config {ci} vertex {id}");
        }
    }
}
