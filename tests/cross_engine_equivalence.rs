//! Cross-engine equivalence: the same `VertexProgram` must produce identical
//! results on the relational Vertexica engine, the Giraph-like BSP baseline,
//! the transactional graph database, the hand-written SQL implementations
//! and the in-memory reference implementations — the correctness backbone of
//! the Figure-2 comparison.

use std::sync::Arc;
use std::time::Duration;

use vertexica::sql::Database;
use vertexica::{run_program, GraphSession, InputMode, VertexicaConfig};
use vertexica_algorithms::reference;
use vertexica_algorithms::sqlalgo;
use vertexica_algorithms::vc::{ConnectedComponents, PageRank, Sssp};
use vertexica_common::graph::{EdgeList, VertexId};
use vertexica_giraph::GiraphEngine;
use vertexica_graphdb::GraphDb;
use vertexica_graphgen::models::erdos_renyi;
use vertexica_graphgen::rmat::{rmat_graph, RmatConfig};

/// With `VERTEXICA_DURABLE` set, every cross-engine cell runs against a
/// disk-backed database in a unique temp directory (WAL + segment files,
/// `fsync` per `VERTEXICA_DURABLE_SYNC`) — the durability CI job's hook.
fn session_for(graph: &EdgeList) -> GraphSession {
    let db = if vertexica::config::durable_default() {
        Arc::new(Database::open(unique_durable_dir("xeq")).expect("open durable"))
    } else {
        Arc::new(Database::new())
    };
    let s = GraphSession::create(db, "g").expect("create");
    s.load_edges(graph).expect("load");
    s
}

fn unique_durable_dir(tag: &str) -> std::path::PathBuf {
    use vertexica_common::sync::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "vx_xeq_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn test_graphs() -> Vec<EdgeList> {
    vec![
        erdos_renyi(60, 240, 3),
        rmat_graph(&RmatConfig { scale: 7, num_edges: 600, seed: 9, ..Default::default() }),
        EdgeList::from_pairs([(0, 1), (1, 2), (2, 0), (3, 4)]), // disconnected
        EdgeList::from_pairs((0..30u64).map(|i| (i, i + 1))),   // chain
    ]
}

#[test]
fn pagerank_agrees_across_all_engines() {
    for (gi, graph) in test_graphs().into_iter().enumerate() {
        let expected = reference::pagerank(&graph, 8, 0.85);

        // Vertexica (vertex-centric on the relational engine).
        let session = session_for(&graph);
        run_program(&session, Arc::new(PageRank::new(8, 0.85)), &VertexicaConfig::default())
            .unwrap();
        let vx: Vec<(VertexId, f64)> = session.vertex_values().unwrap();
        assert_eq!(vx.len(), expected.len(), "graph {gi}");
        for (id, rank) in &vx {
            assert!(
                (rank - expected[*id as usize]).abs() < 1e-9,
                "graph {gi} vertexica vertex {id}: {rank} vs {}",
                expected[*id as usize]
            );
        }

        // Giraph baseline.
        let (giraph_vals, _) = GiraphEngine::default().run(&graph, &PageRank::new(8, 0.85));
        for (id, rank) in giraph_vals.iter().enumerate() {
            assert!((rank - expected[id]).abs() < 1e-9, "graph {gi} giraph vertex {id}");
        }

        // Vertexica (SQL).
        let sql = sqlalgo::pagerank_sql(&session, 8, 0.85).unwrap();
        for (id, rank) in sql {
            assert!((rank - expected[id as usize]).abs() < 1e-9, "graph {gi} sql vertex {id}");
        }

        // Graph database.
        let db = GraphDb::ephemeral();
        db.load_edges(&graph).unwrap();
        let out = vertexica_graphdb::algo::pagerank(
            &db,
            graph.num_vertices,
            8,
            0.85,
            Duration::from_secs(120),
        )
        .unwrap();
        let gdb = out.finished().expect("graphdb finishes").clone();
        for (id, rank) in gdb.iter().enumerate() {
            assert!((rank - expected[id]).abs() < 1e-9, "graph {gi} graphdb vertex {id}");
        }
    }
}

#[test]
fn sssp_agrees_across_all_engines() {
    for (gi, graph) in test_graphs().into_iter().enumerate() {
        let expected = reference::sssp(&graph, 0);
        let close = |a: f64, b: f64| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9;

        let session = session_for(&graph);
        run_program(&session, Arc::new(Sssp::new(0)), &VertexicaConfig::default()).unwrap();
        let vx: Vec<(VertexId, f64)> = session.vertex_values().unwrap();
        for (id, d) in &vx {
            assert!(
                close(*d, expected[*id as usize]),
                "graph {gi} vertexica vertex {id}: {d} vs {}",
                expected[*id as usize]
            );
        }

        let (giraph_vals, _) = GiraphEngine::default().run(&graph, &Sssp::new(0));
        for (id, d) in giraph_vals.iter().enumerate() {
            assert!(close(*d, expected[id]), "graph {gi} giraph vertex {id}");
        }

        let sql = sqlalgo::sssp_sql(&session, 0).unwrap();
        for (id, d) in sql {
            assert!(close(d, expected[id as usize]), "graph {gi} sql vertex {id}");
        }

        let db = GraphDb::ephemeral();
        db.load_edges(&graph).unwrap();
        let out =
            vertexica_graphdb::algo::sssp(&db, graph.num_vertices, 0, Duration::from_secs(120))
                .unwrap();
        let gdb = out.finished().expect("graphdb finishes").clone();
        for (id, d) in gdb.iter().enumerate() {
            assert!(close(*d, expected[id]), "graph {gi} graphdb vertex {id}");
        }
    }
}

#[test]
fn connected_components_agree() {
    let graph = erdos_renyi(50, 60, 5).undirected();
    let expected = reference::weakly_connected_components(&graph);

    let session = session_for(&graph);
    run_program(&session, Arc::new(ConnectedComponents), &VertexicaConfig::default()).unwrap();
    let vx: Vec<(VertexId, u64)> = session.vertex_values().unwrap();
    for (id, label) in &vx {
        assert_eq!(*label, expected[*id as usize], "vertexica vertex {id}");
    }

    let (giraph_vals, _) = GiraphEngine::default().run(&graph, &ConnectedComponents);
    assert_eq!(giraph_vals, expected);

    let sql = sqlalgo::connected_components_sql(&session).unwrap();
    for (id, label) in sql {
        assert_eq!(label, expected[id as usize], "sql vertex {id}");
    }
}

#[test]
fn every_vertexica_configuration_agrees() {
    // All four §2.3 optimizations toggled, on both pipelines — results must
    // never change.
    let graph = rmat_graph(&RmatConfig { scale: 6, num_edges: 300, seed: 4, ..Default::default() });
    let expected = reference::pagerank(&graph, 6, 0.85);
    let configs = vec![
        VertexicaConfig::default(),
        VertexicaConfig::default().with_streaming(false),
        VertexicaConfig::default().with_streaming_scan(false),
        VertexicaConfig::default().with_input_mode(InputMode::ThreeWayJoin),
        VertexicaConfig::default().with_input_mode(InputMode::ThreeWayJoin).with_streaming(false),
        VertexicaConfig::default()
            .with_input_mode(InputMode::ThreeWayJoin)
            .with_streaming_scan(false),
        VertexicaConfig::default().with_workers(1).with_partitions(1),
        VertexicaConfig::default().with_workers(8).with_partitions(64),
        VertexicaConfig::default().with_replace_threshold(0.0),
        VertexicaConfig::default().with_replace_threshold(1.01),
        VertexicaConfig::default().with_combiner(false),
        VertexicaConfig::default().with_combiner(false).with_streaming(false),
    ];
    for (ci, config) in configs.into_iter().enumerate() {
        let session = session_for(&graph);
        run_program(&session, Arc::new(PageRank::new(6, 0.85)), &config).unwrap();
        let vx: Vec<(VertexId, f64)> = session.vertex_values().unwrap();
        for (id, rank) in vx {
            assert!((rank - expected[id as usize]).abs() < 1e-9, "config {ci} vertex {id}");
        }
    }
}

/// Runs `program` under the streaming and the materialized pipeline on the
/// same graph and requires **bitwise-identical** vertex values: the
/// streaming refactor canonicalizes apply order, so not even float
/// summation order may differ between the two paths.
fn assert_streaming_matches_materialized<P, V>(graph: &EdgeList, make_program: impl Fn() -> P)
where
    P: vertexica_common::VertexProgram<Value = V> + 'static,
    V: vertexica_common::VertexData + Send + PartialEq + std::fmt::Debug,
{
    for (workers, partitions) in [(4, 16), (2, 3), (1, 1)] {
        let base = VertexicaConfig::default().with_workers(workers).with_partitions(partitions);

        let streaming_session = session_for(graph);
        run_program(&streaming_session, Arc::new(make_program()), &base.clone()).unwrap();
        let streamed: Vec<(VertexId, V)> = streaming_session.vertex_values().unwrap();

        let materialized_session = session_for(graph);
        run_program(&materialized_session, Arc::new(make_program()), &base.with_streaming(false))
            .unwrap();
        let materialized: Vec<(VertexId, V)> = materialized_session.vertex_values().unwrap();

        assert_eq!(
            streamed, materialized,
            "streaming and materialized pipelines diverged \
             (workers={workers}, partitions={partitions})"
        );
    }
}

#[test]
fn streaming_matches_materialized_on_every_algorithm() {
    use vertexica_algorithms::vc::{LabelPropagation, RandomWalkWithRestart};
    let graph =
        rmat_graph(&RmatConfig { scale: 6, num_edges: 400, seed: 11, ..Default::default() });
    assert_streaming_matches_materialized(&graph, || PageRank::new(6, 0.85));
    assert_streaming_matches_materialized(&graph, || Sssp::new(0));
    assert_streaming_matches_materialized(&graph.undirected(), || ConnectedComponents);
    assert_streaming_matches_materialized(&graph, || RandomWalkWithRestart::new(0, 10));
    assert_streaming_matches_materialized(&graph.undirected(), || LabelPropagation::new(6));
}

/// Physical image of every table — the bitwise recovery comparator.
fn physical_image(catalog: &vertexica::storage::Catalog) -> Vec<(String, Vec<u8>)> {
    let mut names = catalog.list();
    names.sort();
    names
        .into_iter()
        .map(|n| {
            let t = catalog.get(&n).unwrap();
            let bytes = vertexica::storage::persist::table_to_bytes_physical(&t.read()).unwrap();
            (n, bytes)
        })
        .collect()
}

/// The persisted-reopen cell: run an algorithm on a durable database, drop
/// the process-local state entirely, recover from disk, and require the
/// recovered vertex table — and every table's physical image — to be
/// **bitwise-identical** to the live post-run state.
fn assert_durable_reopen_is_bitwise_identical<P>(graph: &EdgeList, tag: &str, program: Arc<P>)
where
    P: vertexica_common::VertexProgram + 'static,
{
    let dir = unique_durable_dir(tag);
    let db = Arc::new(Database::open(&dir).expect("open durable"));
    let session = GraphSession::create(db.clone(), "g").expect("create");
    session.load_edges(graph).expect("load");
    let stats =
        run_program(&session, program, &VertexicaConfig::default().with_durable(true)).unwrap();
    assert!(
        stats.per_superstep.iter().any(|s| s.wal_records > 0 && s.wal_bytes > 0),
        "{tag}: durable run must report WAL activity in the superstep gauges"
    );
    // The grouped apply commit flushes per superstep; the serial ablation
    // path flushes at the run-boundary checkpoints — either way the
    // cumulative counter must show flushed table images.
    assert!(
        db.durability_stats().unwrap().flush_bytes > 0,
        "{tag}: a durable run must flush table images"
    );
    let live_bits = vertex_table_bits(&session);
    let live_image = physical_image(db.catalog());
    drop(session);
    drop(db);

    let db2 = Arc::new(Database::open(&dir).expect("reopen"));
    assert_eq!(
        physical_image(db2.catalog()),
        live_image,
        "{tag}: recovered physical image differs from the live post-run state"
    );
    let session2 = GraphSession::open(db2, "g").expect("reopen session");
    assert_eq!(
        vertex_table_bits(&session2),
        live_bits,
        "{tag}: recovered vertex table differs bitwise"
    );
    drop(session2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn durable_reopen_is_bitwise_identical_for_every_algorithm() {
    use vertexica_algorithms::vc::{LabelPropagation, RandomWalkWithRestart};
    let graph =
        rmat_graph(&RmatConfig { scale: 6, num_edges: 400, seed: 13, ..Default::default() });
    assert_durable_reopen_is_bitwise_identical(
        &graph,
        "pagerank",
        Arc::new(PageRank::new(6, 0.85)),
    );
    assert_durable_reopen_is_bitwise_identical(&graph, "sssp", Arc::new(Sssp::new(0)));
    assert_durable_reopen_is_bitwise_identical(
        &graph.undirected(),
        "cc",
        Arc::new(ConnectedComponents),
    );
    assert_durable_reopen_is_bitwise_identical(
        &graph,
        "rwr",
        Arc::new(RandomWalkWithRestart::new(0, 10)),
    );
    assert_durable_reopen_is_bitwise_identical(
        &graph.undirected(),
        "lp",
        Arc::new(LabelPropagation::new(6)),
    );
}

#[test]
fn streaming_stats_report_bounded_peak_bytes() {
    // Dense superstep: PageRank touches every vertex, edge, and (after
    // superstep 0) a per-edge message load. The streaming pipeline must
    // never hold the whole assembled input as one in-flight batch, and the
    // pull-based scan must never hold more than one in-flight batch per
    // source — strictly below the eager input size.
    let graph = erdos_renyi(400, 3200, 9);
    // No combiner: the full per-edge message load lands in the message
    // table, which the apply path writes as several bucket segments — the
    // shape where pulling one segment at a time visibly beats holding the
    // whole table.
    // (workers and parallel apply pinned: the bucket fan-out — and so the
    // message table's segment count — follows num_workers under the
    // segment-parallel apply path; the defaults track the host's core count
    // and the CI ablation env.)
    let base =
        VertexicaConfig::default().with_combiner(false).with_workers(4).with_parallel_apply(true);
    let session = session_for(&graph);
    let stats = run_program(
        &session,
        Arc::new(PageRank::new(5, 0.85)),
        &base.clone().with_streaming_scan(true),
    )
    .unwrap();
    assert!(stats.supersteps >= 2);
    for s in &stats.per_superstep {
        assert!(s.input_bytes > 0, "superstep {} reported no input", s.superstep);
        assert!(
            s.peak_batch_bytes < s.input_bytes,
            "superstep {}: streaming peak {} should stay strictly below the \
             fully-materialized input size {}",
            s.superstep,
            s.peak_batch_bytes,
            s.input_bytes
        );
        assert!(
            s.peak_resident_scan_bytes > 0 && s.peak_resident_scan_bytes < s.input_bytes,
            "superstep {}: the pull-based scan's resident gauge {} should stay \
             strictly below the eager input size {}",
            s.superstep,
            s.peak_resident_scan_bytes,
            s.input_bytes
        );
        assert!(s.queue_wait_secs >= 0.0);
    }
    let streamed_resident: usize =
        stats.per_superstep.iter().map(|s| s.peak_resident_scan_bytes).sum();

    // Same run through the eager scan ablation: whole tables are resident,
    // so the gauge must come out strictly higher (from superstep 1 on, the
    // apply path writes the message table as several bucket segments — the
    // cursor holds one of them, the eager scan all of them).
    let session = session_for(&graph);
    let eager_stats =
        run_program(&session, Arc::new(PageRank::new(5, 0.85)), &base.with_streaming_scan(false))
            .unwrap();
    let eager_resident: usize =
        eager_stats.per_superstep.iter().map(|s| s.peak_resident_scan_bytes).sum();
    assert!(
        streamed_resident < eager_resident,
        "pull-based scans should shrink the resident footprint: \
         streamed {streamed_resident} vs eager {eager_resident}"
    );

    // The materialized pipeline, by definition, holds the whole input.
    let session = session_for(&graph);
    let stats = run_program(
        &session,
        Arc::new(PageRank::new(5, 0.85)),
        &VertexicaConfig::default().with_streaming(false),
    )
    .unwrap();
    for s in &stats.per_superstep {
        assert_eq!(s.peak_batch_bytes, s.input_bytes);
        assert_eq!(s.peak_resident_scan_bytes, s.input_bytes);
    }
}

/// The full vertex table, bit for bit: every row's id, raw encoded value
/// bytes and halt flag, canonicalized by id (physical row order is the one
/// thing the apply paths are *allowed* to differ on).
fn vertex_table_bits(session: &GraphSession) -> Vec<(i64, Option<Vec<u8>>, Option<bool>)> {
    let batches = session.db().scan_table(&session.vertex_table(), None, &[]).unwrap();
    let mut rows: Vec<(i64, Option<Vec<u8>>, Option<bool>)> = Vec::new();
    for b in &batches {
        for i in 0..b.num_rows() {
            let row = b.row(i);
            rows.push((
                row[0].as_int().unwrap(),
                row[1].as_blob().map(|b| b.to_vec()),
                row[2].as_bool(),
            ));
        }
    }
    rows.sort();
    rows
}

/// The full message table, bit for bit, canonicalized.
fn message_table_bits(session: &GraphSession) -> Vec<(i64, Option<i64>, Option<Vec<u8>>)> {
    let batches = session.db().scan_table(&session.message_table(), None, &[]).unwrap();
    let mut rows: Vec<(i64, Option<i64>, Option<Vec<u8>>)> = Vec::new();
    for b in &batches {
        for i in 0..b.num_rows() {
            let row = b.row(i);
            rows.push((
                row[0].as_int().unwrap(),
                row[1].as_int(),
                row[2].as_blob().map(|b| b.to_vec()),
            ));
        }
    }
    rows.sort();
    rows
}

/// Everything one configuration cell produced that must be invariant across
/// the {streaming} × {parallel apply} × {pipelined} × {streaming scan} ×
/// {vectorized expr} matrix.
#[derive(PartialEq, Debug)]
struct CellResult {
    vertex_bits: Vec<(i64, Option<Vec<u8>>, Option<bool>)>,
    message_bits: Vec<(i64, Option<i64>, Option<Vec<u8>>)>,
    total_messages: u64,
    per_superstep: Vec<(usize, usize, bool)>, // (messages, vertex_changes, replaced)
}

#[allow(clippy::too_many_arguments)]
fn run_cell<P, F>(
    graph: &EdgeList,
    make_program: F,
    streaming: bool,
    parallel: bool,
    pipelined: bool,
    stream_scan: bool,
    vector_expr: bool,
    cap: u64,
) -> CellResult
where
    P: vertexica_common::VertexProgram + 'static,
    F: Fn() -> P,
{
    let config = VertexicaConfig::default()
        .with_workers(4)
        .with_partitions(16)
        .with_streaming(streaming)
        .with_parallel_apply(parallel)
        .with_pipelined(pipelined)
        .with_streaming_scan(stream_scan)
        .with_vectorized_expr(vector_expr)
        .with_max_supersteps(cap);
    let session = session_for(graph);
    let stats = run_program(&session, Arc::new(make_program()), &config).unwrap();
    // The segment-parallel cells must actually have fanned the apply out,
    // and the serial cells must not; overlap can only come from the
    // pipelined streaming dataflow.
    for s in &stats.per_superstep {
        if parallel {
            assert_eq!(s.apply_parallelism, 4, "parallel apply should span num_workers buckets");
        } else {
            assert_eq!(s.apply_parallelism, 1, "serial apply must not fan out");
        }
        if !(streaming && pipelined) {
            assert_eq!(s.overlap_secs, 0.0, "phased pipelines must report zero overlap");
        }
        if !streaming {
            // The materialized pipeline holds the whole input by definition.
            assert_eq!(s.peak_resident_scan_bytes, s.input_bytes);
        } else if s.input_bytes > 0 {
            assert!(s.peak_resident_scan_bytes > 0, "streaming cells must report the scan gauge");
        }
    }
    CellResult {
        vertex_bits: vertex_table_bits(&session),
        message_bits: message_table_bits(&session),
        total_messages: stats.total_messages,
        per_superstep: stats
            .per_superstep
            .iter()
            .map(|s| (s.messages, s.vertex_changes, s.replaced))
            .collect(),
    }
}

/// The config-matrix equivalence harness: every vertex-centric algorithm,
/// run under all thirty-two {streaming} × {parallel apply} × {pipelined} ×
/// {streaming scan} × {vectorized expr} cells, must produce
/// **bitwise-identical** vertex tables, message tables and message counts.
/// Two runs stop mid-algorithm (superstep cap) so the message table is
/// non-empty and mid-flight state is compared too.
#[test]
fn config_matrix_streaming_x_parallel_apply_x_pipelined_x_scan_x_expr_is_bitwise_identical() {
    use vertexica_algorithms::vc::{LabelPropagation, RandomWalkWithRestart};
    let graph =
        rmat_graph(&RmatConfig { scale: 6, num_edges: 400, seed: 17, ..Default::default() });
    let undirected = graph.undirected();

    // (name, cap, runner): each runner executes one cell for its algorithm.
    type Cell = Box<dyn Fn(bool, bool, bool, bool, bool) -> CellResult>;
    let algorithms: Vec<(&str, Cell)> = vec![
        ("pagerank", {
            let g = graph.clone();
            Box::new(move |s, p, l, c, v| {
                run_cell(&g, || PageRank::new(6, 0.85), s, p, l, c, v, 10_000)
            })
        }),
        ("pagerank-midflight", {
            let g = graph.clone();
            Box::new(move |s, p, l, c, v| run_cell(&g, || PageRank::new(6, 0.85), s, p, l, c, v, 3))
        }),
        ("sssp", {
            let g = graph.clone();
            Box::new(move |s, p, l, c, v| run_cell(&g, || Sssp::new(0), s, p, l, c, v, 10_000))
        }),
        ("connected-components", {
            let g = undirected.clone();
            Box::new(move |s, p, l, c, v| {
                run_cell(&g, || ConnectedComponents, s, p, l, c, v, 10_000)
            })
        }),
        ("cc-midflight", {
            let g = undirected.clone();
            Box::new(move |s, p, l, c, v| run_cell(&g, || ConnectedComponents, s, p, l, c, v, 2))
        }),
        ("random-walk-with-restart", {
            let g = graph.clone();
            Box::new(move |s, p, l, c, v| {
                run_cell(&g, || RandomWalkWithRestart::new(0, 8), s, p, l, c, v, 10_000)
            })
        }),
        ("label-propagation", {
            let g = undirected.clone();
            Box::new(move |s, p, l, c, v| {
                run_cell(&g, || LabelPropagation::new(6), s, p, l, c, v, 10_000)
            })
        }),
    ];

    for (name, cell) in &algorithms {
        let reference = cell(true, true, true, true, true);
        assert!(!reference.vertex_bits.is_empty(), "{name}: empty vertex table");
        for bits in 0..31u8 {
            // The remaining thirty-one cells of the hypercube.
            let (streaming, parallel, pipelined, stream_scan, vector_expr) =
                (bits & 16 != 0, bits & 8 != 0, bits & 4 != 0, bits & 2 != 0, bits & 1 != 0);
            let other = cell(streaming, parallel, pipelined, stream_scan, vector_expr);
            assert_eq!(
                reference, other,
                "{name}: cell (streaming={streaming}, parallel_apply={parallel}, \
                 pipelined={pipelined}, streaming_scan={stream_scan}, \
                 vectorized_expr={vector_expr}) diverged from the all-true reference"
            );
        }
    }
}

/// The out-of-core cell: run `program` on a durable database under a
/// pathological 1-byte memory budget — every checkpointed segment evicts and
/// every scan pull faults its segment back in from the `.vxtb` spill image —
/// and require vertex and message tables **bitwise-identical** to the
/// unbounded durable run.
fn assert_tiny_budget_matches_unbounded<P, F>(graph: &EdgeList, tag: &str, make_program: F)
where
    P: vertexica_common::VertexProgram + 'static,
    F: Fn() -> P,
{
    let run = |budget: Option<usize>| {
        let dir = unique_durable_dir(tag);
        let db = Arc::new(Database::open(&dir).expect("open durable"));
        // Pin the pool (the VERTEXICA_MEMORY_BUDGET CI mode would otherwise
        // budget the "unbounded" reference too).
        db.catalog().buffer_pool().set_budget(budget);
        let session = GraphSession::create(db.clone(), "g").expect("create");
        session.load_edges(graph).expect("load");
        let config = VertexicaConfig::default()
            .with_workers(4)
            .with_partitions(16)
            .with_durable(true)
            .with_memory_budget(budget);
        let stats = run_program(&session, Arc::new(make_program()), &config).unwrap();
        let out = (vertex_table_bits(&session), message_table_bits(&session), stats);
        drop(session);
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
        out
    };
    let (v_unbounded, m_unbounded, unbounded_stats) = run(None);
    assert_eq!(
        unbounded_stats.per_superstep.iter().map(|s| s.evictions).sum::<u64>(),
        0,
        "{tag}: the unbounded run must never evict"
    );
    let (v_tiny, m_tiny, stats) = run(Some(1));
    assert_eq!(v_tiny, v_unbounded, "{tag}: vertex table diverged under the 1-byte budget");
    assert_eq!(m_tiny, m_unbounded, "{tag}: message table diverged under the 1-byte budget");
    let evictions: u64 = stats.per_superstep.iter().map(|s| s.evictions).sum();
    let reloads: u64 = stats.per_superstep.iter().map(|s| s.reloads).sum();
    assert!(evictions > 0, "{tag}: the 1-byte budget must force evictions");
    assert!(reloads > 0, "{tag}: scans under the 1-byte budget must reload segments");
}

#[test]
fn tiny_memory_budget_is_bitwise_identical_on_every_algorithm() {
    use vertexica_algorithms::vc::{LabelPropagation, RandomWalkWithRestart};
    let graph =
        rmat_graph(&RmatConfig { scale: 6, num_edges: 400, seed: 19, ..Default::default() });
    let undirected = graph.undirected();
    assert_tiny_budget_matches_unbounded(&graph, "oc-pagerank", || PageRank::new(6, 0.85));
    assert_tiny_budget_matches_unbounded(&graph, "oc-sssp", || Sssp::new(0));
    assert_tiny_budget_matches_unbounded(&undirected, "oc-cc", || ConnectedComponents);
    assert_tiny_budget_matches_unbounded(&graph, "oc-rwr", || RandomWalkWithRestart::new(0, 8));
    assert_tiny_budget_matches_unbounded(&undirected, "oc-lp", || LabelPropagation::new(6));
}

/// Loads `graph` with the edge table split across many small ROS segments
/// (one per 400-edge append) instead of `load_edges`'s 65 536-row chunks.
/// The segment is the pool's eviction granule, so an out-of-core budget is
/// only meaningful when it sits above the largest single segment — this
/// loader makes that true for budgets far below the table's total bytes.
fn load_edges_finely_segmented(session: &GraphSession, graph: &EdgeList) {
    use vertexica::session::edge_schema;
    use vertexica::storage::{ColumnBuilder, DataType, RecordBatch};
    let base = EdgeList::new(graph.num_vertices, vec![]);
    session.load_edges(&base).expect("load vertices");
    for chunk in graph.edges.chunks(400) {
        let mut src = ColumnBuilder::new(DataType::Int);
        let mut dst = ColumnBuilder::new(DataType::Int);
        let mut weight = ColumnBuilder::new(DataType::Float);
        let mut created = ColumnBuilder::new(DataType::Int);
        let mut etype = ColumnBuilder::new(DataType::Str);
        for e in chunk {
            src.push_int(e.src as i64);
            dst.push_int(e.dst as i64);
            weight.push_float(e.weight);
            created.push_int(0);
            etype.push_null();
        }
        let batch = RecordBatch::new(
            edge_schema(),
            vec![src.finish(), dst.finish(), weight.finish(), created.finish(), etype.finish()],
        )
        .unwrap();
        session.db().append_batches(&session.edge_table(), &[batch]).unwrap();
    }
}

/// The headline out-of-core acceptance: a graph whose checkpointed segment
/// bytes **exceed** the memory budget still completes PageRank — with
/// genuine evictions, per-superstep peak residency at or below the budget,
/// and results bitwise-identical to the unbounded run.
#[test]
fn over_budget_pagerank_completes_with_bounded_residency() {
    let graph = erdos_renyi(400, 3200, 9);

    // Unbounded durable reference.
    let ref_dir = unique_durable_dir("oc-ref");
    let ref_db = Arc::new(Database::open(&ref_dir).expect("open durable"));
    ref_db.catalog().buffer_pool().set_budget(None);
    let ref_session = GraphSession::create(ref_db.clone(), "g").expect("create");
    load_edges_finely_segmented(&ref_session, &graph);
    run_program(
        &ref_session,
        Arc::new(PageRank::new(6, 0.85)),
        &VertexicaConfig::default().with_durable(true).with_memory_budget(None),
    )
    .unwrap();
    let ref_vertex = vertex_table_bits(&ref_session);

    // Budgeted run: measure the post-load checkpointed footprint, then cap
    // the pool well below it.
    let dir = unique_durable_dir("oc-budget");
    let db = Arc::new(Database::open(&dir).expect("open durable"));
    db.catalog().buffer_pool().set_budget(None);
    let session = GraphSession::create(db.clone(), "g").expect("create");
    load_edges_finely_segmented(&session, &graph);
    db.checkpoint().unwrap();
    let total = db.catalog().buffer_pool().stats().resident_bytes as usize;
    assert!(total > 0, "graph load must leave resident ROS segments");
    let budget = total * 3 / 5;
    let config = VertexicaConfig::default().with_durable(true).with_memory_budget(Some(budget));
    let stats = run_program(&session, Arc::new(PageRank::new(6, 0.85)), &config).unwrap();

    let evictions: u64 = stats.per_superstep.iter().map(|s| s.evictions).sum();
    assert!(evictions > 0, "a below-footprint budget must force evictions");
    for s in &stats.per_superstep {
        assert!(
            s.resident_bytes <= budget as u64,
            "superstep {}: peak residency {} exceeds the {budget}-byte budget",
            s.superstep,
            s.resident_bytes
        );
    }
    assert_eq!(
        vertex_table_bits(&session),
        ref_vertex,
        "budgeted PageRank diverged from the unbounded run"
    );

    drop(session);
    drop(db);
    drop(ref_session);
    drop(ref_db);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&ref_dir).ok();
}

/// Sealed join partitions: with the join-mode row plan, the 3-way-join
/// input's partitions seal the moment their last planned row lands, so the
/// pipelined dataflow dispatches compute early — the pre-cursor
/// implementation kept every join partition open until end-of-stream
/// (`early_dispatches` was structurally 0 in join mode).
#[test]
fn join_mode_seals_partitions_and_dispatches_early() {
    let graph = erdos_renyi(300, 2400, 13);
    let config = VertexicaConfig::default()
        .with_workers(4)
        .with_partitions(8)
        .with_pipelined(true)
        .with_streaming_scan(true)
        .with_input_mode(InputMode::ThreeWayJoin)
        .with_stream_chunk_rows(128);
    let session = session_for(&graph);
    let stats = run_program(&session, Arc::new(PageRank::new(4, 0.85)), &config).unwrap();
    let early: usize = stats.per_superstep.iter().map(|s| s.early_dispatches).sum();
    assert!(
        early > 0,
        "join-mode partitions should seal from the prescan plan: {:?}",
        stats.per_superstep.iter().map(|s| s.early_dispatches).collect::<Vec<_>>()
    );

    // And the sealed-join run still computes the right answer.
    let expected = reference::pagerank(&graph, 4, 0.85);
    let vx: Vec<(VertexId, f64)> = session.vertex_values().unwrap();
    for (id, rank) in &vx {
        assert!((rank - expected[*id as usize]).abs() < 1e-9, "vertex {id}");
    }
}

/// The pipelined dataflow must *actually* overlap: on a dense superstep
/// with many small chunks, at least one worker-UDF compute task has to
/// start (and run) while assemble is still streaming — and the phased
/// pipeline on the same workload must report exactly zero overlap.
#[test]
fn dense_supersteps_report_genuine_compute_assemble_overlap() {
    let graph = erdos_renyi(1200, 9600, 21);
    let config = VertexicaConfig::default()
        .with_workers(4)
        .with_partitions(8)
        .with_parallel_apply(true)
        .with_pipelined(true)
        // Small chunks give the dispatcher real scatter granularity, so
        // partitions seal (and compute) while later chunks still stream.
        .with_stream_chunk_rows(128);
    let session = session_for(&graph);
    let stats = run_program(&session, Arc::new(PageRank::new(4, 0.85)), &config).unwrap();
    assert!(stats.supersteps >= 3);
    let total_overlap: f64 = stats.per_superstep.iter().map(|s| s.overlap_secs).sum();
    assert!(
        total_overlap > 0.0,
        "pipelined dense supersteps should start compute before assemble finishes: {:?}",
        stats.per_superstep.iter().map(|s| s.overlap_secs).collect::<Vec<_>>()
    );

    // Same workload, phased pipeline: zero overlap by construction.
    let session = session_for(&graph);
    let stats = run_program(
        &session,
        Arc::new(PageRank::new(4, 0.85)),
        &config.clone().with_pipelined(false),
    )
    .unwrap();
    for s in &stats.per_superstep {
        assert_eq!(s.overlap_secs, 0.0);
    }
}

#[test]
fn pool_metrics_grow_monotonically_across_supersteps() {
    let graph = erdos_renyi(200, 1200, 3);
    let session = session_for(&graph);
    let pool = session.db().runtime().clone();
    let before = pool.metrics();
    let stats = run_program(
        &session,
        Arc::new(PageRank::new(5, 0.85)),
        &VertexicaConfig::default().with_workers(4).with_partitions(32),
    )
    .unwrap();
    let after = pool.metrics();
    // The run's per-superstep deltas must add up to no more than the pool's
    // monotonic counter growth (other phases may add to the pool totals).
    assert!(after.tasks_executed > before.tasks_executed);
    assert!(after.queue_wait_secs >= before.queue_wait_secs);
    assert!(after.tasks_stolen >= before.tasks_stolen);
    let summed_wait: f64 = stats.per_superstep.iter().map(|s| s.queue_wait_secs).sum();
    let summed_steals: u64 = stats.per_superstep.iter().map(|s| s.steals).sum();
    assert!(summed_wait <= after.queue_wait_secs - before.queue_wait_secs + 1e-9);
    assert!(summed_steals <= after.tasks_stolen - before.tasks_stolen);
}

// ---------------------------------------------------------------------------
// Sharded execution: {1 shard} vs {2, 4 shards} must be bitwise-identical.
// ---------------------------------------------------------------------------

use vertexica::shard::{
    repair_if_needed, resume_sharded, run_sharded, ShardedDatabase, ShardedGraphSession,
};

/// A sharded session over `graph`; durable (one WAL directory per shard)
/// when the durability CI mode is active, in-memory otherwise — mirroring
/// [`session_for`].
fn sharded_session_for(graph: &EdgeList, shards: usize) -> ShardedGraphSession {
    let db = if vertexica::config::durable_default() {
        ShardedDatabase::create(unique_durable_dir("shard"), shards).expect("create durable shards")
    } else {
        ShardedDatabase::new(shards)
    };
    let ss = ShardedGraphSession::create(db, "g").expect("create");
    ss.load_edges(graph).expect("load");
    ss
}

/// The merged vertex table across every shard, bit for bit, canonicalized —
/// comparable 1:1 against a single-database [`vertex_table_bits`].
fn sharded_vertex_bits(ss: &ShardedGraphSession) -> Vec<(i64, Option<Vec<u8>>, Option<bool>)> {
    let mut rows = Vec::new();
    for sess in ss.shard_sessions() {
        rows.extend(vertex_table_bits(sess));
    }
    rows.sort();
    rows
}

/// The merged message table across every shard (each shard stores the
/// messages its vertices *produced*), canonicalized.
fn sharded_message_bits(ss: &ShardedGraphSession) -> Vec<(i64, Option<i64>, Option<Vec<u8>>)> {
    let mut rows = Vec::new();
    for sess in ss.shard_sessions() {
        rows.extend(message_table_bits(sess));
    }
    rows.sort();
    rows
}

/// Cell config for the shard matrix. The combiner is off on *both* sides
/// (the sharded coordinator coerces it off — it groups f64 folds by
/// producing shard) and the replace threshold is pinned to the value the
/// durable sharded coercion uses, so the 1-shard reference runs the exact
/// same apply arm. Small stream chunks give the exchange real scatter
/// granularity, so cross-shard sealing (early dispatch) is observable.
fn shard_cell_config(cap: u64) -> VertexicaConfig {
    VertexicaConfig::default()
        .with_workers(4)
        .with_partitions(16)
        .with_combiner(false)
        .with_replace_threshold(0.0)
        .with_stream_chunk_rows(128)
        .with_max_supersteps(cap)
}

fn run_shard_cell<P, F>(
    graph: &EdgeList,
    make_program: F,
    shards: usize,
    cap: u64,
) -> (CellResult, vertexica::RunStats)
where
    P: vertexica_common::VertexProgram + 'static,
    F: Fn() -> P,
{
    let ss = sharded_session_for(graph, shards);
    let stats = run_sharded(&ss, Arc::new(make_program()), &shard_cell_config(cap)).unwrap();
    let cell = CellResult {
        vertex_bits: sharded_vertex_bits(&ss),
        message_bits: sharded_message_bits(&ss),
        total_messages: stats.total_messages,
        per_superstep: stats
            .per_superstep
            .iter()
            .map(|s| (s.messages, s.vertex_changes, s.replaced))
            .collect(),
    };
    (cell, stats)
}

/// The sharded equivalence matrix: every vertex-centric algorithm —
/// including the mid-flight (superstep-capped) cells whose message tables
/// are non-empty — run on 1, 2 and 4 shards must produce bitwise-identical
/// merged vertex tables, merged message tables, message counts and
/// per-superstep outcomes. The N ≥ 2 cells must also show genuine
/// cross-shard traffic (`remote_messages`, `routed_bytes`) and cross-shard
/// sealing (`early_dispatches`: partitions dispatched before end-of-stream
/// because the summed prescan counts said their last row had landed).
#[test]
fn sharded_execution_is_bitwise_identical_for_every_algorithm() {
    use vertexica_algorithms::vc::{LabelPropagation, RandomWalkWithRestart};
    let graph =
        rmat_graph(&RmatConfig { scale: 6, num_edges: 400, seed: 23, ..Default::default() });
    let undirected = graph.undirected();

    type ShardCell = Box<dyn Fn(usize) -> (CellResult, vertexica::RunStats)>;
    let algorithms: Vec<(&str, ShardCell)> = vec![
        ("pagerank", {
            let g = graph.clone();
            Box::new(move |n| run_shard_cell(&g, || PageRank::new(6, 0.85), n, 10_000))
        }),
        ("pagerank-midflight", {
            let g = graph.clone();
            Box::new(move |n| run_shard_cell(&g, || PageRank::new(6, 0.85), n, 3))
        }),
        ("sssp", {
            let g = graph.clone();
            Box::new(move |n| run_shard_cell(&g, || Sssp::new(0), n, 10_000))
        }),
        ("connected-components", {
            let g = undirected.clone();
            Box::new(move |n| run_shard_cell(&g, || ConnectedComponents, n, 10_000))
        }),
        ("cc-midflight", {
            let g = undirected.clone();
            Box::new(move |n| run_shard_cell(&g, || ConnectedComponents, n, 2))
        }),
        ("random-walk-with-restart", {
            let g = graph.clone();
            Box::new(move |n| run_shard_cell(&g, || RandomWalkWithRestart::new(0, 8), n, 10_000))
        }),
        ("label-propagation", {
            let g = undirected.clone();
            Box::new(move |n| run_shard_cell(&g, || LabelPropagation::new(6), n, 10_000))
        }),
    ];

    // The VERTEXICA_SHARDS CI mode widens the matrix to its default count.
    let mut shard_counts = vec![2usize, 4];
    let env_default = vertexica::config::shards_default();
    if env_default > 1 && !shard_counts.contains(&env_default) {
        shard_counts.push(env_default);
    }

    for (name, cell) in &algorithms {
        let (reference, ref_stats) = cell(1);
        assert!(!reference.vertex_bits.is_empty(), "{name}: empty vertex table");
        // A 1-shard run never routes.
        assert!(
            ref_stats.per_superstep.iter().all(|s| s.remote_messages == 0 && s.routed_bytes == 0),
            "{name}: the 1-shard cell must not report cross-shard traffic"
        );
        for &n in &shard_counts {
            let (other, stats) = cell(n);
            assert_eq!(
                reference, other,
                "{name}: {n}-shard run diverged from the 1-shard reference"
            );
            let remote: u64 = stats.per_superstep.iter().map(|s| s.remote_messages).sum();
            let routed: u64 = stats.per_superstep.iter().map(|s| s.routed_bytes).sum();
            assert!(remote > 0, "{name}: {n} shards exchanged no rows — not actually sharded");
            assert!(routed > 0, "{name}: {n} shards routed rows but tracked no bytes");
            assert!(
                stats.per_superstep.iter().all(|s| s.shard_skew >= 1.0),
                "{name}: shard skew is a max/mean ratio and can never be below 1"
            );
            if *name == "pagerank" {
                let early: usize = stats.per_superstep.iter().map(|s| s.early_dispatches).sum();
                assert!(
                    early > 0,
                    "{name}: {n} shards: no partition sealed from the summed prescan counts \
                     before end-of-stream"
                );
            }
        }
    }
}

/// Mid-flight resume across shards: a 2-shard run checkpointed every
/// superstep and capped at 3 supersteps, resumed from the per-shard
/// checkpoints to completion, must land bitwise-identical to the
/// uninterrupted 1-shard reference.
#[test]
fn sharded_checkpoint_resume_is_bitwise_identical() {
    let graph =
        rmat_graph(&RmatConfig { scale: 6, num_edges: 400, seed: 29, ..Default::default() });
    let (reference, _) = run_shard_cell(&graph, || PageRank::new(6, 0.85), 1, 10_000);

    let ckpt = unique_durable_dir("shard_ckpt");
    let ss = sharded_session_for(&graph, 2);
    run_sharded(
        &ss,
        Arc::new(PageRank::new(6, 0.85)),
        &shard_cell_config(3).with_checkpointing(1, &ckpt),
    )
    .unwrap();
    let resumed = resume_sharded(
        &ss,
        Arc::new(PageRank::new(6, 0.85)),
        &shard_cell_config(10_000).with_checkpointing(1, &ckpt),
    )
    .unwrap();
    assert!(resumed.supersteps > 0, "the capped run must have left supersteps to resume");
    assert_eq!(
        sharded_vertex_bits(&ss),
        reference.vertex_bits,
        "resumed sharded vertex table diverged from the 1-shard reference"
    );
    assert_eq!(
        sharded_message_bits(&ss),
        reference.message_bits,
        "resumed sharded message table diverged from the 1-shard reference"
    );
    std::fs::remove_dir_all(&ckpt).ok();
}

/// Loads `graph` into a sharded session with the edge table split across
/// many small ROS segments per shard (the per-shard analogue of
/// [`load_edges_finely_segmented`]), respecting the ownership hash.
fn load_edges_finely_segmented_sharded(ss: &ShardedGraphSession, graph: &EdgeList) {
    use vertexica::session::edge_schema;
    use vertexica::storage::partition::int_key_partition;
    use vertexica::storage::{ColumnBuilder, DataType, RecordBatch};
    let n = ss.num_shards();
    let base = EdgeList::new(graph.num_vertices, vec![]);
    ss.load_edges(&base).expect("load vertices");
    for chunk in graph.edges.chunks(400) {
        for (k, sess) in ss.shard_sessions().iter().enumerate() {
            let mut src = ColumnBuilder::new(DataType::Int);
            let mut dst = ColumnBuilder::new(DataType::Int);
            let mut weight = ColumnBuilder::new(DataType::Float);
            let mut created = ColumnBuilder::new(DataType::Int);
            let mut etype = ColumnBuilder::new(DataType::Str);
            let mut rows = 0;
            for e in chunk.iter().filter(|e| int_key_partition(e.src as i64, n) == k) {
                src.push_int(e.src as i64);
                dst.push_int(e.dst as i64);
                weight.push_float(e.weight);
                created.push_int(0);
                etype.push_null();
                rows += 1;
            }
            if rows == 0 {
                continue;
            }
            let batch = RecordBatch::new(
                edge_schema(),
                vec![src.finish(), dst.finish(), weight.finish(), created.finish(), etype.finish()],
            )
            .unwrap();
            sess.db().append_batches(&sess.edge_table(), &[batch]).unwrap();
        }
    }
}

/// The divided-budget regression: a global `memory_budget_bytes` set below
/// the sharded graph's checkpointed footprint is split across the shards,
/// and the **sum** of per-shard peak residency must stay within the global
/// budget every superstep — N shards must not multiply the paper's memory
/// envelope by N.
#[test]
fn sharded_memory_budget_bounds_summed_residency() {
    let graph = erdos_renyi(400, 3200, 9);
    let dir = unique_durable_dir("shard_budget");
    let db = ShardedDatabase::create(&dir, 2).expect("create durable shards");
    // Pin the pools while measuring (the VERTEXICA_MEMORY_BUDGET CI mode
    // would otherwise shrink the measured footprint).
    for d in db.shards() {
        d.catalog().buffer_pool().set_budget(None);
    }
    let ss = ShardedGraphSession::create(db.clone(), "g").expect("create");
    load_edges_finely_segmented_sharded(&ss, &graph);
    ss.checkpoint().unwrap();
    let total: u64 =
        db.shards().iter().map(|d| d.catalog().buffer_pool().stats().resident_bytes).sum();
    assert!(total > 0, "sharded load must leave resident ROS segments");
    // 3/4 of the checkpointed footprint: each shard's slice (3/8) sits well
    // below its ~1/2 share, forcing evictions, while the global bound keeps
    // headroom for the superstep's freshly committed (not yet spillable,
    // hence not yet evictable) message segments — the same slack the
    // single-database out-of-core cell gets from its undivided budget.
    let budget = (total as usize) * 3 / 4;

    let config = shard_cell_config(10_000).with_memory_budget(Some(budget));
    let stats = run_sharded(&ss, Arc::new(PageRank::new(6, 0.85)), &config).unwrap();
    let evictions: u64 = stats.per_superstep.iter().map(|s| s.evictions).sum();
    assert!(evictions > 0, "a below-footprint global budget must force evictions");
    for s in &stats.per_superstep {
        assert!(
            s.resident_bytes <= budget as u64,
            "superstep {}: summed per-shard peak residency {} exceeds the global \
             {budget}-byte budget",
            s.superstep,
            s.resident_bytes
        );
    }
    drop(ss);
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// Never halts; every superstep stamps itself into every vertex — the crash
/// workload (same as the kill -9 harness: the superstep number is the
/// recovery oracle).
struct SuperstepStamp;

impl vertexica_common::VertexProgram for SuperstepStamp {
    type Value = u64;
    type Message = u64;

    fn initial_value(&self, _id: VertexId, _init: &vertexica_common::pregel::InitContext) -> u64 {
        0
    }

    fn compute(
        &self,
        ctx: &mut dyn vertexica_common::pregel::VertexContext<u64, u64>,
        _messages: &[u64],
    ) {
        use vertexica_common::pregel::VertexContextExt;
        let step = ctx.superstep();
        ctx.set_value(step);
        ctx.send_to_all_neighbors(step);
    }

    fn name(&self) -> &'static str {
        "superstep_stamp"
    }
}

fn stamp_ring() -> EdgeList {
    EdgeList::from_pairs((0..24u64).map(|v| (v, (v + 1) % 24)))
}

/// Deterministic crash injection across the shard boundary: shard 1's WAL
/// sink is armed with a byte budget that exhausts during a mid-run apply
/// commit, so shard 0 commits superstep `s` while shard 1 dies inside its
/// own commit of `s` — the exact torn boundary the per-shard stamps exist
/// for. Reopening recovers shard 1 to `s − 1` (stamp spread exactly 1), and
/// [`repair_if_needed`] re-runs the missing superstep on shard 1 from shard
/// 0's retained message input, landing **bitwise-identical** to an
/// uninterrupted run capped at the same boundary. Repair is idempotent.
#[test]
fn sharded_crash_injection_repairs_to_the_common_boundary() {
    let graph = stamp_ring();
    let cap = 12u64;
    let config =
        VertexicaConfig::default().with_workers(2).with_partitions(8).with_max_supersteps(cap);

    // Measurement run: how many durable bytes does shard 1 write in total,
    // and how many before the superstep loop starts? (Byte streams are
    // deterministic — same graph, same program, same config.)
    let dir_a = unique_durable_dir("shard_crash_ref");
    let pre_bytes;
    let total_bytes;
    {
        let db = ShardedDatabase::create(&dir_a, 2).expect("create");
        let ss = ShardedGraphSession::create(db.clone(), "g").expect("create");
        ss.load_edges(&graph).expect("load");
        let d = db.shard(1).durability_stats().unwrap();
        pre_bytes = d.wal_bytes + d.flush_bytes;
        run_sharded(&ss, Arc::new(SuperstepStamp), &config).unwrap();
        let d = db.shard(1).durability_stats().unwrap();
        total_bytes = d.wal_bytes + d.flush_bytes;
    }
    std::fs::remove_dir_all(&dir_a).ok();
    assert!(total_bytes > pre_bytes, "the stamp run must write durable bytes");

    // Crash run: same prefix of durable writes, but shard 1's budget
    // exhausts roughly halfway through the superstep commits.
    let dir = unique_durable_dir("shard_crash");
    {
        let db = ShardedDatabase::create(&dir, 2).expect("create");
        let ss = ShardedGraphSession::create(db.clone(), "g").expect("create");
        ss.load_edges(&graph).expect("load");
        let d = db.shard(1).durability_stats().unwrap();
        assert_eq!(d.wal_bytes + d.flush_bytes, pre_bytes, "durable prefix must be deterministic");
        db.shard(1)
            .catalog()
            .wal_sink()
            .expect("durable shard has a WAL sink")
            .set_crash_budget(Some((total_bytes - pre_bytes) / 2));
        let err = run_sharded(&ss, Arc::new(SuperstepStamp), &config);
        assert!(err.is_err(), "an injected WAL crash must fail the sharded run");
    }

    // Recovery: every shard replays its own WAL; the stamps must sit on
    // adjacent boundaries with shard 0 ahead (it committed the superstep
    // shard 1 died inside).
    let db = ShardedDatabase::open(&dir).expect("recovery must succeed");
    let ss = ShardedGraphSession::open(db.clone(), "g").expect("stamp spread must be within 1");
    let stamps = ss.stamps().unwrap();
    let s0 = stamps[0].expect("shard 0 is stamped");
    let s1 = stamps[1].expect("shard 1 is stamped");
    assert_eq!(s0, s1 + 1, "shard 1 died mid-commit while shard 0 committed: stamps {stamps:?}");

    let repaired = repair_if_needed(&ss, Arc::new(SuperstepStamp), &config).unwrap();
    assert_eq!(repaired, Some(s0 as u64), "repair must replay the torn superstep");
    let stamps = ss.stamps().unwrap();
    assert!(
        stamps.iter().all(|s| *s == Some(s0)),
        "all shards must land on the common boundary: {stamps:?}"
    );
    assert_eq!(
        repair_if_needed(&ss, Arc::new(SuperstepStamp), &config).unwrap(),
        None,
        "repair must be idempotent"
    );

    // Bitwise: the repaired database equals an uninterrupted run capped at
    // the same boundary.
    let dir_c = unique_durable_dir("shard_crash_cap");
    let db_c = ShardedDatabase::create(&dir_c, 2).expect("create");
    let ss_c = ShardedGraphSession::create(db_c.clone(), "g").expect("create");
    ss_c.load_edges(&graph).expect("load");
    run_sharded(
        &ss_c,
        Arc::new(SuperstepStamp),
        &config.clone().with_max_supersteps(s0 as u64 + 1),
    )
    .unwrap();
    assert_eq!(
        sharded_vertex_bits(&ss),
        sharded_vertex_bits(&ss_c),
        "repaired vertex tables diverged from the uninterrupted capped run"
    );
    assert_eq!(
        sharded_message_bits(&ss),
        sharded_message_bits(&ss_c),
        "repaired message tables diverged from the uninterrupted capped run"
    );
    drop(ss);
    drop(db);
    drop(ss_c);
    drop(db_c);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir_c).ok();
}
