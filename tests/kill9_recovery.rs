//! The headline durability proof: a **real `kill -9`** mid-superstep.
//!
//! The parent test re-invokes this test binary as a child process (selecting
//! [`crash_child_worker`] via `--exact`, armed through the
//! `VERTEXICA_CRASH_CHILD_DIR` environment variable). The child opens a
//! durable database, loads a small graph, and runs an **infinite** vertex
//! program — every vertex stamps its value with the current superstep and
//! never halts, so every superstep commits a full vertex+message replacement
//! through the grouped WAL commit. The parent waits until the child has
//! provably committed supersteps, SIGKILLs it at an arbitrary moment, and
//! recovers the directory.
//!
//! Recovery invariants (each checked deterministically, whatever instant the
//! kill landed on):
//!
//! * `Database::open` succeeds — no torn state is ever fatal;
//! * the vertex table holds exactly the graph's vertices;
//! * **every vertex carries the same superstep stamp** — a torn multi-table
//!   or multi-segment apply would leave mixed stamps;
//! * reopening twice yields bitwise-identical physical images (recovery is
//!   deterministic).

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use vertexica::config::VertexicaConfig;
use vertexica::coordinator::run_program;
use vertexica::session::GraphSession;
use vertexica_common::graph::EdgeList;
use vertexica_common::pregel::{InitContext, VertexContext, VertexContextExt, VertexProgram};
use vertexica_common::VertexId;
use vertexica_sql::Database;
use vertexica_storage::persist;

const NUM_VERTICES: u64 = 8;
const GRAPH_NAME: &str = "kill9";

/// Never halts: every superstep, every vertex stamps the superstep number
/// into its value and messages all neighbors, so every superstep replaces
/// the full vertex table (replace_threshold 0 forces the atomic grouped
/// commit path) with a uniformly-stamped generation.
struct SuperstepStamp;

impl VertexProgram for SuperstepStamp {
    type Value = u64;
    type Message = u64;

    fn initial_value(&self, _id: VertexId, _init: &InitContext) -> u64 {
        0
    }

    fn compute(&self, ctx: &mut dyn VertexContext<u64, u64>, _messages: &[u64]) {
        let step = ctx.superstep();
        ctx.set_value(step);
        ctx.send_to_all_neighbors(step);
        // No vote_to_halt: run until killed.
    }

    fn name(&self) -> &'static str {
        "superstep_stamp"
    }
}

fn ring() -> EdgeList {
    let pairs: Vec<(u64, u64)> = (0..NUM_VERTICES).map(|v| (v, (v + 1) % NUM_VERTICES)).collect();
    EdgeList::from_pairs(pairs)
}

/// The child body. A no-op green test in normal runs; armed via env by the
/// parent, it never returns — it computes until SIGKILLed.
#[test]
fn crash_child_worker() {
    let Ok(dir) = std::env::var("VERTEXICA_CRASH_CHILD_DIR") else { return };
    let db = Arc::new(Database::open(&dir).expect("child: open durable db"));
    let session = GraphSession::create(db.clone(), GRAPH_NAME).expect("child: create session");
    session.load_edges(&ring()).expect("child: load edges");
    db.checkpoint().expect("child: baseline checkpoint");
    // Tell the parent the baseline is durable; everything after this point
    // must recover to a uniformly-stamped superstep generation.
    std::fs::write(Path::new(&dir).join("READY"), b"ready").expect("child: ready marker");
    let config = VertexicaConfig::default()
        .with_workers(2)
        .with_partitions(4)
        .with_replace_threshold(0.0)
        .with_durable(true)
        .with_max_supersteps(u64::MAX);
    // Never returns (the program never halts); the parent kills us.
    run_program(&session, Arc::new(SuperstepStamp), &config).expect("child: run");
    unreachable!("SuperstepStamp never halts");
}

fn catalog_image(catalog: &vertexica_storage::Catalog) -> Vec<(String, Vec<u8>)> {
    let mut names = catalog.list();
    names.sort();
    names
        .into_iter()
        .map(|n| {
            let t = catalog.get(&n).unwrap();
            let bytes = persist::table_to_bytes_physical(&t.read()).unwrap();
            (n, bytes)
        })
        .collect()
}

/// Highest allocated table-file id in the directory. File ids are allocated
/// monotonically, and every grouped superstep commit flushes fresh table
/// images — so growth here proves committed supersteps.
fn max_file_id(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.strip_prefix('t')?.strip_suffix(".vxtb")?.parse::<u64>().ok()
        })
        .max()
        .unwrap_or(0)
}

#[test]
fn kill9_mid_superstep_recovers_to_a_committed_superstep() {
    let dir = std::env::temp_dir().join(format!(
        "vx_kill9_{}_{:x}",
        std::process::id(),
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
            as u64
    ));
    std::fs::create_dir_all(&dir).unwrap();

    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(&exe)
        .args(["--exact", "crash_child_worker", "--nocapture", "--test-threads=1"])
        .env("VERTEXICA_CRASH_CHILD_DIR", &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child");

    // Wait for the durable baseline, then for WAL growth proving committed
    // supersteps are in flight.
    let deadline = Instant::now() + Duration::from_secs(60);
    let ready = dir.join("READY");
    while !ready.exists() {
        assert!(Instant::now() < deadline, "child never became ready");
        assert!(child.try_wait().unwrap().is_none(), "child exited prematurely");
        std::thread::sleep(Duration::from_millis(10));
    }
    let baseline = max_file_id(&dir);
    while max_file_id(&dir) < baseline + 8 {
        assert!(Instant::now() < deadline, "child never committed supersteps");
        assert!(child.try_wait().unwrap().is_none(), "child exited prematurely");
        std::thread::sleep(Duration::from_millis(5));
    }
    // Let an arbitrary number of further supersteps land, then SIGKILL.
    std::thread::sleep(Duration::from_millis(150));
    child.kill().expect("kill -9 child");
    child.wait().expect("reap child");

    // ---- recovery ----
    let db = Arc::new(Database::open(&dir).expect("recovery must succeed at any kill point"));
    let session = GraphSession::open(db.clone(), GRAPH_NAME).expect("graph survives");
    let values: Vec<(VertexId, u64)> = session.vertex_values::<u64>().expect("readable vertices");
    assert_eq!(values.len(), NUM_VERTICES as usize, "vertex membership must be exact");
    let stamps: std::collections::BTreeSet<u64> = values.iter().map(|(_, v)| *v).collect();
    assert_eq!(
        stamps.len(),
        1,
        "every vertex must carry the same superstep stamp (torn apply otherwise): {stamps:?}"
    );

    // Recovery is deterministic: two further opens agree bitwise.
    let image = catalog_image(db.catalog());
    drop(session);
    drop(db);
    let db2 = Database::open(&dir).unwrap();
    let image2 = catalog_image(db2.catalog());
    assert_eq!(image, image2, "reopen must be bitwise-identical");
    drop(db2);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// The sharded variant: kill -9 against a 2-shard database.
// ---------------------------------------------------------------------------

use vertexica::shard::{repair_if_needed, run_sharded, ShardedDatabase, ShardedGraphSession};

/// The sharded child body: 2 engine shards, the same never-halting stamp
/// program, killed by the parent at an arbitrary instant — possibly between
/// the two shards' apply commits of the same superstep.
#[test]
fn sharded_crash_child_worker() {
    let Ok(dir) = std::env::var("VERTEXICA_SHARD_CRASH_CHILD_DIR") else { return };
    let db = ShardedDatabase::create(&dir, 2).expect("child: create durable shards");
    let ss = ShardedGraphSession::create(db.clone(), GRAPH_NAME).expect("child: create session");
    ss.load_edges(&ring()).expect("child: load edges");
    db.checkpoint().expect("child: baseline checkpoint");
    std::fs::write(Path::new(&dir).join("READY"), b"ready").expect("child: ready marker");
    let config =
        VertexicaConfig::default().with_workers(2).with_partitions(4).with_max_supersteps(u64::MAX);
    // Never returns (the program never halts); the parent kills us.
    run_sharded(&ss, Arc::new(SuperstepStamp), &config).expect("child: run");
    unreachable!("SuperstepStamp never halts");
}

/// kill -9 with shards = 2: recovery must reopen **every** shard, the
/// per-shard superstep stamps must sit within one superstep of each other
/// (the halting-vote bound), recovery must be deterministic (double reopen
/// agrees bitwise), and [`repair_if_needed`] must land all shards on the
/// same boundary with every vertex carrying that boundary's stamp.
#[test]
fn kill9_mid_superstep_sharded_recovers_and_repairs() {
    let dir = std::env::temp_dir().join(format!(
        "vx_kill9_shard_{}_{:x}",
        std::process::id(),
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
            as u64
    ));
    std::fs::create_dir_all(&dir).unwrap();

    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(&exe)
        .args(["--exact", "sharded_crash_child_worker", "--nocapture", "--test-threads=1"])
        .env("VERTEXICA_SHARD_CRASH_CHILD_DIR", &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child");

    let deadline = Instant::now() + Duration::from_secs(60);
    let ready = dir.join("READY");
    while !ready.exists() {
        assert!(Instant::now() < deadline, "child never became ready");
        assert!(child.try_wait().unwrap().is_none(), "child exited prematurely");
        std::thread::sleep(Duration::from_millis(10));
    }
    // Both shards must provably commit supersteps before the kill.
    let base0 = max_file_id(&dir.join("shard0"));
    let base1 = max_file_id(&dir.join("shard1"));
    while max_file_id(&dir.join("shard0")) < base0 + 8
        || max_file_id(&dir.join("shard1")) < base1 + 8
    {
        assert!(Instant::now() < deadline, "child never committed sharded supersteps");
        assert!(child.try_wait().unwrap().is_none(), "child exited prematurely");
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(150));
    child.kill().expect("kill -9 child");
    child.wait().expect("reap child");

    // ---- recovery ----
    let db = ShardedDatabase::open(&dir).expect("sharded recovery must succeed at any kill point");
    let ss = ShardedGraphSession::open(db.clone(), GRAPH_NAME)
        .expect("stamp spread must be within the vote-barrier bound");
    let images: Vec<_> = db.shards().iter().map(|d| catalog_image(d.catalog())).collect();
    drop(ss);
    drop(db);

    // Recovery is deterministic: a second open agrees bitwise, per shard.
    let db = ShardedDatabase::open(&dir).expect("second sharded reopen");
    let images2: Vec<_> = db.shards().iter().map(|d| catalog_image(d.catalog())).collect();
    assert_eq!(images, images2, "sharded reopen must be bitwise-identical");

    // Repair lands every shard on the same superstep boundary.
    let ss = ShardedGraphSession::open(db.clone(), GRAPH_NAME).expect("reopen session");
    let config = VertexicaConfig::default().with_workers(2).with_partitions(4);
    repair_if_needed(&ss, Arc::new(SuperstepStamp), &config).expect("repair must succeed");
    let stamps = ss.stamps().expect("readable stamps");
    let boundary = stamps[0].expect("stamped after repair");
    assert!(
        stamps.iter().all(|s| *s == Some(boundary)),
        "all shards must land on one superstep boundary: {stamps:?}"
    );
    assert_eq!(
        repair_if_needed(&ss, Arc::new(SuperstepStamp), &config).expect("idempotent repair"),
        None,
        "a repaired database needs no further repair"
    );

    // And the merged graph is a uniformly-stamped generation at exactly
    // that boundary.
    let values: Vec<(VertexId, u64)> = ss.vertex_values::<u64>().expect("readable vertices");
    assert_eq!(values.len(), NUM_VERTICES as usize, "vertex membership must be exact");
    let distinct: std::collections::BTreeSet<u64> = values.iter().map(|(_, v)| *v).collect();
    assert_eq!(
        distinct,
        std::collections::BTreeSet::from([boundary as u64]),
        "every vertex must carry the repaired boundary's stamp"
    );
    drop(ss);
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}
