//! End-to-end scenarios from the paper's demo section: pipelines, hybrid
//! analysis, dynamic graphs, checkpoint/recovery failure injection, and
//! running the coordinator as a stored procedure.

use std::sync::Arc;

use vertexica::coordinator::{register_as_procedure, resume_program};
use vertexica::pipeline::Pipeline;
use vertexica::sql::Database;
use vertexica::storage::Value;
use vertexica::{checkpoint, run_program, GraphSession, VertexicaConfig};
use vertexica_algorithms::sqlalgo;
use vertexica_algorithms::vc::{PageRank, Sssp};
use vertexica_common::graph::{Edge, EdgeList, VertexId};
use vertexica_graphgen::metadata::edge_metadata;
use vertexica_graphgen::models::erdos_renyi;

fn session_with_metadata(db: &Arc<Database>, name: &str) -> GraphSession {
    let graph = erdos_renyi(80, 400, 21);
    let metas = edge_metadata(&graph, 0, 1000, 21);
    let edges: Vec<(Edge, i64, Option<String>)> = metas
        .iter()
        .map(|m| (Edge::weighted(m.src, m.dst, m.weight), m.created, Some(m.etype.to_string())))
        .collect();
    let s = GraphSession::create(db.clone(), name).unwrap();
    s.load_edges_with_metadata(&edges, graph.num_vertices).unwrap();
    s
}

#[test]
fn full_pipeline_select_rank_aggregate() {
    let db = Arc::new(Database::new());
    let session = session_with_metadata(&db, "p");
    let pipeline = Pipeline::new()
        .add_sql("friend_edges", "SELECT COUNT(*) FROM p_edge WHERE etype = 'friend'")
        .add_stage("rank", |s, ctx| {
            run_program(s, Arc::new(PageRank::new(5, 0.85)), &VertexicaConfig::default())?;
            let ranks: Vec<(VertexId, f64)> = s.vertex_values()?;
            sqlalgo::store_scores(s, "p_rank", &ranks)?;
            ctx.values.insert("ranked".into(), Value::Int(ranks.len() as i64));
            Ok(())
        })
        .add_sql("total_rank", "SELECT SUM(score) FROM p_rank")
        .add_sql("top3", "SELECT id FROM p_rank ORDER BY score DESC, id LIMIT 3");
    let (ctx, timings) = pipeline.run(&session).unwrap();
    assert_eq!(timings.len(), 4);
    assert_eq!(ctx.value("ranked"), Some(&Value::Int(80)));
    // PageRank is a probability distribution.
    let total = ctx.value("total_rank").and_then(|v| v.as_float()).unwrap();
    assert!((total - 1.0).abs() < 1e-9);
    assert_eq!(ctx.rows_of("top3").unwrap().len(), 3);
}

#[test]
fn metadata_filters_drive_scoped_analysis() {
    let db = Arc::new(Database::new());
    let session = session_with_metadata(&db, "scope");
    // §4.2.1: "select all edges of type Family" and analyse the subgraph.
    let (family, _) = vertexica_algorithms::hybrid::localized_pagerank(
        &session,
        "etype = 'family'",
        "scope_family",
        5,
    )
    .unwrap();
    let all = session.num_edges().unwrap();
    let fam = family.num_edges().unwrap();
    assert!(fam > 0 && fam < all);
    // Changing the filter changes the scope (§4.2.3 continuous mode).
    let (classmates, _) = vertexica_algorithms::hybrid::localized_pagerank(
        &session,
        "etype = 'classmate'",
        "scope_classmate",
        5,
    )
    .unwrap();
    let cls = classmates.num_edges().unwrap();
    assert!(cls > 0 && cls < all);
    assert_eq!(all as i64, db.query_int("SELECT COUNT(*) FROM scope_edge").unwrap());
}

#[test]
fn checkpoint_failure_injection_and_resume() {
    let db = Arc::new(Database::new());
    let graph = erdos_renyi(40, 160, 8);
    let session = GraphSession::create(db.clone(), "ck").unwrap();
    session.load_edges(&graph).unwrap();

    let dir = std::env::temp_dir().join(format!("vx_e2e_ckpt_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Run with checkpointing every 2 supersteps.
    let config = VertexicaConfig::default().with_checkpointing(2, &dir).with_max_supersteps(4); // "crash" after superstep 3 (0..=3)
    let program = Arc::new(PageRank::new(8, 0.85));
    run_program(&session, program.clone(), &config).unwrap();

    // Simulate the crash: clobber live state entirely.
    db.execute("DELETE FROM ck_message").unwrap();
    db.execute("UPDATE ck_vertex SET halted = TRUE").unwrap();

    // Recover and finish.
    let config = VertexicaConfig::default().with_checkpointing(2, &dir);
    let stats = resume_program(&session, program, &config).unwrap();
    assert!(stats.supersteps > 0);

    // The resumed result matches an uninterrupted run exactly.
    let resumed: Vec<(VertexId, f64)> = session.vertex_values().unwrap();
    let fresh_session = GraphSession::create(db.clone(), "ck2").unwrap();
    fresh_session.load_edges(&graph).unwrap();
    run_program(&fresh_session, Arc::new(PageRank::new(8, 0.85)), &VertexicaConfig::default())
        .unwrap();
    let fresh: Vec<(VertexId, f64)> = fresh_session.vertex_values().unwrap();
    for ((id_a, a), (id_b, b)) in resumed.iter().zip(&fresh) {
        assert_eq!(id_a, id_b);
        assert!((a - b).abs() < 1e-12, "vertex {id_a}: {a} vs {b}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_preserves_aggregator_state() {
    // PageRank's dangling aggregator must survive a checkpoint/restore or
    // ranks drift — this guards the aggregate persistence path.
    let db = Arc::new(Database::new());
    // Chain with a sink so the dangling aggregator is non-trivial.
    let graph = EdgeList::from_pairs([(0, 1), (1, 2), (2, 3)]);
    let session = GraphSession::create(db.clone(), "agg").unwrap();
    session.load_edges(&graph).unwrap();
    let dir = std::env::temp_dir().join(format!("vx_e2e_agg_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let program = Arc::new(PageRank::new(6, 0.85));
    let config = VertexicaConfig::default().with_checkpointing(1, &dir).with_max_supersteps(3);
    run_program(&session, program.clone(), &config).unwrap();
    let config = VertexicaConfig::default().with_checkpointing(1, &dir);
    resume_program(&session, program, &config).unwrap();
    let resumed: Vec<(VertexId, f64)> = session.vertex_values().unwrap();

    let expected = vertexica_algorithms::reference::pagerank(&graph, 6, 0.85);
    for (id, rank) in resumed {
        assert!(
            (rank - expected[id as usize]).abs() < 1e-9,
            "vertex {id}: {rank} vs {}",
            expected[id as usize]
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stored_procedure_deployment() {
    let db = Arc::new(Database::new());
    let graph = erdos_renyi(30, 120, 2);
    let session = GraphSession::create(db.clone(), "sp").unwrap();
    session.load_edges(&graph).unwrap();
    let name = register_as_procedure(&session, Arc::new(Sssp::new(0)), VertexicaConfig::default());
    let out = db.call_procedure(&name, &[]).unwrap();
    assert!(matches!(out, Value::Int(n) if n > 0));
    let dist: Vec<(VertexId, f64)> = session.vertex_values().unwrap();
    assert_eq!(dist[0], (0, 0.0));
}

#[test]
fn checkpoint_save_restore_api() {
    let db = Arc::new(Database::new());
    let session = GraphSession::create(db.clone(), "ckapi").unwrap();
    session.load_edges(&erdos_renyi(20, 60, 1)).unwrap();
    run_program(&session, Arc::new(PageRank::new(3, 0.85)), &VertexicaConfig::default()).unwrap();
    let before: Vec<(VertexId, f64)> = session.vertex_values().unwrap();

    let dir = std::env::temp_dir().join(format!("vx_e2e_api_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    checkpoint::save(&session, &dir, 3, &Default::default()).unwrap();

    db.execute("DELETE FROM ckapi_vertex WHERE id < 10").unwrap();
    assert_eq!(session.num_vertices().unwrap(), 10);

    let state = checkpoint::restore(&session, &dir).unwrap();
    assert_eq!(state.superstep, 3);
    let after: Vec<(VertexId, f64)> = session.vertex_values().unwrap();
    assert_eq!(before, after);
    std::fs::remove_dir_all(&dir).ok();
}
