//! Crash/abort safety of the segment-parallel apply path.
//!
//! The parallel apply builds every new vertex/message segment on the worker
//! pool **before** committing either table with an atomic catalog-level
//! contents swap. These tests inject a panic (and, separately, an error)
//! into an apply task mid-build and assert the graph's tables come through
//! untouched: old segments still visible, no torn swap, pool still healthy.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use vertexica::apply::apply_outputs;
use vertexica::coordinator::initialize_vertices;
use vertexica::sql::Database;
use vertexica::storage::{RecordBatch, Value};
use vertexica::worker::{worker_output_schema, OUT_MESSAGE, OUT_STATE};
use vertexica::{run_program, GraphSession, VertexicaConfig};
use vertexica_algorithms::vc::PageRank;
use vertexica_common::graph::EdgeList;
use vertexica_common::pregel::{InitContext, VertexContext, VertexProgram};
use vertexica_common::VertexId;

/// A program whose combiner panics when it meets the poison payload — the
/// panic fires inside the apply stage's per-bucket pool task (cross-partition
/// combine), i.e. mid-segment-build.
struct PoisonCombine;

impl VertexProgram for PoisonCombine {
    type Value = f64;
    type Message = f64;

    fn initial_value(&self, _id: VertexId, _init: &InitContext) -> f64 {
        0.0
    }

    fn compute(&self, _ctx: &mut dyn VertexContext<f64, f64>, _messages: &[f64]) {}

    fn combine(&self, a: &f64, b: &f64) -> Option<f64> {
        if *a == 666.0 || *b == 666.0 {
            panic!("poison message reached the apply combiner");
        }
        Some(a + b)
    }
}

fn poisoned_session() -> GraphSession {
    let db = Arc::new(Database::new());
    db.set_worker_threads(4);
    let g = GraphSession::create(db, "g").unwrap();
    g.load_edges(&EdgeList::from_pairs([(0, 1), (1, 2), (2, 3), (3, 0)])).unwrap();
    initialize_vertices(&g, &PoisonCombine).unwrap();
    g
}

fn state_row(vid: i64, v: f64) -> Vec<Value> {
    use vertexica_common::VertexData;
    vec![
        Value::Int(OUT_STATE),
        Value::Int(vid),
        Value::Null,
        Value::Blob(v.to_bytes()),
        Value::Bool(false),
        Value::Null,
        Value::Null,
    ]
}

fn msg_row(to: i64, from: i64, v: f64) -> Vec<Value> {
    use vertexica_common::VertexData;
    vec![
        Value::Int(OUT_MESSAGE),
        Value::Int(to),
        Value::Int(from),
        Value::Blob(v.to_bytes()),
        Value::Null,
        Value::Null,
        Value::Null,
    ]
}

/// Snapshot of a table: (segment count, canonicalized rows).
fn table_state(session: &GraphSession, table: &str) -> (usize, Vec<Vec<String>>) {
    let handle = session.db().catalog().get(table).unwrap();
    let guard = handle.read();
    let segments = guard.num_segments();
    let mut rows: Vec<Vec<String>> = guard
        .scan(None, &[])
        .unwrap()
        .iter()
        .flat_map(|b| b.rows())
        .map(|r| r.iter().map(|v| format!("{v:?}")).collect())
        .collect();
    rows.sort();
    (segments, rows)
}

#[test]
fn panicking_apply_task_leaves_tables_untouched() {
    let g = poisoned_session();
    // A pre-existing message that must survive the aborted replacement.
    let stale = vertexica::session::message_batch(&[(0, 9, vec![1, 2, 3])]).unwrap();
    g.db().append_batches(&g.message_table(), &[stale]).unwrap();

    let vertex_before = table_state(&g, &g.vertex_table());
    let message_before = table_state(&g, &g.message_table());

    // Two partitions' outputs: both message the same recipient, one payload
    // poisoned, so the per-bucket combine on the pool panics mid-build.
    let config = VertexicaConfig::default().with_workers(4).with_parallel_apply(true);
    let out1 =
        RecordBatch::from_rows(worker_output_schema(), &[state_row(0, 1.0), msg_row(2, 0, 666.0)])
            .unwrap();
    let out2 =
        RecordBatch::from_rows(worker_output_schema(), &[state_row(1, 2.0), msg_row(2, 1, 5.0)])
            .unwrap();
    let result = catch_unwind(AssertUnwindSafe(|| {
        apply_outputs(&g, &PoisonCombine, &config, vec![out1, out2], 4)
    }));
    assert!(result.is_err(), "the pool task's panic must propagate to the apply caller");

    // No torn swap: both tables exactly as before — same segments, same rows.
    assert_eq!(table_state(&g, &g.vertex_table()), vertex_before);
    assert_eq!(table_state(&g, &g.message_table()), message_before);

    // The pool survived the panic: a clean apply on the same session works.
    let ok = RecordBatch::from_rows(
        worker_output_schema(),
        &[state_row(0, 7.0), msg_row(2, 0, 1.0), msg_row(2, 1, 2.0)],
    )
    .unwrap();
    let outcome = apply_outputs(&g, &PoisonCombine, &config, vec![ok], 4).unwrap();
    assert_eq!(outcome.messages, 1); // combined 1.0 + 2.0
    assert_eq!(outcome.vertex_changes, 1);
}

#[test]
fn erroring_apply_parse_leaves_tables_untouched() {
    let g = poisoned_session();
    let vertex_before = table_state(&g, &g.vertex_table());
    let message_before = table_state(&g, &g.message_table());

    // An output row with an unknown kind: absorb fails with an error (not a
    // panic) before any segment is committed.
    let bad = RecordBatch::from_rows(
        worker_output_schema(),
        &[
            state_row(0, 1.0),
            vec![
                Value::Int(99),
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
            ],
        ],
    )
    .unwrap();
    let config = VertexicaConfig::default().with_workers(4).with_parallel_apply(true);
    assert!(apply_outputs(&g, &PoisonCombine, &config, vec![bad], 4).is_err());
    assert_eq!(table_state(&g, &g.vertex_table()), vertex_before);
    assert_eq!(table_state(&g, &g.message_table()), message_before);
}

#[test]
fn apply_parallelism_is_observable_per_superstep() {
    let graph = EdgeList::from_pairs((0..64u64).map(|i| (i, (i + 1) % 64)));
    for (parallel, expected) in [(true, 3), (false, 1)] {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db, "g").unwrap();
        g.load_edges(&graph).unwrap();
        let config = VertexicaConfig::default().with_workers(3).with_parallel_apply(parallel);
        let stats = run_program(&g, Arc::new(PageRank::new(3, 0.85)), &config).unwrap();
        assert!(stats.supersteps >= 2);
        for s in &stats.per_superstep {
            assert_eq!(
                s.apply_parallelism, expected,
                "superstep {} (parallel_apply={parallel})",
                s.superstep
            );
        }
    }
}

#[test]
fn segmented_replace_produces_correct_zone_maps_and_prunable_segments() {
    // Regression guard for `Database::replace_table_segmented`: the bucket
    // segments adopted by the parallel apply must carry real zone maps.
    // After a dense superstep, scans with a pruning predicate on the vertex
    // id must (a) skip at least one segment outright — observable via the
    // table's pruning counter — and (b) still return exactly the matching
    // rows.
    use vertexica::storage::{ColumnPredicate, PredicateOp};

    let graph = vertexica_graphgen::models::erdos_renyi(300, 1200, 11);
    let db = Arc::new(Database::new());
    let g = GraphSession::create(db, "g").unwrap();
    g.load_edges(&graph).unwrap();
    let config = VertexicaConfig::default()
        .with_workers(4)
        .with_parallel_apply(true)
        .with_replace_threshold(0.0)
        .with_max_supersteps(2);
    run_program(&g, Arc::new(PageRank::new(2, 0.85)), &config).unwrap();

    let handle = g.db().catalog().get(&g.vertex_table()).unwrap();
    let guard = handle.read();
    assert!(guard.num_segments() >= 2, "need bucket segments for pruning to matter");

    // (a) Every segment's id zone map actually bounds its ids.
    for (si, handle) in guard.segments().iter().enumerate() {
        let zm = handle.zone_map(0);
        let seg = handle.read().unwrap();
        let ids = seg.encoded_column(0).decode().unwrap();
        let min = zm.min.as_int().expect("int zone-map min");
        let max = zm.max.as_int().expect("int zone-map max");
        assert!(min <= max, "segment {si}");
        for i in 0..ids.len() {
            let id = ids.value(i).as_int().unwrap();
            assert!((min..=max).contains(&id), "segment {si}: id {id} outside [{min}, {max}]");
        }
    }

    // (b) Hash buckets overlap in id range, so only a predicate beyond the
    // table's span can prune — and then it must prune **every** segment
    // without decoding any of them. If `replace_table_segmented` ever
    // adopted segments with broken zone maps (all-null, or min/max not
    // covering the data), either this stops pruning or (a) fails.
    let full_segments = guard.num_segments() as u64;
    let pruned_before = guard.segments_pruned();
    let pred = ColumnPredicate::new(0, PredicateOp::Gt, Value::Int(10_000));
    let batches = guard.scan(None, std::slice::from_ref(&pred)).unwrap();
    assert!(batches.is_empty());
    let pruned = guard.segments_pruned() - pruned_before;
    assert_eq!(
        pruned, full_segments,
        "an out-of-range predicate must zone-map-prune every bucket segment"
    );

    // An in-range point probe cannot prune hash buckets but must still find
    // exactly its row.
    let probe_id = 137i64;
    let pred = ColumnPredicate::new(0, PredicateOp::Eq, Value::Int(probe_id));
    let hits: Vec<i64> = guard
        .scan(None, std::slice::from_ref(&pred))
        .unwrap()
        .iter()
        .flat_map(|b| b.column(0).as_int().unwrap().to_vec())
        .collect();
    assert_eq!(hits, vec![probe_id]);

    // (c) A range predicate never changes results, pruned or not: the graph
    // has vertices 0..300, so `id < 5` returns exactly five rows.
    let pred = ColumnPredicate::new(0, PredicateOp::Lt, Value::Int(5));
    let mut low_ids: Vec<i64> = guard
        .scan(None, std::slice::from_ref(&pred))
        .unwrap()
        .iter()
        .flat_map(|b| b.column(0).as_int().unwrap().to_vec())
        .collect();
    low_ids.sort_unstable();
    assert_eq!(low_ids, (0..5).collect::<Vec<i64>>(), "range predicate lost or invented rows");
}

#[test]
fn parallel_replace_writes_one_segment_per_nonempty_bucket() {
    // A dense superstep under parallel apply leaves the vertex table
    // bucket-segmented (one ROS segment per non-empty hash bucket) — and
    // never more than the apply fan-out. The graph must be asymmetric so
    // PageRank actually changes values (a plain cycle would fixpoint
    // immediately and never trigger a replace).
    let graph = vertexica_graphgen::models::erdos_renyi(200, 800, 7);
    let db = Arc::new(Database::new());
    let g = GraphSession::create(db, "g").unwrap();
    g.load_edges(&graph).unwrap();
    let config = VertexicaConfig::default()
        .with_workers(4)
        .with_parallel_apply(true)
        .with_replace_threshold(0.0)
        .with_max_supersteps(2);
    run_program(&g, Arc::new(PageRank::new(2, 0.85)), &config).unwrap();
    let handle = g.db().catalog().get(&g.vertex_table()).unwrap();
    let guard = handle.read();
    assert!(guard.num_segments() >= 2, "expected a bucket-segmented table");
    assert!(guard.num_segments() <= 4, "no more segments than apply buckets");
    assert_eq!(guard.num_rows(), 200);
}
