//! Crash-injection proof of the durability layer.
//!
//! Three escalating attacks on `open_durable` recovery:
//!
//! 1. **Byte-offset crash injection** (proptest): a random operation
//!    schedule runs against a durable catalog whose WAL sink is armed with
//!    a random byte budget — every durable write past the budget is
//!    truncated exactly at the boundary, mimicking a torn write at an
//!    arbitrary byte offset. Recovery must land **bitwise-exactly** on
//!    either the last fully acknowledged operation's state or (if the
//!    in-flight record made it to disk completely) the next one — never a
//!    torn mixture, never a lost acknowledged write.
//!
//! 2. **Corruption fuzz**: truncations, bit flips, bad magic and bad
//!    checksums against the segment-file format and the WAL/manifest
//!    readers must surface as clean `Err`s (corruption or torn-tail
//!    discard), never a panic and never silently wrong data.
//!
//! 3. **`kill -9` mid-superstep** (in `kill9_recovery.rs`'s helpers here):
//!    a child process runs real grouped superstep commits until the parent
//!    SIGKILLs it at an arbitrary moment; recovery must observe the
//!    multi-table commit atomically.

use std::path::PathBuf;
use std::sync::Arc;
use vertexica_common::sync::{AtomicU64, Ordering};

use proptest::prelude::*;
use vertexica_storage::persist;
use vertexica_storage::{
    open_durable, Catalog, DataType, Field, Schema, Table, TableOptions, Value,
};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("vx_crash_{tag}_{}_{n}", std::process::id()))
}

/// Physical image of every table in a catalog — the bitwise comparator.
fn catalog_image(catalog: &Catalog) -> Vec<(String, Vec<u8>)> {
    let mut names = catalog.list();
    names.sort();
    names
        .into_iter()
        .map(|n| {
            let t = catalog.get(&n).unwrap();
            let bytes = persist::table_to_bytes_physical(&t.read()).unwrap();
            (n, bytes)
        })
        .collect()
}

fn pair_schema() -> Arc<Schema> {
    Schema::new(vec![Field::not_null("id", DataType::Int), Field::new("val", DataType::Int)])
}

/// One atomic (single WAL record / single commit) operation in a schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Batch-insert rows into alpha (one record; may auto-moveout).
    Insert(Vec<(i64, Option<i64>)>),
    /// Delete the first `k` scanned rowids of alpha (one record).
    Delete(usize),
    /// Flush alpha's WOS into a ROS segment (one record).
    Moveout,
    /// Truncate beta (one record).
    TruncateBeta,
    /// Replace alpha+beta contents in one grouped commit (one commit
    /// record): alpha gets `n` rows tagged `tag`, beta gets `n/2`.
    ReplaceBoth { n: usize, tag: i64 },
    /// Drop gamma if present (one record, or none when absent).
    DropGamma,
    /// Create gamma if absent (one record, or none when present).
    CreateGamma,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => proptest::collection::vec((0i64..500, proptest::option::of(-50i64..50)), 1..20)
            .prop_map(Op::Insert),
        2 => (0usize..12).prop_map(Op::Delete),
        1 => Just(Op::Moveout),
        1 => Just(Op::TruncateBeta),
        2 => ((1usize..24), (0i64..1000)).prop_map(|(n, tag)| Op::ReplaceBoth { n, tag }),
        1 => Just(Op::DropGamma),
        1 => Just(Op::CreateGamma),
    ]
}

/// Applies one op to a catalog (durable or shadow — identical calls).
fn apply_op(catalog: &Catalog, op: &Op) -> vertexica_storage::StorageResult<()> {
    match op {
        Op::Insert(rows) => {
            let t = catalog.get("alpha")?;
            let rows: Vec<Vec<Value>> = rows
                .iter()
                .map(|(id, val)| vec![Value::Int(*id), val.map(Value::Int).unwrap_or(Value::Null)])
                .collect();
            t.write().insert_rows(rows)?;
        }
        Op::Delete(k) => {
            let t = catalog.get("alpha")?;
            let doomed: Vec<u64> = {
                let guard = t.read();
                guard
                    .scan_with_rowids(None, &[])?
                    .into_iter()
                    .flat_map(|(_, ids)| ids)
                    .take(*k)
                    .collect()
            };
            t.write().delete_rowids(&doomed)?;
        }
        Op::Moveout => {
            catalog.get("alpha")?.write().moveout()?;
        }
        Op::TruncateBeta => {
            catalog.get("beta")?.write().truncate()?;
        }
        Op::ReplaceBoth { n, tag } => {
            let mk = |rows: usize| -> vertexica_storage::StorageResult<Table> {
                let mut t = Table::new(
                    "x",
                    pair_schema(),
                    TableOptions::default().with_moveout_threshold(8),
                );
                for i in 0..rows {
                    t.insert_row(vec![Value::Int(i as i64), Value::Int(*tag)])?;
                }
                Ok(t)
            };
            catalog.replace_contents_many(vec![
                ("alpha".to_string(), mk(*n)?),
                ("beta".to_string(), mk(*n / 2)?),
            ])?;
        }
        Op::DropGamma => {
            catalog.drop_table_if_exists("gamma")?;
        }
        Op::CreateGamma => {
            if !catalog.contains("gamma") {
                catalog.create_table("gamma", pair_schema(), TableOptions::default())?;
            }
        }
    }
    Ok(())
}

fn seed_catalog(catalog: &Catalog) {
    let opts = TableOptions::default().with_moveout_threshold(8);
    catalog.create_table("alpha", pair_schema(), opts.clone()).unwrap();
    catalog.create_table("beta", pair_schema(), opts).unwrap();
    let t = catalog.get("alpha").unwrap();
    let rows: Vec<Vec<Value>> = (0..12).map(|i| vec![Value::Int(i), Value::Int(-i)]).collect();
    t.write().insert_rows(rows).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// THE durability property: crash a durable catalog by truncating its
    /// durable writes at an arbitrary byte offset mid-schedule; recovery
    /// must be bitwise-identical to the state after the last acknowledged
    /// operation (or the next one, if its single record fully landed).
    #[test]
    fn recovery_is_exact_at_any_crash_offset(
        ops in proptest::collection::vec(arb_op(), 1..14),
        budget in 0u64..6000,
    ) {
        let dir = temp_dir("offset");
        let durable = open_durable(&dir, false).unwrap();
        seed_catalog(&durable);

        // Shadow: the same schedule on a plain in-memory catalog, with a
        // bitwise snapshot after every op. snapshots[i] = state after ops[i].
        let shadow = Catalog::new();
        seed_catalog(&shadow);
        let mut snapshots = vec![catalog_image(&shadow)];

        // Arm the crash: every durable byte past `budget` is torn off.
        let sink = durable.wal_sink().unwrap();
        sink.set_crash_budget(Some(budget));

        let mut last_acked = 0usize; // snapshot index of last acknowledged op
        let mut crashed = false;
        for (i, op) in ops.iter().enumerate() {
            apply_op(&shadow, op).unwrap();
            snapshots.push(catalog_image(&shadow));
            match apply_op(&durable, op) {
                Ok(()) => last_acked = i + 1,
                Err(_) => {
                    crashed = true;
                    break;
                }
            }
        }
        drop(durable);

        let recovered = open_durable(&dir, false).unwrap();
        let image = catalog_image(&recovered);
        if crashed {
            // Either the in-flight record was torn (last acked state) or it
            // fully landed before the budget ran out (next state).
            prop_assert!(
                image == snapshots[last_acked] || image == snapshots[last_acked + 1],
                "recovered state matches neither the last acknowledged nor \
                 the in-flight operation's state (last_acked={last_acked})"
            );
        } else {
            prop_assert_eq!(&image, &snapshots[last_acked]);
        }

        // Recovery is idempotent: reopening lands on the identical image.
        drop(recovered);
        let again = open_durable(&dir, false).unwrap();
        prop_assert_eq!(catalog_image(&again), image);
        drop(again);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Arbitrary byte soup never panics the physical table reader.
    #[test]
    fn physical_reader_survives_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        prop_assert!(persist::table_from_bytes_physical(&bytes).is_err());
    }

    /// A **torn spill write** never corrupts recovery: a checkpoint that
    /// crashes at an arbitrary byte offset — possibly mid `.vxtb` segment
    /// image, the file eviction reloads from — leaves the directory
    /// recoverable to exactly the pre-crash acknowledged state. The torn
    /// image is unreachable (the manifest still anchors the old one) and the
    /// next recovery is bitwise-identical to the live catalog before the
    /// crash.
    #[test]
    fn torn_spill_write_never_corrupts_recovery(
        budget in 0u64..4000,
        n in 20usize..200,
    ) {
        let dir = temp_dir("torn_spill");
        let durable = open_durable(&dir, false).unwrap();
        let t = durable
            .create_table("alpha", pair_schema(), TableOptions::default())
            .unwrap();
        t.write()
            .insert_rows((0..n as i64).map(|i| vec![Value::Int(i), Value::Int(i % 13)]).collect())
            .unwrap();
        t.write().moveout().unwrap();
        // First checkpoint succeeds: every segment gets a durable spill twin.
        durable.checkpoint().unwrap();

        // Dirty the table again (all WAL-acknowledged), then crash the next
        // checkpoint at an arbitrary durable byte offset.
        t.write()
            .insert_rows(
                (0..n as i64).map(|i| vec![Value::Int(1000 + i), Value::Int(-i)]).collect(),
            )
            .unwrap();
        t.write().moveout().unwrap();
        let image = catalog_image(&durable);

        let sink = durable.wal_sink().unwrap();
        sink.set_crash_budget(Some(budget));
        // May tear mid `.vxtb`, mid MANIFEST, or fully land — all must be
        // recoverable.
        let _ = durable.checkpoint();
        drop(t);
        drop(durable);

        let recovered = open_durable(&dir, false).unwrap();
        prop_assert_eq!(
            catalog_image(&recovered),
            image,
            "torn checkpoint changed the recovered state"
        );
        drop(recovered);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A committed durable directory to corrupt, plus its clean image.
fn committed_dir(tag: &str) -> (PathBuf, Vec<(String, Vec<u8>)>) {
    let dir = temp_dir(tag);
    let durable = open_durable(&dir, false).unwrap();
    seed_catalog(&durable);
    // Leave an unflushed WAL tail beyond the recovery checkpoint: reopen,
    // then write more without checkpointing.
    drop(durable);
    let durable = open_durable(&dir, false).unwrap();
    let t = durable.get("alpha").unwrap();
    t.write()
        .insert_rows((0..5).map(|i| vec![Value::Int(100 + i), Value::Null]).collect())
        .unwrap();
    let image = catalog_image(&durable);
    drop(durable);
    (dir, image)
}

#[test]
fn truncating_the_wal_tail_is_a_clean_stop() {
    // Every truncation point must recover cleanly: complete-frame prefixes
    // replay, torn tails are discarded. Never a panic, never a hard error.
    // Recovery checkpoints (rewriting the fixture), so each cut gets a
    // freshly built directory.
    let probe = committed_dir("trunc");
    let wal_len = {
        let wal_path = find_wal(&probe.0);
        std::fs::read(&wal_path).unwrap().len()
    };
    std::fs::remove_dir_all(&probe.0).ok();
    for cut in (14..wal_len).step_by(9) {
        let (dir, _) = committed_dir("trunc");
        let wal_path = find_wal(&dir);
        let bytes = std::fs::read(&wal_path).unwrap();
        assert_eq!(bytes.len(), wal_len, "fixture must be deterministic");
        std::fs::write(&wal_path, &bytes[..cut]).unwrap();
        let recovered = open_durable(&dir, false).unwrap();
        let t = recovered.get("alpha").unwrap();
        let rows = t.read().num_rows();
        assert!(
            rows >= 12,
            "checkpointed rows must survive a WAL truncation at byte {cut} (got {rows})"
        );
        drop(recovered);
        std::fs::remove_dir_all(&dir).ok();
    }
}

fn find_wal(dir: &std::path::Path) -> PathBuf {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.file_name().unwrap().to_str().unwrap().starts_with("wal-"))
        .unwrap()
}

#[test]
fn bit_flips_in_committed_wal_frames_are_corruption_not_garbage() {
    // Flip one bit inside a *complete* WAL frame: recovery must refuse with
    // a corruption error — not panic, not replay a mangled record.
    for flip_at_frac in [0.3f64, 0.5, 0.7, 0.9] {
        let (dir, _) = committed_dir("flip");
        let wal_path = find_wal(&dir);
        let mut bytes = std::fs::read(&wal_path).unwrap();
        if bytes.len() <= 20 {
            std::fs::remove_dir_all(&dir).ok();
            continue;
        }
        let pos = 14 + ((bytes.len() - 15) as f64 * flip_at_frac) as usize;
        bytes[pos] ^= 0x10;
        std::fs::write(&wal_path, &bytes).unwrap();
        match open_durable(&dir, false) {
            Err(vertexica_storage::StorageError::Corrupt(_)) => {}
            Err(other) => panic!("expected Corrupt, got {other:?}"),
            // A flip in the length prefix can turn the frame into a torn
            // tail (length now exceeds the file) — that is a clean stop.
            Ok(_) => {}
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn bad_wal_magic_is_corruption() {
    let (dir, _) = committed_dir("magic");
    let wal_path = find_wal(&dir);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes[0] = b'Z';
    std::fs::write(&wal_path, &bytes).unwrap();
    assert!(matches!(open_durable(&dir, false), Err(vertexica_storage::StorageError::Corrupt(_))));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_bit_flip_is_corruption() {
    let (dir, _) = committed_dir("mf");
    let mf = dir.join("MANIFEST");
    let mut bytes = std::fs::read(&mf).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&mf, &bytes).unwrap();
    assert!(matches!(open_durable(&dir, false), Err(vertexica_storage::StorageError::Corrupt(_))));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn segment_file_corruption_is_detected() {
    let (dir, _) = committed_dir("seg");
    let seg_path = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().map(|e| e == "vxtb").unwrap_or(false))
        .expect("recovery checkpoint must leave table files");
    let clean = std::fs::read(&seg_path).unwrap();
    // Bit flips anywhere in the file: the CRC trailer catches them all.
    for frac in [0.1f64, 0.4, 0.8] {
        let mut bytes = clean.clone();
        let pos = (bytes.len() as f64 * frac) as usize;
        bytes[pos] ^= 0x20;
        std::fs::write(&seg_path, &bytes).unwrap();
        assert!(
            open_durable(&dir, false).is_err(),
            "flip at {pos}/{} must fail recovery",
            bytes.len()
        );
    }
    // Truncations: every prefix must fail, never panic.
    for cut in [0usize, 1, 6, clean.len() / 2, clean.len() - 1] {
        std::fs::write(&seg_path, &clean[..cut]).unwrap();
        assert!(open_durable(&dir, false).is_err());
    }
    // Restoring the clean bytes restores recovery.
    std::fs::write(&seg_path, &clean).unwrap();
    open_durable(&dir, false).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn logical_persist_corruption_is_detected() {
    // The VXTB1 logical format gets the same treatment: truncations and
    // flips surface as errors, never panics.
    let mut t = Table::new("t", pair_schema(), TableOptions::default().with_moveout_threshold(4));
    for i in 0..20 {
        t.insert_row(vec![Value::Int(i), Value::Int(i * 2)]).unwrap();
    }
    let clean = persist::table_to_bytes(&t).unwrap();
    persist::table_from_bytes(&clean).unwrap();
    for cut in 0..clean.len() {
        assert!(persist::table_from_bytes(&clean[..cut]).is_err());
    }
    for pos in (0..clean.len()).step_by(3) {
        let mut bytes = clean.clone();
        bytes[pos] ^= 0x08;
        assert!(persist::table_from_bytes(&bytes).is_err(), "flip at {pos} undetected");
    }
}

#[test]
fn physical_persist_truncations_all_error() {
    let mut t = Table::new("t", pair_schema(), TableOptions::default().with_moveout_threshold(4));
    for i in 0..40 {
        t.insert_row(vec![Value::Int(i % 7), Value::Int(i)]).unwrap();
    }
    // Deletes give the physical image non-empty delete vectors too.
    let doomed: Vec<u64> = t
        .scan_with_rowids(None, &[])
        .unwrap()
        .into_iter()
        .flat_map(|(_, ids)| ids)
        .step_by(3)
        .collect();
    t.delete_rowids(&doomed).unwrap();
    let clean = persist::table_to_bytes_physical(&t).unwrap();
    persist::table_from_bytes_physical(&clean).unwrap();
    for cut in 0..clean.len() {
        assert!(persist::table_from_bytes_physical(&clean[..cut]).is_err());
    }
    for pos in (0..clean.len()).step_by(3) {
        let mut bytes = clean.clone();
        bytes[pos] ^= 0x04;
        assert!(persist::table_from_bytes_physical(&bytes).is_err(), "flip at {pos} undetected");
    }
}
