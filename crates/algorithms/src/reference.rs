//! In-memory reference implementations used to validate every engine.

use std::collections::BinaryHeap;

use vertexica_common::graph::{Adjacency, EdgeList, VertexId};
use vertexica_common::FxHashSet;

/// PageRank with damping and dangling-mass redistribution; `iterations`
/// synchronous updates from a uniform start.
pub fn pagerank(graph: &EdgeList, iterations: usize, damping: f64) -> Vec<f64> {
    let n = graph.num_vertices.max(1) as f64;
    let adj = Adjacency::from_edge_list(graph);
    let mut ranks = vec![1.0 / n; graph.num_vertices as usize];
    let mut next = vec![0.0; graph.num_vertices as usize];
    for _ in 0..iterations {
        let mut dangling = 0.0;
        next.iter_mut().for_each(|x| *x = 0.0);
        for v in 0..graph.num_vertices {
            let deg = adj.out_degree(v);
            if deg == 0 {
                dangling += ranks[v as usize];
            } else {
                let share = ranks[v as usize] / deg as f64;
                for &d in adj.neighbors(v) {
                    next[d as usize] += share;
                }
            }
        }
        for x in next.iter_mut() {
            *x = (1.0 - damping) / n + damping * (*x + dangling / n);
        }
        std::mem::swap(&mut ranks, &mut next);
    }
    ranks
}

/// Dijkstra single-source shortest paths over edge weights (non-negative).
pub fn sssp(graph: &EdgeList, source: VertexId) -> Vec<f64> {
    let adj = Adjacency::from_edge_list(graph);
    let mut dist = vec![f64::INFINITY; graph.num_vertices as usize];
    if source >= graph.num_vertices {
        return dist;
    }
    dist[source as usize] = 0.0;

    #[derive(PartialEq)]
    struct Item(f64, VertexId);
    impl Eq for Item {}
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other.0.total_cmp(&self.0)
        }
    }
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap = BinaryHeap::new();
    heap.push(Item(0.0, source));
    while let Some(Item(d, v)) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for (&t, &w) in adj.neighbors(v).iter().zip(adj.neighbor_weights(v)) {
            let cand = d + w.max(0.0);
            if cand < dist[t as usize] {
                dist[t as usize] = cand;
                heap.push(Item(cand, t));
            }
        }
    }
    dist
}

/// Weakly connected components via union–find; returns, per vertex, the
/// *minimum* vertex id of its component (the label min-propagation
/// converges to).
pub fn weakly_connected_components(graph: &EdgeList) -> Vec<VertexId> {
    let n = graph.num_vertices as usize;
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for e in &graph.edges {
        let (a, b) = (find(&mut parent, e.src as usize), find(&mut parent, e.dst as usize));
        if a != b {
            parent[a.max(b)] = a.min(b);
        }
    }
    let mut label = vec![0 as VertexId; n];
    let mut min_of_root: Vec<VertexId> = (0..n as u64).collect();
    for v in 0..n {
        let r = find(&mut parent, v);
        if (v as u64) < min_of_root[r] {
            min_of_root[r] = v as u64;
        }
    }
    for (v, slot) in label.iter_mut().enumerate() {
        let r = find(&mut parent, v);
        *slot = min_of_root[r];
    }
    label
}

/// Canonical undirected neighbour sets (self-loops and duplicates removed).
fn undirected_neighbors(graph: &EdgeList) -> Vec<Vec<VertexId>> {
    let n = graph.num_vertices as usize;
    let mut sets: Vec<FxHashSet<VertexId>> = vec![FxHashSet::default(); n];
    for e in &graph.edges {
        if e.src != e.dst {
            sets[e.src as usize].insert(e.dst);
            sets[e.dst as usize].insert(e.src);
        }
    }
    sets.into_iter()
        .map(|s| {
            let mut v: Vec<VertexId> = s.into_iter().collect();
            v.sort_unstable();
            v
        })
        .collect()
}

/// Total triangle count (undirected interpretation).
pub fn triangle_count(graph: &EdgeList) -> u64 {
    per_node_triangles(graph).iter().sum::<u64>() / 3
}

/// Triangles each node participates in (undirected interpretation).
pub fn per_node_triangles(graph: &EdgeList) -> Vec<u64> {
    let neigh = undirected_neighbors(graph);
    let n = neigh.len();
    let mut counts = vec![0u64; n];
    for v in 0..n {
        for &u in &neigh[v] {
            if (u as usize) <= v {
                continue;
            }
            // |N(v) ∩ N(u)| restricted to w > u keeps each triangle once.
            let mut i = 0;
            let mut j = 0;
            let (a, b) = (&neigh[v], &neigh[u as usize]);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if a[i] > u {
                            counts[v] += 1;
                            counts[u as usize] += 1;
                            counts[a[i] as usize] += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    counts
}

/// Local clustering coefficient per node: `2·T(v) / (deg(v)·(deg(v)−1))`.
pub fn local_clustering(graph: &EdgeList) -> Vec<f64> {
    let neigh = undirected_neighbors(graph);
    let tri = per_node_triangles(graph);
    neigh
        .iter()
        .zip(&tri)
        .map(|(nv, &t)| {
            let d = nv.len() as f64;
            if d < 2.0 {
                0.0
            } else {
                2.0 * t as f64 / (d * (d - 1.0))
            }
        })
        .collect()
}

/// Pairs of distinct nodes with at least `k` common out-neighbours
/// ("strong overlap", directed interpretation matching the SQL query).
pub fn strong_overlap(graph: &EdgeList, k: u64) -> Vec<(VertexId, VertexId, u64)> {
    use vertexica_common::FxHashMap;
    let mut by_dst: FxHashMap<VertexId, Vec<VertexId>> = FxHashMap::default();
    let mut seen: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
    for e in &graph.edges {
        if seen.insert((e.src, e.dst)) {
            by_dst.entry(e.dst).or_default().push(e.src);
        }
    }
    let mut pair_counts: FxHashMap<(VertexId, VertexId), u64> = FxHashMap::default();
    for srcs in by_dst.values() {
        let mut s = srcs.clone();
        s.sort_unstable();
        for i in 0..s.len() {
            for j in (i + 1)..s.len() {
                *pair_counts.entry((s[i], s[j])).or_default() += 1;
            }
        }
    }
    let mut out: Vec<(VertexId, VertexId, u64)> =
        pair_counts.into_iter().filter(|&(_, c)| c >= k).map(|((a, b), c)| (a, b, c)).collect();
    out.sort_unstable();
    out
}

/// Weak ties per node: for centre `v`, counts pairs `(a, b)` with `a→v`,
/// `v→b`, `a ≠ b`, where `a` and `b` are not adjacent (undirected check) —
/// `v` bridges an otherwise-disconnected pair.
pub fn weak_ties(graph: &EdgeList) -> Vec<u64> {
    let n = graph.num_vertices as usize;
    let mut und: Vec<FxHashSet<VertexId>> = vec![FxHashSet::default(); n];
    let mut ins: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut outs: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut seen: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
    for e in &graph.edges {
        if e.src == e.dst || !seen.insert((e.src, e.dst)) {
            continue;
        }
        und[e.src as usize].insert(e.dst);
        und[e.dst as usize].insert(e.src);
        outs[e.src as usize].push(e.dst);
        ins[e.dst as usize].push(e.src);
    }
    let mut ties = vec![0u64; n];
    for v in 0..n {
        for &a in &ins[v] {
            for &b in &outs[v] {
                if a != b && a != v as u64 && b != v as u64 && !und[a as usize].contains(&b) {
                    ties[v] += 1;
                }
            }
        }
    }
    ties
}

#[cfg(test)]
mod tests {
    use super::*;
    use vertexica_common::graph::Edge;

    fn triangle_plus_tail() -> EdgeList {
        // Triangle 0-1-2 (undirected) plus tail 2→3.
        EdgeList::from_pairs([(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hubs() {
        // Star: everyone points at 0.
        let g = EdgeList::from_pairs([(1, 0), (2, 0), (3, 0), (4, 0)]);
        let pr = pagerank(&g, 20, 0.85);
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pr[0] > pr[1]);
        assert!((pr[1] - pr[4]).abs() < 1e-12);
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        let g = EdgeList::from_pairs([(0, 1), (1, 2), (2, 0)]);
        let pr = pagerank(&g, 50, 0.85);
        for r in &pr {
            assert!((r - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sssp_weighted() {
        let g = EdgeList::new(
            4,
            vec![
                Edge::weighted(0, 1, 1.0),
                Edge::weighted(1, 2, 1.0),
                Edge::weighted(0, 2, 5.0),
                Edge::weighted(2, 3, 0.5),
            ],
        );
        let d = sssp(&g, 0);
        assert_eq!(d, vec![0.0, 1.0, 2.0, 2.5]);
    }

    #[test]
    fn sssp_unreachable_is_infinite() {
        let g = EdgeList::from_pairs([(0, 1), (2, 3)]);
        let d = sssp(&g, 0);
        assert!(d[2].is_infinite());
    }

    #[test]
    fn wcc_labels_by_min_id() {
        let g = EdgeList::from_pairs([(0, 1), (1, 2), (3, 4)]);
        assert_eq!(weakly_connected_components(&g), vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn wcc_ignores_direction() {
        let g = EdgeList::from_pairs([(2, 0), (1, 2)]);
        assert_eq!(weakly_connected_components(&g), vec![0, 0, 0]);
    }

    #[test]
    fn triangles_counted_once() {
        let g = triangle_plus_tail();
        assert_eq!(triangle_count(&g), 1);
        assert_eq!(per_node_triangles(&g), vec![1, 1, 1, 0]);
    }

    #[test]
    fn clustering_coefficients() {
        let g = triangle_plus_tail();
        let c = local_clustering(&g);
        assert!((c[0] - 1.0).abs() < 1e-9); // 0's neighbours {1,2} are linked
        assert!((c[2] - 1.0 / 3.0).abs() < 1e-9); // {0,1,3}: one of three pairs
        assert_eq!(c[3], 0.0); // degree 1
    }

    #[test]
    fn strong_overlap_pairs() {
        // 0 and 1 share out-neighbours {2, 3}; 4 shares only {2} with them.
        let g = EdgeList::from_pairs([(0, 2), (0, 3), (1, 2), (1, 3), (4, 2)]);
        let pairs = strong_overlap(&g, 2);
        assert_eq!(pairs, vec![(0, 1, 2)]);
        let loose = strong_overlap(&g, 1);
        assert_eq!(loose.len(), 3); // (0,1), (0,4), (1,4)
    }

    #[test]
    fn weak_ties_detects_bridges() {
        // a=0 → v=1 → b=2 with no 0–2 edge: vertex 1 bridges one pair.
        let g = EdgeList::from_pairs([(0, 1), (1, 2)]);
        assert_eq!(weak_ties(&g), vec![0, 1, 0]);
        // Close the triangle: no weak tie anymore.
        let g = EdgeList::from_pairs([(0, 1), (1, 2), (0, 2)]);
        assert_eq!(weak_ties(&g), vec![0, 0, 0]);
    }
}
