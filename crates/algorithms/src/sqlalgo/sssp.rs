//! Single-source shortest paths in pure SQL (Bellman–Ford with early exit).

use vertexica::{GraphSession, VertexicaResult};
use vertexica_common::graph::VertexId;

/// "Infinity" sentinel representable as a SQL literal. (`f64` formatting
/// would expand 1e308 to 309 digits, which the lexer reads as an overflowing
/// integer — so the SQL text uses the scientific-notation literal.)
const INF: f64 = 1e308;
const INF_SQL: &str = "1e308";

/// SSSP by relaxation rounds: each round joins the frontier distances with
/// the edge table, takes the per-destination MIN, and stops when no distance
/// improves. Unreachable vertices report `f64::INFINITY`.
pub fn sssp_sql(session: &GraphSession, source: VertexId) -> VertexicaResult<Vec<(VertexId, f64)>> {
    let db = session.db();
    let v = session.vertex_table();
    let e = session.edge_table();
    let g = session.name();
    let dist = format!("{g}__dist");
    let dist_next = format!("{g}__dist_next");
    for t in [&dist, &dist_next] {
        db.catalog().drop_table_if_exists(t)?;
    }

    db.execute(&format!(
        "CREATE TABLE {dist} AS \
         SELECT v.id AS id, CASE WHEN v.id = {source} THEN 0.0 ELSE {INF_SQL} END AS d \
         FROM {v} v"
    ))?;

    let n = session.num_vertices()?.max(1);
    for _ in 0..n {
        db.execute(&format!(
            "CREATE TABLE {dist_next} AS \
             SELECT v.id AS id, LEAST(d0.d, COALESCE(m.best, {INF_SQL})) AS d \
             FROM {v} v \
             JOIN {dist} d0 ON v.id = d0.id \
             LEFT JOIN (SELECT e.dst AS id, MIN(d.d + e.weight) AS best \
                        FROM {e} e JOIN {dist} d ON d.id = e.src \
                        WHERE d.d < {INF_SQL} \
                        GROUP BY e.dst) m ON v.id = m.id"
        ))?;
        let improved = db.query_int(&format!(
            "SELECT COUNT(*) FROM {dist_next} a JOIN {dist} b ON a.id = b.id \
             WHERE a.d < b.d"
        ))?;
        db.catalog().swap(&dist, &dist_next)?;
        db.catalog().drop_table_if_exists(&dist_next)?;
        if improved == 0 {
            break;
        }
    }

    let rows = db.query(&format!("SELECT id, d FROM {dist} ORDER BY id"))?;
    db.catalog().drop_table_if_exists(&dist)?;
    Ok(rows
        .into_iter()
        .map(|r| {
            let d = r[1].as_float().unwrap_or(INF);
            (r[0].as_int().unwrap_or(0) as VertexId, if d >= INF { f64::INFINITY } else { d })
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::sqlalgo::testutil::session_with;
    use vertexica_common::graph::{Edge, EdgeList};

    #[test]
    fn matches_dijkstra() {
        let graph = EdgeList::new(
            6,
            vec![
                Edge::weighted(0, 1, 2.0),
                Edge::weighted(0, 2, 4.0),
                Edge::weighted(1, 2, 1.0),
                Edge::weighted(2, 3, 3.0),
                Edge::weighted(1, 3, 7.0),
                Edge::weighted(3, 4, 1.0),
            ],
        );
        let session = session_with(&graph);
        let sql = sssp_sql(&session, 0).unwrap();
        let expected = reference::sssp(&graph, 0);
        for (id, d) in sql {
            let want = expected[id as usize];
            if want.is_infinite() {
                assert!(d.is_infinite(), "vertex {id} should be unreachable");
            } else {
                assert!((d - want).abs() < 1e-9, "vertex {id}: {d} vs {want}");
            }
        }
    }

    #[test]
    fn early_exit_on_convergence() {
        // A 20-chain converges in 20 relaxations even though n allows more.
        let graph = EdgeList::from_pairs((0..20u64).map(|i| (i, i + 1)));
        let session = session_with(&graph);
        let sql = sssp_sql(&session, 0).unwrap();
        assert_eq!(sql[20].1, 20.0);
    }

    #[test]
    fn source_not_zero() {
        let graph = EdgeList::from_pairs([(0, 1), (1, 2)]);
        let session = session_with(&graph);
        let sql = sssp_sql(&session, 2).unwrap();
        assert!(sql[0].1.is_infinite());
        assert_eq!(sql[2].1, 0.0);
    }
}
