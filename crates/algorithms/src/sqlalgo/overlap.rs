//! Strong overlap (§3.2): node pairs sharing many out-neighbours.

use vertexica::{GraphSession, VertexicaResult};
use vertexica_common::graph::VertexId;

/// Finds ordered pairs `(a < b)` with at least `k` common out-neighbours.
/// Returns `(a, b, common_count)` sorted by pair.
pub fn strong_overlap_sql(
    session: &GraphSession,
    k: u64,
) -> VertexicaResult<Vec<(VertexId, VertexId, u64)>> {
    let db = session.db();
    let e = session.edge_table();
    let g = session.name();
    let de = format!("{g}__dedge");
    db.catalog().drop_table_if_exists(&de)?;
    // Distinct edges: duplicate src→dst rows must not inflate overlap.
    db.execute(&format!("CREATE TABLE {de} AS SELECT DISTINCT src, dst FROM {e}"))?;
    let rows = db.query(&format!(
        "SELECT e1.src AS a, e2.src AS b, COUNT(*) AS common \
         FROM {de} e1 JOIN {de} e2 ON e1.dst = e2.dst \
         WHERE e1.src < e2.src \
         GROUP BY e1.src, e2.src \
         HAVING COUNT(*) >= {k} \
         ORDER BY a, b"
    ))?;
    db.catalog().drop_table_if_exists(&de)?;
    Ok(rows
        .into_iter()
        .map(|r| {
            (
                r[0].as_int().unwrap_or(0) as VertexId,
                r[1].as_int().unwrap_or(0) as VertexId,
                r[2].as_int().unwrap_or(0) as u64,
            )
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::sqlalgo::testutil::session_with;
    use vertexica_common::graph::EdgeList;

    #[test]
    fn matches_reference() {
        let graph = EdgeList::from_pairs([(0, 2), (0, 3), (1, 2), (1, 3), (4, 2), (4, 3), (5, 2)]);
        let session = session_with(&graph);
        let sql = strong_overlap_sql(&session, 2).unwrap();
        let expected = reference::strong_overlap(&graph, 2);
        assert_eq!(sql, expected);
        // Pairs {0,1}, {0,4}, {1,4} all share {2,3}.
        assert_eq!(sql.len(), 3);
        assert!(sql.iter().all(|&(_, _, c)| c == 2));
    }

    #[test]
    fn threshold_filters() {
        let graph = EdgeList::from_pairs([(0, 2), (1, 2)]);
        let session = session_with(&graph);
        assert_eq!(strong_overlap_sql(&session, 2).unwrap().len(), 0);
        assert_eq!(strong_overlap_sql(&session, 1).unwrap(), vec![(0, 1, 1)]);
    }

    #[test]
    fn duplicate_edges_not_double_counted() {
        let graph = EdgeList::from_pairs([(0, 2), (0, 2), (1, 2), (1, 2)]);
        let session = session_with(&graph);
        assert_eq!(strong_overlap_sql(&session, 1).unwrap(), vec![(0, 1, 1)]);
    }
}
