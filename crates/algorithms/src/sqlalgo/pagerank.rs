//! PageRank in pure SQL: join-aggregate per iteration, CTAS + swap.

use vertexica::{GraphSession, VertexicaResult};
use vertexica_common::graph::VertexId;

/// PageRank with damping and dangling-mass redistribution, `iterations`
/// updates. Semantics match [`crate::reference::pagerank`] exactly.
pub fn pagerank_sql(
    session: &GraphSession,
    iterations: usize,
    damping: f64,
) -> VertexicaResult<Vec<(VertexId, f64)>> {
    let db = session.db();
    let v = session.vertex_table();
    let e = session.edge_table();
    let g = session.name();
    let pr = format!("{g}__pr");
    let pr_next = format!("{g}__pr_next");
    let deg = format!("{g}__outdeg");
    for t in [&pr, &pr_next, &deg] {
        db.catalog().drop_table_if_exists(t)?;
    }

    let n = session.num_vertices()?.max(1);
    // Out-degrees once.
    db.execute(&format!(
        "CREATE TABLE {deg} AS \
         SELECT v.id AS id, COUNT(e.src) AS d FROM {v} v \
         LEFT JOIN {e} e ON v.id = e.src GROUP BY v.id"
    ))?;
    // Uniform start. The rank table also carries each vertex's pre-divided
    // out-share, so the per-iteration edge join touches a single table — the
    // kind of hand-tuning the paper's "meticulously optimized SQL" refers to.
    db.execute(&format!(
        "CREATE TABLE {pr} AS \
         SELECT o.id AS id, 1.0 / {n} AS rank, \
                CASE WHEN o.d > 0 THEN 1.0 / ({n} * o.d) ELSE 0.0 END AS share, \
                o.d AS d \
         FROM {deg} o"
    ))?;

    for _ in 0..iterations {
        db.execute(&format!(
            "CREATE TABLE {pr_next} AS \
             SELECT r.id AS id, r.rank AS rank, \
                    CASE WHEN o.d > 0 THEN r.rank / o.d ELSE 0.0 END AS share, \
                    o.d AS d \
             FROM (SELECT v.id AS id, \
                          (1.0 - {damping}) / {n} + \
                          {damping} * (COALESCE(c.contrib, 0.0) + dang.mass / {n}) AS rank \
                   FROM {v} v \
                   LEFT JOIN (SELECT e.dst AS id, SUM(p.share) AS contrib \
                              FROM {e} e JOIN {pr} p ON p.id = e.src \
                              GROUP BY e.dst) c ON v.id = c.id \
                   CROSS JOIN (SELECT COALESCE(SUM(p.rank), 0.0) AS mass \
                               FROM {pr} p WHERE p.d = 0) dang) r \
             JOIN {deg} o ON r.id = o.id"
        ))?;
        db.catalog().swap(&pr, &pr_next)?;
        db.catalog().drop_table_if_exists(&pr_next)?;
    }

    let rows = db.query(&format!("SELECT id, rank FROM {pr} ORDER BY id"))?;
    for t in [&pr, &deg] {
        db.catalog().drop_table_if_exists(t)?;
    }
    Ok(rows
        .into_iter()
        .map(|r| (r[0].as_int().unwrap_or(0) as VertexId, r[1].as_float().unwrap_or(0.0)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::sqlalgo::testutil::session_with;
    use vertexica_common::graph::EdgeList;

    #[test]
    fn matches_reference_with_dangling() {
        let graph = EdgeList::from_pairs([(0, 1), (1, 2), (2, 0), (2, 3), (1, 3)]);
        let session = session_with(&graph);
        let sql_pr = pagerank_sql(&session, 12, 0.85).unwrap();
        let expected = reference::pagerank(&graph, 12, 0.85);
        assert_eq!(sql_pr.len(), expected.len());
        for (id, rank) in sql_pr {
            assert!(
                (rank - expected[id as usize]).abs() < 1e-9,
                "vertex {id}: {rank} vs {}",
                expected[id as usize]
            );
        }
    }

    #[test]
    fn ranks_sum_to_one() {
        let graph = EdgeList::from_pairs([(0, 1), (1, 0), (2, 0)]);
        let session = session_with(&graph);
        let pr = pagerank_sql(&session, 10, 0.85).unwrap();
        let total: f64 = pr.iter().map(|(_, r)| r).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn temp_tables_cleaned_up() {
        let graph = EdgeList::from_pairs([(0, 1)]);
        let session = session_with(&graph);
        pagerank_sql(&session, 2, 0.85).unwrap();
        assert!(!session.db().catalog().contains("t__pr"));
        assert!(!session.db().catalog().contains("t__outdeg"));
    }
}
