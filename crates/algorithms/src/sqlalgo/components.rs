//! Connected components in SQL: iterative min-label propagation.

use vertexica::{GraphSession, VertexicaResult};
use vertexica_common::graph::VertexId;

/// Min-label propagation until fixpoint. Labels propagate along *out* edges;
/// load the graph with both directions (undirected) for weakly connected
/// components.
pub fn connected_components_sql(session: &GraphSession) -> VertexicaResult<Vec<(VertexId, u64)>> {
    let db = session.db();
    let v = session.vertex_table();
    let e = session.edge_table();
    let g = session.name();
    let comp = format!("{g}__comp");
    let comp_next = format!("{g}__comp_next");
    for t in [&comp, &comp_next] {
        db.catalog().drop_table_if_exists(t)?;
    }

    db.execute(&format!("CREATE TABLE {comp} AS SELECT v.id AS id, v.id AS label FROM {v} v"))?;

    let n = session.num_vertices()?.max(1);
    for _ in 0..n {
        db.execute(&format!(
            "CREATE TABLE {comp_next} AS \
             SELECT v.id AS id, LEAST(c.label, COALESCE(m.minl, c.label)) AS label \
             FROM {v} v \
             JOIN {comp} c ON v.id = c.id \
             LEFT JOIN (SELECT e.dst AS id, MIN(c.label) AS minl \
                        FROM {e} e JOIN {comp} c ON c.id = e.src \
                        GROUP BY e.dst) m ON v.id = m.id"
        ))?;
        let changed = db.query_int(&format!(
            "SELECT COUNT(*) FROM {comp_next} a JOIN {comp} b ON a.id = b.id \
             WHERE a.label < b.label"
        ))?;
        db.catalog().swap(&comp, &comp_next)?;
        db.catalog().drop_table_if_exists(&comp_next)?;
        if changed == 0 {
            break;
        }
    }

    let rows = db.query(&format!("SELECT id, label FROM {comp} ORDER BY id"))?;
    db.catalog().drop_table_if_exists(&comp)?;
    Ok(rows
        .into_iter()
        .map(|r| (r[0].as_int().unwrap_or(0) as VertexId, r[1].as_int().unwrap_or(0) as u64))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::sqlalgo::testutil::session_with;
    use vertexica_common::graph::EdgeList;

    #[test]
    fn matches_union_find_on_undirected() {
        let graph = EdgeList::from_pairs([(0, 1), (1, 2), (3, 4), (5, 6), (6, 3)]).undirected();
        let session = session_with(&graph);
        let sql = connected_components_sql(&session).unwrap();
        let expected = reference::weakly_connected_components(&graph);
        for (id, label) in sql {
            assert_eq!(label, expected[id as usize], "vertex {id}");
        }
    }

    #[test]
    fn singleton_components() {
        let graph = EdgeList::new(4, vec![]);
        let session = session_with(&graph);
        let sql = connected_components_sql(&session).unwrap();
        assert_eq!(sql, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn chain_converges_to_zero() {
        let graph = EdgeList::from_pairs((0..10u64).map(|i| (i, i + 1))).undirected();
        let session = session_with(&graph);
        let sql = connected_components_sql(&session).unwrap();
        assert!(sql.iter().all(|&(_, l)| l == 0));
    }
}
