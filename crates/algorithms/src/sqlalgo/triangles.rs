//! Triangle counting in SQL (§3.2) — the classic 1-hop query that is
//! "very difficult or even not possible on traditional graph processing
//! systems" but a three-way self-join in a relational engine.

use vertexica::{GraphSession, VertexicaResult};
use vertexica_common::graph::VertexId;

use super::build_undirected;

/// Total triangle count (undirected interpretation).
pub fn triangle_count_sql(session: &GraphSession) -> VertexicaResult<u64> {
    let db = session.db();
    let ue = format!("{}__ue", session.name());
    build_undirected(session, &ue)?;
    // Oriented a < b < c: each triangle counted exactly once.
    let n = db.query_int(&format!(
        "SELECT COUNT(*) FROM {ue} e1 \
         JOIN {ue} e2 ON e2.a = e1.b \
         JOIN {ue} e3 ON e3.a = e1.a AND e3.b = e2.b"
    ))?;
    db.catalog().drop_table_if_exists(&ue)?;
    Ok(n as u64)
}

/// Triangles per node (a node participates in every triangle covering it).
pub fn per_node_triangles_sql(session: &GraphSession) -> VertexicaResult<Vec<(VertexId, u64)>> {
    let db = session.db();
    let g = session.name();
    let ue = format!("{g}__ue");
    let tri = format!("{g}__tri");
    build_undirected(session, &ue)?;
    db.catalog().drop_table_if_exists(&tri)?;
    // Materialize oriented triangles, then credit all three corners.
    db.execute(&format!(
        "CREATE TABLE {tri} AS \
         SELECT e1.a AS x, e1.b AS y, e2.b AS z FROM {ue} e1 \
         JOIN {ue} e2 ON e2.a = e1.b \
         JOIN {ue} e3 ON e3.a = e1.a AND e3.b = e2.b"
    ))?;
    let rows = db.query(&format!(
        "SELECT v.id, COUNT(t.c) FROM {v} v \
         LEFT JOIN (SELECT x AS c FROM {tri} UNION ALL \
                    SELECT y FROM {tri} UNION ALL \
                    SELECT z FROM {tri}) t ON v.id = t.c \
         GROUP BY v.id ORDER BY v.id",
        v = session.vertex_table()
    ))?;
    for t in [&ue, &tri] {
        db.catalog().drop_table_if_exists(t)?;
    }
    Ok(rows
        .into_iter()
        .map(|r| (r[0].as_int().unwrap_or(0) as VertexId, r[1].as_int().unwrap_or(0) as u64))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::sqlalgo::testutil::session_with;
    use vertexica_common::graph::EdgeList;

    fn two_triangles_sharing_an_edge() -> EdgeList {
        // Triangles {0,1,2} and {1,2,3}.
        EdgeList::from_pairs([(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn total_count_matches_reference() {
        let graph = two_triangles_sharing_an_edge();
        let session = session_with(&graph);
        assert_eq!(triangle_count_sql(&session).unwrap(), 2);
        assert_eq!(reference::triangle_count(&graph), 2);
    }

    #[test]
    fn per_node_counts_match_reference() {
        let graph = two_triangles_sharing_an_edge();
        let session = session_with(&graph);
        let sql = per_node_triangles_sql(&session).unwrap();
        let expected = reference::per_node_triangles(&graph);
        for (id, c) in sql {
            assert_eq!(c, expected[id as usize], "vertex {id}");
        }
    }

    #[test]
    fn direction_and_duplicates_ignored() {
        // Same triangle expressed with mixed directions and duplicates.
        let graph = EdgeList::from_pairs([(0, 1), (1, 0), (2, 1), (0, 2), (0, 2)]);
        let session = session_with(&graph);
        assert_eq!(triangle_count_sql(&session).unwrap(), 1);
    }

    #[test]
    fn triangle_free_graph() {
        let graph = EdgeList::from_pairs([(0, 1), (1, 2), (2, 3)]);
        let session = session_with(&graph);
        assert_eq!(triangle_count_sql(&session).unwrap(), 0);
    }
}
