//! Hand-written SQL implementations of graph algorithms — the
//! "Vertexica (SQL)" contender in Figure 2 and the toolbar's five SQL
//! algorithms (§4.1).
//!
//! Each function drives plain SQL against a [`vertexica::GraphSession`]'s
//! tables; iterative algorithms loop CREATE-TABLE-AS + swap in the driver
//! (the pattern Vertexica's own superstep machinery uses). Temporary tables
//! are prefixed with the graph name and dropped on completion.

mod clustering;
mod components;
mod overlap;
mod pagerank;
mod sssp;
mod triangles;
mod weak_ties;

pub use clustering::{global_clustering_sql, local_clustering_sql};
pub use components::connected_components_sql;
pub use overlap::strong_overlap_sql;
pub use pagerank::pagerank_sql;
pub use sssp::sssp_sql;
pub use triangles::{per_node_triangles_sql, triangle_count_sql};
pub use weak_ties::weak_ties_sql;

use vertexica::{GraphSession, VertexicaResult};
use vertexica_common::graph::VertexId;

/// Materializes `(id, score)` pairs into a table (dropping any previous
/// incarnation) so downstream SQL can join against algorithm output — the
/// glue for hybrid queries and pipelines.
pub fn store_scores(
    session: &GraphSession,
    table: &str,
    scores: &[(VertexId, f64)],
) -> VertexicaResult<()> {
    let db = session.db();
    db.catalog().drop_table_if_exists(table)?;
    db.execute(&format!("CREATE TABLE {table} (id BIGINT NOT NULL, score FLOAT) ORDER BY id"))?;
    if scores.is_empty() {
        return Ok(());
    }
    // Chunked multi-row inserts.
    for chunk in scores.chunks(512) {
        let values: Vec<String> = chunk.iter().map(|(id, s)| format!("({id}, {s:?})")).collect();
        db.execute(&format!("INSERT INTO {table} VALUES {}", values.join(", ")))?;
    }
    Ok(())
}

/// Builds the canonical undirected edge table `{name}` from the session's
/// edge table: one row per unordered pair `(a < b)`, self-loops removed.
/// Several SQL algorithms (triangles, weak ties, clustering) share it.
pub(crate) fn build_undirected(session: &GraphSession, name: &str) -> VertexicaResult<()> {
    let db = session.db();
    db.catalog().drop_table_if_exists(name)?;
    db.execute(&format!(
        "CREATE TABLE {name} AS \
         SELECT DISTINCT LEAST(src, dst) AS a, GREATEST(src, dst) AS b \
         FROM {e} WHERE src <> dst",
        e = session.edge_table()
    ))?;
    Ok(())
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::Arc;
    use vertexica::sql::Database;
    use vertexica::GraphSession;
    use vertexica_common::graph::EdgeList;

    /// A session with a loaded graph, for SQL algorithm tests.
    pub fn session_with(graph: &EdgeList) -> GraphSession {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db, "t").unwrap();
        g.load_edges(graph).unwrap();
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::session_with;
    use vertexica::storage::Value;
    use vertexica_common::graph::EdgeList;

    #[test]
    fn store_scores_roundtrip() {
        let g = session_with(&EdgeList::from_pairs([(0, 1)]));
        store_scores(&g, "scores", &[(0, 0.25), (1, 0.75)]).unwrap();
        let rows = g.db().query("SELECT id, score FROM scores ORDER BY id").unwrap();
        assert_eq!(rows[0], vec![Value::Int(0), Value::Float(0.25)]);
        assert_eq!(rows[1], vec![Value::Int(1), Value::Float(0.75)]);
        // Overwrite works.
        store_scores(&g, "scores", &[(5, 1.0)]).unwrap();
        assert_eq!(g.db().query_int("SELECT COUNT(*) FROM scores").unwrap(), 1);
    }

    #[test]
    fn undirected_canonicalizes() {
        let g = session_with(&EdgeList::from_pairs([(0, 1), (1, 0), (2, 2), (1, 2)]));
        build_undirected(&g, "ue").unwrap();
        let rows = g.db().query("SELECT a, b FROM ue ORDER BY a, b").unwrap();
        assert_eq!(rows.len(), 2); // (0,1) and (1,2); self-loop dropped
        assert_eq!(rows[0], vec![Value::Int(0), Value::Int(1)]);
    }
}
