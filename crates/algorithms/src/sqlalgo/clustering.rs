//! Clustering coefficients in SQL (triangles ÷ wedges).

use vertexica::{GraphSession, VertexicaResult};
use vertexica_common::graph::VertexId;

use super::{build_undirected, per_node_triangles_sql};

/// Local clustering coefficient per node:
/// `2·triangles(v) / (deg(v)·(deg(v)−1))` over the undirected graph
/// (0 for degree < 2). Ordered by id.
pub fn local_clustering_sql(session: &GraphSession) -> VertexicaResult<Vec<(VertexId, f64)>> {
    let db = session.db();
    let g = session.name();
    let ue = format!("{g}__ue_cc");
    build_undirected(session, &ue)?;

    // Undirected degree per vertex.
    let deg_rows = db.query(&format!(
        "SELECT v.id, COUNT(u.a) FROM {v} v \
         LEFT JOIN (SELECT a FROM {ue} UNION ALL SELECT b FROM {ue}) u ON v.id = u.a \
         GROUP BY v.id ORDER BY v.id",
        v = session.vertex_table()
    ))?;
    db.catalog().drop_table_if_exists(&ue)?;

    let triangles = per_node_triangles_sql(session)?;
    Ok(deg_rows
        .into_iter()
        .zip(triangles)
        .map(|(dr, (id, tri))| {
            let d = dr[1].as_int().unwrap_or(0) as f64;
            let coeff = if d < 2.0 { 0.0 } else { 2.0 * tri as f64 / (d * (d - 1.0)) };
            (id, coeff)
        })
        .collect())
}

/// Global clustering coefficient: `3·triangles / wedges` where a wedge is an
/// ordered-independent pair of distinct neighbours (`Σ_v deg(v)·(deg(v)−1)/2`).
pub fn global_clustering_sql(session: &GraphSession) -> VertexicaResult<f64> {
    let db = session.db();
    let g = session.name();
    let ue = format!("{g}__ue_gc");
    build_undirected(session, &ue)?;
    let wedges = db
        .query_scalar(&format!(
            "SELECT COALESCE(SUM(d.deg * (d.deg - 1) / 2.0), 0.0) FROM \
             (SELECT u.a AS id, COUNT(*) AS deg \
              FROM (SELECT a FROM {ue} UNION ALL SELECT b AS a FROM {ue}) u \
              GROUP BY u.a) d"
        ))?
        .as_float()
        .unwrap_or(0.0);
    db.catalog().drop_table_if_exists(&ue)?;
    let triangles = super::triangle_count_sql(session)? as f64;
    Ok(if wedges == 0.0 { 0.0 } else { 3.0 * triangles / wedges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::sqlalgo::testutil::session_with;
    use vertexica_common::graph::EdgeList;

    #[test]
    fn local_matches_reference() {
        // Triangle 0-1-2 plus tail 2-3.
        let graph = EdgeList::from_pairs([(0, 1), (1, 2), (0, 2), (2, 3)]);
        let session = session_with(&graph);
        let sql = local_clustering_sql(&session).unwrap();
        let expected = reference::local_clustering(&graph);
        for (id, c) in sql {
            assert!(
                (c - expected[id as usize]).abs() < 1e-9,
                "vertex {id}: {c} vs {}",
                expected[id as usize]
            );
        }
    }

    #[test]
    fn global_on_complete_graph_is_one() {
        use vertexica_graphgen::models::complete;
        let session = session_with(&complete(5));
        let c = global_clustering_sql(&session).unwrap();
        assert!((c - 1.0).abs() < 1e-9, "got {c}");
    }

    #[test]
    fn global_on_star_is_zero() {
        use vertexica_graphgen::models::star;
        let session = session_with(&star(6));
        let c = global_clustering_sql(&session).unwrap();
        assert_eq!(c, 0.0);
    }

    #[test]
    fn triangle_free_graph_zero_local() {
        let graph = EdgeList::from_pairs([(0, 1), (1, 2)]);
        let session = session_with(&graph);
        let sql = local_clustering_sql(&session).unwrap();
        assert!(sql.iter().all(|&(_, c)| c == 0.0));
    }
}
