//! Weak ties (§3.2): nodes bridging otherwise-disconnected pairs.

use vertexica::{GraphSession, VertexicaResult};
use vertexica_common::graph::VertexId;

use super::build_undirected;

/// Per-node weak-tie counts: for a centre `v`, counts pairs `(a, b)` with
/// `a → v → b`, `a ≠ b`, where `a` and `b` have no (undirected) edge between
/// them. Implemented as: materialize the 2-path candidates with canonical
/// pair keys, anti-join against the undirected edge table via
/// `LEFT JOIN … IS NULL`. Returns all vertices (count 0 included), ordered
/// by id.
pub fn weak_ties_sql(session: &GraphSession) -> VertexicaResult<Vec<(VertexId, u64)>> {
    let db = session.db();
    let g = session.name();
    let e = session.edge_table();
    let ue = format!("{g}__ue");
    let cand = format!("{g}__wt_cand");
    let de = format!("{g}__wt_dedge");
    build_undirected(session, &ue)?;
    db.catalog().drop_table_if_exists(&cand)?;
    db.catalog().drop_table_if_exists(&de)?;

    db.execute(&format!(
        "CREATE TABLE {de} AS SELECT DISTINCT src, dst FROM {e} WHERE src <> dst"
    ))?;

    // 2-path candidates a → v → b with canonical (lo, hi) pair keys.
    db.execute(&format!(
        "CREATE TABLE {cand} AS \
         SELECT e1.dst AS v, LEAST(e1.src, e2.dst) AS lo, GREATEST(e1.src, e2.dst) AS hi \
         FROM {de} e1 JOIN {de} e2 ON e1.dst = e2.src \
         WHERE e1.src <> e2.dst AND e1.src <> e1.dst AND e2.src <> e2.dst"
    ))?;

    let rows = db.query(&format!(
        "SELECT vx.id, COUNT(c.v) FROM {v} vx \
         LEFT JOIN (SELECT m.v AS v FROM {cand} m \
                    LEFT JOIN {ue} u ON u.a = m.lo AND u.b = m.hi \
                    WHERE u.a IS NULL) c ON vx.id = c.v \
         GROUP BY vx.id ORDER BY vx.id",
        v = session.vertex_table()
    ))?;
    for t in [&ue, &cand, &de] {
        db.catalog().drop_table_if_exists(t)?;
    }
    Ok(rows
        .into_iter()
        .map(|r| (r[0].as_int().unwrap_or(0) as VertexId, r[1].as_int().unwrap_or(0) as u64))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::sqlalgo::testutil::session_with;
    use vertexica_common::graph::EdgeList;

    #[test]
    fn open_path_is_a_weak_tie() {
        let graph = EdgeList::from_pairs([(0, 1), (1, 2)]);
        let session = session_with(&graph);
        let wt = weak_ties_sql(&session).unwrap();
        assert_eq!(wt, vec![(0, 0), (1, 1), (2, 0)]);
    }

    #[test]
    fn closed_triangle_is_not() {
        let graph = EdgeList::from_pairs([(0, 1), (1, 2), (0, 2)]);
        let session = session_with(&graph);
        let wt = weak_ties_sql(&session).unwrap();
        assert!(wt.iter().all(|&(_, c)| c == 0), "{wt:?}");
    }

    #[test]
    fn matches_reference_on_random_graph() {
        use vertexica_graphgen::models::erdos_renyi;
        let graph = erdos_renyi(30, 90, 5);
        let session = session_with(&graph);
        let sql = weak_ties_sql(&session).unwrap();
        let expected = reference::weak_ties(&graph);
        for (id, c) in sql {
            assert_eq!(c, expected[id as usize], "vertex {id}");
        }
    }

    #[test]
    fn bridge_vertex_counts_both_directions_of_pairs_once() {
        // 0 → 1, 2 → 1, 1 → 3: pairs through 1: (0,3), (2,3).
        let graph = EdgeList::from_pairs([(0, 1), (2, 1), (1, 3)]);
        let session = session_with(&graph);
        let wt = weak_ties_sql(&session).unwrap();
        assert_eq!(wt[1].1, 2);
    }
}
