//! Graph algorithms for the Vertexica reproduction.
//!
//! Three families, mirroring the paper's toolbar (§4.1):
//!
//! * [`vc`] — **vertex-centric programs** (PageRank, single-source shortest
//!   paths, connected components, collaborative filtering, random walk with
//!   restart, label propagation). These implement
//!   [`vertexica_common::VertexProgram`] and therefore run unchanged on the
//!   relational Vertexica engine *and* on the Giraph-like BSP baseline.
//! * [`sqlalgo`] — **hand-written SQL implementations** ("Vertexica (SQL)"
//!   in Figure 2): PageRank, shortest paths, triangle counting, strong
//!   overlap, weak ties, connected components, clustering coefficients —
//!   executed against a [`vertexica::GraphSession`]'s tables.
//! * [`reference`](mod@reference) — straight-line in-memory implementations
//!   used by the test suite to validate both of the above (and the
//!   baselines).
//!
//! [`hybrid`] composes them into the paper's §3.2 hybrid analyses
//! (important bridges, SSSP from the most clustered node, localized
//! PageRank).

pub mod hybrid;
pub mod reference;
pub mod sqlalgo;
pub mod vc;
