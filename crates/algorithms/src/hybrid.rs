//! Hybrid graph queries (§3.2): vertex-centric + 1-hop analysis combined
//! through relational operators.
//!
//! The paper's examples, verbatim: "find all nodes which act as ties between
//! otherwise disconnected nodes and have PageRank greater than a threshold,
//! i.e. find sufficiently important nodes which act as bridges" and "compute
//! the single source shortest path with the source node being the node with
//! the maximum local clustering coefficient".

use std::sync::Arc;

use vertexica::{run_program, GraphSession, VertexicaConfig, VertexicaResult};
use vertexica_common::graph::VertexId;

use crate::sqlalgo::{local_clustering_sql, sssp_sql, store_scores, weak_ties_sql};
use crate::vc::PageRank;

/// Important bridges: nodes with at least `min_ties` weak ties *and*
/// PageRank above `rank_threshold`. PageRank runs vertex-centrically, weak
/// ties run in SQL, and the combination is a relational join over the
/// materialized results — the paper's poster-child hybrid query.
pub fn important_bridges(
    session: &GraphSession,
    pagerank_iterations: u64,
    rank_threshold: f64,
    min_ties: u64,
) -> VertexicaResult<Vec<(VertexId, f64, u64)>> {
    // Vertex-centric PageRank on the relational engine.
    run_program(
        session,
        Arc::new(PageRank::new(pagerank_iterations, 0.85)),
        &VertexicaConfig::default(),
    )?;
    let ranks: Vec<(VertexId, f64)> = session.vertex_values()?;
    store_scores(session, "hybrid_pagerank", &ranks)?;

    // 1-hop weak ties in SQL.
    let ties = weak_ties_sql(session)?;
    let tie_scores: Vec<(VertexId, f64)> = ties.iter().map(|&(id, c)| (id, c as f64)).collect();
    store_scores(session, "hybrid_ties", &tie_scores)?;

    // Relational combination.
    let rows = session.db().query(&format!(
        "SELECT p.id, p.score, t.score FROM hybrid_pagerank p \
         JOIN hybrid_ties t ON p.id = t.id \
         WHERE p.score > {rank_threshold} AND t.score >= {min_ties} \
         ORDER BY p.score DESC"
    ))?;
    for t in ["hybrid_pagerank", "hybrid_ties"] {
        session.db().catalog().drop_table_if_exists(t)?;
    }
    Ok(rows
        .into_iter()
        .map(|r| {
            (
                r[0].as_int().unwrap_or(0) as VertexId,
                r[1].as_float().unwrap_or(0.0),
                r[2].as_float().unwrap_or(0.0) as u64,
            )
        })
        .collect())
}

/// SSSP from the node with the maximum local clustering coefficient
/// ("the distance from the most clustered node to every other node").
/// Returns the chosen source and the distance vector.
pub fn sssp_from_most_clustered(
    session: &GraphSession,
) -> VertexicaResult<(VertexId, Vec<(VertexId, f64)>)> {
    let coeffs = local_clustering_sql(session)?;
    let source = coeffs
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|&(id, _)| id)
        .unwrap_or(0);
    let dist = sssp_sql(session, source)?;
    Ok((source, dist))
}

/// Localized PageRank (§1): restrict the graph to edges satisfying a SQL
/// predicate over the edge table (e.g. `etype = 'family'`), then run
/// PageRank on the resulting subgraph session. The subgraph is materialized
/// as `<name>` and returned for further analysis.
pub fn localized_pagerank(
    session: &GraphSession,
    edge_predicate: &str,
    subgraph_name: &str,
    iterations: u64,
) -> VertexicaResult<(GraphSession, Vec<(VertexId, f64)>)> {
    let db = session.db();
    // Build the subgraph: same vertices, filtered edges.
    let sub = GraphSession::create(db.clone(), subgraph_name)?;
    db.execute(&format!(
        "INSERT INTO {sv} SELECT id, CAST(NULL AS VARBINARY), FALSE FROM {v}",
        sv = sub.vertex_table(),
        v = session.vertex_table()
    ))?;
    db.execute(&format!(
        "INSERT INTO {se} SELECT src, dst, weight, created, etype FROM {e} \
         WHERE {edge_predicate}",
        se = sub.edge_table(),
        e = session.edge_table()
    ))?;

    run_program(&sub, Arc::new(PageRank::new(iterations, 0.85)), &VertexicaConfig::default())?;
    let ranks = sub.vertex_values()?;
    Ok((sub, ranks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vertexica::sql::Database;
    use vertexica_common::graph::{Edge, EdgeList};

    fn session_with(graph: &EdgeList) -> GraphSession {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db, "h").unwrap();
        g.load_edges(graph).unwrap();
        g
    }

    #[test]
    fn important_bridges_finds_the_bridge() {
        // Two clusters joined through vertex 2; 2 bridges many pairs and
        // receives lots of rank.
        let graph =
            EdgeList::from_pairs([(0, 2), (1, 2), (2, 3), (2, 4), (3, 4), (4, 3), (0, 1), (1, 0)]);
        let session = session_with(&graph);
        let bridges = important_bridges(&session, 10, 0.0, 1).unwrap();
        assert!(bridges.iter().any(|&(id, _, ties)| id == 2 && ties >= 4), "{bridges:?}");
        // Temp tables cleaned up.
        assert!(!session.db().catalog().contains("hybrid_pagerank"));
    }

    #[test]
    fn threshold_filters_bridges() {
        let graph = EdgeList::from_pairs([(0, 1), (1, 2)]);
        let session = session_with(&graph);
        let none = important_bridges(&session, 5, 10.0, 1).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn sssp_from_most_clustered_picks_triangle_member() {
        // Triangle {0,1,2} + pendant path 3→4: clustered nodes are 0,1,2.
        let graph = EdgeList::from_pairs([(0, 1), (1, 2), (2, 0), (3, 4)]);
        let session = session_with(&graph);
        let (source, dist) = sssp_from_most_clustered(&session).unwrap();
        assert!(source <= 2, "source {source}");
        assert_eq!(dist[source as usize].1, 0.0);
    }

    #[test]
    fn localized_pagerank_respects_edge_filter() {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db, "h").unwrap();
        g.load_edges_with_metadata(
            &[
                (Edge::new(0, 1), 0, Some("family".into())),
                (Edge::new(1, 0), 0, Some("family".into())),
                (Edge::new(1, 2), 0, Some("friend".into())),
                (Edge::new(2, 1), 0, Some("friend".into())),
            ],
            3,
        )
        .unwrap();
        let (sub, ranks) = localized_pagerank(&g, "etype = 'family'", "h_family", 8).unwrap();
        assert_eq!(sub.num_edges().unwrap(), 2);
        // Vertex 2 is isolated in the family subgraph: minimal rank.
        let r: Vec<f64> = ranks.iter().map(|&(_, v)| v).collect();
        assert!(r[2] < r[0]);
        assert!(r[2] < r[1]);
    }
}
