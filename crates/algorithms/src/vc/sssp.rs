//! Vertex-centric single-source shortest paths (Pregel's canonical example).

use vertexica_common::graph::VertexId;
use vertexica_common::pregel::{InitContext, VertexContext, VertexProgram};

/// SSSP by distance relaxation: runs until no distance improves.
#[derive(Debug, Clone)]
pub struct Sssp {
    pub source: VertexId,
}

impl Sssp {
    pub fn new(source: VertexId) -> Self {
        Sssp { source }
    }
}

impl VertexProgram for Sssp {
    type Value = f64;
    type Message = f64;

    fn initial_value(&self, id: VertexId, _init: &InitContext) -> f64 {
        if id == self.source {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn compute(&self, ctx: &mut dyn VertexContext<f64, f64>, messages: &[f64]) {
        let best = messages.iter().copied().fold(f64::INFINITY, f64::min);
        let improved = best < *ctx.value();
        if improved {
            ctx.set_value(best);
        }
        // Propagate on the first superstep (source only — every other vertex
        // is at ∞ and sending ∞+w is pointless) or whenever we improved.
        let should_send = (ctx.superstep() == 0 && ctx.value().is_finite()) || improved;
        if should_send {
            let d = *ctx.value();
            let sends: Vec<(VertexId, f64)> =
                ctx.out_edges().iter().map(|e| (e.dst, d + e.weight.max(0.0))).collect();
            for (t, dist) in sends {
                ctx.send_message(t, dist);
            }
        }
        ctx.vote_to_halt();
    }

    fn combine(&self, a: &f64, b: &f64) -> Option<f64> {
        Some(a.min(*b))
    }

    fn name(&self) -> &'static str {
        "sssp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use vertexica_common::graph::{Edge, EdgeList};
    use vertexica_giraph::GiraphEngine;

    #[test]
    fn matches_dijkstra_reference() {
        let g = EdgeList::new(
            6,
            vec![
                Edge::weighted(0, 1, 2.0),
                Edge::weighted(0, 2, 4.0),
                Edge::weighted(1, 2, 1.0),
                Edge::weighted(2, 3, 3.0),
                Edge::weighted(1, 3, 7.0),
                Edge::weighted(3, 4, 1.0),
            ],
        );
        let (values, _) = GiraphEngine::default().run(&g, &Sssp::new(0));
        let expected = reference::sssp(&g, 0);
        assert_eq!(values, expected);
        assert!(values[5].is_infinite()); // vertex 5 isolated
    }

    #[test]
    fn converges_without_iteration_bound() {
        // A long chain must propagate fully.
        let g = EdgeList::from_pairs((0..50u64).map(|i| (i, i + 1)));
        let (values, stats) = GiraphEngine::default().run(&g, &Sssp::new(0));
        assert_eq!(values[50], 50.0);
        assert!(stats.supersteps >= 50);
    }

    #[test]
    fn source_distance_is_zero() {
        let g = EdgeList::from_pairs([(0, 1), (1, 2)]);
        let (values, _) = GiraphEngine::default().run(&g, &Sssp::new(1));
        assert_eq!(values[1], 0.0);
        assert_eq!(values[2], 1.0);
        assert!(values[0].is_infinite());
    }
}
