//! Random walk with restart (personalized PageRank), §1's algorithm list.

use vertexica_common::graph::VertexId;
use vertexica_common::pregel::{InitContext, VertexContext, VertexProgram};

/// Random walk with restart: stationary visiting probability of a walker
/// that follows out-edges with probability `c` and teleports back to the
/// source with probability `1 − c`. Computed by synchronous power iteration.
#[derive(Debug, Clone)]
pub struct RandomWalkWithRestart {
    pub source: VertexId,
    pub restart: f64,
    pub iterations: u64,
}

impl RandomWalkWithRestart {
    pub fn new(source: VertexId, iterations: u64) -> Self {
        RandomWalkWithRestart { source, restart: 0.15, iterations }
    }
}

impl VertexProgram for RandomWalkWithRestart {
    type Value = f64;
    type Message = f64;

    fn initial_value(&self, id: VertexId, _init: &InitContext) -> f64 {
        if id == self.source {
            1.0
        } else {
            0.0
        }
    }

    fn compute(&self, ctx: &mut dyn VertexContext<f64, f64>, messages: &[f64]) {
        if ctx.superstep() > 0 {
            let incoming: f64 = messages.iter().sum();
            let restart_mass = if ctx.vertex_id() == self.source { self.restart } else { 0.0 };
            ctx.set_value((1.0 - self.restart) * incoming + restart_mass);
        }
        if ctx.superstep() < self.iterations {
            let v = *ctx.value();
            let edges = ctx.out_edges();
            if v > 0.0 && !edges.is_empty() {
                let share = v / edges.len() as f64;
                let targets: Vec<VertexId> = edges.iter().map(|e| e.dst).collect();
                for t in targets {
                    ctx.send_message(t, share);
                }
            }
        } else {
            ctx.vote_to_halt();
        }
    }

    fn combine(&self, a: &f64, b: &f64) -> Option<f64> {
        Some(a + b)
    }

    fn max_supersteps(&self) -> u64 {
        self.iterations + 1
    }

    fn name(&self) -> &'static str {
        "random-walk-with-restart"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vertexica_common::graph::EdgeList;
    use vertexica_giraph::GiraphEngine;

    #[test]
    fn proximity_decays_with_distance() {
        // Chain 0 → 1 → 2 → 3.
        let g = EdgeList::from_pairs([(0, 1), (1, 2), (2, 3)]);
        let (values, _) = GiraphEngine::default().run(&g, &RandomWalkWithRestart::new(0, 30));
        assert!(values[0] > values[1]);
        assert!(values[1] > values[2]);
        assert!(values[2] > values[3]);
        assert!(values[3] > 0.0);
    }

    #[test]
    fn source_gets_restart_mass() {
        let g = EdgeList::from_pairs([(0, 1), (1, 0)]);
        let (values, _) = GiraphEngine::default().run(&g, &RandomWalkWithRestart::new(0, 50));
        assert!(values[0] > values[1]);
        assert!(values[0] >= 0.15);
    }

    #[test]
    fn unreachable_vertices_score_zero() {
        let g = EdgeList::from_pairs([(0, 1), (2, 3)]);
        let (values, _) = GiraphEngine::default().run(&g, &RandomWalkWithRestart::new(0, 10));
        assert_eq!(values[2], 0.0);
        assert_eq!(values[3], 0.0);
    }
}
