//! Vertex-centric programs (§3.1).
//!
//! Each type implements [`vertexica_common::VertexProgram`] and runs
//! unchanged on the relational Vertexica engine
//! ([`vertexica::run_program`]) and on the Giraph-like BSP baseline —
//! which is exactly the comparison Figure 2 makes.

mod collab;
mod components;
mod pagerank;
mod sssp;
mod walks;

pub use collab::{rmse as cf_rmse, CfMessage, CollaborativeFiltering};
pub use components::{ConnectedComponents, LabelPropagation};
pub use pagerank::PageRank;
pub use sssp::Sssp;
pub use walks::RandomWalkWithRestart;
