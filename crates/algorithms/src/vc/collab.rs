//! Collaborative filtering on a bipartite ratings graph (§3.1(iv)).
//!
//! Matrix factorization by message-passing gradient descent: users occupy ids
//! `0..num_users`, items the rest; edge weights are ratings. On even
//! supersteps users send `(id, latent_vector)` to their items and update from
//! what items sent previously; on odd supersteps items do the same. Each side
//! takes a gradient step on the squared rating-prediction error. The running
//! RMSE is exposed through aggregators so callers can watch convergence.

use vertexica_common::graph::VertexId;
use vertexica_common::hash::unit_f64;
use vertexica_common::pregel::{
    AggKind, AggregatorSpec, InitContext, VertexContext, VertexProgram,
};

/// Message: sender id plus sender's latent vector.
pub type CfMessage = (u64, Vec<f64>);

/// Collaborative filtering by distributed SGD.
#[derive(Debug, Clone)]
pub struct CollaborativeFiltering {
    pub num_users: u64,
    pub latent_dim: usize,
    pub learning_rate: f64,
    pub regularization: f64,
    pub rounds: u64,
}

impl CollaborativeFiltering {
    pub fn new(num_users: u64, rounds: u64) -> Self {
        CollaborativeFiltering {
            num_users,
            latent_dim: 8,
            learning_rate: 0.05,
            regularization: 0.02,
            rounds,
        }
    }

    fn is_user(&self, id: VertexId) -> bool {
        id < self.num_users
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl VertexProgram for CollaborativeFiltering {
    type Value = Vec<f64>;
    type Message = CfMessage;

    fn initial_value(&self, id: VertexId, _init: &InitContext) -> Vec<f64> {
        // Deterministic pseudo-random init in [0, 0.5).
        (0..self.latent_dim).map(|k| unit_f64(id * 1000 + k as u64) * 0.5).collect()
    }

    fn compute(&self, ctx: &mut dyn VertexContext<Vec<f64>, CfMessage>, messages: &[CfMessage]) {
        let my_turn_to_send = if self.is_user(ctx.vertex_id()) {
            ctx.superstep() % 2 == 0
        } else {
            ctx.superstep() % 2 == 1
        };

        // Update from what the other side sent last superstep. The gradient
        // is accumulated against the superstep-start value and applied once
        // (batch step), so the result is independent of message delivery
        // order — a requirement for cross-engine determinism.
        if !messages.is_empty() {
            // Edge weight to each counterpart = the rating.
            let ratings: Vec<(u64, f64)> =
                ctx.out_edges().iter().map(|e| (e.dst, e.weight)).collect();
            let old = ctx.value().clone();
            let mut grad = vec![0.0f64; self.latent_dim];
            let mut sq_err = 0.0;
            let mut count = 0.0;
            for (sender, other_vec) in messages {
                let Some(&(_, rating)) = ratings.iter().find(|(d, _)| d == sender) else {
                    continue; // message from a non-neighbour: ignore
                };
                let err = rating - dot(&old, other_vec);
                sq_err += err * err;
                count += 1.0;
                for k in 0..self.latent_dim.min(other_vec.len()) {
                    grad[k] += err * other_vec[k] - self.regularization * old[k];
                }
            }
            if count > 0.0 {
                let mut value = old;
                for k in 0..self.latent_dim {
                    value[k] += self.learning_rate * grad[k];
                }
                ctx.set_value(value);
                ctx.aggregate("sq_err", sq_err);
                ctx.aggregate("n_obs", count);
            }
        }

        if ctx.superstep() < self.rounds {
            if my_turn_to_send {
                let payload = (ctx.vertex_id(), ctx.value().clone());
                let targets: Vec<VertexId> = ctx.out_edges().iter().map(|e| e.dst).collect();
                for t in targets {
                    ctx.send_message(t, payload.clone());
                }
            }
        } else {
            ctx.vote_to_halt();
        }
    }

    fn aggregators(&self) -> Vec<AggregatorSpec> {
        vec![
            AggregatorSpec { name: "sq_err", kind: AggKind::Sum },
            AggregatorSpec { name: "n_obs", kind: AggKind::Sum },
        ]
    }

    fn max_supersteps(&self) -> u64 {
        self.rounds + 1
    }

    fn name(&self) -> &'static str {
        "collaborative-filtering"
    }
}

/// Root-mean-squared rating-prediction error over all edges, computed from
/// final latent vectors (for tests and examples).
pub fn rmse(
    graph: &vertexica_common::graph::EdgeList,
    num_users: u64,
    vectors: &[Vec<f64>],
) -> f64 {
    let mut sq = 0.0;
    let mut n = 0.0;
    for e in &graph.edges {
        if e.src < num_users && e.dst >= num_users {
            let err = e.weight - dot(&vectors[e.src as usize], &vectors[e.dst as usize]);
            sq += err * err;
            n += 1.0;
        }
    }
    if n == 0.0 {
        0.0
    } else {
        (sq / n).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vertexica_giraph::GiraphEngine;
    use vertexica_graphgen::models::bipartite_ratings;

    #[test]
    fn training_reduces_rmse() {
        let users = 30;
        let items = 20;
        let g = bipartite_ratings(users, items, 6, 99);
        let before: Vec<Vec<f64>> = (0..g.num_vertices)
            .map(|id| {
                CollaborativeFiltering::new(users, 0)
                    .initial_value(id, &InitContext { num_vertices: g.num_vertices, out_degree: 0 })
            })
            .collect();
        let rmse_before = rmse(&g, users, &before);

        let prog = CollaborativeFiltering::new(users, 30);
        let (vectors, _) = GiraphEngine::default().run(&g, &prog);
        let rmse_after = rmse(&g, users, &vectors);
        assert!(rmse_after < rmse_before * 0.5, "rmse before {rmse_before}, after {rmse_after}");
    }

    #[test]
    fn aggregators_track_error() {
        let users = 10;
        let g = bipartite_ratings(users, 8, 3, 7);
        let prog = CollaborativeFiltering::new(users, 6);
        let engine = GiraphEngine::default();
        let (_, stats) = engine.run(&g, &prog);
        assert!(stats.supersteps >= 6);
    }

    #[test]
    fn latent_dim_respected() {
        let prog = CollaborativeFiltering::new(5, 2);
        let v = prog.initial_value(3, &InitContext { num_vertices: 10, out_degree: 0 });
        assert_eq!(v.len(), 8);
        assert!(v.iter().all(|x| (0.0..0.5).contains(x)));
    }
}
