//! Vertex-centric PageRank with dangling-mass redistribution.

use vertexica_common::graph::VertexId;
use vertexica_common::pregel::{
    AggKind, AggregatorSpec, InitContext, VertexContext, VertexProgram,
};

/// PageRank: `iterations` synchronous rank updates with damping factor `d`.
///
/// Superstep 0 distributes the uniform initial rank; supersteps `1..=k`
/// update from incoming shares. Dangling vertices contribute their rank
/// through the `dangling` aggregator (visible one superstep later — the same
/// timing as the message shares, so results match the synchronous reference
/// implementation exactly).
#[derive(Debug, Clone)]
pub struct PageRank {
    pub iterations: u64,
    pub damping: f64,
}

impl PageRank {
    pub fn new(iterations: u64, damping: f64) -> Self {
        PageRank { iterations, damping }
    }

    /// The paper-style default: 10 iterations, 0.85 damping.
    pub fn default_paper() -> Self {
        PageRank::new(10, 0.85)
    }
}

impl VertexProgram for PageRank {
    type Value = f64;
    type Message = f64;

    fn initial_value(&self, _id: VertexId, init: &InitContext) -> f64 {
        1.0 / init.num_vertices.max(1) as f64
    }

    fn compute(&self, ctx: &mut dyn VertexContext<f64, f64>, messages: &[f64]) {
        let n = ctx.num_vertices().max(1) as f64;
        if ctx.superstep() > 0 {
            let incoming: f64 = messages.iter().sum();
            let dangling = ctx.read_aggregate("dangling").unwrap_or(0.0);
            let rank = (1.0 - self.damping) / n + self.damping * (incoming + dangling / n);
            ctx.set_value(rank);
        }
        if ctx.superstep() < self.iterations {
            let rank = *ctx.value();
            let edges = ctx.out_edges();
            if edges.is_empty() {
                ctx.aggregate("dangling", rank);
            } else {
                let share = rank / edges.len() as f64;
                let targets: Vec<VertexId> = edges.iter().map(|e| e.dst).collect();
                for t in targets {
                    ctx.send_message(t, share);
                }
            }
        } else {
            ctx.vote_to_halt();
        }
    }

    fn combine(&self, a: &f64, b: &f64) -> Option<f64> {
        Some(a + b)
    }

    fn aggregators(&self) -> Vec<AggregatorSpec> {
        vec![AggregatorSpec { name: "dangling", kind: AggKind::Sum }]
    }

    fn max_supersteps(&self) -> u64 {
        self.iterations + 1
    }

    fn name(&self) -> &'static str {
        "pagerank"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use vertexica_common::graph::EdgeList;
    use vertexica_giraph::GiraphEngine;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_reference_on_giraph_engine() {
        let g = EdgeList::from_pairs([(0, 1), (1, 2), (2, 0), (2, 3), (3, 0), (1, 3)]);
        let (values, _) = GiraphEngine::default().run(&g, &PageRank::new(15, 0.85));
        let expected = reference::pagerank(&g, 15, 0.85);
        assert_close(&values, &expected, 1e-12);
    }

    #[test]
    fn dangling_mass_conserved() {
        // Vertex 2 is a sink.
        let g = EdgeList::from_pairs([(0, 1), (1, 2), (0, 2)]);
        let (values, _) = GiraphEngine::default().run(&g, &PageRank::new(20, 0.85));
        let total: f64 = values.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        let expected = reference::pagerank(&g, 20, 0.85);
        assert_close(&values, &expected, 1e-12);
    }

    #[test]
    fn halts_after_configured_iterations() {
        let g = EdgeList::from_pairs([(0, 1), (1, 0)]);
        let (_, stats) = GiraphEngine::default().run(&g, &PageRank::new(5, 0.85));
        assert_eq!(stats.supersteps, 6); // 0..=5
    }
}
