//! Connected components and label propagation.

use vertexica_common::graph::VertexId;
use vertexica_common::hash::FxHashMap;
use vertexica_common::pregel::{InitContext, VertexContext, VertexContextExt, VertexProgram};

/// Connected components by min-id propagation (HashMin). On a graph loaded
/// with both edge directions (see [`vertexica_common::EdgeList::undirected`])
/// this computes *weakly* connected components; on a directed graph it
/// computes forward-reachability labels.
#[derive(Debug, Clone, Default)]
pub struct ConnectedComponents;

impl VertexProgram for ConnectedComponents {
    type Value = u64;
    type Message = u64;

    fn initial_value(&self, id: VertexId, _init: &InitContext) -> u64 {
        id
    }

    fn compute(&self, ctx: &mut dyn VertexContext<u64, u64>, messages: &[u64]) {
        let best = messages.iter().copied().fold(*ctx.value(), u64::min);
        if best < *ctx.value() || ctx.superstep() == 0 {
            ctx.set_value(best);
            ctx.send_to_all_neighbors(best);
        }
        ctx.vote_to_halt();
    }

    fn combine(&self, a: &u64, b: &u64) -> Option<u64> {
        Some((*a).min(*b))
    }

    fn name(&self) -> &'static str {
        "connected-components"
    }
}

/// Community detection by synchronous label propagation: each vertex adopts
/// the most frequent label among its incoming messages (ties broken toward
/// the smallest label), for a bounded number of rounds.
#[derive(Debug, Clone)]
pub struct LabelPropagation {
    pub max_rounds: u64,
}

impl LabelPropagation {
    pub fn new(max_rounds: u64) -> Self {
        LabelPropagation { max_rounds }
    }
}

impl VertexProgram for LabelPropagation {
    type Value = u64;
    type Message = u64;

    fn initial_value(&self, id: VertexId, _init: &InitContext) -> u64 {
        id
    }

    fn compute(&self, ctx: &mut dyn VertexContext<u64, u64>, messages: &[u64]) {
        if ctx.superstep() > 0 && !messages.is_empty() {
            let mut freq: FxHashMap<u64, u64> = FxHashMap::default();
            for &m in messages {
                *freq.entry(m).or_default() += 1;
            }
            // Most frequent, ties toward the smallest label.
            let new_label = freq
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                .map(|(l, _)| l)
                .unwrap_or(*ctx.value());
            if new_label != *ctx.value() {
                ctx.set_value(new_label);
            }
        }
        if ctx.superstep() < self.max_rounds {
            let label = *ctx.value();
            ctx.send_to_all_neighbors(label);
        } else {
            ctx.vote_to_halt();
        }
    }

    fn max_supersteps(&self) -> u64 {
        self.max_rounds + 1
    }

    fn name(&self) -> &'static str {
        "label-propagation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use vertexica_common::graph::EdgeList;
    use vertexica_giraph::GiraphEngine;

    #[test]
    fn components_match_union_find() {
        let g = EdgeList::from_pairs([(0, 1), (1, 2), (5, 6), (3, 4), (4, 5)]).undirected();
        let (values, _) = GiraphEngine::default().run(&g, &ConnectedComponents);
        let expected = reference::weakly_connected_components(&g);
        assert_eq!(values, expected);
        assert_eq!(values, vec![0, 0, 0, 3, 3, 3, 3]);
    }

    #[test]
    fn isolated_vertices_self_label() {
        let g = EdgeList::new(3, vec![]);
        let (values, _) = GiraphEngine::default().run(&g, &ConnectedComponents);
        assert_eq!(values, vec![0, 1, 2]);
    }

    #[test]
    fn label_propagation_unifies_clique() {
        // Two 3-cliques joined by one weak edge keep mostly separate labels…
        let mut pairs = vec![];
        for a in 0..3u64 {
            for b in 0..3u64 {
                if a != b {
                    pairs.push((a, b));
                }
            }
        }
        for a in 3..6u64 {
            for b in 3..6u64 {
                if a != b {
                    pairs.push((a, b));
                }
            }
        }
        pairs.push((2, 3));
        pairs.push((3, 2));
        let g = EdgeList::from_pairs(pairs);
        let (values, _) = GiraphEngine::default().run(&g, &LabelPropagation::new(10));
        // Every clique agrees internally (exact labels depend on how the
        // bridge vertex's initial label diffuses, which is fine).
        assert_eq!(values[0], values[1]);
        assert_eq!(values[1], values[2]);
        assert_eq!(values[3], values[4]);
        assert_eq!(values[4], values[5]);
        // Clique A holds the global minimum label.
        assert_eq!(values[0], 0);
    }

    #[test]
    fn label_propagation_terminates() {
        let g = EdgeList::from_pairs([(0, 1), (1, 0)]);
        let (_, stats) = GiraphEngine::default().run(&g, &LabelPropagation::new(4));
        assert!(stats.supersteps <= 5);
    }
}
