//! Traversal-style graph algorithms over the transactional API.
//!
//! Written the way an application developer uses a transactional graph
//! database: per-node property reads/writes inside transactions, neighbour
//! expansion via the record chains. Each algorithm takes a wall-clock budget
//! and reports **DNF** when exceeded — reproducing Figure 2, where the graph
//! database finishes only the smallest dataset.

use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use vertexica_common::graph::VertexId;

use crate::store::{GraphDb, NodeId};

/// Outcome of a budgeted run.
#[derive(Debug, Clone)]
pub enum Outcome<T> {
    Finished {
        result: T,
        elapsed: Duration,
    },
    /// Did not finish within the budget (paper: missing bars in Figure 2).
    DidNotFinish {
        budget: Duration,
    },
}

impl<T> Outcome<T> {
    pub fn finished(&self) -> Option<&T> {
        match self {
            Outcome::Finished { result, .. } => Some(result),
            Outcome::DidNotFinish { .. } => None,
        }
    }

    pub fn elapsed_secs(&self) -> Option<f64> {
        match self {
            Outcome::Finished { elapsed, .. } => Some(elapsed.as_secs_f64()),
            Outcome::DidNotFinish { .. } => None,
        }
    }
}

/// PageRank, transactional style: ranks live in node properties; every
/// iteration reads each node's rank property (blob decode), pushes
/// contributions along relationship chains, and commits the new ranks in
/// per-node transactions.
pub fn pagerank(
    db: &GraphDb,
    num_nodes: u64,
    iterations: usize,
    damping: f64,
    budget: Duration,
) -> std::io::Result<Outcome<Vec<f64>>> {
    let start = Instant::now();
    let n = num_nodes.max(1) as f64;

    // Init ranks.
    {
        let mut txn = db.begin();
        for v in 0..num_nodes {
            txn.set_prop(v, "rank", 1.0 / n);
        }
        txn.commit()?;
    }

    for _ in 0..iterations {
        // Accumulate contributions by traversing every node's chain.
        let mut incoming = vec![0.0f64; num_nodes as usize];
        let mut dangling = 0.0f64;
        for v in 0..num_nodes {
            if start.elapsed() > budget {
                return Ok(Outcome::DidNotFinish { budget });
            }
            let rank = db.node_prop(v, "rank").unwrap_or(1.0 / n);
            let neigh = db.out_neighbors(v);
            if neigh.is_empty() {
                dangling += rank;
            } else {
                let share = rank / neigh.len() as f64;
                for (d, _) in neigh {
                    incoming[d as usize] += share;
                }
            }
        }
        // Write-back, one transaction per node (the application pattern the
        // paper's baseline measures).
        for v in 0..num_nodes {
            if start.elapsed() > budget {
                return Ok(Outcome::DidNotFinish { budget });
            }
            let new_rank = (1.0 - damping) / n + damping * (incoming[v as usize] + dangling / n);
            let mut txn = db.begin();
            txn.set_prop(v, "rank", new_rank);
            txn.commit()?;
        }
    }

    let result: Vec<f64> = (0..num_nodes).map(|v| db.node_prop(v, "rank").unwrap_or(0.0)).collect();
    Ok(Outcome::Finished { result, elapsed: start.elapsed() })
}

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on distance.
        other.dist.total_cmp(&self.dist)
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest paths via Dijkstra over the transactional API,
/// storing distances as node properties.
pub fn sssp(
    db: &GraphDb,
    num_nodes: u64,
    source: VertexId,
    budget: Duration,
) -> std::io::Result<Outcome<Vec<f64>>> {
    let start = Instant::now();
    {
        let mut txn = db.begin();
        for v in 0..num_nodes {
            txn.set_prop(v, "dist", if v == source { 0.0 } else { f64::INFINITY });
        }
        txn.commit()?;
    }

    let mut heap = BinaryHeap::new();
    heap.push(HeapItem { dist: 0.0, node: source });
    while let Some(HeapItem { dist, node }) = heap.pop() {
        if start.elapsed() > budget {
            return Ok(Outcome::DidNotFinish { budget });
        }
        let current = db.node_prop(node, "dist").unwrap_or(f64::INFINITY);
        if dist > current {
            continue; // stale heap entry
        }
        for (next, w) in db.out_neighbors(node) {
            let cand = dist + w.max(0.0);
            let existing = db.node_prop(next, "dist").unwrap_or(f64::INFINITY);
            if cand < existing {
                let mut txn = db.begin();
                txn.set_prop(next, "dist", cand);
                txn.commit()?;
                heap.push(HeapItem { dist: cand, node: next });
            }
        }
    }

    let result: Vec<f64> =
        (0..num_nodes).map(|v| db.node_prop(v, "dist").unwrap_or(f64::INFINITY)).collect();
    Ok(Outcome::Finished { result, elapsed: start.elapsed() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vertexica_common::graph::EdgeList;

    fn small_db() -> (GraphDb, u64) {
        let db = GraphDb::ephemeral();
        // 0 → 1 → 2, 0 → 2 (heavier), 2 → 3
        let g = EdgeList::new(
            4,
            vec![
                vertexica_common::graph::Edge::weighted(0, 1, 1.0),
                vertexica_common::graph::Edge::weighted(1, 2, 1.0),
                vertexica_common::graph::Edge::weighted(0, 2, 5.0),
                vertexica_common::graph::Edge::weighted(2, 3, 1.0),
            ],
        );
        db.load_edges(&g).unwrap();
        (db, 4)
    }

    #[test]
    fn pagerank_sums_to_one() {
        let (db, n) = small_db();
        let out = pagerank(&db, n, 10, 0.85, Duration::from_secs(30)).unwrap();
        let ranks = out.finished().expect("should finish").clone();
        let total: f64 = ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "sum {total}");
        assert!(ranks.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn sssp_finds_shortest_routes() {
        let (db, n) = small_db();
        let out = sssp(&db, n, 0, Duration::from_secs(30)).unwrap();
        let dist = out.finished().expect("should finish").clone();
        assert_eq!(dist[0], 0.0);
        assert_eq!(dist[1], 1.0);
        assert_eq!(dist[2], 2.0); // via 1, not the 5.0 edge
        assert_eq!(dist[3], 3.0);
    }

    #[test]
    fn budget_exhaustion_reports_dnf() {
        let (db, n) = small_db();
        let out = pagerank(&db, n, 1_000_000, 0.85, Duration::from_millis(5)).unwrap();
        assert!(out.finished().is_none());
        assert!(matches!(out, Outcome::DidNotFinish { .. }));
    }

    #[test]
    fn unreachable_nodes_stay_infinite() {
        let db = GraphDb::ephemeral();
        db.load_edges(&EdgeList::from_pairs([(0, 1), (2, 3)])).unwrap();
        let out = sssp(&db, 4, 0, Duration::from_secs(5)).unwrap();
        let dist = out.finished().unwrap();
        assert_eq!(dist[1], 1.0);
        assert!(dist[2].is_infinite());
        assert!(dist[3].is_infinite());
    }
}
