//! A Neo4j-like transactional property-graph store — the Figure-2 "Graph
//! Database" baseline.
//!
//! The paper's graph database completes only the smallest dataset and is
//! ~50× slower than Vertexica; on the larger graphs it does not finish. That
//! profile comes from the architecture this crate reproduces:
//!
//! * **record stores with pointer chasing** ([`store`]): nodes hold the head
//!   of a linked list of relationship records (as in Neo4j's store format),
//!   so traversals walk chains instead of scanning arrays;
//! * **per-entity property blobs** decoded on every access (Neo4j property
//!   chains);
//! * **transactions with a write-ahead log** ([`txn`], [`wal`]): every
//!   mutation batch appends to a WAL before applying; recovery replays it;
//! * **traversal-style algorithms** ([`algo`]): PageRank and Dijkstra
//!   implemented the way one writes them against a transactional graph API,
//!   with a time budget so the harness can report DNF exactly like Figure 2.

pub mod algo;
pub mod store;
pub mod txn;
pub mod wal;

pub use store::{GraphDb, GraphDbConfig, NodeId, RelId};
pub use txn::Txn;
