//! Record stores: nodes, linked relationship records, property blobs.

use std::path::PathBuf;

use bytes::{Buf, BufMut};
use vertexica_common::graph::EdgeList;
use vertexica_common::sync::{Mutex, RwLock};

use crate::wal::{Wal, WalOp};

/// Node identifier (dense).
pub type NodeId = u64;
/// Relationship record index.
pub type RelId = u32;

pub(crate) const NIL: RelId = RelId::MAX;

/// A node record: head of its outgoing-relationship chain plus a property
/// blob offset (here: an index into the property store).
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeRecord {
    pub first_out: RelId,
    pub first_in: RelId,
    pub in_use: bool,
}

/// A relationship record, chained per source and per destination — the
/// Neo4j store layout that makes traversal a pointer chase.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RelRecord {
    pub src: NodeId,
    pub dst: NodeId,
    pub weight: f64,
    pub next_out: RelId,
    pub next_in: RelId,
    pub in_use: bool,
}

/// In-memory record stores.
#[derive(Default)]
pub(crate) struct DbInner {
    pub nodes: Vec<NodeRecord>,
    pub rels: Vec<RelRecord>,
    /// Per-node serialized property blob (decoded on every access — the
    /// property-chain tax).
    pub props: Vec<Vec<u8>>,
}

impl DbInner {
    pub fn apply(&mut self, op: &WalOp) {
        match op {
            WalOp::CreateNode { id } => {
                let id = *id as usize;
                if self.nodes.len() <= id {
                    self.nodes.resize(
                        id + 1,
                        NodeRecord { first_out: NIL, first_in: NIL, in_use: false },
                    );
                    self.props.resize(id + 1, Vec::new());
                }
                self.nodes[id].in_use = true;
            }
            WalOp::CreateRel { src, dst, weight } => {
                let rel_id = self.rels.len() as RelId;
                let src_head = self.nodes[*src as usize].first_out;
                let dst_head = self.nodes[*dst as usize].first_in;
                self.rels.push(RelRecord {
                    src: *src,
                    dst: *dst,
                    weight: *weight,
                    next_out: src_head,
                    next_in: dst_head,
                    in_use: true,
                });
                self.nodes[*src as usize].first_out = rel_id;
                self.nodes[*dst as usize].first_in = rel_id;
            }
            WalOp::SetProp { node, key, value } => {
                let blob = &mut self.props[*node as usize];
                let mut map = decode_props(blob);
                map.retain(|(k, _)| k != key);
                map.push((key.clone(), *value));
                *blob = encode_props(&map);
            }
            WalOp::DeleteRel { src, dst } => {
                // Mark matching rels dead (chains keep their shape; dead
                // records are skipped during traversal, like tombstones).
                for r in &mut self.rels {
                    if r.in_use && r.src == *src && r.dst == *dst {
                        r.in_use = false;
                    }
                }
            }
        }
    }
}

pub(crate) fn encode_props(map: &[(String, f64)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(map.len() * 16);
    buf.put_u32_le(map.len() as u32);
    for (k, v) in map {
        buf.put_u32_le(k.len() as u32);
        buf.extend_from_slice(k.as_bytes());
        buf.put_f64_le(*v);
    }
    buf
}

pub(crate) fn decode_props(mut blob: &[u8]) -> Vec<(String, f64)> {
    if blob.len() < 4 {
        return Vec::new();
    }
    let n = blob.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if blob.len() < 4 {
            break;
        }
        let klen = blob.get_u32_le() as usize;
        if blob.len() < klen + 8 {
            break;
        }
        let key = String::from_utf8_lossy(&blob[..klen]).into_owned();
        blob.advance(klen);
        let value = blob.get_f64_le();
        out.push((key, value));
    }
    out
}

/// Configuration.
#[derive(Debug, Clone, Default)]
pub struct GraphDbConfig {
    /// WAL file; `None` = ephemeral database.
    pub wal_path: Option<PathBuf>,
    /// fsync on commit.
    pub sync_commits: bool,
    /// Modelled durable-commit latency, charged per [`crate::txn::Txn::commit`].
    ///
    /// Benchmark environments often mount tmpfs where `fsync` is free; the
    /// 2014-era disk-backed stores the paper benchmarks paid 0.1–10 ms per
    /// durable commit. `Duration::ZERO` disables the model.
    pub commit_latency: std::time::Duration,
}

/// The transactional property-graph database.
pub struct GraphDb {
    pub(crate) inner: RwLock<DbInner>,
    pub(crate) wal: Mutex<Wal>,
    pub(crate) commit_latency: std::time::Duration,
}

impl GraphDb {
    /// Opens a database; if the WAL file exists its committed transactions
    /// are replayed (crash recovery).
    pub fn open(config: GraphDbConfig) -> std::io::Result<GraphDb> {
        let mut inner = DbInner::default();
        if let Some(path) = &config.wal_path {
            if path.exists() {
                for txn in Wal::replay(path)? {
                    for op in &txn {
                        inner.apply(op);
                    }
                }
            }
        }
        let wal = Wal::open(config.wal_path, config.sync_commits)?;
        Ok(GraphDb {
            inner: RwLock::new(inner),
            wal: Mutex::new(wal),
            commit_latency: config.commit_latency,
        })
    }

    /// An ephemeral in-memory instance.
    pub fn ephemeral() -> GraphDb {
        Self::open(GraphDbConfig::default()).expect("ephemeral open cannot fail")
    }

    /// Bulk-loads an edge list in one big transaction.
    pub fn load_edges(&self, graph: &EdgeList) -> std::io::Result<()> {
        let mut txn = self.begin();
        for v in 0..graph.num_vertices {
            txn.create_node(v);
        }
        for e in &graph.edges {
            txn.create_rel(e.src, e.dst, e.weight);
        }
        txn.commit()
    }

    pub fn num_nodes(&self) -> usize {
        self.inner.read().nodes.iter().filter(|n| n.in_use).count()
    }

    pub fn num_rels(&self) -> usize {
        self.inner.read().rels.iter().filter(|r| r.in_use).count()
    }

    /// Out-neighbours of a node, walking the relationship chain.
    pub fn out_neighbors(&self, node: NodeId) -> Vec<(NodeId, f64)> {
        let inner = self.inner.read();
        let mut out = Vec::new();
        let Some(rec) = inner.nodes.get(node as usize) else { return out };
        if !rec.in_use {
            return out;
        }
        let mut cursor = rec.first_out;
        while cursor != NIL {
            let rel = &inner.rels[cursor as usize];
            if rel.in_use {
                out.push((rel.dst, rel.weight));
            }
            cursor = rel.next_out;
        }
        out
    }

    /// In-neighbours of a node.
    pub fn in_neighbors(&self, node: NodeId) -> Vec<(NodeId, f64)> {
        let inner = self.inner.read();
        let mut out = Vec::new();
        let Some(rec) = inner.nodes.get(node as usize) else { return out };
        if !rec.in_use {
            return out;
        }
        let mut cursor = rec.first_in;
        while cursor != NIL {
            let rel = &inner.rels[cursor as usize];
            if rel.in_use {
                out.push((rel.src, rel.weight));
            }
            cursor = rel.next_in;
        }
        out
    }

    /// Reads a node property (decoding the blob — every call pays the tax).
    pub fn node_prop(&self, node: NodeId, key: &str) -> Option<f64> {
        let inner = self.inner.read();
        let blob = inner.props.get(node as usize)?;
        decode_props(blob).into_iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Out-degree, walking the chain.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_neighbors(node).len()
    }

    /// Starts a transaction.
    pub fn begin(&self) -> crate::txn::Txn<'_> {
        crate::txn::Txn::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_traverse() {
        let db = GraphDb::ephemeral();
        db.load_edges(&EdgeList::from_pairs([(0, 1), (0, 2), (1, 2)])).unwrap();
        assert_eq!(db.num_nodes(), 3);
        assert_eq!(db.num_rels(), 3);
        let mut n0: Vec<NodeId> = db.out_neighbors(0).into_iter().map(|(d, _)| d).collect();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
        assert_eq!(db.out_degree(2), 0);
        let in2: Vec<NodeId> = db.in_neighbors(2).into_iter().map(|(s, _)| s).collect();
        assert_eq!(in2.len(), 2);
    }

    #[test]
    fn props_roundtrip_via_blob() {
        let db = GraphDb::ephemeral();
        db.load_edges(&EdgeList::from_pairs([(0, 1)])).unwrap();
        let mut txn = db.begin();
        txn.set_prop(0, "rank", 0.25);
        txn.set_prop(0, "dist", 7.0);
        txn.commit().unwrap();
        assert_eq!(db.node_prop(0, "rank"), Some(0.25));
        assert_eq!(db.node_prop(0, "dist"), Some(7.0));
        assert_eq!(db.node_prop(0, "missing"), None);
        // Overwrite.
        let mut txn = db.begin();
        txn.set_prop(0, "rank", 0.5);
        txn.commit().unwrap();
        assert_eq!(db.node_prop(0, "rank"), Some(0.5));
    }

    #[test]
    fn delete_rel_tombstones() {
        let db = GraphDb::ephemeral();
        db.load_edges(&EdgeList::from_pairs([(0, 1), (0, 2)])).unwrap();
        let mut txn = db.begin();
        txn.delete_rel(0, 1);
        txn.commit().unwrap();
        assert_eq!(db.num_rels(), 1);
        assert_eq!(db.out_neighbors(0), vec![(2, 1.0)]);
    }

    #[test]
    fn wal_recovery_restores_state() {
        let path = std::env::temp_dir().join(format!("vxgdb_recover_{}.log", std::process::id()));
        std::fs::remove_file(&path).ok();
        {
            let db = GraphDb::open(GraphDbConfig {
                wal_path: Some(path.clone()),
                sync_commits: false,
                ..Default::default()
            })
            .unwrap();
            db.load_edges(&EdgeList::from_pairs([(0, 1), (1, 2)])).unwrap();
            let mut t = db.begin();
            t.set_prop(1, "rank", 9.0);
            t.commit().unwrap();
            // "Crash": drop without any shutdown.
        }
        let db = GraphDb::open(GraphDbConfig {
            wal_path: Some(path.clone()),
            sync_commits: false,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(db.num_nodes(), 3);
        assert_eq!(db.num_rels(), 2);
        assert_eq!(db.node_prop(1, "rank"), Some(9.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn props_codec_handles_garbage() {
        assert!(decode_props(&[]).is_empty());
        assert!(decode_props(&[1, 2]).is_empty());
        let enc = encode_props(&[("k".into(), 1.0)]);
        assert!(decode_props(&enc[..enc.len() - 2]).is_empty());
    }
}
