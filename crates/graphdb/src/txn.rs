//! Transactions: buffered writes, WAL-then-apply commit, drop = rollback.

use crate::store::{GraphDb, NodeId};
use crate::wal::WalOp;

/// A write transaction. Reads observe committed state; writes are buffered
/// and applied atomically at [`Txn::commit`]. Dropping without committing
/// discards everything (rollback).
pub struct Txn<'db> {
    db: &'db GraphDb,
    ops: Vec<WalOp>,
}

impl<'db> Txn<'db> {
    pub(crate) fn new(db: &'db GraphDb) -> Self {
        Txn { db, ops: Vec::new() }
    }

    pub fn create_node(&mut self, id: NodeId) {
        self.ops.push(WalOp::CreateNode { id });
    }

    pub fn create_rel(&mut self, src: NodeId, dst: NodeId, weight: f64) {
        self.ops.push(WalOp::CreateRel { src, dst, weight });
    }

    pub fn set_prop(&mut self, node: NodeId, key: &str, value: f64) {
        self.ops.push(WalOp::SetProp { node, key: key.to_string(), value });
    }

    pub fn delete_rel(&mut self, src: NodeId, dst: NodeId) {
        self.ops.push(WalOp::DeleteRel { src, dst });
    }

    /// Number of buffered operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Durability point: append to the WAL, then apply to the stores under
    /// the write lock. Charges the configured durable-commit latency
    /// (busy-wait — sleep granularity is too coarse for sub-millisecond
    /// latencies).
    pub fn commit(self) -> std::io::Result<()> {
        if self.ops.is_empty() {
            return Ok(());
        }
        self.db.wal.lock().append_txn(&self.ops)?;
        if !self.db.commit_latency.is_zero() {
            let deadline = std::time::Instant::now() + self.db.commit_latency;
            while std::time::Instant::now() < deadline {
                std::hint::spin_loop();
            }
        }
        let mut inner = self.db.inner.write();
        for op in &self.ops {
            inner.apply(op);
        }
        Ok(())
    }

    /// Explicit rollback (equivalent to dropping).
    pub fn abort(self) {
        drop(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vertexica_common::graph::EdgeList;

    #[test]
    fn uncommitted_writes_invisible() {
        let db = GraphDb::ephemeral();
        db.load_edges(&EdgeList::from_pairs([(0, 1)])).unwrap();
        {
            let mut t = db.begin();
            t.set_prop(0, "rank", 1.0);
            assert_eq!(t.len(), 1);
            // Reads see committed state only.
            assert_eq!(db.node_prop(0, "rank"), None);
            t.abort();
        }
        assert_eq!(db.node_prop(0, "rank"), None);
    }

    #[test]
    fn commit_applies_atomically() {
        let db = GraphDb::ephemeral();
        db.load_edges(&EdgeList::from_pairs([(0, 1)])).unwrap();
        let mut t = db.begin();
        t.create_node(5);
        t.create_rel(5, 0, 2.0);
        t.set_prop(5, "x", 3.0);
        t.commit().unwrap();
        assert_eq!(db.num_nodes(), 3);
        assert_eq!(db.out_neighbors(5), vec![(0, 2.0)]);
        assert_eq!(db.node_prop(5, "x"), Some(3.0));
    }

    #[test]
    fn empty_commit_is_noop() {
        let db = GraphDb::ephemeral();
        db.begin().commit().unwrap();
        assert_eq!(db.num_nodes(), 0);
    }
}
