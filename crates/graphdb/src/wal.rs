//! Write-ahead log: length-prefixed operation records with commit markers.
//!
//! Recovery replays only transactions terminated by a commit marker, so a
//! crash mid-append loses at most the in-flight transaction (atomicity).

use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut};

/// Operations recorded in the log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    CreateNode {
        id: u64,
    },
    CreateRel {
        src: u64,
        dst: u64,
        weight: f64,
    },
    SetProp {
        node: u64,
        key: String,
        value: f64,
    },
    DeleteRel {
        src: u64,
        dst: u64,
    },
    /// Transaction boundary.
    Commit,
}

fn encode_op(op: &WalOp, buf: &mut Vec<u8>) {
    match op {
        WalOp::CreateNode { id } => {
            buf.put_u8(1);
            buf.put_u64_le(*id);
        }
        WalOp::CreateRel { src, dst, weight } => {
            buf.put_u8(2);
            buf.put_u64_le(*src);
            buf.put_u64_le(*dst);
            buf.put_f64_le(*weight);
        }
        WalOp::SetProp { node, key, value } => {
            buf.put_u8(3);
            buf.put_u64_le(*node);
            buf.put_u32_le(key.len() as u32);
            buf.extend_from_slice(key.as_bytes());
            buf.put_f64_le(*value);
        }
        WalOp::DeleteRel { src, dst } => {
            buf.put_u8(4);
            buf.put_u64_le(*src);
            buf.put_u64_le(*dst);
        }
        WalOp::Commit => buf.put_u8(255),
    }
}

fn decode_op(buf: &mut &[u8]) -> Option<WalOp> {
    if buf.is_empty() {
        return None;
    }
    let tag = buf.get_u8();
    Some(match tag {
        1 => {
            if buf.len() < 8 {
                return None;
            }
            WalOp::CreateNode { id: buf.get_u64_le() }
        }
        2 => {
            if buf.len() < 24 {
                return None;
            }
            WalOp::CreateRel {
                src: buf.get_u64_le(),
                dst: buf.get_u64_le(),
                weight: buf.get_f64_le(),
            }
        }
        3 => {
            if buf.len() < 12 {
                return None;
            }
            let node = buf.get_u64_le();
            let klen = buf.get_u32_le() as usize;
            if buf.len() < klen + 8 {
                return None;
            }
            let key = String::from_utf8(buf[..klen].to_vec()).ok()?;
            buf.advance(klen);
            let value = buf.get_f64_le();
            WalOp::SetProp { node, key, value }
        }
        4 => {
            if buf.len() < 16 {
                return None;
            }
            WalOp::DeleteRel { src: buf.get_u64_le(), dst: buf.get_u64_le() }
        }
        255 => WalOp::Commit,
        _ => return None,
    })
}

/// An append-only log file.
pub struct Wal {
    path: PathBuf,
    file: Option<std::io::BufWriter<std::fs::File>>,
    /// `true` = fsync on every commit (durability); `false` for benchmarks.
    pub sync_commits: bool,
}

impl Wal {
    /// Opens (or creates) the log at `path`. Pass `None` for an ephemeral,
    /// in-memory-only database (no durability).
    pub fn open(path: Option<PathBuf>, sync_commits: bool) -> std::io::Result<Wal> {
        match path {
            None => Ok(Wal { path: PathBuf::new(), file: None, sync_commits }),
            Some(path) => {
                let file = std::fs::OpenOptions::new().create(true).append(true).open(&path)?;
                Ok(Wal { path, file: Some(std::io::BufWriter::new(file)), sync_commits })
            }
        }
    }

    /// Appends a transaction (ops + commit marker) and optionally fsyncs.
    pub fn append_txn(&mut self, ops: &[WalOp]) -> std::io::Result<()> {
        let Some(file) = &mut self.file else { return Ok(()) };
        let mut buf = Vec::with_capacity(ops.len() * 16 + 1);
        for op in ops {
            encode_op(op, &mut buf);
        }
        encode_op(&WalOp::Commit, &mut buf);
        file.write_all(&buf)?;
        file.flush()?;
        if self.sync_commits {
            file.get_ref().sync_data()?;
        }
        Ok(())
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads back every *committed* transaction from a log file. Incomplete
    /// trailing transactions (torn writes) are discarded.
    pub fn replay(path: impl AsRef<Path>) -> std::io::Result<Vec<Vec<WalOp>>> {
        let bytes = std::fs::read(path)?;
        let mut buf: &[u8] = &bytes;
        let mut txns = Vec::new();
        let mut current = Vec::new();
        while let Some(op) = decode_op(&mut buf) {
            if op == WalOp::Commit {
                txns.push(std::mem::take(&mut current));
            } else {
                current.push(op);
            }
        }
        // `current` holds an uncommitted tail, dropped by design.
        Ok(txns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vxgdb_wal_{tag}_{}.log", std::process::id()))
    }

    #[test]
    fn append_and_replay() {
        let path = temp_wal("basic");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(Some(path.clone()), false).unwrap();
            wal.append_txn(&[
                WalOp::CreateNode { id: 0 },
                WalOp::CreateNode { id: 1 },
                WalOp::CreateRel { src: 0, dst: 1, weight: 2.0 },
            ])
            .unwrap();
            wal.append_txn(&[WalOp::SetProp { node: 0, key: "rank".into(), value: 0.5 }]).unwrap();
        }
        let txns = Wal::replay(&path).unwrap();
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[0].len(), 3);
        assert_eq!(txns[1][0], WalOp::SetProp { node: 0, key: "rank".into(), value: 0.5 });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_discarded() {
        let path = temp_wal("torn");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(Some(path.clone()), false).unwrap();
            wal.append_txn(&[WalOp::CreateNode { id: 0 }]).unwrap();
            wal.append_txn(&[WalOp::CreateNode { id: 1 }]).unwrap();
        }
        // Simulate a crash mid-append: truncate the last 3 bytes.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let txns = Wal::replay(&path).unwrap();
        assert_eq!(txns.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ephemeral_wal_is_noop() {
        let mut wal = Wal::open(None, true).unwrap();
        wal.append_txn(&[WalOp::CreateNode { id: 7 }]).unwrap();
        // Nothing written anywhere; just must not error.
    }

    #[test]
    fn op_roundtrip_all_variants() {
        let ops = vec![
            WalOp::CreateNode { id: 3 },
            WalOp::CreateRel { src: 1, dst: 2, weight: 0.25 },
            WalOp::SetProp { node: 9, key: "dist".into(), value: -1.5 },
            WalOp::DeleteRel { src: 2, dst: 1 },
        ];
        let mut buf = Vec::new();
        for op in &ops {
            encode_op(op, &mut buf);
        }
        let mut slice: &[u8] = &buf;
        for op in &ops {
            assert_eq!(decode_op(&mut slice).as_ref(), Some(op));
        }
        assert!(slice.is_empty());
    }
}
