//! Write-ahead log for the native graph baseline.
//!
//! The *op* codec (what goes in a record) is graph-domain: node/rel/prop
//! operations. The *file* layer — length-prefixed, CRC-checksummed frames
//! with torn-tail detection — is the storage crate's shared
//! [`FrameLog`], the same framing underneath
//! the column store's durability WAL. One frame holds one **committed**
//! transaction (the frame boundary *is* the commit marker), so recovery
//! replays exactly the acknowledged transactions and a crash mid-append
//! loses at most the in-flight one (atomicity).

use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut};
use vertexica_storage::{FrameLog, StorageError};

/// Operations recorded in the log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    CreateNode { id: u64 },
    CreateRel { src: u64, dst: u64, weight: f64 },
    SetProp { node: u64, key: String, value: f64 },
    DeleteRel { src: u64, dst: u64 },
}

fn encode_op(op: &WalOp, buf: &mut Vec<u8>) {
    match op {
        WalOp::CreateNode { id } => {
            buf.put_u8(1);
            buf.put_u64_le(*id);
        }
        WalOp::CreateRel { src, dst, weight } => {
            buf.put_u8(2);
            buf.put_u64_le(*src);
            buf.put_u64_le(*dst);
            buf.put_f64_le(*weight);
        }
        WalOp::SetProp { node, key, value } => {
            buf.put_u8(3);
            buf.put_u64_le(*node);
            buf.put_u32_le(key.len() as u32);
            buf.extend_from_slice(key.as_bytes());
            buf.put_f64_le(*value);
        }
        WalOp::DeleteRel { src, dst } => {
            buf.put_u8(4);
            buf.put_u64_le(*src);
            buf.put_u64_le(*dst);
        }
    }
}

fn decode_op(buf: &mut &[u8]) -> Option<WalOp> {
    if buf.is_empty() {
        return None;
    }
    let tag = buf.get_u8();
    Some(match tag {
        1 => {
            if buf.len() < 8 {
                return None;
            }
            WalOp::CreateNode { id: buf.get_u64_le() }
        }
        2 => {
            if buf.len() < 24 {
                return None;
            }
            WalOp::CreateRel {
                src: buf.get_u64_le(),
                dst: buf.get_u64_le(),
                weight: buf.get_f64_le(),
            }
        }
        3 => {
            if buf.len() < 12 {
                return None;
            }
            let node = buf.get_u64_le();
            let klen = buf.get_u32_le() as usize;
            if buf.len() < klen + 8 {
                return None;
            }
            let key = String::from_utf8(buf[..klen].to_vec()).ok()?;
            buf.advance(klen);
            let value = buf.get_f64_le();
            WalOp::SetProp { node, key, value }
        }
        4 => {
            if buf.len() < 16 {
                return None;
            }
            WalOp::DeleteRel { src: buf.get_u64_le(), dst: buf.get_u64_le() }
        }
        _ => return None,
    })
}

fn to_io(e: StorageError) -> std::io::Error {
    match e {
        StorageError::Io(io) => io,
        other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
    }
}

/// An append-only transaction log framed by the shared
/// [`FrameLog`].
pub struct Wal {
    path: PathBuf,
    log: FrameLog,
    /// `true` = fsync on every commit (durability); `false` for benchmarks.
    /// Fixed at [`open`](Wal::open).
    pub sync_commits: bool,
}

impl Wal {
    /// Opens (or creates) the log at `path`. Pass `None` for an ephemeral,
    /// in-memory-only database (no durability).
    pub fn open(path: Option<PathBuf>, sync_commits: bool) -> std::io::Result<Wal> {
        let log = FrameLog::open(path.as_deref(), sync_commits).map_err(to_io)?;
        Ok(Wal { path: path.unwrap_or_default(), log, sync_commits })
    }

    /// Appends a transaction as one checksummed frame and (with
    /// `sync_commits`) fsyncs before acknowledging.
    pub fn append_txn(&mut self, ops: &[WalOp]) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(ops.len() * 16 + 1);
        for op in ops {
            encode_op(op, &mut buf);
        }
        self.log.append(&buf).map_err(to_io)
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads back every *committed* transaction from a log file. An
    /// incomplete trailing frame (torn write) is discarded; a complete
    /// frame whose checksum does not match is a hard corruption error.
    pub fn replay(path: impl AsRef<Path>) -> std::io::Result<Vec<Vec<WalOp>>> {
        let (frames, _torn) = FrameLog::read_frames(path.as_ref()).map_err(to_io)?;
        let mut txns = Vec::with_capacity(frames.len());
        for frame in frames {
            let mut slice: &[u8] = &frame;
            let mut ops = Vec::new();
            while !slice.is_empty() {
                let op = decode_op(&mut slice).ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "corrupt graphdb wal frame: bad op encoding",
                    )
                })?;
                ops.push(op);
            }
            txns.push(ops);
        }
        Ok(txns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vxgdb_wal_{tag}_{}.log", std::process::id()))
    }

    #[test]
    fn append_and_replay() {
        let path = temp_wal("basic");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(Some(path.clone()), false).unwrap();
            wal.append_txn(&[
                WalOp::CreateNode { id: 0 },
                WalOp::CreateNode { id: 1 },
                WalOp::CreateRel { src: 0, dst: 1, weight: 2.0 },
            ])
            .unwrap();
            wal.append_txn(&[WalOp::SetProp { node: 0, key: "rank".into(), value: 0.5 }]).unwrap();
        }
        let txns = Wal::replay(&path).unwrap();
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[0].len(), 3);
        assert_eq!(txns[1][0], WalOp::SetProp { node: 0, key: "rank".into(), value: 0.5 });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_discarded() {
        let path = temp_wal("torn");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(Some(path.clone()), false).unwrap();
            wal.append_txn(&[WalOp::CreateNode { id: 0 }]).unwrap();
            wal.append_txn(&[WalOp::CreateNode { id: 1 }]).unwrap();
        }
        // Simulate a crash mid-append: truncate the last 3 bytes.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let txns = Wal::replay(&path).unwrap();
        assert_eq!(txns.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_in_committed_frame_is_detected() {
        let path = temp_wal("flip");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(Some(path.clone()), false).unwrap();
            wal.append_txn(&[WalOp::CreateNode { id: 0 }]).unwrap();
        }
        // Flip one payload bit: the shared frame checksum must catch it —
        // the pre-FrameLog byte stream would have replayed garbage here.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = Wal::replay(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ephemeral_wal_is_noop() {
        let mut wal = Wal::open(None, true).unwrap();
        wal.append_txn(&[WalOp::CreateNode { id: 7 }]).unwrap();
        // Nothing written anywhere; just must not error.
    }

    #[test]
    fn op_roundtrip_all_variants() {
        let ops = vec![
            WalOp::CreateNode { id: 3 },
            WalOp::CreateRel { src: 1, dst: 2, weight: 0.25 },
            WalOp::SetProp { node: 9, key: "dist".into(), value: -1.5 },
            WalOp::DeleteRel { src: 2, dst: 1 },
        ];
        let mut buf = Vec::new();
        for op in &ops {
            encode_op(op, &mut buf);
        }
        let mut slice: &[u8] = &buf;
        for op in &ops {
            assert_eq!(decode_op(&mut slice).as_ref(), Some(op));
        }
        assert!(slice.is_empty());
    }
}
