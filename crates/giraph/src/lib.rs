//! A Giraph-like in-memory BSP engine — the Figure-2 baseline.
//!
//! Faithful Pregel semantics (supersteps, synchronization barriers,
//! serialized message passing between hash partitions, combiners, global
//! aggregators, vote-to-halt) running the *same*
//! [`vertexica_common::VertexProgram`] implementations as the relational
//! Vertexica engine, so results can be asserted equal across engines.
//!
//! Apache Giraph itself is a JVM/Hadoop system; its constant costs (JVM/job
//! startup, ZooKeeper-coordinated barriers, Writable serialization) dominate
//! small graphs — the effect behind Figure 2's "Vertexica is 4× faster than
//! Giraph on the small graph, comparable on the large ones". Those costs are
//! modelled explicitly and configurably in [`overhead::OverheadModel`]
//! (documented substitution — see DESIGN.md §2); `OverheadModel::none()`
//! gives the raw engine.

pub mod engine;
pub mod overhead;

pub use engine::{GiraphEngine, GiraphRunStats};
pub use overhead::OverheadModel;
