//! The BSP engine: partitions, worker threads, barriers, serialized messages.

use std::sync::Arc;

use vertexica_common::graph::{Adjacency, Edge, EdgeList, VertexId};
use vertexica_common::hash::{mix64, FxHashMap};
use vertexica_common::pregel::{AggKind, InitContext, VertexContext, VertexProgram};
use vertexica_common::runtime::WorkerPool;
use vertexica_common::timer::Stopwatch;
use vertexica_common::VertexData;

use crate::overhead::OverheadModel;

/// Run statistics.
#[derive(Debug, Clone, Default)]
pub struct GiraphRunStats {
    pub supersteps: u64,
    pub total_messages: u64,
    pub elapsed_secs: f64,
}

/// The engine configuration.
#[derive(Clone)]
pub struct GiraphEngine {
    pub num_workers: usize,
    pub use_combiner: bool,
    pub overhead: OverheadModel,
    /// The shared runtime pool (persistent across supersteps and runs;
    /// clones of the engine share it).
    runtime: Arc<WorkerPool>,
}

impl Default for GiraphEngine {
    fn default() -> Self {
        let runtime = Arc::new(WorkerPool::with_default_size());
        GiraphEngine {
            num_workers: runtime.size(),
            use_combiner: true,
            overhead: OverheadModel::none(),
            runtime,
        }
    }
}

/// Per-vertex runtime state.
struct VertexState<V> {
    value: V,
    halted: bool,
}

/// One partition's vertex states, keyed by vertex id.
type StatePartition<V> = FxHashMap<VertexId, VertexState<V>>;

/// One partition's pending messages for the current superstep.
type Inbox = FxHashMap<VertexId, Vec<Vec<u8>>>;

/// The context handed to compute calls.
struct Ctx<'a, P: VertexProgram> {
    id: VertexId,
    superstep: u64,
    num_vertices: u64,
    value: P::Value,
    edges: &'a [Edge],
    sent: &'a mut Vec<(VertexId, Vec<u8>)>,
    sent_count: &'a mut u64,
    voted_halt: bool,
    agg_out: &'a mut Vec<(String, f64)>,
    prev_aggregates: &'a FxHashMap<String, f64>,
}

impl<'a, P: VertexProgram> VertexContext<P::Value, P::Message> for Ctx<'a, P> {
    fn vertex_id(&self) -> VertexId {
        self.id
    }
    fn superstep(&self) -> u64 {
        self.superstep
    }
    fn num_vertices(&self) -> u64 {
        self.num_vertices
    }
    fn value(&self) -> &P::Value {
        &self.value
    }
    fn set_value(&mut self, value: P::Value) {
        self.value = value;
    }
    fn out_edges(&self) -> &[Edge] {
        self.edges
    }
    fn send_message(&mut self, to: VertexId, msg: P::Message) {
        // Serialize immediately — Giraph messages cross Writable boundaries.
        self.sent.push((to, msg.to_bytes()));
        *self.sent_count += 1;
    }
    fn vote_to_halt(&mut self) {
        self.voted_halt = true;
    }
    fn aggregate(&mut self, name: &str, value: f64) {
        self.agg_out.push((name.to_string(), value));
    }
    fn read_aggregate(&self, name: &str) -> Option<f64> {
        self.prev_aggregates.get(name).copied()
    }
}

impl GiraphEngine {
    pub fn with_workers(mut self, n: usize) -> Self {
        self.num_workers = n.max(1);
        self
    }

    /// The shared runtime pool driving the compute phases.
    pub fn runtime(&self) -> &Arc<WorkerPool> {
        &self.runtime
    }

    pub fn with_overhead(mut self, o: OverheadModel) -> Self {
        self.overhead = o;
        self
    }

    pub fn with_combiner(mut self, on: bool) -> Self {
        self.use_combiner = on;
        self
    }

    /// Runs the program to convergence; returns final vertex values (indexed
    /// by vertex id) and stats.
    pub fn run<P: VertexProgram>(
        &self,
        graph: &EdgeList,
        program: &P,
    ) -> (Vec<P::Value>, GiraphRunStats) {
        let sw = Stopwatch::start();
        self.overhead.charge_startup();

        let n = graph.num_vertices;
        let adj = Arc::new(Adjacency::from_edge_list(graph));
        // Pre-materialize each vertex's out-edge list once (Edge structs).
        let edge_lists: Vec<Vec<Edge>> = (0..n)
            .map(|v| {
                adj.neighbors(v)
                    .iter()
                    .zip(adj.neighbor_weights(v))
                    .map(|(&d, &w)| Edge::weighted(v, d, w))
                    .collect()
            })
            .collect();

        let workers = self.num_workers.max(1);
        // Size the shared pool at run start (engine clones share the pool,
        // so sizing in the builder could be overwritten by a sibling; sizing
        // here keeps this run's config and pool in agreement).
        self.runtime.resize(workers);
        let part_of = |v: VertexId| (mix64(v) % workers as u64) as usize;

        // Partition-local vertex states.
        let mut states: Vec<StatePartition<P::Value>> =
            (0..workers).map(|_| FxHashMap::default()).collect();
        for v in 0..n {
            let init = InitContext { num_vertices: n, out_degree: adj.out_degree(v) as u64 };
            states[part_of(v)]
                .insert(v, VertexState { value: program.initial_value(v, &init), halted: false });
        }

        // Double-buffered inboxes: messages for the *current* superstep.
        let mut inboxes: Vec<Inbox> = (0..workers).map(|_| FxHashMap::default()).collect();

        let mut prev_aggregates: FxHashMap<String, f64> = FxHashMap::default();
        let agg_specs: FxHashMap<String, AggKind> =
            program.aggregators().into_iter().map(|s| (s.name.to_string(), s.kind)).collect();

        let mut stats = GiraphRunStats::default();
        let max_supersteps = program.max_supersteps();
        let mut superstep: u64 = 0;

        loop {
            if superstep >= max_supersteps {
                break;
            }
            let any_messages = inboxes.iter().any(|p| !p.is_empty());
            let any_active = states.iter().any(|p| p.values().any(|s| !s.halted));
            if superstep > 0 && !any_messages && !any_active {
                break;
            }

            // Compute phase: one pool task per partition on the shared
            // runtime — the same persistent worker threads every superstep.
            let current_inboxes = std::mem::take(&mut inboxes);
            let work: Vec<(&mut StatePartition<P::Value>, Inbox)> =
                states.iter_mut().zip(current_inboxes).collect();
            let results: Vec<PartitionResult> =
                self.runtime.map_indexed(work, |_, (part_states, mut inbox)| {
                    let mut out: Vec<(VertexId, Vec<u8>)> = Vec::new();
                    let mut sent_count = 0u64;
                    let mut agg_out: Vec<(String, f64)> = Vec::new();
                    let mut ids: Vec<VertexId> = part_states.keys().copied().collect();
                    ids.sort_unstable();
                    for v in ids {
                        let msgs_bytes = inbox.remove(&v).unwrap_or_default();
                        let state = part_states.get_mut(&v).expect("state");
                        let active = superstep == 0 || !state.halted || !msgs_bytes.is_empty();
                        if !active {
                            continue;
                        }
                        let msgs: Vec<P::Message> =
                            msgs_bytes.iter().filter_map(|b| P::Message::from_bytes(b)).collect();
                        let mut ctx: Ctx<'_, P> = Ctx {
                            id: v,
                            superstep,
                            num_vertices: n,
                            value: state.value.clone(),
                            edges: &edge_lists[v as usize],
                            sent: &mut out,
                            sent_count: &mut sent_count,
                            voted_halt: false,
                            agg_out: &mut agg_out,
                            prev_aggregates: &prev_aggregates,
                        };
                        program.compute(&mut ctx, &msgs);
                        state.value = ctx.value;
                        state.halted = ctx.voted_halt;
                    }
                    PartitionResult { out, sent_count, agg_out }
                });

            // Message routing (the "network" phase).
            let mut delivered: u64 = 0;
            let mut new_inboxes: Vec<Inbox> = (0..workers).map(|_| FxHashMap::default()).collect();
            let mut agg_now: FxHashMap<String, f64> = FxHashMap::default();
            for r in results {
                delivered += r.sent_count;
                for (to, bytes) in r.out {
                    if to >= n {
                        continue; // dropped, like messages to missing vertices
                    }
                    new_inboxes[part_of(to)].entry(to).or_default().push(bytes);
                }
                for (name, v) in r.agg_out {
                    let Some(kind) = agg_specs.get(&name) else { continue };
                    let e = agg_now.entry(name).or_insert(kind.identity());
                    *e = kind.combine(*e, v);
                }
            }

            // Optional combiner pass (after routing, like Giraph's combiner
            // on the receive side).
            if self.use_combiner {
                for inbox in &mut new_inboxes {
                    for msgs in inbox.values_mut() {
                        if msgs.len() < 2 {
                            continue;
                        }
                        let decoded: Vec<P::Message> =
                            msgs.iter().filter_map(|b| P::Message::from_bytes(b)).collect();
                        if decoded.len() == msgs.len() {
                            let mut it = decoded.into_iter();
                            let mut acc = it.next().unwrap();
                            let mut combined_all = true;
                            for m in it {
                                match program.combine(&acc, &m) {
                                    Some(c) => acc = c,
                                    None => {
                                        combined_all = false;
                                        break;
                                    }
                                }
                            }
                            if combined_all {
                                *msgs = vec![acc.to_bytes()];
                            }
                        }
                    }
                }
            }

            inboxes = new_inboxes;
            stats.total_messages += delivered;
            self.overhead.charge_messages(delivered);
            self.overhead.charge_superstep();
            prev_aggregates = agg_now;
            superstep += 1;
        }

        stats.supersteps = superstep;
        stats.elapsed_secs = sw.elapsed_secs();

        // Collect final values in id order.
        let mut values: Vec<Option<P::Value>> = (0..n).map(|_| None).collect();
        for part in states {
            for (v, s) in part {
                values[v as usize] = Some(s.value);
            }
        }
        (values.into_iter().map(|v| v.expect("every vertex has state")).collect(), stats)
    }
}

struct PartitionResult {
    out: Vec<(VertexId, Vec<u8>)>,
    sent_count: u64,
    agg_out: Vec<(String, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vertexica_common::pregel::{AggregatorSpec, VertexContextExt};

    /// Same MaxId program as the Vertexica coordinator tests.
    struct MaxId;
    impl VertexProgram for MaxId {
        type Value = u64;
        type Message = u64;

        fn initial_value(&self, id: VertexId, _init: &InitContext) -> u64 {
            id
        }

        fn compute(&self, ctx: &mut dyn VertexContext<u64, u64>, messages: &[u64]) {
            let best = messages.iter().copied().fold(*ctx.value(), u64::max);
            if best > *ctx.value() || ctx.superstep() == 0 {
                ctx.set_value(best);
                ctx.send_to_all_neighbors(best);
            }
            ctx.vote_to_halt();
        }

        fn combine(&self, a: &u64, b: &u64) -> Option<u64> {
            Some((*a).max(*b))
        }
    }

    /// Counts active vertices per superstep through an aggregator.
    struct CountActive;
    impl VertexProgram for CountActive {
        type Value = f64;
        type Message = f64;

        fn initial_value(&self, _id: VertexId, _init: &InitContext) -> f64 {
            0.0
        }

        fn compute(&self, ctx: &mut dyn VertexContext<f64, f64>, _messages: &[f64]) {
            ctx.aggregate("active", 1.0);
            if ctx.superstep() == 0 {
                ctx.send_to_all_neighbors(1.0);
            } else {
                // Record what the previous superstep measured.
                let prev = ctx.read_aggregate("active").unwrap_or(-1.0);
                ctx.set_value(prev);
            }
            ctx.vote_to_halt();
        }

        fn aggregators(&self) -> Vec<AggregatorSpec> {
            vec![AggregatorSpec { name: "active", kind: AggKind::Sum }]
        }

        fn max_supersteps(&self) -> u64 {
            2
        }
    }

    fn two_components() -> EdgeList {
        EdgeList::from_pairs([(0, 1), (1, 0), (1, 2), (2, 1), (3, 4), (4, 3)])
    }

    #[test]
    fn maxid_converges() {
        let (values, stats) = GiraphEngine::default().run(&two_components(), &MaxId);
        assert_eq!(values, vec![2, 2, 2, 4, 4]);
        assert!(stats.supersteps >= 2);
        assert!(stats.total_messages > 0);
    }

    #[test]
    fn single_worker_matches_parallel() {
        let g = two_components();
        let (v1, _) = GiraphEngine::default().with_workers(1).run(&g, &MaxId);
        let (v8, _) = GiraphEngine::default().with_workers(8).run(&g, &MaxId);
        assert_eq!(v1, v8);
    }

    #[test]
    fn combiner_does_not_change_result() {
        let g = two_components();
        let (v1, s1) = GiraphEngine::default().with_combiner(true).run(&g, &MaxId);
        let (v2, _) = GiraphEngine::default().with_combiner(false).run(&g, &MaxId);
        assert_eq!(v1, v2);
        assert!(s1.supersteps >= 2);
    }

    #[test]
    fn aggregator_visible_next_superstep() {
        // Star graph: all 5 vertices active at superstep 0.
        let g = EdgeList::from_pairs([(0, 1), (0, 2), (0, 3), (0, 4)]);
        let (values, _) = GiraphEngine::default().run(&g, &CountActive);
        // Vertices active in superstep 1 (got messages: 1..4) read 5.0.
        for (v, &val) in values.iter().enumerate().take(5).skip(1) {
            assert_eq!(val, 5.0, "vertex {v}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = EdgeList::new(0, vec![]);
        let (values, stats) = GiraphEngine::default().run(&g, &MaxId);
        assert!(values.is_empty());
        assert!(stats.supersteps <= 1);
    }

    #[test]
    fn overhead_model_slows_run() {
        let g = two_components();
        let fast = GiraphEngine::default();
        let slow = GiraphEngine::default().with_overhead(OverheadModel {
            startup: std::time::Duration::from_millis(30),
            per_superstep: std::time::Duration::from_millis(5),
            per_message_ns: 0,
        });
        let (_, s_fast) = fast.run(&g, &MaxId);
        let (_, s_slow) = slow.run(&g, &MaxId);
        assert!(s_slow.elapsed_secs > s_fast.elapsed_secs + 0.025);
    }

    #[test]
    fn message_to_out_of_range_vertex_dropped() {
        struct SendFar;
        impl VertexProgram for SendFar {
            type Value = u64;
            type Message = u64;
            fn initial_value(&self, id: VertexId, _i: &InitContext) -> u64 {
                id
            }
            fn compute(&self, ctx: &mut dyn VertexContext<u64, u64>, _m: &[u64]) {
                if ctx.superstep() == 0 {
                    ctx.send_message(9999, 1);
                }
                ctx.vote_to_halt();
            }
        }
        let g = EdgeList::from_pairs([(0, 1)]);
        let (values, _) = GiraphEngine::default().run(&g, &SendFar);
        assert_eq!(values.len(), 2);
    }
}
