//! Cost model for the JVM/distributed overheads of a real Giraph deployment.
//!
//! Our BSP engine is an in-process Rust loop; real Giraph pays JVM startup,
//! Hadoop job submission, ZooKeeper barrier coordination and per-message
//! Writable (de)serialization. Without modelling those, the baseline would be
//! unrealistically fast on small graphs and Figure 2's shape (Vertexica ≈ 4×
//! faster than Giraph on Twitter, comparable on LiveJournal) could not
//! reproduce. The defaults are calibrated against the paper's published
//! single-algorithm runtimes, linearly downscaled with the harness's graph
//! scale; `OverheadModel::none()` disables the model entirely.

use std::time::Duration;

/// Explicit, configurable overhead constants.
#[derive(Debug, Clone)]
pub struct OverheadModel {
    /// One-time cost: JVM spin-up + job submission + input loading
    /// coordination.
    pub startup: Duration,
    /// Per-superstep cost: ZooKeeper-style barrier round plus worker
    /// coordination RPCs.
    pub per_superstep: Duration,
    /// Per-message serialization/copy tax applied in addition to the real
    /// byte-level serialization the engine already performs (models netty
    /// framing + Writable envelope), in nanoseconds.
    pub per_message_ns: u64,
}

impl OverheadModel {
    /// No modelled overhead: the raw in-memory BSP engine.
    pub fn none() -> Self {
        OverheadModel { startup: Duration::ZERO, per_superstep: Duration::ZERO, per_message_ns: 0 }
    }

    /// Giraph-like constants at full (paper) dataset scale.
    ///
    /// Calibration: the paper's Giraph runtimes are ~43–47 s on Twitter for
    /// both algorithms even though the graph is small, pointing at ≳35 s of
    /// fixed cost (JVM + job setup + barriers) on their 4-node cluster;
    /// per-message costs dominate the LiveJournal runs (68M edges × 10
    /// supersteps of PageRank ≈ 0.7G messages in ~150 s of marginal time →
    /// ~200 ns/message including serialization).
    pub fn giraph_full_scale() -> Self {
        OverheadModel {
            startup: Duration::from_secs(35),
            per_superstep: Duration::from_millis(800),
            per_message_ns: 200,
        }
    }

    /// Giraph-like constants shrunk linearly to a benchmark scale factor in
    /// `(0, 1]` (the harness runs downscaled graphs; fixed costs must shrink
    /// with them or they would swamp every measurement).
    pub fn giraph_scaled(scale: f64) -> Self {
        let s = scale.clamp(1e-6, 1.0);
        let full = Self::giraph_full_scale();
        OverheadModel {
            startup: Duration::from_secs_f64(full.startup.as_secs_f64() * s),
            per_superstep: Duration::from_secs_f64(full.per_superstep.as_secs_f64() * s),
            // Marginal per-message cost does not shrink with graph size.
            per_message_ns: full.per_message_ns,
        }
    }

    /// Busy-waits the per-message tax for `n` messages (sleep granularity is
    /// too coarse for nanosecond-scale costs).
    pub fn charge_messages(&self, n: u64) {
        if self.per_message_ns == 0 || n == 0 {
            return;
        }
        let total = Duration::from_nanos(self.per_message_ns.saturating_mul(n));
        if total < Duration::from_micros(50) {
            // Too small to measure; skip.
            return;
        }
        let deadline = std::time::Instant::now() + total;
        while std::time::Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }

    /// Sleeps the fixed startup cost.
    pub fn charge_startup(&self) {
        if !self.startup.is_zero() {
            std::thread::sleep(self.startup);
        }
    }

    /// Sleeps the per-superstep barrier cost.
    pub fn charge_superstep(&self) {
        if !self.per_superstep.is_zero() {
            std::thread::sleep(self.per_superstep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_free() {
        let m = OverheadModel::none();
        let t = std::time::Instant::now();
        m.charge_startup();
        m.charge_superstep();
        m.charge_messages(1_000_000);
        assert!(t.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn scaled_shrinks_fixed_costs() {
        let full = OverheadModel::giraph_full_scale();
        let tiny = OverheadModel::giraph_scaled(0.01);
        assert!(tiny.startup < full.startup / 50);
        assert_eq!(tiny.per_message_ns, full.per_message_ns);
    }

    #[test]
    fn charge_messages_takes_time() {
        let m = OverheadModel { per_message_ns: 1000, ..OverheadModel::none() };
        let t = std::time::Instant::now();
        m.charge_messages(2_000_000); // 2 ms nominal
        assert!(t.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn scale_clamped() {
        let m = OverheadModel::giraph_scaled(100.0);
        assert_eq!(m.startup, OverheadModel::giraph_full_scale().startup);
    }
}
