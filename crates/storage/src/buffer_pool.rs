//! Byte-budgeted buffer pool for cold ROS segments.
//!
//! The engine's working set is dominated by immutable ROS segments. Once a
//! table has been checkpointed, every one of its segments has a bit-exact
//! twin inside the table's `t<N>.vxtb` image (see [`crate::persist`]), so
//! the in-memory copy is a pure cache: it can be dropped under memory
//! pressure and reloaded on demand. This module implements that cache as a
//! clock (second-chance) pool:
//!
//! * Every ROS segment is wrapped in a [`SegmentHandle`] whose shared
//!   [`PoolEntry`] is either **resident** (holds the decoded-form
//!   `Arc<Segment>`) or **evicted** (holds nothing; the entry remembers its
//!   [`SpillAddr`] — file, offset, length, CRC — within a checkpoint image).
//! * Readers call [`SegmentHandle::read`], which **pins** the entry (an
//!   atomic pin count) and reloads it from disk if it was evicted. The
//!   returned [`PinnedSegment`] derefs to [`Segment`] and unpins on drop, so
//!   an in-flight scan can never have its segment reclaimed underneath it.
//! * The evictor ([`BufferPool::ensure_capacity`]) sweeps a clock hand over
//!   all registered entries, skipping pinned entries, entries with no spill
//!   address (a segment newer than the last checkpoint has no disk twin and
//!   is never evictable — "eviction only behind the watermark"), and
//!   entries whose second-chance bit is set.
//!
//! Lock order: the pool's registry lock and each entry's state lock are
//! never both *blocked on* in opposite orders. A reloading pin holds its
//! entry's state lock while taking the registry lock (inside
//! `ensure_capacity`); the evictor holds the registry lock but only ever
//! `try_lock`s entry state, skipping contended entries. Pin counts are
//! re-checked after the state lock is acquired, so a pinner that bumped the
//! count and then blocked on the state lock is always noticed.
//!
//! The budget comes from the `memory_budget_bytes` config knob or the
//! `VERTEXICA_MEMORY_BUDGET` environment variable (plain bytes, or with a
//! `k`/`m`/`g` suffix). Unset means unbounded: the pool still tracks
//! residency gauges but never evicts.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::{Arc, Weak};
use vertexica_common::sync::{AtomicBool, AtomicU64, AtomicUsize, Mutex, Ordering};

use crate::error::{StorageError, StorageResult};
use crate::persist;
use crate::table::{Segment, ZoneMap};

/// Where a segment's bit-exact spill image lives: a byte span inside a
/// checkpointed `.vxtb` file, plus the CRC of that span for reload
/// validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillAddr {
    /// File name relative to the durable directory (e.g. `t12.vxtb`).
    pub file: String,
    /// Byte offset of the serialized segment within the file.
    pub offset: u64,
    /// Serialized length in bytes.
    pub len: u64,
    /// CRC-32 of the serialized bytes.
    pub crc: u32,
}

/// Residency state of a pool entry.
enum SlotState {
    Resident(Arc<Segment>),
    Evicted,
}

/// Shared state behind a [`SegmentHandle`]: the segment (when resident),
/// its spill address (when checkpointed), pin count, and cached metadata
/// that must stay available without a reload (row count, per-segment zone
/// maps, byte estimate) so segment-level pruning never touches disk.
pub struct PoolEntry {
    num_rows: usize,
    bytes: usize,
    zone_maps: Vec<ZoneMap>,
    state: Mutex<SlotState>,
    addr: Mutex<Option<SpillAddr>>,
    pins: AtomicUsize,
    /// Clock second-chance bit: set on every pin, cleared (and the entry
    /// spared once) by the sweeping hand.
    referenced: AtomicBool,
    /// True once this entry has been pushed into a pool's registry; guards
    /// against double registration when a table is re-attached.
    registered: AtomicBool,
    pool: Mutex<Weak<BufferPool>>,
}

impl Drop for PoolEntry {
    fn drop(&mut self) {
        // A resident entry going away (table dropped/replaced/truncated)
        // releases its bytes from the pool's residency gauge.
        if matches!(*self.state.get_mut(), SlotState::Resident(_)) {
            if let Some(pool) = self.pool.get_mut().upgrade() {
                pool.sub_resident(self.bytes);
            }
        }
    }
}

/// A pinned, resident segment. Derefs to [`Segment`]; the pin is released
/// on drop. While any pin is outstanding the evictor will not touch the
/// entry.
pub struct PinnedSegment {
    entry: Arc<PoolEntry>,
    seg: Arc<Segment>,
}

impl std::ops::Deref for PinnedSegment {
    type Target = Segment;

    fn deref(&self) -> &Segment {
        &self.seg
    }
}

impl Drop for PinnedSegment {
    fn drop(&mut self) {
        self.entry.pins.fetch_sub(1, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for PinnedSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PinnedSegment").field("num_rows", &self.seg.num_rows()).finish()
    }
}

/// A cheaply clonable handle to a (possibly evicted) ROS segment. Tables
/// and scan-cursor snapshots hold these instead of `Arc<Segment>`; cloning
/// shares the underlying [`PoolEntry`], so a snapshot taken by an open
/// cursor keeps the entry — and its reloadability — alive even if the
/// table drops the segment.
#[derive(Clone)]
pub struct SegmentHandle {
    entry: Arc<PoolEntry>,
}

impl std::fmt::Debug for SegmentHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentHandle")
            .field("num_rows", &self.entry.num_rows)
            .field("bytes", &self.entry.bytes)
            .field("resident", &self.is_resident())
            .finish()
    }
}

impl SegmentHandle {
    /// Wraps a freshly built segment. The entry starts resident, unpooled
    /// (standalone handles behave exactly like `Arc<Segment>`), and with no
    /// spill address — it becomes evictable only once a checkpoint assigns
    /// one.
    pub fn new(seg: Arc<Segment>) -> SegmentHandle {
        let num_rows = seg.num_rows();
        let bytes = seg.estimated_bytes();
        let zone_maps = (0..seg.num_columns()).map(|c| seg.zone_map(c).clone()).collect();
        SegmentHandle {
            entry: Arc::new(PoolEntry {
                num_rows,
                bytes,
                zone_maps,
                state: Mutex::new(SlotState::Resident(seg)),
                addr: Mutex::new(None),
                pins: AtomicUsize::new(0),
                referenced: AtomicBool::new(true),
                registered: AtomicBool::new(false),
                pool: Mutex::new(Weak::new()),
            }),
        }
    }

    pub fn num_rows(&self) -> usize {
        self.entry.num_rows
    }

    /// Estimated encoded size in bytes (the unit of the pool budget).
    pub fn estimated_bytes(&self) -> usize {
        self.entry.bytes
    }

    /// Per-segment zone map of `col`, cached on the handle so segment-level
    /// pruning works without pinning (and without reloading an evicted
    /// segment just to rule it out).
    pub fn zone_map(&self, col: usize) -> &ZoneMap {
        &self.entry.zone_maps[col]
    }

    pub fn is_resident(&self) -> bool {
        matches!(*self.entry.state.lock(), SlotState::Resident(_))
    }

    /// The spill address assigned by the last checkpoint, if any.
    pub fn spill_addr(&self) -> Option<SpillAddr> {
        self.entry.addr.lock().clone()
    }

    /// Records where this segment's bit-exact image lives on disk, making
    /// the entry evictable. Called at checkpoint/commit time, strictly
    /// after the image file is durably written.
    pub(crate) fn set_addr(&self, addr: SpillAddr) {
        *self.entry.addr.lock() = Some(addr);
    }

    /// Pins the segment, reloading it from its spill image if evicted.
    pub fn read(&self) -> StorageResult<PinnedSegment> {
        // Pin BEFORE touching the state lock: an evictor that sampled
        // pins == 0 re-checks after acquiring state, so this ordering means
        // it can never evict a segment a reader has committed to.
        self.entry.pins.fetch_add(1, Ordering::SeqCst);
        self.entry.referenced.store(true, Ordering::Relaxed);
        match self.read_resident() {
            Ok(seg) => Ok(PinnedSegment { entry: self.entry.clone(), seg }),
            Err(e) => {
                self.entry.pins.fetch_sub(1, Ordering::SeqCst);
                Err(e)
            }
        }
    }

    fn read_resident(&self) -> StorageResult<Arc<Segment>> {
        let mut state = self.entry.state.lock();
        if let SlotState::Resident(seg) = &*state {
            return Ok(seg.clone());
        }
        // Miss: reload from the spill image. Only pooled entries with an
        // assigned address are ever evicted, so both must be present.
        let pool =
            self.entry.pool.lock().upgrade().ok_or_else(|| {
                StorageError::Internal("evicted segment has no buffer pool".into())
            })?;
        let addr =
            self.entry.addr.lock().clone().ok_or_else(|| {
                StorageError::Internal("evicted segment has no spill address".into())
            })?;
        let dir = pool
            .dir()
            .ok_or_else(|| StorageError::Internal("buffer pool has no spill directory".into()))?;
        // Make room first. Holding our state lock here is fine: the evictor
        // only try_locks entry state and skips us (we're pinned anyway).
        pool.ensure_capacity(self.entry.bytes);
        let seg = persist::read_segment_at(dir.join(&addr.file), addr.offset, addr.len, addr.crc)?;
        if seg.num_rows() != self.entry.num_rows {
            return Err(StorageError::Corrupt("reloaded segment row-count mismatch".into()));
        }
        let seg = Arc::new(seg);
        *state = SlotState::Resident(seg.clone());
        pool.note_reload(self.entry.bytes);
        Ok(seg)
    }
}

#[derive(Default)]
struct Registry {
    entries: Vec<Weak<PoolEntry>>,
    hand: usize,
}

/// Point-in-time pool gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Configured budget; `None` means unbounded.
    pub budget: Option<usize>,
    /// Bytes of currently resident pooled segments.
    pub resident_bytes: u64,
    /// Cumulative segments evicted.
    pub evictions: u64,
    /// Cumulative segments reloaded from spill images.
    pub reloads: u64,
}

/// The segment buffer pool. One per [`crate::catalog::Catalog`].
pub struct BufferPool {
    /// `usize::MAX` encodes "unbounded".
    budget: AtomicUsize,
    dir: Mutex<Option<PathBuf>>,
    registry: Mutex<Registry>,
    resident_bytes: AtomicU64,
    peak_resident_bytes: AtomicU64,
    evictions: AtomicU64,
    reloads: AtomicU64,
}

impl Default for BufferPool {
    /// An unbounded pool unless `VERTEXICA_MEMORY_BUDGET` is set.
    fn default() -> BufferPool {
        BufferPool::with_budget(memory_budget_from_env())
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("BufferPool")
            .field("budget", &s.budget)
            .field("resident_bytes", &s.resident_bytes)
            .field("evictions", &s.evictions)
            .field("reloads", &s.reloads)
            .finish()
    }
}

impl BufferPool {
    pub fn with_budget(budget: Option<usize>) -> BufferPool {
        BufferPool {
            budget: AtomicUsize::new(budget.unwrap_or(usize::MAX)),
            dir: Mutex::new(None),
            registry: Mutex::new(Registry::default()),
            resident_bytes: AtomicU64::new(0),
            peak_resident_bytes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
        }
    }

    pub fn budget(&self) -> Option<usize> {
        match self.budget.load(Ordering::Relaxed) {
            usize::MAX => None,
            b => Some(b),
        }
    }

    /// Sets (or clears) the byte budget and immediately enforces it.
    pub fn set_budget(&self, budget: Option<usize>) {
        self.budget.store(budget.unwrap_or(usize::MAX), Ordering::Relaxed);
        self.enforce();
    }

    /// Directory spill files are resolved against (the durable directory).
    pub fn dir(&self) -> Option<PathBuf> {
        self.dir.lock().clone()
    }

    pub fn set_dir(&self, dir: PathBuf) {
        *self.dir.lock() = Some(dir);
    }

    /// Adds a segment handle to the clock. Idempotent per entry. Newly
    /// registered resident entries count toward the budget, and the pool
    /// makes room for them by evicting colder entries first.
    pub fn register(self: &Arc<Self>, handle: &SegmentHandle) {
        let entry = &handle.entry;
        if entry.registered.swap(true, Ordering::SeqCst) {
            return;
        }
        *entry.pool.lock() = Arc::downgrade(self);
        let resident_bytes = if handle.is_resident() { entry.bytes } else { 0 };
        if resident_bytes > 0 {
            self.ensure_capacity(resident_bytes);
        }
        let mut reg = self.registry.lock();
        reg.entries.push(Arc::downgrade(entry));
        drop(reg);
        if resident_bytes > 0 {
            self.add_resident(resident_bytes);
        }
    }

    /// Evicts cold entries until `resident + incoming <= budget` or nothing
    /// more is evictable. No-op when unbounded. The clock hand gives every
    /// entry one second chance (its referenced bit is cleared on the first
    /// pass and it is evicted on the second), sweeping at most two laps.
    pub fn ensure_capacity(&self, incoming: usize) {
        let Some(budget) = self.budget() else { return };
        if (self.resident_bytes.load(Ordering::SeqCst) as usize).saturating_add(incoming) <= budget
        {
            return;
        }
        let mut reg = self.registry.lock();
        let n = reg.entries.len();
        if n == 0 {
            return;
        }
        let mut scanned = 0usize;
        let max_scan = 2 * n;
        while (self.resident_bytes.load(Ordering::SeqCst) as usize).saturating_add(incoming)
            > budget
            && scanned < max_scan
        {
            let i = reg.hand % reg.entries.len();
            reg.hand = reg.hand.wrapping_add(1);
            scanned += 1;
            let Some(entry) = reg.entries[i].upgrade() else { continue };
            if entry.pins.load(Ordering::SeqCst) > 0 {
                continue;
            }
            if entry.addr.lock().is_none() {
                // No disk twin yet (built after the last checkpoint):
                // never evictable — "eviction only behind the watermark".
                continue;
            }
            if entry.referenced.swap(false, Ordering::Relaxed) {
                // Second chance.
                continue;
            }
            // Never block on entry state while holding the registry lock —
            // a reloading pin holds state and wants the registry.
            let Some(mut state) = entry.state.try_lock() else { continue };
            // A pinner bumps pins before blocking on the state lock we now
            // hold; re-check so we never evict under a committed reader.
            // The model checker proves this re-check load-bearing by
            // seeding `buffer_pool.drop_pin_recheck`.
            if entry.pins.load(Ordering::SeqCst) > 0
                && !vertexica_common::sync::model::mutation_enabled("buffer_pool.drop_pin_recheck")
            {
                continue;
            }
            if matches!(*state, SlotState::Resident(_)) {
                *state = SlotState::Evicted;
                self.resident_bytes.fetch_sub(entry.bytes as u64, Ordering::SeqCst);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Compact dead weak refs so dropped tables don't bloat the clock.
        if reg.entries.len() > 64
            && reg.entries.iter().filter(|w| w.strong_count() == 0).count() > reg.entries.len() / 2
        {
            reg.entries.retain(|w| w.strong_count() > 0);
            reg.hand = 0;
        }
    }

    /// Enforces the budget with no incoming allocation (e.g. right after a
    /// checkpoint made new entries evictable).
    pub fn enforce(&self) {
        self.ensure_capacity(0);
    }

    /// Spill files still referenced by any live entry (including entries
    /// kept alive only by open cursor snapshots). Checkpoint GC must keep
    /// these so an in-flight scan over a replaced table can still reload.
    pub fn referenced_files(&self) -> HashSet<String> {
        let reg = self.registry.lock();
        let mut files = HashSet::new();
        for weak in &reg.entries {
            if let Some(entry) = weak.upgrade() {
                if let Some(addr) = &*entry.addr.lock() {
                    files.insert(addr.file.clone());
                }
            }
        }
        files
    }

    pub fn stats(&self) -> PoolStats {
        PoolStats {
            budget: self.budget(),
            resident_bytes: self.resident_bytes.load(Ordering::SeqCst),
            evictions: self.evictions.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
        }
    }

    /// Peak resident bytes since the last [`BufferPool::reset_peak`].
    pub fn peak_resident_bytes(&self) -> u64 {
        self.peak_resident_bytes.load(Ordering::SeqCst)
    }

    /// Restarts peak tracking from the current residency (per-superstep
    /// gauge sampling).
    pub fn reset_peak(&self) {
        self.peak_resident_bytes
            .store(self.resident_bytes.load(Ordering::SeqCst), Ordering::SeqCst);
    }

    fn add_resident(&self, bytes: usize) {
        let now = self.resident_bytes.fetch_add(bytes as u64, Ordering::SeqCst) + bytes as u64;
        self.peak_resident_bytes.fetch_max(now, Ordering::SeqCst);
    }

    fn sub_resident(&self, bytes: usize) {
        self.resident_bytes.fetch_sub(bytes as u64, Ordering::SeqCst);
    }

    fn note_reload(&self, bytes: usize) {
        self.add_resident(bytes);
        self.reloads.fetch_add(1, Ordering::Relaxed);
    }
}

/// Parses `VERTEXICA_MEMORY_BUDGET`. Plain bytes, or a `k`/`m`/`g`
/// (or `kb`/`mb`/`gb`) suffix, case-insensitive. Unset, empty, zero, or
/// unparsable means unbounded.
pub fn memory_budget_from_env() -> Option<usize> {
    parse_memory_budget(&std::env::var("VERTEXICA_MEMORY_BUDGET").ok()?)
}

/// Parses a memory-budget string (see [`memory_budget_from_env`]).
pub fn parse_memory_budget(s: &str) -> Option<usize> {
    let t = s.trim().to_ascii_lowercase();
    if t.is_empty() {
        return None;
    }
    const SUFFIXES: [(&str, usize); 6] = [
        ("kb", 1 << 10),
        ("mb", 1 << 20),
        ("gb", 1 << 30),
        ("k", 1 << 10),
        ("m", 1 << 20),
        ("g", 1 << 30),
    ];
    let (digits, mult) = SUFFIXES
        .iter()
        .find_map(|(suf, mult)| t.strip_suffix(suf).map(|d| (d, *mult)))
        .unwrap_or((t.as_str(), 1));
    let v: usize = digits.trim().parse().ok()?;
    let v = v.checked_mul(mult)?;
    if v == 0 {
        None
    } else {
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::RecordBatch;
    use crate::value::{DataType, Field, Schema, Value};

    pub(super) fn int_segment(vals: &[i64]) -> Segment {
        let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
        let rows: Vec<Vec<Value>> = vals.iter().map(|v| vec![Value::Int(*v)]).collect();
        let batch = RecordBatch::from_rows(schema.clone(), &rows).unwrap();
        Segment::build(&schema, &batch, true).unwrap()
    }

    /// Spills `seg` to a standalone file and wires a handle + pool at it.
    pub(super) fn spilled_handle(
        dir: &std::path::Path,
        pool: &Arc<BufferPool>,
        seg: Segment,
    ) -> SegmentHandle {
        let mut buf = Vec::new();
        persist::put_segment(&mut buf, &seg);
        let crc = crate::wal::crc32(&buf);
        let file = format!("seg{crc:08x}-{}.vxtb", buf.len());
        std::fs::write(dir.join(&file), &buf).unwrap();
        let handle = SegmentHandle::new(Arc::new(seg));
        pool.register(&handle);
        handle.set_addr(SpillAddr { file, offset: 0, len: buf.len() as u64, crc });
        handle
    }

    pub(super) fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vx-pool-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parse_budget_forms() {
        assert_eq!(parse_memory_budget("4096"), Some(4096));
        assert_eq!(parse_memory_budget(" 64k "), Some(64 * 1024));
        assert_eq!(parse_memory_budget("2M"), Some(2 * 1024 * 1024));
        assert_eq!(parse_memory_budget("1gb"), Some(1024 * 1024 * 1024));
        assert_eq!(parse_memory_budget("0"), None);
        assert_eq!(parse_memory_budget(""), None);
        assert_eq!(parse_memory_budget("not-a-number"), None);
    }

    #[test]
    fn standalone_handle_acts_like_arc_segment() {
        let handle = SegmentHandle::new(Arc::new(int_segment(&[1, 2, 3])));
        assert_eq!(handle.num_rows(), 3);
        assert!(handle.is_resident());
        let pinned = handle.read().unwrap();
        assert_eq!(pinned.num_rows(), 3);
    }

    #[test]
    fn evict_then_reload_is_bitwise_identical() {
        let dir = temp_dir("reload");
        let pool = Arc::new(BufferPool::with_budget(None));
        pool.set_dir(dir.clone());
        let seg = int_segment(&(0..5000).collect::<Vec<_>>());
        let mut orig = Vec::new();
        persist::put_segment(&mut orig, &seg);
        let handle = spilled_handle(&dir, &pool, seg);

        // Force eviction with a 1-byte budget.
        pool.set_budget(Some(1));
        assert!(!handle.is_resident());
        assert_eq!(pool.stats().evictions, 1);
        assert_eq!(pool.stats().resident_bytes, 0);

        // Reload reproduces the exact serialized image.
        let pinned = handle.read().unwrap();
        let mut reread = Vec::new();
        persist::put_segment(&mut reread, &pinned);
        assert_eq!(orig, reread);
        assert_eq!(pool.stats().reloads, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pinned_segments_are_never_evicted() {
        let dir = temp_dir("pin");
        let pool = Arc::new(BufferPool::with_budget(None));
        pool.set_dir(dir.clone());
        let handle = spilled_handle(&dir, &pool, int_segment(&(0..4000).collect::<Vec<_>>()));
        let pinned = handle.read().unwrap();
        pool.set_budget(Some(1));
        // Pinned: the sweep must leave it resident.
        assert!(handle.is_resident());
        assert_eq!(pool.stats().evictions, 0);
        drop(pinned);
        pool.enforce();
        assert!(!handle.is_resident());
        assert_eq!(pool.stats().evictions, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_without_spill_addr_are_never_evicted() {
        let pool = Arc::new(BufferPool::with_budget(Some(1)));
        let handle = SegmentHandle::new(Arc::new(int_segment(&(0..4000).collect::<Vec<_>>())));
        pool.register(&handle);
        pool.enforce();
        // Over budget but nothing has a disk twin: stays resident.
        assert!(handle.is_resident());
        assert_eq!(pool.stats().evictions, 0);
        assert!(pool.stats().resident_bytes > 1);
    }

    #[test]
    fn second_chance_spares_recently_touched_entries() {
        let dir = temp_dir("clock");
        let pool = Arc::new(BufferPool::with_budget(None));
        pool.set_dir(dir.clone());
        // Three equal-size segments; budget fits exactly two.
        let a = spilled_handle(&dir, &pool, int_segment(&(0..3000).collect::<Vec<_>>()));
        let b = spilled_handle(&dir, &pool, int_segment(&(3000..6000).collect::<Vec<_>>()));
        let c = spilled_handle(&dir, &pool, int_segment(&(6000..9000).collect::<Vec<_>>()));
        assert_eq!(a.estimated_bytes(), b.estimated_bytes());
        assert_eq!(b.estimated_bytes(), c.estimated_bytes());
        // One entry must go: the sweep clears all three referenced bits on
        // its first lap and evicts `a` (first past the hand) on the second,
        // leaving `b` and `c` resident with cleared bits.
        pool.set_budget(Some(2 * a.estimated_bytes() + 1));
        assert_eq!(pool.stats().evictions, 1);
        assert!(!a.is_resident());
        // Touch `b` (sets its referenced bit), then reload `a`. The reload
        // must evict one of the two residents — second chance spares the
        // just-touched `b`, so cold `c` goes.
        drop(b.read().unwrap());
        drop(a.read().unwrap());
        assert!(a.is_resident());
        assert!(b.is_resident());
        assert!(!c.is_resident());
        assert_eq!(pool.stats().evictions, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropping_resident_entries_releases_bytes() {
        let pool = Arc::new(BufferPool::with_budget(None));
        let handle = SegmentHandle::new(Arc::new(int_segment(&[1, 2, 3])));
        pool.register(&handle);
        assert!(pool.stats().resident_bytes > 0);
        drop(handle);
        assert_eq!(pool.stats().resident_bytes, 0);
    }

    #[test]
    fn referenced_files_tracks_live_entries_only() {
        let dir = temp_dir("refs");
        let pool = Arc::new(BufferPool::with_budget(None));
        pool.set_dir(dir.clone());
        let handle = spilled_handle(&dir, &pool, int_segment(&[1, 2, 3]));
        let file = handle.spill_addr().unwrap().file;
        assert!(pool.referenced_files().contains(&file));
        drop(handle);
        assert!(pool.referenced_files().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Bounded model check of the pin-vs-evict protocol: a reader committing a
/// pin races the clock hand's eviction sweep, and the pins re-check under
/// the state `try_lock` must keep the segment resident for the pin's whole
/// lifetime on every interleaving. Compiled only under
/// `RUSTFLAGS='--cfg vertexica_model'`.
#[cfg(all(test, vertexica_model))]
mod model_tests {
    use super::tests::{int_segment, spilled_handle, temp_dir};
    use super::*;
    use vertexica_common::sync::model::{self, Config, ViolationKind};

    /// One registered, spilled segment with its second chance already spent;
    /// a reader pins it while the evictor sweeps for space. The reader's
    /// residency assertion holds only if the evictor's pins re-check (after
    /// winning the state try_lock) notices the committed pin.
    fn pin_vs_evict(dir: &std::path::Path) {
        let pool = Arc::new(BufferPool::with_budget(Some(1)));
        pool.set_dir(dir.to_path_buf());
        let handle = spilled_handle(dir, &pool, int_segment(&[1, 2, 3]));
        // Spend the clock's second chance up front so the interleaving under
        // test is the pin race, not the referenced bit.
        handle.entry.referenced.store(false, Ordering::SeqCst);
        let reader = {
            let handle = handle.clone();
            model::spawn(move || {
                let pin = handle.read().expect("pin segment");
                model::yield_now();
                assert!(handle.is_resident(), "segment evicted under a committed pin");
                assert_eq!(pin.num_rows(), 3);
                drop(pin);
                // With the pin released the entry is fair game again.
                assert_eq!(handle.entry.pins.load(Ordering::SeqCst), 0);
            })
        };
        pool.ensure_capacity(64);
        reader.join();
    }

    #[test]
    fn model_buffer_pool_pin_vs_evict_clean() {
        let dir = temp_dir("model-pin-evict");
        let cfg = Config { max_preemptions: 2, ..Config::default() };
        let stats = model::check(&cfg, || pin_vs_evict(&dir))
            .unwrap_or_else(|v| panic!("pin-vs-evict protocol violated:\n{v}"));
        assert!(stats.exhausted, "bounded schedule space not exhausted: {stats:?}");
        assert!(stats.ops.contains("mutex.try_lock"), "evictor try_lock never explored");
        eprintln!("[model] buffer-pool pin-vs-evict clean: {stats:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Seeding `buffer_pool.drop_pin_recheck` (trust the lock-free pins
    /// sample, skip the re-check under the state lock) lets the evictor
    /// reclaim a segment a reader has already committed to: the reader's
    /// residency assertion must fail, deterministically.
    #[test]
    fn model_buffer_pool_drop_pin_recheck_mutation_detected() {
        let dir = temp_dir("model-pin-evict-mut");
        let cfg = Config {
            max_preemptions: 2,
            mutation: Some("buffer_pool.drop_pin_recheck"),
            ..Config::default()
        };
        let v1 = model::check(&cfg, || pin_vs_evict(&dir))
            .expect_err("seeded evict-under-pin bug must be detected");
        assert_eq!(v1.kind, ViolationKind::Panic, "unexpected violation:\n{v1}");
        assert!(
            v1.message.contains("evicted under a committed pin"),
            "unexpected failure: {}",
            v1.message
        );
        let v2 = model::check(&cfg, || pin_vs_evict(&dir)).expect_err("second run must also fail");
        assert_eq!(v1.schedule, v2.schedule, "minimal schedule not deterministic");
        assert_eq!(v1.schedules_explored, v2.schedules_explored);
        eprintln!("[model] buffer-pool mutation:\n{v1}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
