//! Columnar vectors with validity bitmaps.
//!
//! A [`Column`] is immutable and cheaply cloneable (`Arc`-backed), so scans can
//! hand out references to ROS segment data without copying, and operators can
//! pass columns around freely. New columns are produced with
//! [`ColumnBuilder`] or the transformation methods (`filter`, `take`,
//! `concat`).

use std::sync::Arc;

use vertexica_common::hash::mix64;

use crate::bitmap::Bitmap;
use crate::error::{StorageError, StorageResult};
use crate::value::{DataType, Value};

/// The typed backing storage of a column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Bool(Vec<bool>),
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<String>),
    Blob(Vec<Vec<u8>>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Blob(v) => v.len(),
        }
    }

    fn dtype(&self) -> DataType {
        match self {
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str(_) => DataType::Str,
            ColumnData::Blob(_) => DataType::Blob,
        }
    }
}

/// An immutable, shareable column of values.
#[derive(Debug, Clone)]
pub struct Column {
    data: Arc<ColumnData>,
    /// `None` means every row is valid (non-null).
    validity: Option<Arc<Bitmap>>,
}

impl Column {
    pub fn new(data: ColumnData, validity: Option<Bitmap>) -> Self {
        if let Some(v) = &validity {
            assert_eq!(v.len(), data.len(), "validity length mismatch");
        }
        // Normalize an all-valid bitmap to None so fast paths trigger.
        let validity = validity.filter(|v| !v.all()).map(Arc::new);
        Column { data: Arc::new(data), validity }
    }

    /// An empty column of the given type.
    pub fn empty(dtype: DataType) -> Self {
        let data = match dtype {
            DataType::Bool => ColumnData::Bool(vec![]),
            DataType::Int => ColumnData::Int(vec![]),
            DataType::Float => ColumnData::Float(vec![]),
            DataType::Str => ColumnData::Str(vec![]),
            DataType::Blob => ColumnData::Blob(vec![]),
        };
        Column { data: Arc::new(data), validity: None }
    }

    /// Builds a column of `dtype` from dynamic values, coercing as needed.
    pub fn from_values(dtype: DataType, values: &[Value]) -> StorageResult<Self> {
        let mut b = ColumnBuilder::new(dtype);
        for v in values {
            b.push(v.clone())?;
        }
        Ok(b.finish())
    }

    /// Column of `n` copies of one value.
    pub fn repeat(dtype: DataType, value: &Value, n: usize) -> StorageResult<Self> {
        let mut b = ColumnBuilder::with_capacity(dtype, n);
        for _ in 0..n {
            b.push(value.clone())?;
        }
        Ok(b.finish())
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn dtype(&self) -> DataType {
        self.data.dtype()
    }

    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match &self.validity {
            None => false,
            Some(v) => !v.get(i),
        }
    }

    pub fn null_count(&self) -> usize {
        match &self.validity {
            None => 0,
            Some(v) => v.count_zeros(),
        }
    }

    /// Estimated heap footprint of this column's data in bytes. Used by the
    /// streaming superstep pipeline to report peak in-flight batch sizes;
    /// an estimate (variable-width headers are approximated), not an exact
    /// allocator measurement.
    pub fn estimated_bytes(&self) -> usize {
        let data = match &*self.data {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len() * 8,
            ColumnData::Float(v) => v.len() * 8,
            ColumnData::Str(v) => v.iter().map(|s| s.len() + std::mem::size_of::<String>()).sum(),
            ColumnData::Blob(v) => v.iter().map(|b| b.len() + std::mem::size_of::<Vec<u8>>()).sum(),
        };
        data + self.validity.as_ref().map_or(0, |v| v.len().div_ceil(8))
    }

    /// The value at row `i` (clones strings/blobs).
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &*self.data {
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Blob(v) => Value::Blob(v[i].clone()),
        }
    }

    /// Iterator over all values.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }

    /// Typed access: `&[i64]` if this is a non-null Int column's raw data.
    /// Nulls (if any) must be checked separately via [`Column::is_null`].
    pub fn as_int(&self) -> Option<&[i64]> {
        match &*self.data {
            ColumnData::Int(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<&[f64]> {
        match &*self.data {
            ColumnData::Float(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<&[bool]> {
        match &*self.data {
            ColumnData::Bool(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&[String]> {
        match &*self.data {
            ColumnData::Str(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_blob(&self) -> Option<&[Vec<u8>]> {
        match &*self.data {
            ColumnData::Blob(v) => Some(v),
            _ => None,
        }
    }

    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_deref()
    }

    /// Keeps rows whose bit is set in `selection`.
    pub fn filter(&self, selection: &Bitmap) -> Column {
        assert_eq!(selection.len(), self.len(), "selection length mismatch");
        let indices: Vec<usize> = selection.iter_ones().collect();
        self.take(&indices)
    }

    /// Gathers rows by index (indices may repeat or reorder).
    pub fn take(&self, indices: &[usize]) -> Column {
        let data = match &*self.data {
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Int(v) => ColumnData::Int(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Float(v) => ColumnData::Float(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Str(v) => ColumnData::Str(indices.iter().map(|&i| v[i].clone()).collect()),
            ColumnData::Blob(v) => {
                ColumnData::Blob(indices.iter().map(|&i| v[i].clone()).collect())
            }
        };
        let validity = self
            .validity
            .as_ref()
            .map(|valid| Bitmap::from_iter_bool(indices.iter().map(|&i| valid.get(i))));
        Column::new(data, validity)
    }

    /// Copies out the contiguous row range `[start, start + len)` as a new
    /// column. This is the gather primitive behind block-granular partial
    /// segment decode: a plain-encoded block is one typed-slice copy, no
    /// per-value boxing.
    pub fn slice(&self, start: usize, len: usize) -> Column {
        assert!(start + len <= self.len(), "slice out of bounds");
        let end = start + len;
        let data = match &*self.data {
            ColumnData::Bool(v) => ColumnData::Bool(v[start..end].to_vec()),
            ColumnData::Int(v) => ColumnData::Int(v[start..end].to_vec()),
            ColumnData::Float(v) => ColumnData::Float(v[start..end].to_vec()),
            ColumnData::Str(v) => ColumnData::Str(v[start..end].to_vec()),
            ColumnData::Blob(v) => ColumnData::Blob(v[start..end].to_vec()),
        };
        let validity = self
            .validity
            .as_ref()
            .map(|valid| Bitmap::from_iter_bool((start..end).map(|i| valid.get(i))));
        Column::new(data, validity)
    }

    /// Concatenates columns of identical type.
    pub fn concat(columns: &[Column]) -> StorageResult<Column> {
        let Some(first) = columns.first() else {
            return Err(StorageError::Internal("concat of zero columns".into()));
        };
        let dtype = first.dtype();
        let total: usize = columns.iter().map(|c| c.len()).sum();
        let mut b = ColumnBuilder::with_capacity(dtype, total);
        for c in columns {
            if c.dtype() != dtype {
                return Err(StorageError::TypeMismatch {
                    expected: dtype.to_string(),
                    found: c.dtype().to_string(),
                });
            }
            // Fast path: extend typed vectors directly.
            b.extend_from(c);
        }
        Ok(b.finish())
    }

    /// Writes a per-row hash into `out` by combining with the existing
    /// content (so multi-column keys hash by folding columns in sequence).
    pub fn hash_combine(&self, out: &mut [u64]) {
        assert_eq!(out.len(), self.len());
        for (i, slot) in out.iter_mut().enumerate() {
            let h = if self.is_null(i) {
                0x9e3779b97f4a7c15
            } else {
                match &*self.data {
                    ColumnData::Bool(v) => mix64(v[i] as u64),
                    ColumnData::Int(v) => mix64(v[i] as u64),
                    // Hash floats by bits; integral floats hash like ints so
                    // Int/Float join keys behave when coerced upstream.
                    ColumnData::Float(v) => mix64(v[i].to_bits()),
                    ColumnData::Str(v) => hash_bytes(v[i].as_bytes()),
                    ColumnData::Blob(v) => hash_bytes(&v[i]),
                }
            };
            *slot = mix64(slot.rotate_left(23) ^ h);
        }
    }
}

fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for chunk in bytes.chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        h = mix64(h ^ u64::from_le_bytes(buf));
    }
    h
}

/// Incremental builder for a [`Column`].
pub struct ColumnBuilder {
    dtype: DataType,
    data: ColumnData,
    validity: Bitmap,
    has_null: bool,
}

impl ColumnBuilder {
    pub fn new(dtype: DataType) -> Self {
        Self::with_capacity(dtype, 0)
    }

    pub fn with_capacity(dtype: DataType, cap: usize) -> Self {
        let data = match dtype {
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(cap)),
            DataType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            DataType::Float => ColumnData::Float(Vec::with_capacity(cap)),
            DataType::Str => ColumnData::Str(Vec::with_capacity(cap)),
            DataType::Blob => ColumnData::Blob(Vec::with_capacity(cap)),
        };
        ColumnBuilder { dtype, data, validity: Bitmap::zeros(0), has_null: false }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a value, coercing to the builder's type. `Null` appends a null.
    pub fn push(&mut self, value: Value) -> StorageResult<()> {
        if value.is_null() {
            self.push_null();
            return Ok(());
        }
        let value = value.coerce(self.dtype)?;
        self.validity.push(true);
        match (&mut self.data, value) {
            (ColumnData::Bool(v), Value::Bool(x)) => v.push(x),
            (ColumnData::Int(v), Value::Int(x)) => v.push(x),
            (ColumnData::Float(v), Value::Float(x)) => v.push(x),
            (ColumnData::Str(v), Value::Str(x)) => v.push(x),
            (ColumnData::Blob(v), Value::Blob(x)) => v.push(x),
            _ => unreachable!("coerce guarantees matching type"),
        }
        Ok(())
    }

    pub fn push_null(&mut self) {
        self.has_null = true;
        self.validity.push(false);
        match &mut self.data {
            ColumnData::Bool(v) => v.push(false),
            ColumnData::Int(v) => v.push(0),
            ColumnData::Float(v) => v.push(0.0),
            ColumnData::Str(v) => v.push(String::new()),
            ColumnData::Blob(v) => v.push(Vec::new()),
        }
    }

    /// Typed fast-path appends.
    pub fn push_int(&mut self, v: i64) {
        debug_assert_eq!(self.dtype, DataType::Int);
        if let ColumnData::Int(vec) = &mut self.data {
            vec.push(v);
            self.validity.push(true);
        }
    }

    pub fn push_float(&mut self, v: f64) {
        debug_assert_eq!(self.dtype, DataType::Float);
        if let ColumnData::Float(vec) = &mut self.data {
            vec.push(v);
            self.validity.push(true);
        }
    }

    /// Appends every row of `other` (must have the same type).
    pub fn extend_from(&mut self, other: &Column) {
        debug_assert_eq!(self.dtype, other.dtype());
        for i in 0..other.len() {
            if other.is_null(i) {
                self.push_null();
            } else {
                // Infallible: types match.
                let _ = self.push(other.value(i));
            }
        }
    }

    pub fn finish(self) -> Column {
        let validity = if self.has_null { Some(self.validity) } else { None };
        Column::new(self.data, validity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col(vals: &[i64]) -> Column {
        Column::from_values(DataType::Int, &vals.iter().map(|&v| Value::Int(v)).collect::<Vec<_>>())
            .unwrap()
    }

    #[test]
    fn builder_roundtrip() {
        let c = int_col(&[1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.dtype(), DataType::Int);
        assert_eq!(c.value(1), Value::Int(2));
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    fn builder_coerces_ints_to_float() {
        let c = Column::from_values(DataType::Float, &[Value::Int(2), Value::Float(0.5)]).unwrap();
        assert_eq!(c.value(0), Value::Float(2.0));
        assert_eq!(c.value(1), Value::Float(0.5));
    }

    #[test]
    fn builder_rejects_wrong_type() {
        let mut b = ColumnBuilder::new(DataType::Int);
        assert!(b.push(Value::Str("x".into())).is_err());
    }

    #[test]
    fn nulls_tracked() {
        let c = Column::from_values(DataType::Int, &[Value::Int(1), Value::Null, Value::Int(3)])
            .unwrap();
        assert!(!c.is_null(0));
        assert!(c.is_null(1));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn all_valid_bitmap_normalized_away() {
        let c = Column::new(ColumnData::Int(vec![1, 2]), Some(Bitmap::ones(2)));
        assert!(c.validity().is_none());
    }

    #[test]
    fn filter_by_selection() {
        let c = int_col(&[10, 20, 30, 40]);
        let sel = Bitmap::from_iter_bool([true, false, true, false]);
        let f = c.filter(&sel);
        assert_eq!(f.len(), 2);
        assert_eq!(f.value(0), Value::Int(10));
        assert_eq!(f.value(1), Value::Int(30));
    }

    #[test]
    fn take_reorders_and_repeats() {
        let c = int_col(&[10, 20, 30]);
        let t = c.take(&[2, 0, 0]);
        assert_eq!(
            t.iter().collect::<Vec<_>>(),
            vec![Value::Int(30), Value::Int(10), Value::Int(10)]
        );
    }

    #[test]
    fn take_preserves_nulls() {
        let c = Column::from_values(DataType::Str, &[Value::Null, Value::Str("a".into())]).unwrap();
        let t = c.take(&[1, 0]);
        assert!(!t.is_null(0));
        assert!(t.is_null(1));
    }

    #[test]
    fn slice_copies_range_and_validity() {
        let c = Column::from_values(
            DataType::Int,
            &[Value::Int(1), Value::Null, Value::Int(3), Value::Int(4)],
        )
        .unwrap();
        let s = c.slice(1, 2);
        assert_eq!(s.len(), 2);
        assert!(s.is_null(0));
        assert_eq!(s.value(1), Value::Int(3));
        // An all-valid slice of a nullable column normalizes validity away.
        assert!(c.slice(2, 2).validity().is_none());
        assert_eq!(c.slice(4, 0).len(), 0);
    }

    #[test]
    fn concat_columns() {
        let a = int_col(&[1, 2]);
        let b = int_col(&[3]);
        let c = Column::concat(&[a, b]).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(2), Value::Int(3));
    }

    #[test]
    fn concat_rejects_mixed_types() {
        let a = int_col(&[1]);
        let b = Column::from_values(DataType::Str, &[Value::Str("x".into())]).unwrap();
        assert!(Column::concat(&[a, b]).is_err());
    }

    #[test]
    fn hash_combine_differs_per_value() {
        let c = int_col(&[1, 2, 1]);
        let mut h = vec![0u64; 3];
        c.hash_combine(&mut h);
        assert_eq!(h[0], h[2]);
        assert_ne!(h[0], h[1]);
    }

    #[test]
    fn hash_combine_folds_multiple_columns() {
        let a = int_col(&[1, 1]);
        let b = int_col(&[5, 6]);
        let mut h = vec![0u64; 2];
        a.hash_combine(&mut h);
        b.hash_combine(&mut h);
        assert_ne!(h[0], h[1]);
    }

    #[test]
    fn clone_is_cheap_shares_data() {
        let c = int_col(&[1, 2, 3]);
        let d = c.clone();
        assert!(std::ptr::eq(c.as_int().unwrap().as_ptr(), d.as_int().unwrap().as_ptr()));
    }
}
