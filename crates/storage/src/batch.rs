//! Record batches — the unit of vectorized execution.

use std::sync::Arc;

use crate::bitmap::Bitmap;
use crate::column::{Column, ColumnBuilder};
use crate::error::{StorageError, StorageResult};
use crate::value::{Schema, Value};

/// A horizontal slice of a table: a schema plus equal-length columns.
#[derive(Debug, Clone)]
pub struct RecordBatch {
    schema: Arc<Schema>,
    columns: Vec<Column>,
    num_rows: usize,
}

impl RecordBatch {
    pub fn new(schema: Arc<Schema>, columns: Vec<Column>) -> StorageResult<Self> {
        if schema.len() != columns.len() {
            return Err(StorageError::ArityMismatch {
                expected: schema.len(),
                found: columns.len(),
            });
        }
        let num_rows = columns.first().map_or(0, |c| c.len());
        for (f, c) in schema.fields.iter().zip(&columns) {
            if c.len() != num_rows {
                return Err(StorageError::Internal(format!(
                    "ragged batch: column {} has {} rows, expected {num_rows}",
                    f.name,
                    c.len()
                )));
            }
            if c.dtype() != f.dtype {
                return Err(StorageError::TypeMismatch {
                    expected: f.dtype.to_string(),
                    found: c.dtype().to_string(),
                });
            }
        }
        Ok(RecordBatch { schema, columns, num_rows })
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        let columns = schema.fields.iter().map(|f| Column::empty(f.dtype)).collect();
        RecordBatch { schema, columns, num_rows: 0 }
    }

    /// Builds a batch from rows of values (coercing to the schema types).
    pub fn from_rows(schema: Arc<Schema>, rows: &[Vec<Value>]) -> StorageResult<Self> {
        let mut builders: Vec<ColumnBuilder> = schema
            .fields
            .iter()
            .map(|f| ColumnBuilder::with_capacity(f.dtype, rows.len()))
            .collect();
        for row in rows {
            if row.len() != schema.len() {
                return Err(StorageError::ArityMismatch {
                    expected: schema.len(),
                    found: row.len(),
                });
            }
            for (b, v) in builders.iter_mut().zip(row) {
                b.push(v.clone())?;
            }
        }
        RecordBatch::new(schema, builders.into_iter().map(|b| b.finish()).collect())
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by (case-insensitive) name.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Extracts row `i` as a vector of values.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Rows as value vectors (for tests and small results).
    pub fn rows(&self) -> Vec<Vec<Value>> {
        (0..self.num_rows).map(|i| self.row(i)).collect()
    }

    /// Keeps rows whose bit is set.
    pub fn filter(&self, selection: &Bitmap) -> StorageResult<RecordBatch> {
        let columns = self.columns.iter().map(|c| c.filter(selection)).collect();
        RecordBatch::new(self.schema.clone(), columns)
    }

    /// Gathers rows by index.
    pub fn take(&self, indices: &[usize]) -> StorageResult<RecordBatch> {
        let columns = self.columns.iter().map(|c| c.take(indices)).collect();
        RecordBatch::new(self.schema.clone(), columns)
    }

    /// Projects onto the given column indices.
    pub fn project(&self, indices: &[usize]) -> StorageResult<RecordBatch> {
        let schema = self.schema.project(indices);
        let columns = indices.iter().map(|&i| self.columns[i].clone()).collect();
        RecordBatch::new(schema, columns)
    }

    /// Vertically concatenates batches sharing a schema layout.
    pub fn concat(schema: Arc<Schema>, batches: &[RecordBatch]) -> StorageResult<RecordBatch> {
        if batches.is_empty() {
            return Ok(RecordBatch::empty(schema));
        }
        let ncols = schema.len();
        let mut columns = Vec::with_capacity(ncols);
        for ci in 0..ncols {
            let parts: Vec<Column> = batches.iter().map(|b| b.columns[ci].clone()).collect();
            columns.push(Column::concat(&parts)?);
        }
        RecordBatch::new(schema, columns)
    }

    /// Total rows across batches.
    pub fn total_rows(batches: &[RecordBatch]) -> usize {
        batches.iter().map(|b| b.num_rows()).sum()
    }

    /// Estimated heap footprint of this batch in bytes (sum of its columns'
    /// [`Column::estimated_bytes`]). Used by the streaming superstep pipeline
    /// for peak/total in-flight size accounting.
    pub fn estimated_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.estimated_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Field};

    fn test_schema() -> Arc<Schema> {
        Schema::new(vec![Field::new("id", DataType::Int), Field::new("name", DataType::Str)])
    }

    fn test_batch() -> RecordBatch {
        RecordBatch::from_rows(
            test_schema(),
            &[
                vec![Value::Int(1), Value::Str("a".into())],
                vec![Value::Int(2), Value::Str("b".into())],
                vec![Value::Int(3), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_rows_roundtrip() {
        let b = test_batch();
        assert_eq!(b.num_rows(), 3);
        assert_eq!(b.num_columns(), 2);
        assert_eq!(b.row(0), vec![Value::Int(1), Value::Str("a".into())]);
        assert_eq!(b.row(2)[1], Value::Null);
    }

    #[test]
    fn ragged_rows_rejected() {
        let r = RecordBatch::from_rows(test_schema(), &[vec![Value::Int(1)]]);
        assert!(r.is_err());
    }

    #[test]
    fn mismatched_column_type_rejected() {
        let schema = test_schema();
        let cols = vec![
            Column::from_values(DataType::Str, &[Value::Str("x".into())]).unwrap(),
            Column::from_values(DataType::Str, &[Value::Str("y".into())]).unwrap(),
        ];
        assert!(RecordBatch::new(schema, cols).is_err());
    }

    #[test]
    fn filter_and_take() {
        let b = test_batch();
        let sel = Bitmap::from_iter_bool([false, true, true]);
        let f = b.filter(&sel).unwrap();
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.row(0)[0], Value::Int(2));

        let t = b.take(&[2, 2]).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(1)[0], Value::Int(3));
    }

    #[test]
    fn project_reorders() {
        let b = test_batch();
        let p = b.project(&[1, 0]).unwrap();
        assert_eq!(p.schema().fields[0].name, "name");
        assert_eq!(p.row(0), vec![Value::Str("a".into()), Value::Int(1)]);
    }

    #[test]
    fn concat_batches() {
        let b = test_batch();
        let c = RecordBatch::concat(b.schema().clone(), &[b.clone(), b.clone()]).unwrap();
        assert_eq!(c.num_rows(), 6);
        assert_eq!(c.row(3), c.row(0));
    }

    #[test]
    fn concat_empty_is_empty() {
        let c = RecordBatch::concat(test_schema(), &[]).unwrap();
        assert_eq!(c.num_rows(), 0);
        assert_eq!(c.num_columns(), 2);
    }

    #[test]
    fn column_by_name_case_insensitive() {
        let b = test_batch();
        assert!(b.column_by_name("ID").is_some());
        assert!(b.column_by_name("nope").is_none());
    }
}
