//! Error type for the storage layer.

use std::fmt;

/// Errors surfaced by the storage engine.
#[derive(Debug)]
pub enum StorageError {
    /// A value's type did not match the column/schema type.
    TypeMismatch { expected: String, found: String },
    /// A row's arity did not match the table schema.
    ArityMismatch { expected: usize, found: usize },
    /// Referenced table does not exist.
    NoSuchTable(String),
    /// Attempt to create a table whose name is taken.
    DuplicateTable(String),
    /// Referenced column does not exist.
    NoSuchColumn(String),
    /// A NOT NULL constraint would be violated.
    NullViolation(String),
    /// Persisted data failed validation.
    Corrupt(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Anything else.
    Internal(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            StorageError::ArityMismatch { expected, found } => {
                write!(f, "row arity mismatch: expected {expected} columns, found {found}")
            }
            StorageError::NoSuchTable(name) => write!(f, "no such table: {name}"),
            StorageError::DuplicateTable(name) => write!(f, "table already exists: {name}"),
            StorageError::NoSuchColumn(name) => write!(f, "no such column: {name}"),
            StorageError::NullViolation(col) => {
                write!(f, "null value in non-nullable column: {col}")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            StorageError::Io(e) => write!(f, "io error: {e}"),
            StorageError::Internal(msg) => write!(f, "internal storage error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::TypeMismatch { expected: "Int".into(), found: "Str".into() };
        assert!(e.to_string().contains("expected Int"));
        let e = StorageError::NoSuchTable("vertex".into());
        assert!(e.to_string().contains("vertex"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = StorageError::from(io);
        assert!(e.source().is_some());
    }
}
