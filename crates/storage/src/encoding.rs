//! Column encodings for ROS segments and persistence.
//!
//! Vertica's read-optimized store keeps columns compressed; run-length
//! encoding shines on sorted/low-cardinality columns (e.g. the edge table
//! sorted on `src`, the `etype` column with 3 distinct values) and dictionary
//! encoding on repetitive strings. [`EncodedColumn::encode_auto`] picks the
//! cheapest of {plain, RLE, dictionary} per column, mirroring Vertica's
//! per-projection encoding choice.

use crate::column::{Column, ColumnBuilder};
use crate::error::{StorageError, StorageResult};
use crate::value::{DataType, Value};

/// An encoded column at rest.
#[derive(Debug, Clone)]
pub enum EncodedColumn {
    /// Uncompressed (the in-memory `Column` is `Arc`-backed, so "decoding"
    /// a plain column is a cheap clone).
    Plain(Column),
    /// Run-length encoding: `(run_length, value)` pairs; `Value::Null` runs
    /// encode null stretches.
    Rle { dtype: DataType, runs: Vec<(u32, Value)> },
    /// Dictionary encoding for strings: `codes[i]` indexes `dict`;
    /// `u32::MAX` encodes null.
    Dict { dict: Vec<String>, codes: Vec<u32> },
}

impl EncodedColumn {
    /// Chooses an encoding for `col` by measuring what each would cost.
    pub fn encode_auto(col: &Column) -> EncodedColumn {
        let n = col.len();
        if n == 0 {
            return EncodedColumn::Plain(col.clone());
        }
        // Count runs of equal adjacent values.
        let mut runs = 1usize;
        for i in 1..n {
            if col.value(i) != col.value(i - 1) {
                runs += 1;
            }
        }
        if runs * 2 <= n {
            return Self::encode_rle(col);
        }
        if col.dtype() == DataType::Str {
            // Dictionary pays off when the distinct count is small.
            let mut distinct: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
            let strs = col.as_str().expect("str column");
            for (i, s) in strs.iter().enumerate() {
                if !col.is_null(i) {
                    distinct.insert(s.as_str());
                    if distinct.len() * 4 > n {
                        return EncodedColumn::Plain(col.clone());
                    }
                }
            }
            return Self::encode_dict(col);
        }
        EncodedColumn::Plain(col.clone())
    }

    /// Forces run-length encoding.
    pub fn encode_rle(col: &Column) -> EncodedColumn {
        let mut runs: Vec<(u32, Value)> = Vec::new();
        for i in 0..col.len() {
            let v = col.value(i);
            match runs.last_mut() {
                Some((count, last)) if *last == v && *count < u32::MAX => *count += 1,
                _ => runs.push((1, v)),
            }
        }
        EncodedColumn::Rle { dtype: col.dtype(), runs }
    }

    /// Forces dictionary encoding (strings only).
    pub fn encode_dict(col: &Column) -> EncodedColumn {
        debug_assert_eq!(col.dtype(), DataType::Str);
        let strs = col.as_str().expect("str column");
        let mut dict: Vec<String> = Vec::new();
        let mut index: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
        let mut codes = Vec::with_capacity(col.len());
        for (i, s) in strs.iter().enumerate() {
            if col.is_null(i) {
                codes.push(u32::MAX);
                continue;
            }
            let code = match index.get(s) {
                Some(&c) => c,
                None => {
                    let c = dict.len() as u32;
                    dict.push(s.clone());
                    index.insert(s.clone(), c);
                    c
                }
            };
            codes.push(code);
        }
        EncodedColumn::Dict { dict, codes }
    }

    /// Decodes back to a plain column.
    pub fn decode(&self) -> StorageResult<Column> {
        match self {
            EncodedColumn::Plain(c) => Ok(c.clone()),
            EncodedColumn::Rle { dtype, runs } => {
                let total: usize = runs.iter().map(|(c, _)| *c as usize).sum();
                let mut b = ColumnBuilder::with_capacity(*dtype, total);
                for (count, v) in runs {
                    for _ in 0..*count {
                        b.push(v.clone())?;
                    }
                }
                Ok(b.finish())
            }
            EncodedColumn::Dict { dict, codes } => {
                let mut b = ColumnBuilder::with_capacity(DataType::Str, codes.len());
                for &c in codes {
                    if c == u32::MAX {
                        b.push_null();
                    } else {
                        let s = dict.get(c as usize).ok_or_else(|| {
                            StorageError::Corrupt(format!("dict code {c} out of range"))
                        })?;
                        b.push(Value::Str(s.clone()))?;
                    }
                }
                Ok(b.finish())
            }
        }
    }

    /// Decodes only the contiguous row range `[start, start + len)` — the
    /// partial-decode primitive behind block-granular scans. A plain column
    /// is one typed-slice copy; RLE skips whole runs up to `start`; a
    /// dictionary column decodes only the code subslice. Decoding
    /// `(0, num_rows)` is value-identical to [`EncodedColumn::decode`].
    pub fn decode_range(&self, start: usize, len: usize) -> StorageResult<Column> {
        if start + len > self.num_rows() {
            return Err(StorageError::Corrupt(format!(
                "decode_range [{start}, {}) out of bounds for {} rows",
                start + len,
                self.num_rows()
            )));
        }
        match self {
            EncodedColumn::Plain(c) => Ok(c.slice(start, len)),
            EncodedColumn::Rle { dtype, runs } => {
                let mut b = ColumnBuilder::with_capacity(*dtype, len);
                let mut skip = start;
                let mut want = len;
                for (count, v) in runs {
                    if want == 0 {
                        break;
                    }
                    let count = *count as usize;
                    if skip >= count {
                        skip -= count;
                        continue;
                    }
                    let take = (count - skip).min(want);
                    skip = 0;
                    want -= take;
                    for _ in 0..take {
                        b.push(v.clone())?;
                    }
                }
                Ok(b.finish())
            }
            EncodedColumn::Dict { dict, codes } => {
                let mut b = ColumnBuilder::with_capacity(DataType::Str, len);
                for &c in &codes[start..start + len] {
                    if c == u32::MAX {
                        b.push_null();
                    } else {
                        let s = dict.get(c as usize).ok_or_else(|| {
                            StorageError::Corrupt(format!("dict code {c} out of range"))
                        })?;
                        b.push(Value::Str(s.clone()))?;
                    }
                }
                Ok(b.finish())
            }
        }
    }

    pub fn num_rows(&self) -> usize {
        match self {
            EncodedColumn::Plain(c) => c.len(),
            EncodedColumn::Rle { runs, .. } => runs.iter().map(|(c, _)| *c as usize).sum(),
            EncodedColumn::Dict { codes, .. } => codes.len(),
        }
    }

    pub fn dtype(&self) -> DataType {
        match self {
            EncodedColumn::Plain(c) => c.dtype(),
            EncodedColumn::Rle { dtype, .. } => *dtype,
            EncodedColumn::Dict { .. } => DataType::Str,
        }
    }

    /// Rough in-memory footprint, used by stats and the encoding bench.
    pub fn size_estimate(&self) -> usize {
        match self {
            EncodedColumn::Plain(c) => {
                c.len()
                    * match c.dtype() {
                        DataType::Bool => 1,
                        DataType::Int | DataType::Float => 8,
                        DataType::Str | DataType::Blob => 24,
                    }
            }
            EncodedColumn::Rle { runs, .. } => runs.len() * 24,
            EncodedColumn::Dict { dict, codes } => {
                dict.iter().map(|s| s.len() + 24).sum::<usize>() + codes.len() * 4
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(values: Vec<Value>, dtype: DataType) -> Column {
        Column::from_values(dtype, &values).unwrap()
    }

    #[test]
    fn rle_roundtrip() {
        let c = col(
            vec![
                Value::Int(5),
                Value::Int(5),
                Value::Int(5),
                Value::Int(7),
                Value::Null,
                Value::Null,
            ],
            DataType::Int,
        );
        let e = EncodedColumn::encode_rle(&c);
        if let EncodedColumn::Rle { runs, .. } = &e {
            assert_eq!(runs.len(), 3);
        } else {
            panic!("expected RLE");
        }
        let d = e.decode().unwrap();
        assert_eq!(d.iter().collect::<Vec<_>>(), c.iter().collect::<Vec<_>>());
    }

    #[test]
    fn dict_roundtrip() {
        let c = col(
            vec![
                Value::Str("family".into()),
                Value::Str("friend".into()),
                Value::Str("family".into()),
                Value::Null,
                Value::Str("classmate".into()),
            ],
            DataType::Str,
        );
        let e = EncodedColumn::encode_dict(&c);
        if let EncodedColumn::Dict { dict, codes } = &e {
            assert_eq!(dict.len(), 3);
            assert_eq!(codes[3], u32::MAX);
        } else {
            panic!("expected Dict");
        }
        let d = e.decode().unwrap();
        assert_eq!(d.iter().collect::<Vec<_>>(), c.iter().collect::<Vec<_>>());
    }

    #[test]
    fn auto_picks_rle_for_sorted_low_cardinality() {
        let mut values = Vec::new();
        for v in 0..10i64 {
            for _ in 0..100 {
                values.push(Value::Int(v));
            }
        }
        let c = col(values, DataType::Int);
        let e = EncodedColumn::encode_auto(&c);
        assert!(matches!(e, EncodedColumn::Rle { .. }));
        assert!(e.size_estimate() < 1000 * 8 / 10);
    }

    #[test]
    fn auto_picks_dict_for_repetitive_strings() {
        let values: Vec<Value> =
            (0..300).map(|i| Value::Str(["friend", "family", "classmate"][i % 3].into())).collect();
        // Shuffle-ish ordering so RLE doesn't win.
        let c = col(values, DataType::Str);
        let e = EncodedColumn::encode_auto(&c);
        assert!(matches!(e, EncodedColumn::Dict { .. }));
    }

    #[test]
    fn auto_picks_plain_for_high_cardinality() {
        let values: Vec<Value> = (0..500).map(|i| Value::Int(i as i64)).collect();
        let c = col(values, DataType::Int);
        let e = EncodedColumn::encode_auto(&c);
        assert!(matches!(e, EncodedColumn::Plain(_)));
    }

    #[test]
    fn decode_range_matches_full_decode() {
        // RLE with runs straddling the range boundaries, incl. a null run.
        let mut values = Vec::new();
        for v in [Value::Int(5), Value::Null, Value::Int(7)] {
            for _ in 0..10 {
                values.push(v.clone());
            }
        }
        let rle = EncodedColumn::encode_rle(&col(values.clone(), DataType::Int));
        // Dict with nulls.
        let strs: Vec<Value> =
            (0..30)
                .map(|i| {
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Str(["a", "b", "c"][i % 3].into())
                    }
                })
                .collect();
        let dict = EncodedColumn::encode_dict(&col(strs.clone(), DataType::Str));
        // Plain.
        let plain = EncodedColumn::Plain(col(values, DataType::Int));
        for e in [rle, dict, plain] {
            let full = e.decode().unwrap();
            for (start, len) in [(0, 30), (0, 0), (5, 12), (25, 5), (9, 2), (30, 0)] {
                let part = e.decode_range(start, len).unwrap();
                assert_eq!(part.len(), len);
                for i in 0..len {
                    assert_eq!(part.value(i), full.value(start + i), "at {start}+{i}");
                }
            }
            assert!(e.decode_range(25, 6).is_err(), "out-of-bounds range must be rejected");
        }
    }

    #[test]
    fn empty_column_roundtrip() {
        let c = Column::empty(DataType::Float);
        let e = EncodedColumn::encode_auto(&c);
        assert_eq!(e.num_rows(), 0);
        assert_eq!(e.decode().unwrap().len(), 0);
    }

    #[test]
    fn corrupt_dict_code_rejected() {
        let e = EncodedColumn::Dict { dict: vec!["a".into()], codes: vec![0, 5] };
        assert!(e.decode().is_err());
    }
}
