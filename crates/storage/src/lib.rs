//! Columnar storage engine — the "Vertica" substrate of the Vertexica
//! reproduction.
//!
//! The paper runs vertex-centric graph analytics on an *unmodified* industrial
//! column store. This crate provides the physical layer of that substrate:
//!
//! * [`value`] / [`column`](mod@column) / [`batch`] — typed values, columnar vectors with
//!   validity bitmaps, and record batches (the unit of vectorized execution);
//! * [`table`] — tables with a Vertica-style split between a row-oriented
//!   **write-optimized store (WOS)** and sorted, encoded, zone-mapped
//!   **read-optimized store (ROS)** segments, with delete vectors and
//!   moveout/merge;
//! * [`encoding`] — RLE and dictionary encodings for ROS segments and
//!   persistence;
//! * [`catalog`] — the named-table catalog with the atomic `swap` primitive
//!   that Vertexica's *update-vs-replace* optimization (§2.3) relies on;
//! * [`partition`] — hash partitioning of batches, used by *vertex batching*
//!   (§2.3) to split the table union across worker UDFs;
//! * [`persist`] — a compact binary on-disk format used for durability and
//!   superstep checkpointing;
//! * [`wal`] — the durability layer: an append-only, checksummed write-ahead
//!   log, segment flushing, a manifest-anchored checkpoint/truncate cycle,
//!   and crash recovery ([`wal::open_durable`]) with byte-budget crash
//!   injection for testing;
//! * [`buffer_pool`] — out-of-core scans: a byte-budgeted clock pool over
//!   cold ROS segments, evicting checkpointed segments under memory
//!   pressure and reloading them from their `.vxtb` spill images on demand.

pub mod batch;
pub mod bitmap;
pub mod buffer_pool;
pub mod catalog;
pub mod column;
pub mod encoding;
pub mod error;
pub mod partition;
pub mod persist;
pub mod table;
pub mod value;
pub mod wal;

pub use batch::RecordBatch;
pub use bitmap::Bitmap;
pub use buffer_pool::{BufferPool, PinnedSegment, PoolStats, SegmentHandle, SpillAddr};
pub use catalog::Catalog;
pub use column::{Column, ColumnBuilder, ColumnData};
pub use error::{StorageError, StorageResult};
pub use table::{
    ColumnPredicate, PredicateOp, Row, ScanCursor, Segment, Table, TableOptions, BLOCK_ROWS,
};
pub use value::{DataType, Field, Schema, Value};
pub use wal::{open_durable, DurabilityStats, FrameLog, WalSink};
