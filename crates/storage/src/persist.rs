//! Compact binary persistence for tables.
//!
//! Two self-describing formats, both ending in a CRC32 trailer so torn or
//! bit-flipped files surface as [`StorageError::Corrupt`] instead of decoding
//! silently:
//!
//! * **`VXTB1` (logical)** — [`table_to_bytes`] writes the table's logical
//!   content (delete vectors applied, WOS included) with per-column
//!   auto-encoding. A restored table is equivalent under scans even if its
//!   physical segment layout differs. Used by superstep checkpointing.
//! * **`VXTB2` (physical)** — [`table_to_bytes_physical`] preserves the exact
//!   WOS rows, per-segment encoded columns, per-segment **and per-block** zone
//!   maps, and delete vectors, so `decode(encode(t))` re-serializes
//!   byte-identically. This is the format the durability layer
//!   ([`crate::wal`]) flushes and recovers, which is what makes "recovered
//!   state is bitwise the committed state" a testable invariant.

use std::path::Path;
use std::sync::Arc;

use bytes::{Buf, BufMut};

use crate::batch::RecordBatch;
use crate::bitmap::Bitmap;
use crate::column::Column;
use crate::encoding::EncodedColumn;
use crate::error::{StorageError, StorageResult};
use crate::table::{Row, Segment, Table, TableOptions, ZoneMap};
use crate::value::{DataType, Field, Schema, Value};
use crate::wal::crc32;

const MAGIC: &[u8; 6] = b"VXTB1\n";
const MAGIC_PHYSICAL: &[u8; 6] = b"VXTB2\n";

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

pub(crate) fn get_str(buf: &mut &[u8]) -> StorageResult<String> {
    if buf.len() < 4 {
        return Err(StorageError::Corrupt("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.len() < len {
        return Err(StorageError::Corrupt("truncated string body".into()));
    }
    let s = String::from_utf8(buf[..len].to_vec())
        .map_err(|_| StorageError::Corrupt("invalid utf8".into()))?;
    buf.advance(len);
    Ok(s)
}

pub(crate) fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
        DataType::Blob => 4,
    }
}

pub(crate) fn dtype_from_tag(tag: u8) -> StorageResult<DataType> {
    Ok(match tag {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Str,
        4 => DataType::Blob,
        _ => return Err(StorageError::Corrupt(format!("bad dtype tag {tag}"))),
    })
}

pub(crate) fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(x) => {
            buf.put_u8(1);
            buf.put_u8(*x as u8);
        }
        Value::Int(x) => {
            buf.put_u8(2);
            buf.put_i64_le(*x);
        }
        Value::Float(x) => {
            buf.put_u8(3);
            buf.put_f64_le(*x);
        }
        Value::Str(x) => {
            buf.put_u8(4);
            put_str(buf, x);
        }
        Value::Blob(x) => {
            buf.put_u8(5);
            buf.put_u32_le(x.len() as u32);
            buf.extend_from_slice(x);
        }
    }
}

pub(crate) fn get_value(buf: &mut &[u8]) -> StorageResult<Value> {
    if buf.is_empty() {
        return Err(StorageError::Corrupt("truncated value".into()));
    }
    let tag = buf.get_u8();
    Ok(match tag {
        0 => Value::Null,
        1 => {
            if buf.is_empty() {
                return Err(StorageError::Corrupt("truncated bool".into()));
            }
            Value::Bool(buf.get_u8() != 0)
        }
        2 => {
            if buf.len() < 8 {
                return Err(StorageError::Corrupt("truncated int".into()));
            }
            Value::Int(buf.get_i64_le())
        }
        3 => {
            if buf.len() < 8 {
                return Err(StorageError::Corrupt("truncated float".into()));
            }
            Value::Float(buf.get_f64_le())
        }
        4 => Value::Str(get_str(buf)?),
        5 => {
            if buf.len() < 4 {
                return Err(StorageError::Corrupt("truncated blob length".into()));
            }
            let len = buf.get_u32_le() as usize;
            if buf.len() < len {
                return Err(StorageError::Corrupt("truncated blob body".into()));
            }
            let b = buf[..len].to_vec();
            buf.advance(len);
            Value::Blob(b)
        }
        _ => return Err(StorageError::Corrupt(format!("bad value tag {tag}"))),
    })
}

pub(crate) fn put_encoded_column(buf: &mut Vec<u8>, col: &EncodedColumn) {
    match col {
        EncodedColumn::Plain(c) => {
            buf.put_u8(0);
            buf.put_u8(dtype_tag(c.dtype()));
            buf.put_u64_le(c.len() as u64);
            for i in 0..c.len() {
                put_value(buf, &c.value(i));
            }
        }
        EncodedColumn::Rle { dtype, runs } => {
            buf.put_u8(1);
            buf.put_u8(dtype_tag(*dtype));
            buf.put_u32_le(runs.len() as u32);
            for (count, v) in runs {
                buf.put_u32_le(*count);
                put_value(buf, v);
            }
        }
        EncodedColumn::Dict { dict, codes } => {
            buf.put_u8(2);
            buf.put_u32_le(dict.len() as u32);
            for s in dict {
                put_str(buf, s);
            }
            buf.put_u64_le(codes.len() as u64);
            for c in codes {
                buf.put_u32_le(*c);
            }
        }
    }
}

pub(crate) fn get_encoded_column(buf: &mut &[u8]) -> StorageResult<EncodedColumn> {
    if buf.is_empty() {
        return Err(StorageError::Corrupt("truncated column".into()));
    }
    let tag = buf.get_u8();
    match tag {
        0 => {
            if buf.len() < 9 {
                return Err(StorageError::Corrupt("truncated plain column header".into()));
            }
            let dtype = dtype_from_tag(buf.get_u8())?;
            let len = buf.get_u64_le() as usize;
            let mut values = Vec::with_capacity(len.min(1 << 22));
            for _ in 0..len {
                values.push(get_value(buf)?);
            }
            Ok(EncodedColumn::Plain(Column::from_values(dtype, &values)?))
        }
        1 => {
            if buf.len() < 5 {
                return Err(StorageError::Corrupt("truncated rle header".into()));
            }
            let dtype = dtype_from_tag(buf.get_u8())?;
            let nruns = buf.get_u32_le() as usize;
            let mut runs = Vec::with_capacity(nruns.min(1 << 22));
            for _ in 0..nruns {
                if buf.len() < 4 {
                    return Err(StorageError::Corrupt("truncated rle run".into()));
                }
                let count = buf.get_u32_le();
                let v = get_value(buf)?;
                runs.push((count, v));
            }
            Ok(EncodedColumn::Rle { dtype, runs })
        }
        2 => {
            if buf.len() < 4 {
                return Err(StorageError::Corrupt("truncated dict header".into()));
            }
            let dict_len = buf.get_u32_le() as usize;
            let mut dict = Vec::with_capacity(dict_len.min(1 << 22));
            for _ in 0..dict_len {
                dict.push(get_str(buf)?);
            }
            if buf.len() < 8 {
                return Err(StorageError::Corrupt("truncated dict codes".into()));
            }
            let codes_len = buf.get_u64_le() as usize;
            if buf.len() < codes_len * 4 {
                return Err(StorageError::Corrupt("truncated dict code body".into()));
            }
            let mut codes = Vec::with_capacity(codes_len);
            for _ in 0..codes_len {
                codes.push(buf.get_u32_le());
            }
            Ok(EncodedColumn::Dict { dict, codes })
        }
        _ => Err(StorageError::Corrupt(format!("bad column tag {tag}"))),
    }
}

pub(crate) fn put_schema(buf: &mut Vec<u8>, schema: &Schema) {
    buf.put_u32_le(schema.len() as u32);
    for f in &schema.fields {
        put_str(buf, &f.name);
        buf.put_u8(dtype_tag(f.dtype));
        buf.put_u8(f.nullable as u8);
    }
}

pub(crate) fn get_schema(buf: &mut &[u8]) -> StorageResult<Arc<Schema>> {
    if buf.len() < 4 {
        return Err(StorageError::Corrupt("truncated schema".into()));
    }
    let nfields = buf.get_u32_le() as usize;
    let mut fields = Vec::with_capacity(nfields.min(1 << 16));
    for _ in 0..nfields {
        let fname = get_str(buf)?;
        if buf.len() < 2 {
            return Err(StorageError::Corrupt("truncated field".into()));
        }
        let dtype = dtype_from_tag(buf.get_u8())?;
        let nullable = buf.get_u8() != 0;
        fields.push(Field { name: fname, dtype, nullable });
    }
    Ok(Schema::new(fields))
}

pub(crate) fn put_options(buf: &mut Vec<u8>, opts: &TableOptions) {
    buf.put_u64_le(opts.moveout_threshold as u64);
    buf.put_u8(opts.compress as u8);
    buf.put_u32_le(opts.sort_key.len() as u32);
    for &k in &opts.sort_key {
        buf.put_u32_le(k as u32);
    }
}

pub(crate) fn get_options(buf: &mut &[u8]) -> StorageResult<TableOptions> {
    if buf.len() < 13 {
        return Err(StorageError::Corrupt("truncated options".into()));
    }
    let moveout_threshold = buf.get_u64_le() as usize;
    let compress = buf.get_u8() != 0;
    let nsort = buf.get_u32_le() as usize;
    let mut sort_key = Vec::with_capacity(nsort.min(1 << 16));
    for _ in 0..nsort {
        if buf.len() < 4 {
            return Err(StorageError::Corrupt("truncated sort key".into()));
        }
        sort_key.push(buf.get_u32_le() as usize);
    }
    let mut options = TableOptions::default().with_moveout_threshold(moveout_threshold);
    options.compress = compress;
    options.sort_key = sort_key;
    Ok(options)
}

pub(crate) fn put_row(buf: &mut Vec<u8>, row: &[Value]) {
    buf.put_u32_le(row.len() as u32);
    for v in row {
        put_value(buf, v);
    }
}

pub(crate) fn get_row(buf: &mut &[u8]) -> StorageResult<Row> {
    if buf.len() < 4 {
        return Err(StorageError::Corrupt("truncated row arity".into()));
    }
    let arity = buf.get_u32_le() as usize;
    let mut row = Vec::with_capacity(arity.min(1 << 16));
    for _ in 0..arity {
        row.push(get_value(buf)?);
    }
    Ok(row)
}

fn put_zone_map(buf: &mut Vec<u8>, zm: &ZoneMap) {
    put_value(buf, &zm.min);
    put_value(buf, &zm.max);
    buf.put_u64_le(zm.null_count as u64);
}

fn get_zone_map(buf: &mut &[u8]) -> StorageResult<ZoneMap> {
    let min = get_value(buf)?;
    let max = get_value(buf)?;
    if buf.len() < 8 {
        return Err(StorageError::Corrupt("truncated zone map".into()));
    }
    let null_count = buf.get_u64_le() as usize;
    Ok(ZoneMap { min, max, null_count })
}

fn put_bitmap(buf: &mut Vec<u8>, bm: &Bitmap) {
    let bools = bm.to_bools();
    buf.put_u64_le(bools.len() as u64);
    let mut byte = 0u8;
    for (i, b) in bools.iter().enumerate() {
        if *b {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            buf.put_u8(byte);
            byte = 0;
        }
    }
    if !bools.len().is_multiple_of(8) {
        buf.put_u8(byte);
    }
}

fn get_bitmap(buf: &mut &[u8]) -> StorageResult<Bitmap> {
    if buf.len() < 8 {
        return Err(StorageError::Corrupt("truncated bitmap length".into()));
    }
    let len = buf.get_u64_le() as usize;
    let nbytes = len.div_ceil(8);
    if buf.len() < nbytes {
        return Err(StorageError::Corrupt("truncated bitmap body".into()));
    }
    let mut bools = Vec::with_capacity(len);
    for i in 0..len {
        bools.push(buf[i / 8] & (1 << (i % 8)) != 0);
    }
    buf.advance(nbytes);
    Ok(Bitmap::from_bools(&bools))
}

/// Serializes one ROS segment preserving its exact physical layout: encoded
/// columns verbatim, per-segment zone maps, and per-block zone maps (count 0
/// when the segment elides them).
pub(crate) fn put_segment(buf: &mut Vec<u8>, seg: &Segment) {
    buf.put_u64_le(seg.num_rows() as u64);
    let ncols = seg.num_columns();
    buf.put_u32_le(ncols as u32);
    for c in 0..ncols {
        put_encoded_column(buf, seg.encoded_column(c));
    }
    for c in 0..ncols {
        put_zone_map(buf, seg.zone_map(c));
    }
    for c in 0..ncols {
        let blocks = seg.stored_block_zone_maps(c);
        buf.put_u32_le(blocks.len() as u32);
        for zm in blocks {
            put_zone_map(buf, zm);
        }
    }
}

pub(crate) fn get_segment(buf: &mut &[u8]) -> StorageResult<Segment> {
    if buf.len() < 12 {
        return Err(StorageError::Corrupt("truncated segment header".into()));
    }
    let num_rows = buf.get_u64_le() as usize;
    let ncols = buf.get_u32_le() as usize;
    let mut columns = Vec::with_capacity(ncols.min(1 << 16));
    for _ in 0..ncols {
        columns.push(get_encoded_column(buf)?);
    }
    let mut zone_maps = Vec::with_capacity(ncols.min(1 << 16));
    for _ in 0..ncols {
        zone_maps.push(get_zone_map(buf)?);
    }
    let mut block_zone_maps = Vec::with_capacity(ncols.min(1 << 16));
    for _ in 0..ncols {
        if buf.len() < 4 {
            return Err(StorageError::Corrupt("truncated block zone maps".into()));
        }
        let nblocks = buf.get_u32_le() as usize;
        let mut blocks = Vec::with_capacity(nblocks.min(1 << 16));
        for _ in 0..nblocks {
            blocks.push(get_zone_map(buf)?);
        }
        block_zone_maps.push(blocks);
    }
    Segment::from_parts(num_rows, columns, zone_maps, block_zone_maps)
}

/// Serializes a table's logical content to bytes.
pub fn table_to_bytes(table: &Table) -> StorageResult<Vec<u8>> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    put_str(&mut buf, table.name());
    let schema = table.schema();
    put_schema(&mut buf, schema);
    put_options(&mut buf, table.options());

    // Logical content: scan everything into one batch, encode per column.
    let batches = table.scan(None, &[])?;
    let merged = RecordBatch::concat(schema.clone(), &batches)?;
    buf.put_u64_le(merged.num_rows() as u64);
    for col in merged.columns() {
        put_encoded_column(&mut buf, &EncodedColumn::encode_auto(col));
    }
    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    Ok(buf)
}

/// Reconstructs a table from bytes produced by [`table_to_bytes`].
pub fn table_from_bytes(buf: &[u8]) -> StorageResult<Table> {
    let mut buf = check_magic_and_crc(buf, MAGIC)?;
    let buf = &mut buf;
    let name = get_str(buf)?;
    let schema = get_schema(buf)?;
    let options = get_options(buf)?;

    if buf.len() < 8 {
        return Err(StorageError::Corrupt("truncated row count".into()));
    }
    let num_rows = buf.get_u64_le() as usize;
    let mut columns = Vec::with_capacity(schema.len());
    for f in &schema.fields {
        let enc = get_encoded_column(buf)?;
        let col = enc.decode()?;
        if col.len() != num_rows {
            return Err(StorageError::Corrupt(format!(
                "column {} has {} rows, expected {num_rows}",
                f.name,
                col.len()
            )));
        }
        if col.dtype() != f.dtype {
            return Err(StorageError::Corrupt(format!(
                "column {} type mismatch after decode",
                f.name
            )));
        }
        columns.push(col);
    }
    let mut table = Table::new(name, schema.clone(), options);
    if num_rows > 0 {
        let batch = RecordBatch::new(schema, columns)?;
        table.append_batch(&batch)?;
    }
    Ok(table)
}

/// Validates a file's magic and CRC32 trailer, returning the payload slice
/// between them (magic excluded, trailer excluded).
pub(crate) fn check_magic_and_crc<'a>(buf: &'a [u8], magic: &[u8; 6]) -> StorageResult<&'a [u8]> {
    if buf.len() < magic.len() || &buf[..magic.len()] != magic {
        return Err(StorageError::Corrupt("bad magic".into()));
    }
    if buf.len() < magic.len() + 4 {
        return Err(StorageError::Corrupt("truncated checksum trailer".into()));
    }
    let body_end = buf.len() - 4;
    // vxlint: allow(no-unwrap-recovery) -- infallible: the truncated-trailer guard above leaves exactly 4 bytes after body_end
    let stored = u32::from_le_bytes(buf[body_end..].try_into().expect("4 bytes"));
    let actual = crc32(&buf[..body_end]);
    if stored != actual {
        return Err(StorageError::Corrupt(format!(
            "checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    Ok(&buf[magic.len()..body_end])
}

/// Serializes a table's exact **physical** state: WOS rows, ROS segments with
/// their encoded columns and zone maps (segment- and block-level), and delete
/// vectors. Unlike [`table_to_bytes`], the reconstructed table is
/// byte-identical under re-serialization — the durability layer's bitwise
/// recovery invariant rests on this.
pub fn table_to_bytes_physical(table: &Table) -> StorageResult<Vec<u8>> {
    Ok(table_to_bytes_physical_indexed(table)?.0)
}

/// The byte span of one serialized segment inside a
/// [`table_to_bytes_physical`] image, plus the CRC of those bytes — enough
/// to re-read a single segment out of a checkpoint file without parsing the
/// rest (see [`read_segment_at`]). The buffer pool stores these as segment
/// spill addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentSpan {
    /// Byte offset from the start of the image file.
    pub offset: u64,
    /// Serialized length in bytes.
    pub len: u64,
    /// CRC-32 of the span bytes.
    pub crc: u32,
}

/// [`table_to_bytes_physical`] plus the byte span of every segment within
/// the returned image (in segment order). The image bytes are identical to
/// the unindexed form. Segments are pinned one at a time, so serializing a
/// partially evicted table keeps at most one reloaded segment resident.
pub fn table_to_bytes_physical_indexed(
    table: &Table,
) -> StorageResult<(Vec<u8>, Vec<SegmentSpan>)> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC_PHYSICAL);
    put_str(&mut buf, table.name());
    put_schema(&mut buf, table.schema());
    put_options(&mut buf, table.options());
    let wos = table.wos();
    buf.put_u32_le(wos.len() as u32);
    for row in wos {
        put_row(&mut buf, row);
    }
    let segments = table.segments();
    buf.put_u32_le(segments.len() as u32);
    let mut spans = Vec::with_capacity(segments.len());
    for handle in segments {
        let seg = handle.read()?;
        let offset = buf.len() as u64;
        put_segment(&mut buf, &seg);
        let len = buf.len() as u64 - offset;
        spans.push(SegmentSpan { offset, len, crc: crc32(&buf[offset as usize..]) });
    }
    for dv in table.delete_vectors() {
        put_bitmap(&mut buf, dv);
    }
    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    Ok((buf, spans))
}

/// Re-reads a single segment out of a checkpoint image file by its
/// [`SegmentSpan`], validating the span CRC and that the span parses fully.
/// This is the buffer pool's reload-on-miss path: it touches `len` bytes of
/// the file instead of deserializing the whole table.
pub fn read_segment_at(
    path: impl AsRef<Path>,
    offset: u64,
    len: u64,
    crc: u32,
) -> StorageResult<Segment> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = std::fs::File::open(path)?;
    f.seek(SeekFrom::Start(offset))?;
    let mut bytes = vec![0u8; len as usize];
    f.read_exact(&mut bytes)?;
    if crc32(&bytes) != crc {
        return Err(StorageError::Corrupt("segment spill checksum mismatch".into()));
    }
    let mut p = bytes.as_slice();
    let seg = get_segment(&mut p)?;
    if !p.is_empty() {
        return Err(StorageError::Corrupt("trailing bytes after segment span".into()));
    }
    Ok(seg)
}

/// Reconstructs a table from [`table_to_bytes_physical`] bytes, validating
/// shapes via `Table::from_parts`. Any truncation, bit flip, or tag
/// corruption yields [`StorageError::Corrupt`].
pub fn table_from_bytes_physical(buf: &[u8]) -> StorageResult<Table> {
    Ok(table_from_bytes_physical_indexed(buf)?.0)
}

/// [`table_from_bytes_physical`] plus the byte span of every segment within
/// `buf` (in segment order), so a caller that just wrote or read `buf` as a
/// checkpoint file can hand the spans to the buffer pool as spill
/// addresses.
pub fn table_from_bytes_physical_indexed(full: &[u8]) -> StorageResult<(Table, Vec<SegmentSpan>)> {
    let mut buf = check_magic_and_crc(full, MAGIC_PHYSICAL)?;
    let buf = &mut buf;
    // `buf` is a subslice of `full` ending at the CRC trailer, so the file
    // offset of the parse position is recoverable from its remaining length.
    let offset_of = |rest: &[u8]| (full.len() - 4 - rest.len()) as u64;
    let name = get_str(buf)?;
    let schema = get_schema(buf)?;
    let options = get_options(buf)?;
    if buf.len() < 4 {
        return Err(StorageError::Corrupt("truncated wos count".into()));
    }
    let nwos = buf.get_u32_le() as usize;
    let mut wos = Vec::with_capacity(nwos.min(1 << 22));
    for _ in 0..nwos {
        wos.push(get_row(buf)?);
    }
    if buf.len() < 4 {
        return Err(StorageError::Corrupt("truncated segment count".into()));
    }
    let nsegs = buf.get_u32_le() as usize;
    let mut segments = Vec::with_capacity(nsegs.min(1 << 22));
    let mut spans = Vec::with_capacity(nsegs.min(1 << 22));
    for _ in 0..nsegs {
        let offset = offset_of(buf);
        segments.push(get_segment(buf)?);
        let end = offset_of(buf);
        let len = end - offset;
        let crc = crc32(&full[offset as usize..end as usize]);
        spans.push(SegmentSpan { offset, len, crc });
    }
    let mut delete_vectors = Vec::with_capacity(nsegs.min(1 << 22));
    for _ in 0..nsegs {
        delete_vectors.push(get_bitmap(buf)?);
    }
    let table = Table::from_parts(name, schema, options, wos, segments, delete_vectors)?;
    Ok((table, spans))
}

/// Writes a table to a file.
pub fn write_table(table: &Table, path: impl AsRef<Path>) -> StorageResult<()> {
    let bytes = table_to_bytes(table)?;
    std::fs::write(path, bytes)?;
    Ok(())
}

/// Reads a table from a file.
pub fn read_table(path: impl AsRef<Path>) -> StorageResult<Table> {
    let bytes = std::fs::read(path)?;
    table_from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ColumnPredicate;
    use crate::table::PredicateOp;

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            Field::not_null("id", DataType::Int),
            Field::new("name", DataType::Str),
            Field::new("score", DataType::Float),
            Field::new("payload", DataType::Blob),
            Field::new("flag", DataType::Bool),
        ]);
        let mut t = Table::new("sample", schema, TableOptions::default());
        for i in 0..50i64 {
            t.insert_row(vec![
                Value::Int(i),
                if i % 5 == 0 { Value::Null } else { Value::Str(format!("name{}", i % 3)) },
                Value::Float(i as f64 / 2.0),
                Value::Blob(vec![i as u8, (i + 1) as u8]),
                Value::Bool(i % 2 == 0),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn roundtrip_preserves_logical_content() {
        let t = sample_table();
        let bytes = table_to_bytes(&t).unwrap();
        let back = table_from_bytes(&bytes).unwrap();
        assert_eq!(back.name(), "sample");
        assert_eq!(back.num_rows(), 50);
        let orig = RecordBatch::concat(t.schema().clone(), &t.scan(None, &[]).unwrap()).unwrap();
        let rest =
            RecordBatch::concat(back.schema().clone(), &back.scan(None, &[]).unwrap()).unwrap();
        // Sort-insensitive comparison via row multiset.
        let mut a = orig.rows();
        let mut b = rest.rows();
        let key = |r: &Vec<Value>| format!("{r:?}");
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_applies_deletes() {
        let mut t = sample_table();
        t.moveout().unwrap();
        let scans = t
            .scan_with_rowids(None, &[ColumnPredicate::new(0, PredicateOp::Lt, Value::Int(10))])
            .unwrap();
        let ids: Vec<u64> = scans.iter().flat_map(|(_, ids)| ids.clone()).collect();
        t.delete_rowids(&ids).unwrap();
        let bytes = table_to_bytes(&t).unwrap();
        let back = table_from_bytes(&bytes).unwrap();
        assert_eq!(back.num_rows(), 40);
    }

    #[test]
    fn file_roundtrip() {
        let t = sample_table();
        let dir = std::env::temp_dir().join("vertexica_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.vxtb");
        write_table(&t, &path).unwrap();
        let back = read_table(&path).unwrap();
        assert_eq!(back.num_rows(), t.num_rows());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(table_from_bytes(b"NOTAMAGIC"), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn truncated_file_rejected() {
        let t = sample_table();
        let bytes = table_to_bytes(&t).unwrap();
        for cut in [7, 20, bytes.len() / 2, bytes.len() - 3] {
            assert!(table_from_bytes(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn empty_table_roundtrip() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let t = Table::new("empty", schema, TableOptions::default());
        let bytes = table_to_bytes(&t).unwrap();
        let back = table_from_bytes(&bytes).unwrap();
        assert_eq!(back.num_rows(), 0);
        assert_eq!(back.schema().len(), 1);
    }

    #[test]
    fn options_roundtrip() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let mut opts = TableOptions::default().with_moveout_threshold(7).compressed();
        opts.sort_key = vec![0];
        let t = Table::new("opt", schema, opts);
        let back = table_from_bytes(&table_to_bytes(&t).unwrap()).unwrap();
        assert_eq!(back.options().moveout_threshold, 7);
        assert!(back.options().compress);
        assert_eq!(back.options().sort_key, vec![0]);
    }
}
