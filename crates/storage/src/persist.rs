//! Compact binary persistence for tables.
//!
//! Used for durability and for superstep **checkpointing** (the paper cites
//! checkpointing/recovery as a relational feature graph systems forgo). The
//! format writes the *logical* table content (delete vectors applied, WOS
//! included) with per-column auto-encoding, so a restored table is equivalent
//! under scans even if its physical segment layout differs.

use std::path::Path;

use bytes::{Buf, BufMut};

use crate::batch::RecordBatch;
use crate::column::Column;
use crate::encoding::EncodedColumn;
use crate::error::{StorageError, StorageResult};
use crate::table::{Table, TableOptions};
use crate::value::{DataType, Field, Schema, Value};

const MAGIC: &[u8; 6] = b"VXTB1\n";

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> StorageResult<String> {
    if buf.len() < 4 {
        return Err(StorageError::Corrupt("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.len() < len {
        return Err(StorageError::Corrupt("truncated string body".into()));
    }
    let s = String::from_utf8(buf[..len].to_vec())
        .map_err(|_| StorageError::Corrupt("invalid utf8".into()))?;
    buf.advance(len);
    Ok(s)
}

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
        DataType::Blob => 4,
    }
}

fn dtype_from_tag(tag: u8) -> StorageResult<DataType> {
    Ok(match tag {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Str,
        4 => DataType::Blob,
        _ => return Err(StorageError::Corrupt(format!("bad dtype tag {tag}"))),
    })
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(x) => {
            buf.put_u8(1);
            buf.put_u8(*x as u8);
        }
        Value::Int(x) => {
            buf.put_u8(2);
            buf.put_i64_le(*x);
        }
        Value::Float(x) => {
            buf.put_u8(3);
            buf.put_f64_le(*x);
        }
        Value::Str(x) => {
            buf.put_u8(4);
            put_str(buf, x);
        }
        Value::Blob(x) => {
            buf.put_u8(5);
            buf.put_u32_le(x.len() as u32);
            buf.extend_from_slice(x);
        }
    }
}

fn get_value(buf: &mut &[u8]) -> StorageResult<Value> {
    if buf.is_empty() {
        return Err(StorageError::Corrupt("truncated value".into()));
    }
    let tag = buf.get_u8();
    Ok(match tag {
        0 => Value::Null,
        1 => {
            if buf.is_empty() {
                return Err(StorageError::Corrupt("truncated bool".into()));
            }
            Value::Bool(buf.get_u8() != 0)
        }
        2 => {
            if buf.len() < 8 {
                return Err(StorageError::Corrupt("truncated int".into()));
            }
            Value::Int(buf.get_i64_le())
        }
        3 => {
            if buf.len() < 8 {
                return Err(StorageError::Corrupt("truncated float".into()));
            }
            Value::Float(buf.get_f64_le())
        }
        4 => Value::Str(get_str(buf)?),
        5 => {
            if buf.len() < 4 {
                return Err(StorageError::Corrupt("truncated blob length".into()));
            }
            let len = buf.get_u32_le() as usize;
            if buf.len() < len {
                return Err(StorageError::Corrupt("truncated blob body".into()));
            }
            let b = buf[..len].to_vec();
            buf.advance(len);
            Value::Blob(b)
        }
        _ => return Err(StorageError::Corrupt(format!("bad value tag {tag}"))),
    })
}

fn put_encoded_column(buf: &mut Vec<u8>, col: &EncodedColumn) {
    match col {
        EncodedColumn::Plain(c) => {
            buf.put_u8(0);
            buf.put_u8(dtype_tag(c.dtype()));
            buf.put_u64_le(c.len() as u64);
            for i in 0..c.len() {
                put_value(buf, &c.value(i));
            }
        }
        EncodedColumn::Rle { dtype, runs } => {
            buf.put_u8(1);
            buf.put_u8(dtype_tag(*dtype));
            buf.put_u32_le(runs.len() as u32);
            for (count, v) in runs {
                buf.put_u32_le(*count);
                put_value(buf, v);
            }
        }
        EncodedColumn::Dict { dict, codes } => {
            buf.put_u8(2);
            buf.put_u32_le(dict.len() as u32);
            for s in dict {
                put_str(buf, s);
            }
            buf.put_u64_le(codes.len() as u64);
            for c in codes {
                buf.put_u32_le(*c);
            }
        }
    }
}

fn get_encoded_column(buf: &mut &[u8]) -> StorageResult<EncodedColumn> {
    if buf.is_empty() {
        return Err(StorageError::Corrupt("truncated column".into()));
    }
    let tag = buf.get_u8();
    match tag {
        0 => {
            if buf.len() < 9 {
                return Err(StorageError::Corrupt("truncated plain column header".into()));
            }
            let dtype = dtype_from_tag(buf.get_u8())?;
            let len = buf.get_u64_le() as usize;
            let mut values = Vec::with_capacity(len.min(1 << 22));
            for _ in 0..len {
                values.push(get_value(buf)?);
            }
            Ok(EncodedColumn::Plain(Column::from_values(dtype, &values)?))
        }
        1 => {
            if buf.len() < 5 {
                return Err(StorageError::Corrupt("truncated rle header".into()));
            }
            let dtype = dtype_from_tag(buf.get_u8())?;
            let nruns = buf.get_u32_le() as usize;
            let mut runs = Vec::with_capacity(nruns.min(1 << 22));
            for _ in 0..nruns {
                if buf.len() < 4 {
                    return Err(StorageError::Corrupt("truncated rle run".into()));
                }
                let count = buf.get_u32_le();
                let v = get_value(buf)?;
                runs.push((count, v));
            }
            Ok(EncodedColumn::Rle { dtype, runs })
        }
        2 => {
            if buf.len() < 4 {
                return Err(StorageError::Corrupt("truncated dict header".into()));
            }
            let dict_len = buf.get_u32_le() as usize;
            let mut dict = Vec::with_capacity(dict_len.min(1 << 22));
            for _ in 0..dict_len {
                dict.push(get_str(buf)?);
            }
            if buf.len() < 8 {
                return Err(StorageError::Corrupt("truncated dict codes".into()));
            }
            let codes_len = buf.get_u64_le() as usize;
            if buf.len() < codes_len * 4 {
                return Err(StorageError::Corrupt("truncated dict code body".into()));
            }
            let mut codes = Vec::with_capacity(codes_len);
            for _ in 0..codes_len {
                codes.push(buf.get_u32_le());
            }
            Ok(EncodedColumn::Dict { dict, codes })
        }
        _ => Err(StorageError::Corrupt(format!("bad column tag {tag}"))),
    }
}

/// Serializes a table's logical content to bytes.
pub fn table_to_bytes(table: &Table) -> StorageResult<Vec<u8>> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    put_str(&mut buf, table.name());
    let schema = table.schema();
    buf.put_u32_le(schema.len() as u32);
    for f in &schema.fields {
        put_str(&mut buf, &f.name);
        buf.put_u8(dtype_tag(f.dtype));
        buf.put_u8(f.nullable as u8);
    }
    let opts = table.options();
    buf.put_u64_le(opts.moveout_threshold as u64);
    buf.put_u8(opts.compress as u8);
    buf.put_u32_le(opts.sort_key.len() as u32);
    for &k in &opts.sort_key {
        buf.put_u32_le(k as u32);
    }

    // Logical content: scan everything into one batch, encode per column.
    let batches = table.scan(None, &[])?;
    let merged = RecordBatch::concat(schema.clone(), &batches)?;
    buf.put_u64_le(merged.num_rows() as u64);
    for col in merged.columns() {
        put_encoded_column(&mut buf, &EncodedColumn::encode_auto(col));
    }
    Ok(buf)
}

/// Reconstructs a table from bytes produced by [`table_to_bytes`].
pub fn table_from_bytes(mut buf: &[u8]) -> StorageResult<Table> {
    if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return Err(StorageError::Corrupt("bad magic".into()));
    }
    buf.advance(MAGIC.len());
    let name = get_str(&mut buf)?;
    if buf.len() < 4 {
        return Err(StorageError::Corrupt("truncated schema".into()));
    }
    let nfields = buf.get_u32_le() as usize;
    let mut fields = Vec::with_capacity(nfields.min(1 << 16));
    for _ in 0..nfields {
        let fname = get_str(&mut buf)?;
        if buf.len() < 2 {
            return Err(StorageError::Corrupt("truncated field".into()));
        }
        let dtype = dtype_from_tag(buf.get_u8())?;
        let nullable = buf.get_u8() != 0;
        fields.push(Field { name: fname, dtype, nullable });
    }
    let schema = Schema::new(fields);
    if buf.len() < 13 {
        return Err(StorageError::Corrupt("truncated options".into()));
    }
    let moveout_threshold = buf.get_u64_le() as usize;
    let compress = buf.get_u8() != 0;
    let nsort = buf.get_u32_le() as usize;
    let mut sort_key = Vec::with_capacity(nsort.min(1 << 16));
    for _ in 0..nsort {
        if buf.len() < 4 {
            return Err(StorageError::Corrupt("truncated sort key".into()));
        }
        sort_key.push(buf.get_u32_le() as usize);
    }
    let mut options = TableOptions::default().with_moveout_threshold(moveout_threshold);
    options.compress = compress;
    options.sort_key = sort_key;

    if buf.len() < 8 {
        return Err(StorageError::Corrupt("truncated row count".into()));
    }
    let num_rows = buf.get_u64_le() as usize;
    let mut columns = Vec::with_capacity(schema.len());
    for f in &schema.fields {
        let enc = get_encoded_column(&mut buf)?;
        let col = enc.decode()?;
        if col.len() != num_rows {
            return Err(StorageError::Corrupt(format!(
                "column {} has {} rows, expected {num_rows}",
                f.name,
                col.len()
            )));
        }
        if col.dtype() != f.dtype {
            return Err(StorageError::Corrupt(format!(
                "column {} type mismatch after decode",
                f.name
            )));
        }
        columns.push(col);
    }
    let mut table = Table::new(name, schema.clone(), options);
    if num_rows > 0 {
        let batch = RecordBatch::new(schema, columns)?;
        table.append_batch(&batch)?;
    }
    Ok(table)
}

/// Writes a table to a file.
pub fn write_table(table: &Table, path: impl AsRef<Path>) -> StorageResult<()> {
    let bytes = table_to_bytes(table)?;
    std::fs::write(path, bytes)?;
    Ok(())
}

/// Reads a table from a file.
pub fn read_table(path: impl AsRef<Path>) -> StorageResult<Table> {
    let bytes = std::fs::read(path)?;
    table_from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ColumnPredicate;
    use crate::table::PredicateOp;

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            Field::not_null("id", DataType::Int),
            Field::new("name", DataType::Str),
            Field::new("score", DataType::Float),
            Field::new("payload", DataType::Blob),
            Field::new("flag", DataType::Bool),
        ]);
        let mut t = Table::new("sample", schema, TableOptions::default());
        for i in 0..50i64 {
            t.insert_row(vec![
                Value::Int(i),
                if i % 5 == 0 { Value::Null } else { Value::Str(format!("name{}", i % 3)) },
                Value::Float(i as f64 / 2.0),
                Value::Blob(vec![i as u8, (i + 1) as u8]),
                Value::Bool(i % 2 == 0),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn roundtrip_preserves_logical_content() {
        let t = sample_table();
        let bytes = table_to_bytes(&t).unwrap();
        let back = table_from_bytes(&bytes).unwrap();
        assert_eq!(back.name(), "sample");
        assert_eq!(back.num_rows(), 50);
        let orig = RecordBatch::concat(t.schema().clone(), &t.scan(None, &[]).unwrap()).unwrap();
        let rest =
            RecordBatch::concat(back.schema().clone(), &back.scan(None, &[]).unwrap()).unwrap();
        // Sort-insensitive comparison via row multiset.
        let mut a = orig.rows();
        let mut b = rest.rows();
        let key = |r: &Vec<Value>| format!("{r:?}");
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_applies_deletes() {
        let mut t = sample_table();
        t.moveout().unwrap();
        let scans = t
            .scan_with_rowids(None, &[ColumnPredicate::new(0, PredicateOp::Lt, Value::Int(10))])
            .unwrap();
        let ids: Vec<u64> = scans.iter().flat_map(|(_, ids)| ids.clone()).collect();
        t.delete_rowids(&ids);
        let bytes = table_to_bytes(&t).unwrap();
        let back = table_from_bytes(&bytes).unwrap();
        assert_eq!(back.num_rows(), 40);
    }

    #[test]
    fn file_roundtrip() {
        let t = sample_table();
        let dir = std::env::temp_dir().join("vertexica_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.vxtb");
        write_table(&t, &path).unwrap();
        let back = read_table(&path).unwrap();
        assert_eq!(back.num_rows(), t.num_rows());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(table_from_bytes(b"NOTAMAGIC"), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn truncated_file_rejected() {
        let t = sample_table();
        let bytes = table_to_bytes(&t).unwrap();
        for cut in [7, 20, bytes.len() / 2, bytes.len() - 3] {
            assert!(table_from_bytes(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn empty_table_roundtrip() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let t = Table::new("empty", schema, TableOptions::default());
        let bytes = table_to_bytes(&t).unwrap();
        let back = table_from_bytes(&bytes).unwrap();
        assert_eq!(back.num_rows(), 0);
        assert_eq!(back.schema().len(), 1);
    }

    #[test]
    fn options_roundtrip() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let mut opts = TableOptions::default().with_moveout_threshold(7).compressed();
        opts.sort_key = vec![0];
        let t = Table::new("opt", schema, opts);
        let back = table_from_bytes(&table_to_bytes(&t).unwrap()).unwrap();
        assert_eq!(back.options().moveout_threshold, 7);
        assert!(back.options().compress);
        assert_eq!(back.options().sort_key, vec![0]);
    }
}
