//! The named-table catalog.
//!
//! Thread-safe: the catalog map and each table are behind seam (`vertexica_common::sync`)
//! RwLocks, so the coordinator can swap tables while workers are reading
//! others. The atomic [`Catalog::swap`] is the primitive behind Vertexica's
//! *replace* strategy (§2.3): build `vertex_new` via a left join, then swap it
//! with `vertex` and drop the old one.

use std::sync::Arc;

use vertexica_common::sync::RwLock;
use vertexica_common::FxHashMap;

use crate::buffer_pool::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::persist;
use crate::table::{Table, TableOptions};
use crate::value::Schema;
use crate::wal::WalSink;

/// Shared handle to a table.
pub type TableRef = Arc<RwLock<Table>>;

/// A catalog of named tables.
///
/// With a durability sink attached (`Catalog::attach_wal`, done by
/// [`crate::wal::open_durable`]), every DDL operation is WAL-logged before it
/// applies, every table the catalog hands out logs its own mutations, and
/// [`Catalog::replace_contents_many`] runs the durable commit protocol.
#[derive(Default)]
pub struct Catalog {
    tables: RwLock<FxHashMap<String, TableRef>>,
    wal: RwLock<Option<Arc<WalSink>>>,
    /// The segment buffer pool every table's ROS segments register with.
    /// Its budget defaults from `VERTEXICA_MEMORY_BUDGET` (unbounded when
    /// unset); eviction only bites on durable catalogs, where checkpointed
    /// segments have spill images to reload from.
    pool: Arc<BufferPool>,
}

fn normalize(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// The attached durability sink, if this catalog belongs to a durable
    /// database.
    pub fn wal_sink(&self) -> Option<Arc<WalSink>> {
        self.wal.read().clone()
    }

    /// Whether a durability sink is attached.
    pub fn is_durable(&self) -> bool {
        self.wal.read().is_some()
    }

    /// The segment buffer pool shared by all of this catalog's tables.
    pub fn buffer_pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Attaches the durability sink to the catalog and to every table it
    /// currently holds. Called once by [`crate::wal::open_durable`], after
    /// recovery replay (so replay itself is not re-logged).
    pub(crate) fn attach_wal(&self, wal: Arc<WalSink>) {
        // Wire the sink and pool together: GC keeps spill-referenced files,
        // and evicted segments reload out of the sink's directory.
        wal.attach_pool(self.pool.clone());
        self.pool.set_dir(wal.dir());
        let tables = self.tables.write();
        for (name, t) in tables.iter() {
            wal.ensure_meta(name);
            t.write().set_wal(Some(wal.clone()));
        }
        *self.wal.write() = Some(wal);
    }

    /// Creates a table; errors if the name is taken.
    pub fn create_table(
        &self,
        name: &str,
        schema: Arc<Schema>,
        options: TableOptions,
    ) -> StorageResult<TableRef> {
        let key = normalize(name);
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(StorageError::DuplicateTable(name.to_string()));
        }
        let wal = self.wal.read().clone();
        if let Some(w) = &wal {
            w.log_create_table(&key, &schema, &options)?;
        }
        let mut table = Table::new(key.clone(), schema, options);
        table.set_wal(wal);
        table.set_pool(Some(self.pool.clone()));
        let table = Arc::new(RwLock::new(table));
        tables.insert(key, table.clone());
        Ok(table)
    }

    /// Registers an existing table object under its name.
    pub fn register(&self, table: Table) -> StorageResult<TableRef> {
        let key = normalize(table.name());
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(StorageError::DuplicateTable(key));
        }
        let wal = self.wal.read().clone();
        let mut table = table;
        table.set_name(key.clone());
        if let Some(w) = &wal {
            w.log_register_table(&key, &persist::table_to_bytes_physical(&table)?)?;
        }
        table.set_wal(wal);
        table.set_pool(Some(self.pool.clone()));
        let table = Arc::new(RwLock::new(table));
        tables.insert(key, table.clone());
        Ok(table)
    }

    /// Looks up a table by name.
    pub fn get(&self, name: &str) -> StorageResult<TableRef> {
        self.tables
            .read()
            .get(&normalize(name))
            .cloned()
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(&normalize(name))
    }

    /// Drops a table; errors if missing.
    pub fn drop_table(&self, name: &str) -> StorageResult<()> {
        let key = normalize(name);
        let mut tables = self.tables.write();
        if !tables.contains_key(&key) {
            return Err(StorageError::NoSuchTable(name.to_string()));
        }
        if let Some(w) = self.wal.read().as_ref() {
            w.log_drop_table(&key)?;
        }
        tables.remove(&key);
        Ok(())
    }

    /// Drops a table if it exists; returns whether it did.
    pub fn drop_table_if_exists(&self, name: &str) -> StorageResult<bool> {
        let key = normalize(name);
        let mut tables = self.tables.write();
        if !tables.contains_key(&key) {
            return Ok(false);
        }
        if let Some(w) = self.wal.read().as_ref() {
            w.log_drop_table(&key)?;
        }
        tables.remove(&key);
        Ok(true)
    }

    /// Renames a table.
    pub fn rename(&self, from: &str, to: &str) -> StorageResult<()> {
        let from_key = normalize(from);
        let to_key = normalize(to);
        let mut tables = self.tables.write();
        if tables.contains_key(&to_key) {
            return Err(StorageError::DuplicateTable(to.to_string()));
        }
        if !tables.contains_key(&from_key) {
            return Err(StorageError::NoSuchTable(from.to_string()));
        }
        if let Some(w) = self.wal.read().as_ref() {
            w.log_rename(&from_key, &to_key)?;
        }
        // vxlint: allow(no-unwrap-recovery) -- infallible: contains_key(from_key) verified above under the same write lock
        let t = tables.remove(&from_key).expect("checked above");
        t.write().set_name(to_key.clone());
        tables.insert(to_key, t);
        Ok(())
    }

    /// Atomically exchanges the contents of two named tables (both keep their
    /// names, their data/handles swap).
    pub fn swap(&self, a: &str, b: &str) -> StorageResult<()> {
        let a_key = normalize(a);
        let b_key = normalize(b);
        let mut tables = self.tables.write();
        if !tables.contains_key(&a_key) {
            return Err(StorageError::NoSuchTable(a.to_string()));
        }
        if !tables.contains_key(&b_key) {
            return Err(StorageError::NoSuchTable(b.to_string()));
        }
        if let Some(w) = self.wal.read().as_ref() {
            w.log_swap(&a_key, &b_key)?;
        }
        // vxlint: allow(no-unwrap-recovery) -- infallible: contains_key(a_key) verified above under the same write lock
        let ta = tables.remove(&a_key).unwrap();
        // vxlint: allow(no-unwrap-recovery) -- infallible: contains_key(b_key) verified above under the same write lock
        let tb = tables.remove(&b_key).unwrap();
        ta.write().set_name(b_key.clone());
        tb.write().set_name(a_key.clone());
        tables.insert(a_key, tb);
        tables.insert(b_key, ta);
        Ok(())
    }

    /// Atomically replaces the **contents** of an existing table with a
    /// fully-built replacement, keeping the name and the shared handle.
    ///
    /// This is the commit half of the segment-parallel apply path: segments
    /// are encoded off to the side (on the worker pool), assembled into a
    /// fresh [`Table`], and swapped in here under a single table write lock —
    /// readers holding the [`TableRef`] observe either the complete old or
    /// the complete new contents, never a mixture, and no `_new`/`_delta`
    /// temporary tables are needed.
    pub fn replace_contents(&self, name: &str, table: Table) -> StorageResult<()> {
        self.replace_contents_many(vec![(name.to_string(), table)])
    }

    /// Atomically replaces the contents of **several** tables as one durable
    /// commit — the superstep-apply commit point. In-memory, each swap is
    /// per-table atomic exactly like [`Catalog::replace_contents`]; on disk,
    /// the whole group commits via a *single* WAL `Commit` record naming
    /// every `(table, segment file)` pair, so recovery lands on either all of
    /// the new tables or none of them.
    ///
    /// Protocol: serialize each fresh table's physical image, take every
    /// target's write lock (in sorted name order — no lock-order inversion),
    /// write the images to fresh segment files + append the commit marker
    /// (`WalSink::commit_replace`), then install the new contents under the
    /// still-held locks. Holding the locks across log-then-install means no
    /// writer can slip a record against the doomed old contents in between.
    pub fn replace_contents_many(&self, tables: Vec<(String, Table)>) -> StorageResult<()> {
        let wal = self.wal.read().clone();
        // Normalize names, set them on the fresh tables, serialize images
        // (keeping each segment's byte span for spill addressing).
        type Prep = (String, Table, Option<(Vec<u8>, Vec<persist::SegmentSpan>)>);
        let mut prepared: Vec<Prep> = Vec::with_capacity(tables.len());
        for (name, mut table) in tables {
            let key = normalize(&name);
            table.set_name(key.clone());
            let bytes = if wal.is_some() {
                Some(persist::table_to_bytes_physical_indexed(&table)?)
            } else {
                None
            };
            prepared.push((key, table, bytes));
        }
        prepared.sort_by(|a, b| a.0.cmp(&b.0));
        for pair in prepared.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(StorageError::Internal(format!(
                    "replace_contents_many given table {} twice",
                    pair[0].0
                )));
            }
        }
        let refs: Vec<TableRef> =
            prepared.iter().map(|(name, _, _)| self.get(name)).collect::<StorageResult<_>>()?;
        let mut guards: Vec<_> = refs.iter().map(|r| r.write()).collect();
        let mut spans: Vec<Vec<persist::SegmentSpan>> = Vec::new();
        let files: Option<Vec<(String, String)>> = if let Some(w) = &wal {
            let entries: Vec<(String, Vec<u8>)> = prepared
                .iter_mut()
                .map(|(name, _, bytes)| {
                    // vxlint: allow(no-unwrap-recovery) -- infallible: every `prepared` entry was filled by the serialize pass above and taken exactly once
                    let (bytes, sp) = bytes.take().expect("serialized above");
                    spans.push(sp);
                    (name.clone(), bytes)
                })
                .collect();
            Some(w.commit_replace(&entries)?)
        } else {
            None
        };
        for (i, (guard, (_, mut table, _))) in guards.iter_mut().zip(prepared).enumerate() {
            table.set_wal(wal.clone());
            table.set_pool(Some(self.pool.clone()));
            // The commit wrote this table's image; its segments now have
            // disk twins at the recorded spans and are evictable.
            if let Some(files) = &files {
                table.assign_spill_addrs(&files[i].1, &spans[i])?;
            }
            **guard = table;
        }
        drop(guards);
        // The old contents just dropped and new ones landed: re-enforce the
        // budget now that residency moved.
        self.pool.enforce();
        Ok(())
    }

    /// Flushes every **dirty** table's physical image to a segment file,
    /// publishes a fresh manifest, and — once nothing is left unflushed —
    /// rotates (truncates) the WAL. Clean tables keep their existing image
    /// files, watermarks, and segment spill addresses. Each flushed image
    /// becomes the spill twin of that table's segments, making them
    /// evictable; the budget is re-enforced before returning. No-op without
    /// an attached sink.
    pub fn checkpoint(&self) -> StorageResult<()> {
        let Some(wal) = self.wal_sink() else { return Ok(()) };
        // Holding the map write lock blocks DDL (not data writes, which go
        // through per-table locks + the sink directly) so the manifest's
        // table list is a consistent snapshot.
        let tables = self.tables.write();
        let mut names: Vec<&String> = tables.keys().collect();
        names.sort();
        for name in names {
            if !wal.needs_flush(name) {
                continue;
            }
            // Hold the table's read lock across the flush: writers log under
            // the write lock, so nothing can slip a record between the image
            // serialization and the watermark sample inside `flush_table`.
            let guard = tables[name].read();
            let (bytes, spans) = persist::table_to_bytes_physical_indexed(&guard)?;
            let file = wal.flush_table(name, &bytes)?;
            guard.assign_spill_addrs(&file, &spans)?;
        }
        wal.finish_checkpoint()?;
        drop(tables);
        self.pool.enforce();
        Ok(())
    }

    /// Sorted list of table names.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Field, Value};

    fn schema() -> Arc<Schema> {
        Schema::new(vec![Field::new("x", DataType::Int)])
    }

    #[test]
    fn create_get_drop() {
        let cat = Catalog::new();
        cat.create_table("T1", schema(), TableOptions::default()).unwrap();
        assert!(cat.contains("t1"));
        assert!(cat.get("T1").is_ok());
        cat.drop_table("t1").unwrap();
        assert!(!cat.contains("t1"));
        assert!(matches!(cat.get("t1"), Err(StorageError::NoSuchTable(_))));
    }

    #[test]
    fn duplicate_create_rejected() {
        let cat = Catalog::new();
        cat.create_table("t", schema(), TableOptions::default()).unwrap();
        assert!(matches!(
            cat.create_table("T", schema(), TableOptions::default()),
            Err(StorageError::DuplicateTable(_))
        ));
    }

    #[test]
    fn rename_moves_table() {
        let cat = Catalog::new();
        let t = cat.create_table("old", schema(), TableOptions::default()).unwrap();
        t.write().insert_row(vec![Value::Int(1)]).unwrap();
        cat.rename("old", "new").unwrap();
        assert!(!cat.contains("old"));
        let t2 = cat.get("new").unwrap();
        assert_eq!(t2.read().num_rows(), 1);
        assert_eq!(t2.read().name(), "new");
    }

    #[test]
    fn rename_to_existing_rejected() {
        let cat = Catalog::new();
        cat.create_table("a", schema(), TableOptions::default()).unwrap();
        cat.create_table("b", schema(), TableOptions::default()).unwrap();
        assert!(cat.rename("a", "b").is_err());
    }

    #[test]
    fn swap_exchanges_contents() {
        let cat = Catalog::new();
        let a = cat.create_table("a", schema(), TableOptions::default()).unwrap();
        let b = cat.create_table("b", schema(), TableOptions::default()).unwrap();
        a.write().insert_row(vec![Value::Int(1)]).unwrap();
        b.write().insert_row(vec![Value::Int(2)]).unwrap();
        b.write().insert_row(vec![Value::Int(3)]).unwrap();
        cat.swap("a", "b").unwrap();
        assert_eq!(cat.get("a").unwrap().read().num_rows(), 2);
        assert_eq!(cat.get("b").unwrap().read().num_rows(), 1);
        assert_eq!(cat.get("a").unwrap().read().name(), "a");
    }

    #[test]
    fn swap_missing_table_rejected() {
        let cat = Catalog::new();
        cat.create_table("a", schema(), TableOptions::default()).unwrap();
        assert!(cat.swap("a", "nope").is_err());
    }

    #[test]
    fn list_is_sorted() {
        let cat = Catalog::new();
        cat.create_table("zeta", schema(), TableOptions::default()).unwrap();
        cat.create_table("alpha", schema(), TableOptions::default()).unwrap();
        assert_eq!(cat.list(), vec!["alpha".to_string(), "zeta".to_string()]);
    }

    #[test]
    fn replace_contents_swaps_under_existing_handle() {
        let cat = Catalog::new();
        let t = cat.create_table("t", schema(), TableOptions::default()).unwrap();
        t.write().insert_row(vec![Value::Int(1)]).unwrap();

        let mut fresh = Table::new("whatever", schema(), TableOptions::default());
        fresh.insert_row(vec![Value::Int(7)]).unwrap();
        fresh.insert_row(vec![Value::Int(8)]).unwrap();
        cat.replace_contents("T", fresh).unwrap();

        // The *same* handle observes the new contents under the old name.
        assert_eq!(t.read().num_rows(), 2);
        assert_eq!(t.read().name(), "t");
        assert_eq!(cat.get("t").unwrap().read().num_rows(), 2);
        assert!(cat
            .replace_contents("ghost", Table::new("x", schema(), TableOptions::default()))
            .is_err());
    }

    #[test]
    fn drop_if_exists() {
        let cat = Catalog::new();
        assert!(!cat.drop_table_if_exists("ghost").unwrap());
        cat.create_table("t", schema(), TableOptions::default()).unwrap();
        assert!(cat.drop_table_if_exists("t").unwrap());
    }
}
