//! The named-table catalog.
//!
//! Thread-safe: the catalog map and each table are behind `parking_lot`
//! RwLocks, so the coordinator can swap tables while workers are reading
//! others. The atomic [`Catalog::swap`] is the primitive behind Vertexica's
//! *replace* strategy (§2.3): build `vertex_new` via a left join, then swap it
//! with `vertex` and drop the old one.

use std::sync::Arc;

use parking_lot::RwLock;
use vertexica_common::FxHashMap;

use crate::error::{StorageError, StorageResult};
use crate::table::{Table, TableOptions};
use crate::value::Schema;

/// Shared handle to a table.
pub type TableRef = Arc<RwLock<Table>>;

/// A catalog of named tables.
#[derive(Default)]
pub struct Catalog {
    tables: RwLock<FxHashMap<String, TableRef>>,
}

fn normalize(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Creates a table; errors if the name is taken.
    pub fn create_table(
        &self,
        name: &str,
        schema: Arc<Schema>,
        options: TableOptions,
    ) -> StorageResult<TableRef> {
        let key = normalize(name);
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(StorageError::DuplicateTable(name.to_string()));
        }
        let table = Arc::new(RwLock::new(Table::new(key.clone(), schema, options)));
        tables.insert(key, table.clone());
        Ok(table)
    }

    /// Registers an existing table object under its name.
    pub fn register(&self, table: Table) -> StorageResult<TableRef> {
        let key = normalize(table.name());
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(StorageError::DuplicateTable(key));
        }
        let table = Arc::new(RwLock::new(table));
        tables.insert(key, table.clone());
        Ok(table)
    }

    /// Looks up a table by name.
    pub fn get(&self, name: &str) -> StorageResult<TableRef> {
        self.tables
            .read()
            .get(&normalize(name))
            .cloned()
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(&normalize(name))
    }

    /// Drops a table; errors if missing.
    pub fn drop_table(&self, name: &str) -> StorageResult<()> {
        self.tables
            .write()
            .remove(&normalize(name))
            .map(|_| ())
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    /// Drops a table if it exists; returns whether it did.
    pub fn drop_table_if_exists(&self, name: &str) -> bool {
        self.tables.write().remove(&normalize(name)).is_some()
    }

    /// Renames a table.
    pub fn rename(&self, from: &str, to: &str) -> StorageResult<()> {
        let from_key = normalize(from);
        let to_key = normalize(to);
        let mut tables = self.tables.write();
        if tables.contains_key(&to_key) {
            return Err(StorageError::DuplicateTable(to.to_string()));
        }
        let t =
            tables.remove(&from_key).ok_or_else(|| StorageError::NoSuchTable(from.to_string()))?;
        t.write().set_name(to_key.clone());
        tables.insert(to_key, t);
        Ok(())
    }

    /// Atomically exchanges the contents of two named tables (both keep their
    /// names, their data/handles swap).
    pub fn swap(&self, a: &str, b: &str) -> StorageResult<()> {
        let a_key = normalize(a);
        let b_key = normalize(b);
        let mut tables = self.tables.write();
        if !tables.contains_key(&a_key) {
            return Err(StorageError::NoSuchTable(a.to_string()));
        }
        if !tables.contains_key(&b_key) {
            return Err(StorageError::NoSuchTable(b.to_string()));
        }
        let ta = tables.remove(&a_key).unwrap();
        let tb = tables.remove(&b_key).unwrap();
        ta.write().set_name(b_key.clone());
        tb.write().set_name(a_key.clone());
        tables.insert(a_key, tb);
        tables.insert(b_key, ta);
        Ok(())
    }

    /// Atomically replaces the **contents** of an existing table with a
    /// fully-built replacement, keeping the name and the shared handle.
    ///
    /// This is the commit half of the segment-parallel apply path: segments
    /// are encoded off to the side (on the worker pool), assembled into a
    /// fresh [`Table`], and swapped in here under a single table write lock —
    /// readers holding the [`TableRef`] observe either the complete old or
    /// the complete new contents, never a mixture, and no `_new`/`_delta`
    /// temporary tables are needed.
    pub fn replace_contents(&self, name: &str, mut table: Table) -> StorageResult<()> {
        let existing = self.get(name)?;
        table.set_name(normalize(name));
        *existing.write() = table;
        Ok(())
    }

    /// Sorted list of table names.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Field, Value};

    fn schema() -> Arc<Schema> {
        Schema::new(vec![Field::new("x", DataType::Int)])
    }

    #[test]
    fn create_get_drop() {
        let cat = Catalog::new();
        cat.create_table("T1", schema(), TableOptions::default()).unwrap();
        assert!(cat.contains("t1"));
        assert!(cat.get("T1").is_ok());
        cat.drop_table("t1").unwrap();
        assert!(!cat.contains("t1"));
        assert!(matches!(cat.get("t1"), Err(StorageError::NoSuchTable(_))));
    }

    #[test]
    fn duplicate_create_rejected() {
        let cat = Catalog::new();
        cat.create_table("t", schema(), TableOptions::default()).unwrap();
        assert!(matches!(
            cat.create_table("T", schema(), TableOptions::default()),
            Err(StorageError::DuplicateTable(_))
        ));
    }

    #[test]
    fn rename_moves_table() {
        let cat = Catalog::new();
        let t = cat.create_table("old", schema(), TableOptions::default()).unwrap();
        t.write().insert_row(vec![Value::Int(1)]).unwrap();
        cat.rename("old", "new").unwrap();
        assert!(!cat.contains("old"));
        let t2 = cat.get("new").unwrap();
        assert_eq!(t2.read().num_rows(), 1);
        assert_eq!(t2.read().name(), "new");
    }

    #[test]
    fn rename_to_existing_rejected() {
        let cat = Catalog::new();
        cat.create_table("a", schema(), TableOptions::default()).unwrap();
        cat.create_table("b", schema(), TableOptions::default()).unwrap();
        assert!(cat.rename("a", "b").is_err());
    }

    #[test]
    fn swap_exchanges_contents() {
        let cat = Catalog::new();
        let a = cat.create_table("a", schema(), TableOptions::default()).unwrap();
        let b = cat.create_table("b", schema(), TableOptions::default()).unwrap();
        a.write().insert_row(vec![Value::Int(1)]).unwrap();
        b.write().insert_row(vec![Value::Int(2)]).unwrap();
        b.write().insert_row(vec![Value::Int(3)]).unwrap();
        cat.swap("a", "b").unwrap();
        assert_eq!(cat.get("a").unwrap().read().num_rows(), 2);
        assert_eq!(cat.get("b").unwrap().read().num_rows(), 1);
        assert_eq!(cat.get("a").unwrap().read().name(), "a");
    }

    #[test]
    fn swap_missing_table_rejected() {
        let cat = Catalog::new();
        cat.create_table("a", schema(), TableOptions::default()).unwrap();
        assert!(cat.swap("a", "nope").is_err());
    }

    #[test]
    fn list_is_sorted() {
        let cat = Catalog::new();
        cat.create_table("zeta", schema(), TableOptions::default()).unwrap();
        cat.create_table("alpha", schema(), TableOptions::default()).unwrap();
        assert_eq!(cat.list(), vec!["alpha".to_string(), "zeta".to_string()]);
    }

    #[test]
    fn replace_contents_swaps_under_existing_handle() {
        let cat = Catalog::new();
        let t = cat.create_table("t", schema(), TableOptions::default()).unwrap();
        t.write().insert_row(vec![Value::Int(1)]).unwrap();

        let mut fresh = Table::new("whatever", schema(), TableOptions::default());
        fresh.insert_row(vec![Value::Int(7)]).unwrap();
        fresh.insert_row(vec![Value::Int(8)]).unwrap();
        cat.replace_contents("T", fresh).unwrap();

        // The *same* handle observes the new contents under the old name.
        assert_eq!(t.read().num_rows(), 2);
        assert_eq!(t.read().name(), "t");
        assert_eq!(cat.get("t").unwrap().read().num_rows(), 2);
        assert!(cat
            .replace_contents("ghost", Table::new("x", schema(), TableOptions::default()))
            .is_err());
    }

    #[test]
    fn drop_if_exists() {
        let cat = Catalog::new();
        assert!(!cat.drop_table_if_exists("ghost"));
        cat.create_table("t", schema(), TableOptions::default()).unwrap();
        assert!(cat.drop_table_if_exists("t"));
    }
}
