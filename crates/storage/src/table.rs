//! Tables with a Vertica-style WOS/ROS split.
//!
//! Writes land in a row-oriented **write-optimized store** (WOS). When the WOS
//! exceeds a threshold (or on explicit [`Table::moveout`]), rows are sorted by
//! the table's sort key, columnized, encoded and appended to the
//! **read-optimized store** (ROS) as an immutable [`Segment`] with per-column
//! zone maps. Deletes are recorded in per-segment **delete vectors**; updates
//! are delete + re-insert. This is the machinery Vertexica's update-vs-replace
//! optimization (§2.3) trades off against whole-table replacement.

use std::sync::Arc;

use crate::batch::RecordBatch;
use crate::bitmap::Bitmap;
use crate::buffer_pool::{BufferPool, SegmentHandle, SpillAddr};
use crate::column::{Column, ColumnBuilder};
use crate::encoding::EncodedColumn;
use crate::error::{StorageError, StorageResult};
use crate::value::{Schema, Value};
use crate::wal::{self, WalSink};

/// A row of dynamic values (WOS representation).
pub type Row = Vec<Value>;

/// Tuning knobs for a table.
#[derive(Debug, Clone)]
pub struct TableOptions {
    /// WOS rows that trigger an automatic moveout.
    pub moveout_threshold: usize,
    /// Whether ROS segments are compressed (auto-chosen RLE/dictionary).
    pub compress: bool,
    /// Column indices the ROS is sorted by (a Vertica "projection" order).
    pub sort_key: Vec<usize>,
}

impl Default for TableOptions {
    fn default() -> Self {
        TableOptions { moveout_threshold: 64 * 1024, compress: false, sort_key: Vec::new() }
    }
}

impl TableOptions {
    pub fn sorted_by(mut self, cols: Vec<usize>) -> Self {
        self.sort_key = cols;
        self
    }

    pub fn compressed(mut self) -> Self {
        self.compress = true;
        self
    }

    pub fn with_moveout_threshold(mut self, t: usize) -> Self {
        self.moveout_threshold = t.max(1);
        self
    }
}

/// Comparison operators supported by scan-level predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredicateOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

/// A simple `column <op> literal` predicate, pushed down into scans for
/// zone-map pruning and early filtering.
#[derive(Debug, Clone)]
pub struct ColumnPredicate {
    pub column: usize,
    pub op: PredicateOp,
    pub value: Value,
}

impl ColumnPredicate {
    pub fn new(column: usize, op: PredicateOp, value: Value) -> Self {
        ColumnPredicate { column, op, value }
    }

    /// True if a row with value `v` satisfies the predicate (SQL semantics:
    /// NULL never matches).
    pub fn matches(&self, v: &Value) -> bool {
        if v.is_null() || self.value.is_null() {
            return false;
        }
        let ord = v.total_cmp(&self.value);
        match self.op {
            PredicateOp::Eq => ord.is_eq(),
            PredicateOp::NotEq => !ord.is_eq(),
            PredicateOp::Lt => ord.is_lt(),
            PredicateOp::LtEq => ord.is_le(),
            PredicateOp::Gt => ord.is_gt(),
            PredicateOp::GtEq => ord.is_ge(),
        }
    }

    /// Could any row in a segment with this zone map match?
    fn maybe_in(&self, zm: &ZoneMap) -> bool {
        if zm.min.is_null() && zm.max.is_null() {
            // All-null column: no non-null value can match.
            return false;
        }
        match self.op {
            PredicateOp::Eq => {
                self.value.total_cmp(&zm.min).is_ge() && self.value.total_cmp(&zm.max).is_le()
            }
            PredicateOp::NotEq => true,
            PredicateOp::Lt => zm.min.total_cmp(&self.value).is_lt(),
            PredicateOp::LtEq => zm.min.total_cmp(&self.value).is_le(),
            PredicateOp::Gt => zm.max.total_cmp(&self.value).is_gt(),
            PredicateOp::GtEq => zm.max.total_cmp(&self.value).is_ge(),
        }
    }
}

/// Per-column min/max statistics for a segment.
#[derive(Debug, Clone)]
pub struct ZoneMap {
    pub min: Value,
    pub max: Value,
    pub null_count: usize,
}

impl ZoneMap {
    fn from_column(col: &Column) -> ZoneMap {
        Self::from_column_range(col, 0, col.len())
    }

    fn from_column_range(col: &Column, start: usize, len: usize) -> ZoneMap {
        let mut min = Value::Null;
        let mut max = Value::Null;
        let mut null_count = 0usize;
        for i in start..start + len {
            let v = col.value(i);
            if v.is_null() {
                null_count += 1;
                continue;
            }
            if min.is_null() || v.total_cmp(&min).is_lt() {
                min = v.clone();
            }
            if max.is_null() || v.total_cmp(&max).is_gt() {
                max = v;
            }
        }
        ZoneMap { min, max, null_count }
    }
}

/// Rows per zone-mapped block inside a segment. Blocks are the granularity
/// of partial decode: a pushed-down predicate that rules out a block's
/// min/max skips decoding those rows entirely (see
/// [`ScanCursor::next_with_rowids`]).
pub const BLOCK_ROWS: usize = 1024;

/// An immutable ROS segment: encoded columns plus zone maps — one per
/// column for the whole segment, and one per column per [`BLOCK_ROWS`]-row
/// block for partial decode.
#[derive(Debug, Clone)]
pub struct Segment {
    num_rows: usize,
    columns: Vec<EncodedColumn>,
    zone_maps: Vec<ZoneMap>,
    /// `block_zone_maps[col][block]`; empty inner vec when the segment fits
    /// in a single block (the per-segment map already covers it).
    block_zone_maps: Vec<Vec<ZoneMap>>,
}

impl Segment {
    fn from_columns(columns: Vec<Column>, compress: bool) -> Segment {
        let num_rows = columns.first().map_or(0, |c| c.len());
        let zone_maps = columns.iter().map(ZoneMap::from_column).collect();
        let num_blocks = num_rows.div_ceil(BLOCK_ROWS);
        let block_zone_maps = columns
            .iter()
            .map(|c| {
                if num_blocks <= 1 {
                    Vec::new()
                } else {
                    (0..num_blocks)
                        .map(|b| {
                            let start = b * BLOCK_ROWS;
                            let len = BLOCK_ROWS.min(num_rows - start);
                            ZoneMap::from_column_range(c, start, len)
                        })
                        .collect()
                }
            })
            .collect();
        let columns = columns
            .into_iter()
            .map(
                |c| if compress { EncodedColumn::encode_auto(&c) } else { EncodedColumn::Plain(c) },
            )
            .collect();
        Segment { num_rows, columns, zone_maps, block_zone_maps }
    }

    /// Builds an encoded, zone-mapped ROS segment for a table with `schema`
    /// directly from a batch, coercing columns like [`Table::append_batch`].
    ///
    /// This is the off-table half of segmented ingest: because it needs no
    /// `&mut Table`, callers can encode many segments concurrently (e.g. one
    /// per apply partition on a worker pool) and only serialize the cheap
    /// [`Table::adopt_segment`] / [`crate::catalog::Catalog::replace_contents`]
    /// commit.
    pub fn build(schema: &Schema, batch: &RecordBatch, compress: bool) -> StorageResult<Segment> {
        if batch.num_columns() != schema.len() {
            return Err(StorageError::ArityMismatch {
                expected: schema.len(),
                found: batch.num_columns(),
            });
        }
        let mut columns = Vec::with_capacity(batch.num_columns());
        for (field, col) in schema.fields.iter().zip(batch.columns()) {
            if col.dtype() != field.dtype {
                // Column-level coercion (e.g. Int batch into Float column).
                let mut b = ColumnBuilder::with_capacity(field.dtype, col.len());
                for i in 0..col.len() {
                    b.push(col.value(i))?;
                }
                columns.push(b.finish());
            } else {
                columns.push(col.clone());
            }
        }
        Ok(Segment::from_columns(columns, compress))
    }

    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    pub fn zone_map(&self, col: usize) -> &ZoneMap {
        &self.zone_maps[col]
    }

    /// Number of [`BLOCK_ROWS`]-row blocks covering this segment.
    pub fn num_blocks(&self) -> usize {
        self.num_rows.div_ceil(BLOCK_ROWS).max(1)
    }

    /// `(start row, row count)` of block `b`.
    pub fn block_range(&self, b: usize) -> (usize, usize) {
        let start = b * BLOCK_ROWS;
        (start, BLOCK_ROWS.min(self.num_rows - start))
    }

    /// Zone map of block `b` of column `col`. A single-block segment answers
    /// with the per-segment map (the per-block vec is elided to save memory).
    pub fn block_zone_map(&self, col: usize, b: usize) -> &ZoneMap {
        let blocks = &self.block_zone_maps[col];
        if blocks.is_empty() {
            &self.zone_maps[col]
        } else {
            &blocks[b]
        }
    }

    pub fn encoded_column(&self, col: usize) -> &EncodedColumn {
        &self.columns[col]
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The per-block zone maps exactly as stored: empty when the segment fits
    /// in one block and elides them. Persistence serializes this verbatim so
    /// a recovered segment is byte-identical under re-serialization.
    pub(crate) fn stored_block_zone_maps(&self, col: usize) -> &[ZoneMap] {
        &self.block_zone_maps[col]
    }

    /// Reassembles a segment from persisted parts, validating the shape
    /// invariants [`Segment::from_columns`] guarantees by construction.
    pub(crate) fn from_parts(
        num_rows: usize,
        columns: Vec<EncodedColumn>,
        zone_maps: Vec<ZoneMap>,
        block_zone_maps: Vec<Vec<ZoneMap>>,
    ) -> StorageResult<Segment> {
        if zone_maps.len() != columns.len() || block_zone_maps.len() != columns.len() {
            return Err(StorageError::Corrupt("segment zone-map arity mismatch".into()));
        }
        let expected_blocks = num_rows.div_ceil(BLOCK_ROWS);
        for (col, blocks) in columns.iter().zip(&block_zone_maps) {
            if col.num_rows() != num_rows {
                return Err(StorageError::Corrupt("segment column row-count mismatch".into()));
            }
            if !blocks.is_empty() && blocks.len() != expected_blocks {
                return Err(StorageError::Corrupt("segment block zone-map count mismatch".into()));
            }
        }
        Ok(Segment { num_rows, columns, zone_maps, block_zone_maps })
    }

    /// Estimated encoded size in bytes — the unit of buffer-pool byte
    /// accounting (column payloads only; zone-map overhead is negligible).
    pub fn estimated_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.size_estimate()).sum()
    }

    fn decode_column(&self, col: usize) -> StorageResult<Column> {
        self.columns[col].decode()
    }

    fn decode_column_range(&self, col: usize, start: usize, len: usize) -> StorageResult<Column> {
        self.columns[col].decode_range(start, len)
    }
}

/// WOS segment id used in row ids.
const WOS_SEGMENT: u32 = u32::MAX;

/// Packs a (segment, row) pair into a rowid.
#[inline]
fn rowid(segment: u32, row: u32) -> u64 {
    ((segment as u64) << 32) | row as u64
}

#[inline]
fn unpack_rowid(id: u64) -> (u32, u32) {
    ((id >> 32) as u32, id as u32)
}

/// A table: schema + WOS + ROS segments + delete vectors.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Arc<Schema>,
    options: TableOptions,
    wos: Vec<Row>,
    segments: Vec<SegmentHandle>,
    delete_vectors: Vec<Bitmap>,
    /// Monotonic count of segments skipped by zone-map pruning across all
    /// scans of this table handle — observability for "did the pruning
    /// predicate actually avoid decoding that segment?" (regression-tested
    /// against segments produced by the segmented-replace fast path).
    /// Shared (`Arc`) with every [`ScanCursor`] snapshotted from this table,
    /// so pruning observed by a cursor *after* the catalog lock was dropped
    /// still lands on the same counter the eager scan bumps.
    segments_pruned: Arc<vertexica_common::sync::AtomicU64>,
    /// Like `segments_pruned`, but counting [`BLOCK_ROWS`]-row blocks skipped
    /// by per-block zone maps inside segments that survived segment-level
    /// pruning (blocks of pruned segments are *not* counted — they were never
    /// considered).
    blocks_pruned: Arc<vertexica_common::sync::AtomicU64>,
    /// Estimated bytes of column data decoded by scans of this table handle
    /// (full-segment and partial block decodes alike) — the gauge that shows
    /// block-granular decode paying off: with a selective pushed-down
    /// predicate it stays proportional to surviving blocks, not segments.
    bytes_decoded: Arc<vertexica_common::sync::AtomicU64>,
    /// Durability sink, when this table belongs to a durable database. Every
    /// mutation is logged here *before* it is applied and acknowledged; the
    /// `_unlogged` method variants are the apply halves, shared with WAL
    /// replay so recovery reproduces the original mutations deterministically.
    wal: Option<Arc<WalSink>>,
    /// Segment buffer pool, when this table belongs to a catalog. Every ROS
    /// segment handle is registered here so cold segments can be evicted
    /// under a memory budget and reloaded from their checkpoint images.
    pool: Option<Arc<BufferPool>>,
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Arc<Schema>, options: TableOptions) -> Self {
        Table {
            name: name.into(),
            schema,
            options,
            wos: Vec::new(),
            segments: Vec::new(),
            delete_vectors: Vec::new(),
            segments_pruned: Arc::new(vertexica_common::sync::AtomicU64::new(0)),
            blocks_pruned: Arc::new(vertexica_common::sync::AtomicU64::new(0)),
            bytes_decoded: Arc::new(vertexica_common::sync::AtomicU64::new(0)),
            wal: None,
            pool: None,
        }
    }

    /// Reassembles a table from persisted physical parts (see
    /// [`crate::persist::table_from_bytes_physical`]), validating the shape
    /// invariants the mutation API guarantees by construction.
    pub(crate) fn from_parts(
        name: String,
        schema: Arc<Schema>,
        options: TableOptions,
        wos: Vec<Row>,
        segments: Vec<Segment>,
        delete_vectors: Vec<Bitmap>,
    ) -> StorageResult<Table> {
        if segments.len() != delete_vectors.len() {
            return Err(StorageError::Corrupt("delete-vector count mismatch".into()));
        }
        for (seg, dv) in segments.iter().zip(&delete_vectors) {
            if seg.num_columns() != schema.len() {
                return Err(StorageError::Corrupt("segment arity mismatch".into()));
            }
            for (field, c) in schema.fields.iter().zip(&seg.columns) {
                if c.dtype() != field.dtype {
                    return Err(StorageError::Corrupt(format!(
                        "segment column type mismatch for {}",
                        field.name
                    )));
                }
            }
            if dv.len() != seg.num_rows() {
                return Err(StorageError::Corrupt("delete-vector length mismatch".into()));
            }
        }
        for row in &wos {
            if row.len() != schema.len() {
                return Err(StorageError::Corrupt("wos row arity mismatch".into()));
            }
        }
        let mut t = Table::new(name, schema, options);
        t.wos = wos;
        t.segments = segments.into_iter().map(|s| SegmentHandle::new(Arc::new(s))).collect();
        t.delete_vectors = delete_vectors;
        Ok(t)
    }

    /// Attaches (or detaches) the durability sink. While attached, every
    /// mutation is WAL-logged before it is applied.
    pub(crate) fn set_wal(&mut self, wal: Option<Arc<WalSink>>) {
        self.wal = wal;
    }

    /// Attaches the segment buffer pool, registering all existing ROS
    /// segments with its clock. New segments register as they are adopted.
    pub(crate) fn set_pool(&mut self, pool: Option<Arc<BufferPool>>) {
        if let Some(p) = &pool {
            for handle in &self.segments {
                p.register(handle);
            }
        }
        self.pool = pool;
    }

    /// Records the spill addresses of this table's segments inside a freshly
    /// written checkpoint image (`file`, with one span per segment in
    /// order), making them evictable. Called strictly after the image is
    /// durably on disk.
    pub(crate) fn assign_spill_addrs(
        &self,
        file: &str,
        spans: &[crate::persist::SegmentSpan],
    ) -> StorageResult<()> {
        if spans.len() != self.segments.len() {
            return Err(StorageError::Internal(format!(
                "checkpoint image has {} segment spans, table has {} segments",
                spans.len(),
                self.segments.len()
            )));
        }
        for (handle, span) in self.segments.iter().zip(spans) {
            handle.set_addr(SpillAddr {
                file: file.to_string(),
                offset: span.offset,
                len: span.len,
                crc: span.crc,
            });
        }
        Ok(())
    }

    /// Whether mutations on this table are WAL-logged.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Total segments zone-map-pruned (never decoded) over this table
    /// handle's lifetime of scans.
    pub fn segments_pruned(&self) -> u64 {
        self.segments_pruned.load(vertexica_common::sync::Ordering::Relaxed)
    }

    /// Total blocks skipped by per-block zone maps within surviving segments.
    pub fn blocks_pruned(&self) -> u64 {
        self.blocks_pruned.load(vertexica_common::sync::Ordering::Relaxed)
    }

    /// Estimated bytes of column data decoded by scans over this handle's
    /// lifetime (shared with outstanding cursors, like the prune counters).
    pub fn bytes_decoded(&self) -> u64 {
        self.bytes_decoded.load(vertexica_common::sync::Ordering::Relaxed)
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub(crate) fn set_name(&mut self, name: String) {
        self.name = name;
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    pub fn options(&self) -> &TableOptions {
        &self.options
    }

    /// Live row count (excluding deleted rows).
    pub fn num_rows(&self) -> usize {
        let ros: usize = self
            .segments
            .iter()
            .zip(&self.delete_vectors)
            .map(|(s, d)| s.num_rows() - d.count_ones())
            .sum();
        ros + self.wos.len()
    }

    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    pub fn wos_rows(&self) -> usize {
        self.wos.len()
    }

    /// Validates and coerces a row against the schema.
    fn check_row(&self, row: Row) -> StorageResult<Row> {
        if row.len() != self.schema.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.len(),
                found: row.len(),
            });
        }
        let mut out = Vec::with_capacity(row.len());
        for (field, v) in self.schema.fields.iter().zip(row) {
            if v.is_null() {
                if !field.nullable {
                    return Err(StorageError::NullViolation(field.name.clone()));
                }
                out.push(Value::Null);
            } else {
                out.push(v.coerce(field.dtype)?);
            }
        }
        Ok(out)
    }

    /// Inserts one row into the WOS (auto-moveout past the threshold).
    pub fn insert_row(&mut self, row: Row) -> StorageResult<()> {
        let row = self.check_row(row)?;
        if let Some(w) = &self.wal {
            w.log_data(
                &self.name,
                &wal::payload_insert_rows(&self.name, std::slice::from_ref(&row)),
            )?;
        }
        self.insert_row_unlogged(row)
    }

    /// Inserts many rows (one WAL record for the whole batch).
    pub fn insert_rows(&mut self, rows: Vec<Row>) -> StorageResult<usize> {
        let mut checked = Vec::with_capacity(rows.len());
        for row in rows {
            checked.push(self.check_row(row)?);
        }
        let n = checked.len();
        if n > 0 {
            if let Some(w) = &self.wal {
                w.log_data(&self.name, &wal::payload_insert_rows(&self.name, &checked))?;
            }
        }
        for row in checked {
            self.insert_row_unlogged(row)?;
        }
        Ok(n)
    }

    /// Apply half of [`Table::insert_row`]: pushes an already-validated row
    /// and runs the (deterministic) auto-moveout check. Shared with replay.
    pub(crate) fn insert_row_unlogged(&mut self, row: Row) -> StorageResult<()> {
        self.wos.push(row);
        if self.wos.len() >= self.options.moveout_threshold {
            self.moveout_unlogged()?;
        }
        Ok(())
    }

    /// Bulk-appends a batch directly as a ROS segment (bypassing the WOS) —
    /// the fast path for `CREATE TABLE AS SELECT` and superstep table swaps.
    pub fn append_batch(&mut self, batch: &RecordBatch) -> StorageResult<()> {
        if batch.num_rows() == 0 && batch.num_columns() == self.schema.len() {
            return Ok(());
        }
        let seg = Segment::build(&self.schema, batch, self.options.compress)?;
        self.adopt_segment(seg)
    }

    /// Appends a pre-built ROS segment (see [`Segment::build`]) after
    /// validating its shape against the table schema. Empty segments are
    /// dropped. This is the cheap, in-lock half of segmented ingest: the
    /// expensive encode already happened off-table (possibly on another
    /// thread).
    pub fn adopt_segment(&mut self, seg: Segment) -> StorageResult<()> {
        if seg.columns.len() != self.schema.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.len(),
                found: seg.columns.len(),
            });
        }
        for (field, col) in self.schema.fields.iter().zip(&seg.columns) {
            if col.dtype() != field.dtype {
                return Err(StorageError::TypeMismatch {
                    expected: field.dtype.to_string(),
                    found: col.dtype().to_string(),
                });
            }
        }
        if seg.num_rows() == 0 {
            return Ok(());
        }
        if let Some(w) = &self.wal {
            w.log_data(&self.name, &wal::payload_adopt_segment(&self.name, &seg))?;
        }
        self.adopt_segment_unlogged(seg);
        Ok(())
    }

    /// Apply half of [`Table::adopt_segment`]: pushes an already-validated,
    /// non-empty segment. Shared with replay.
    pub(crate) fn adopt_segment_unlogged(&mut self, seg: Segment) {
        self.push_ros_segment(seg);
    }

    /// Appends a freshly built ROS segment, registering its handle with the
    /// buffer pool when one is attached. The new segment has no spill
    /// address yet, so it is unevictable until the next checkpoint writes
    /// its disk twin.
    fn push_ros_segment(&mut self, seg: Segment) {
        self.delete_vectors.push(Bitmap::zeros(seg.num_rows()));
        let handle = SegmentHandle::new(Arc::new(seg));
        if let Some(pool) = &self.pool {
            pool.register(&handle);
        }
        self.segments.push(handle);
    }

    /// Flushes the WOS into a new sorted, encoded ROS segment.
    pub fn moveout(&mut self) -> StorageResult<()> {
        if self.wos.is_empty() {
            return Ok(());
        }
        if let Some(w) = &self.wal {
            w.log_data(&self.name, &wal::payload_moveout(&self.name))?;
        }
        self.moveout_unlogged()
    }

    /// Apply half of [`Table::moveout`] — also the auto-moveout inside
    /// [`Table::insert_row_unlogged`], which is *not* logged separately:
    /// replaying the inserts reproduces it (the threshold check is
    /// deterministic, and the sort is stable).
    pub(crate) fn moveout_unlogged(&mut self) -> StorageResult<()> {
        if self.wos.is_empty() {
            return Ok(());
        }
        let mut rows = std::mem::take(&mut self.wos);
        if !self.options.sort_key.is_empty() {
            let key = self.options.sort_key.clone();
            rows.sort_by(|a, b| {
                for &k in &key {
                    let ord = a[k].total_cmp(&b[k]);
                    if !ord.is_eq() {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        let mut builders: Vec<ColumnBuilder> = self
            .schema
            .fields
            .iter()
            .map(|f| ColumnBuilder::with_capacity(f.dtype, rows.len()))
            .collect();
        for row in &rows {
            for (b, v) in builders.iter_mut().zip(row) {
                b.push(v.clone())?;
            }
        }
        let columns: Vec<Column> = builders.into_iter().map(|b| b.finish()).collect();
        let seg = Segment::from_columns(columns, self.options.compress);
        self.push_ros_segment(seg);
        Ok(())
    }

    /// Merges all ROS segments (and the WOS) into a single segment, dropping
    /// deleted rows — Vertica's "mergeout".
    pub fn mergeout(&mut self) -> StorageResult<()> {
        if let Some(w) = &self.wal {
            w.log_data(&self.name, &wal::payload_mergeout(&self.name))?;
        }
        self.mergeout_unlogged()
    }

    /// Apply half of [`Table::mergeout`]. Deterministic given the table
    /// state, so replaying the single `Mergeout` record reproduces it.
    pub(crate) fn mergeout_unlogged(&mut self) -> StorageResult<()> {
        self.moveout_unlogged()?;
        if self.segments.len() <= 1 && self.delete_vectors.iter().all(|d| !d.any()) {
            return Ok(());
        }
        let batches = self.scan(None, &[])?;
        let merged = RecordBatch::concat(self.schema.clone(), &batches)?;
        self.segments.clear();
        self.delete_vectors.clear();
        if merged.num_rows() > 0 {
            let seg = Segment::build(&self.schema, &merged, self.options.compress)?;
            if seg.num_rows() > 0 {
                self.adopt_segment_unlogged(seg);
            }
        }
        Ok(())
    }

    /// Scans the table, returning one batch per live segment plus one for the
    /// WOS. `projection` selects columns; `predicates` are used for zone-map
    /// pruning *and* applied to rows.
    ///
    /// This is the eager form of [`Table::scan_cursor`]: it drains the cursor
    /// immediately, so every segment is decoded before the call returns.
    /// Callers that hold a lock on this table should prefer snapshotting a
    /// cursor and decoding after the lock is dropped.
    pub fn scan(
        &self,
        projection: Option<&[usize]>,
        predicates: &[ColumnPredicate],
    ) -> StorageResult<Vec<RecordBatch>> {
        Ok(self.scan_with_rowids(projection, predicates)?.into_iter().map(|(b, _)| b).collect())
    }

    /// Like [`Table::scan`] but also returns each row's stable rowid, for
    /// DELETE/UPDATE execution.
    pub fn scan_with_rowids(
        &self,
        projection: Option<&[usize]>,
        predicates: &[ColumnPredicate],
    ) -> StorageResult<Vec<(RecordBatch, Vec<u64>)>> {
        let mut cursor = self.scan_cursor(projection, predicates)?;
        let mut out = Vec::new();
        while let Some(item) = cursor.next_with_rowids()? {
            out.push(item);
        }
        Ok(out)
    }

    /// Snapshots a pull-based [`ScanCursor`] over the table's current
    /// contents. The snapshot is cheap — the segment list is `Arc`-cloned,
    /// delete vectors are copied, and only the (bounded) WOS rows are
    /// materialized — so a caller holding the catalog's table lock can take
    /// the cursor and **drop the lock before decoding anything**: all the
    /// expensive per-segment decode work happens on
    /// [`ScanCursor::next_batch`] / [`ScanCursor::next_with_rowids`] pulls,
    /// without blocking writers. Zone-map pruning fires lazily per pull and
    /// bumps the same [`Table::segments_pruned`] counter as the eager scan
    /// (the counter cell is shared with the table handle).
    ///
    /// The cursor observes the table as of the snapshot: rows appended or
    /// deleted afterwards are invisible to it.
    pub fn scan_cursor(
        &self,
        projection: Option<&[usize]>,
        predicates: &[ColumnPredicate],
    ) -> StorageResult<ScanCursor> {
        let proj: Vec<usize> = match projection {
            Some(p) => p.to_vec(),
            None => (0..self.schema.len()).collect(),
        };
        let out_schema = self.schema.project(&proj);

        // WOS rows are row-oriented and bounded by the moveout threshold, so
        // they are the one part copied out eagerly (they would have to be
        // copied to survive the lock anyway).
        let wos = if self.wos.is_empty() {
            None
        } else {
            let mut builders: Vec<ColumnBuilder> =
                proj.iter().map(|&ci| ColumnBuilder::new(self.schema.field(ci).dtype)).collect();
            let mut rowids = Vec::new();
            'wos_rows: for (r, row) in self.wos.iter().enumerate() {
                for p in predicates {
                    if !p.matches(&row[p.column]) {
                        continue 'wos_rows;
                    }
                }
                for (b, &ci) in builders.iter_mut().zip(&proj) {
                    b.push(row[ci].clone())?;
                }
                rowids.push(rowid(WOS_SEGMENT, r as u32));
            }
            if rowids.is_empty() {
                None
            } else {
                let cols: Vec<Column> = builders.into_iter().map(|b| b.finish()).collect();
                Some((RecordBatch::new(out_schema.clone(), cols)?, rowids))
            }
        };

        Ok(ScanCursor {
            out_schema,
            proj,
            predicates: predicates.to_vec(),
            segments: self
                .segments
                .iter()
                .zip(&self.delete_vectors)
                .enumerate()
                .map(|(si, (seg, dels))| (si as u32, seg.clone(), dels.clone()))
                .collect(),
            pos: 0,
            wos,
            pruned: self.segments_pruned.clone(),
            blocks_pruned: self.blocks_pruned.clone(),
            bytes_decoded: self.bytes_decoded.clone(),
        })
    }

    /// Deletes rows by rowid (as returned from [`Table::scan_with_rowids`]).
    /// Returns the number of rows deleted.
    pub fn delete_rowids(&mut self, rowids: &[u64]) -> StorageResult<usize> {
        if !rowids.is_empty() {
            if let Some(w) = &self.wal {
                w.log_data(&self.name, &wal::payload_delete_rowids(&self.name, rowids))?;
            }
        }
        Ok(self.delete_rowids_unlogged(rowids))
    }

    /// Apply half of [`Table::delete_rowids`]. Shared with replay.
    pub(crate) fn delete_rowids_unlogged(&mut self, rowids: &[u64]) -> usize {
        let mut wos_dead: Vec<u32> = Vec::new();
        let mut n = 0usize;
        for &id in rowids {
            let (seg, row) = unpack_rowid(id);
            if seg == WOS_SEGMENT {
                wos_dead.push(row);
            } else if let Some(dv) = self.delete_vectors.get_mut(seg as usize) {
                if (row as usize) < dv.len() && !dv.get(row as usize) {
                    dv.set(row as usize, true);
                    n += 1;
                }
            }
        }
        if !wos_dead.is_empty() {
            wos_dead.sort_unstable();
            wos_dead.dedup();
            n += wos_dead.len();
            let dead: std::collections::HashSet<u32> = wos_dead.into_iter().collect();
            let mut idx = 0u32;
            self.wos.retain(|_| {
                let keep = !dead.contains(&idx);
                idx += 1;
                keep
            });
        }
        n
    }

    /// Updates rows in place: for each `(rowid, new_row)`, deletes the old row
    /// and inserts the new one. Returns the number of rows updated.
    pub fn update_rows(&mut self, updates: Vec<(u64, Row)>) -> StorageResult<usize> {
        let mut checked = Vec::with_capacity(updates.len());
        for (id, row) in updates {
            checked.push((id, self.check_row(row)?));
        }
        if !checked.is_empty() {
            if let Some(w) = &self.wal {
                w.log_data(&self.name, &wal::payload_update_rows(&self.name, &checked))?;
            }
        }
        self.update_rows_unlogged(checked)
    }

    /// Apply half of [`Table::update_rows`] (delete + re-insert of
    /// already-validated rows). Shared with replay.
    pub(crate) fn update_rows_unlogged(
        &mut self,
        updates: Vec<(u64, Row)>,
    ) -> StorageResult<usize> {
        let ids: Vec<u64> = updates.iter().map(|(id, _)| *id).collect();
        let n = self.delete_rowids_unlogged(&ids);
        for (_, row) in updates {
            self.insert_row_unlogged(row)?;
        }
        Ok(n)
    }

    /// Removes all rows.
    pub fn truncate(&mut self) -> StorageResult<()> {
        if let Some(w) = &self.wal {
            w.log_data(&self.name, &wal::payload_truncate(&self.name))?;
        }
        self.truncate_unlogged();
        Ok(())
    }

    /// Apply half of [`Table::truncate`]. Shared with replay.
    pub(crate) fn truncate_unlogged(&mut self) {
        self.wos.clear();
        self.segments.clear();
        self.delete_vectors.clear();
    }

    /// ROS segment handles (for stats, benches and persistence). Call
    /// [`SegmentHandle::read`] to pin a handle and reach the full
    /// [`Segment`] API (reloading it from its spill image if evicted).
    pub fn segments(&self) -> &[SegmentHandle] {
        &self.segments
    }

    /// Per-segment delete vectors.
    pub fn delete_vectors(&self) -> &[Bitmap] {
        &self.delete_vectors
    }

    /// Rows currently buffered in the WOS.
    pub fn wos(&self) -> &[Row] {
        &self.wos
    }
}

/// A pull-based scan over a [`Table`] snapshot: one
/// (zone-map-pruned, delete-vector-filtered, predicate-filtered) batch per
/// live segment, then one batch for the WOS.
///
/// Created by [`Table::scan_cursor`]. The cursor owns its snapshot
/// (`Arc`-cloned segments, copied delete vectors, materialized WOS rows), so
/// it holds **no lock**: segment decode — the expensive part of a scan —
/// happens on each [`next_batch`](Self::next_batch) pull, after the caller
/// has released the table lock, and the consumer's transient footprint is
/// one in-flight batch instead of the whole table. Concatenating every
/// pulled batch reproduces the eager [`Table::scan`] output bitwise (the
/// eager scan is implemented by draining this cursor).
#[derive(Debug)]
pub struct ScanCursor {
    out_schema: Arc<Schema>,
    proj: Vec<usize>,
    predicates: Vec<ColumnPredicate>,
    /// `(segment index, segment handle, delete-vector snapshot)` per ROS
    /// segment. Holding the handles keeps the underlying pool entries — and
    /// their reloadability — alive for the cursor's lifetime; each pull
    /// pins its segment only for the duration of the decode, so a paused
    /// cursor's segments stay evictable.
    segments: Vec<(u32, SegmentHandle, Bitmap)>,
    pos: usize,
    /// The filtered WOS batch (pulled last), if any rows survived.
    wos: Option<(RecordBatch, Vec<u64>)>,
    /// The owning table handle's pruning counter (shared so cursor-observed
    /// prunes and eager-scan prunes land on the same gauge).
    pruned: Arc<vertexica_common::sync::AtomicU64>,
    /// Shared per-block pruning counter (see [`Table::blocks_pruned`]).
    blocks_pruned: Arc<vertexica_common::sync::AtomicU64>,
    /// Shared decoded-bytes gauge (see [`Table::bytes_decoded`]).
    bytes_decoded: Arc<vertexica_common::sync::AtomicU64>,
}

impl ScanCursor {
    /// Schema of every batch this cursor yields (the projected table schema).
    pub fn schema(&self) -> &Arc<Schema> {
        &self.out_schema
    }

    /// Segments not yet pulled (upper bound on remaining ROS batches; some
    /// may still be pruned or filtered to nothing).
    pub fn segments_remaining(&self) -> usize {
        self.segments.len() - self.pos
    }

    /// Pulls the next non-empty batch, or `None` at end of scan.
    pub fn next_batch(&mut self) -> StorageResult<Option<RecordBatch>> {
        Ok(self.next_with_rowids()?.map(|(b, _)| b))
    }

    /// Pulls the next non-empty batch along with each row's stable rowid.
    ///
    /// Within a surviving segment, pushed-down predicates are evaluated
    /// **block-wise**: each [`BLOCK_ROWS`]-row block is first checked against
    /// its per-block zone maps, pruned blocks are never decoded (counted on
    /// the shared [`Table::blocks_pruned`] gauge), and only surviving blocks
    /// are partially decoded via [`EncodedColumn::decode_range`]. The segment
    /// still yields at most one batch, identical to a full decode + row
    /// filter — a pruned block's min/max proves it holds no matching row, so
    /// a selective point predicate's decode cost is proportional to matching
    /// blocks, not segments.
    pub fn next_with_rowids(&mut self) -> StorageResult<Option<(RecordBatch, Vec<u64>)>> {
        use vertexica_common::sync::Ordering::Relaxed;
        while self.pos < self.segments.len() {
            let (si, handle, dels) = &self.segments[self.pos];
            self.pos += 1;
            // Zone-map pruning: skip the segment without decoding anything.
            // The handle caches the per-segment maps, so pruning an evicted
            // segment never reloads it from disk.
            if self.predicates.iter().any(|p| !p.maybe_in(handle.zone_map(p.column))) {
                self.pruned.fetch_add(1, Relaxed);
                continue;
            }
            // Pin the segment (reloading it if evicted) for this pull only.
            let seg = handle.read()?;
            if self.predicates.is_empty() {
                // No predicate to localize: decode columns whole (a plain
                // column is an Arc clone) and only filter deleted rows.
                let mut keep: Vec<u32> = Vec::with_capacity(seg.num_rows());
                for r in 0..seg.num_rows() {
                    if !dels.get(r) {
                        keep.push(r as u32);
                    }
                }
                if keep.is_empty() {
                    continue;
                }
                let all = keep.len() == seg.num_rows();
                let indices: Vec<usize> = keep.iter().map(|&r| r as usize).collect();
                let mut cols = Vec::with_capacity(self.proj.len());
                for &ci in &self.proj {
                    let full = seg.decode_column(ci)?;
                    self.bytes_decoded.fetch_add(full.estimated_bytes() as u64, Relaxed);
                    cols.push(if all { full } else { full.take(&indices) });
                }
                let rowids: Vec<u64> = keep.iter().map(|&r| rowid(*si, r)).collect();
                return Ok(Some((RecordBatch::new(self.out_schema.clone(), cols)?, rowids)));
            }
            // Distinct predicate columns, in first-use order.
            let mut pred_col_idx: Vec<usize> = Vec::new();
            for p in &self.predicates {
                if !pred_col_idx.contains(&p.column) {
                    pred_col_idx.push(p.column);
                }
            }
            // Block-granular partial decode: prune blocks by their zone maps,
            // decode predicate columns only inside surviving blocks, filter.
            let mut live: Vec<LiveBlock> = Vec::new();
            let mut keep: Vec<u32> = Vec::new();
            for b in 0..seg.num_blocks() {
                if self.predicates.iter().any(|p| !p.maybe_in(seg.block_zone_map(p.column, b))) {
                    self.blocks_pruned.fetch_add(1, Relaxed);
                    continue;
                }
                let (start, len) = seg.block_range(b);
                let mut pred_cols: Vec<(usize, Column)> = Vec::with_capacity(pred_col_idx.len());
                for &c in &pred_col_idx {
                    let col = seg.decode_column_range(c, start, len)?;
                    self.bytes_decoded.fetch_add(col.estimated_bytes() as u64, Relaxed);
                    pred_cols.push((c, col));
                }
                let mut keep_local: Vec<usize> = Vec::with_capacity(len);
                'rows: for r in 0..len {
                    if dels.get(start + r) {
                        continue;
                    }
                    for p in &self.predicates {
                        let col = &pred_cols.iter().find(|(c, _)| *c == p.column).unwrap().1;
                        if !p.matches(&col.value(r)) {
                            continue 'rows;
                        }
                    }
                    keep_local.push(r);
                    keep.push((start + r) as u32);
                }
                if !keep_local.is_empty() {
                    live.push(LiveBlock { start, len, keep_local, pred_cols });
                }
            }
            if keep.is_empty() {
                continue;
            }
            let mut cols = Vec::with_capacity(self.proj.len());
            for &ci in &self.proj {
                let mut pieces: Vec<Column> = Vec::with_capacity(live.len());
                for lb in &live {
                    // Reuse the predicate decode when the projection wants
                    // the same column; otherwise partially decode this block.
                    let col = match lb.pred_cols.iter().find(|(c, _)| *c == ci) {
                        Some((_, c)) => c.clone(),
                        None => {
                            let c = seg.decode_column_range(ci, lb.start, lb.len)?;
                            self.bytes_decoded.fetch_add(c.estimated_bytes() as u64, Relaxed);
                            c
                        }
                    };
                    pieces.push(if lb.keep_local.len() == lb.len {
                        col
                    } else {
                        col.take(&lb.keep_local)
                    });
                }
                cols.push(if pieces.len() == 1 {
                    pieces.pop().expect("one piece")
                } else {
                    Column::concat(&pieces)?
                });
            }
            let rowids: Vec<u64> = keep.iter().map(|&r| rowid(*si, r)).collect();
            return Ok(Some((RecordBatch::new(self.out_schema.clone(), cols)?, rowids)));
        }
        Ok(self.wos.take())
    }
}

/// A segment block that survived per-block zone-map pruning: its row range,
/// the locally-surviving row offsets, and the predicate columns already
/// partially decoded for it (reused by the projection gather).
struct LiveBlock {
    start: usize,
    len: usize,
    keep_local: Vec<usize>,
    pred_cols: Vec<(usize, Column)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Field};

    fn edge_schema() -> Arc<Schema> {
        Schema::new(vec![
            Field::not_null("src", DataType::Int),
            Field::not_null("dst", DataType::Int),
            Field::new("weight", DataType::Float),
        ])
    }

    fn small_table() -> Table {
        let mut t = Table::new("edge", edge_schema(), TableOptions::default());
        for (s, d) in [(0i64, 1i64), (0, 2), (1, 2), (2, 0)] {
            t.insert_row(vec![Value::Int(s), Value::Int(d), Value::Float(1.0)]).unwrap();
        }
        t
    }

    #[test]
    fn insert_and_count() {
        let t = small_table();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.wos_rows(), 4);
        assert_eq!(t.num_segments(), 0);
    }

    #[test]
    fn moveout_flushes_wos() {
        let mut t = small_table();
        t.moveout().unwrap();
        assert_eq!(t.wos_rows(), 0);
        assert_eq!(t.num_segments(), 1);
        assert_eq!(t.num_rows(), 4);
    }

    #[test]
    fn auto_moveout_at_threshold() {
        let mut t =
            Table::new("t", edge_schema(), TableOptions::default().with_moveout_threshold(2));
        for i in 0..5i64 {
            t.insert_row(vec![Value::Int(i), Value::Int(i + 1), Value::Null]).unwrap();
        }
        assert_eq!(t.num_segments(), 2);
        assert_eq!(t.wos_rows(), 1);
        assert_eq!(t.num_rows(), 5);
    }

    #[test]
    fn moveout_sorts_by_sort_key() {
        let mut t = Table::new("t", edge_schema(), TableOptions::default().sorted_by(vec![0]));
        for s in [3i64, 1, 2, 0] {
            t.insert_row(vec![Value::Int(s), Value::Int(0), Value::Null]).unwrap();
        }
        t.moveout().unwrap();
        let batches = t.scan(Some(&[0]), &[]).unwrap();
        let vals: Vec<Value> = batches[0].column(0).iter().collect();
        assert_eq!(vals, vec![Value::Int(0), Value::Int(1), Value::Int(2), Value::Int(3)]);
    }

    #[test]
    fn scan_includes_wos_and_ros() {
        let mut t = small_table();
        t.moveout().unwrap();
        t.insert_row(vec![Value::Int(9), Value::Int(9), Value::Null]).unwrap();
        let batches = t.scan(None, &[]).unwrap();
        assert_eq!(RecordBatch::total_rows(&batches), 5);
        assert_eq!(batches.len(), 2); // one ROS segment + WOS
    }

    #[test]
    fn scan_projection() {
        let t = small_table();
        let batches = t.scan(Some(&[1]), &[]).unwrap();
        assert_eq!(batches[0].num_columns(), 1);
        assert_eq!(batches[0].schema().fields[0].name, "dst");
    }

    #[test]
    fn scan_predicate_filters_rows() {
        let mut t = small_table();
        t.moveout().unwrap();
        let pred = ColumnPredicate::new(0, PredicateOp::Eq, Value::Int(0));
        let batches = t.scan(None, &[pred]).unwrap();
        assert_eq!(RecordBatch::total_rows(&batches), 2);
    }

    #[test]
    fn zone_map_prunes_segments() {
        let mut t =
            Table::new("t", edge_schema(), TableOptions::default().with_moveout_threshold(2));
        // Two segments: src in {0,1} and src in {10,11}.
        for s in [0i64, 1, 10, 11] {
            t.insert_row(vec![Value::Int(s), Value::Int(0), Value::Null]).unwrap();
        }
        assert_eq!(t.num_segments(), 2);
        let pred = ColumnPredicate::new(0, PredicateOp::Gt, Value::Int(5));
        let with_ids = t.scan_with_rowids(None, &[pred]).unwrap();
        // Only the second segment contributes.
        assert_eq!(with_ids.len(), 1);
        assert_eq!(with_ids[0].0.num_rows(), 2);
    }

    #[test]
    fn delete_by_rowid_ros_and_wos() {
        let mut t = small_table();
        t.moveout().unwrap();
        t.insert_row(vec![Value::Int(7), Value::Int(8), Value::Null]).unwrap();
        let scans = t.scan_with_rowids(None, &[]).unwrap();
        let all_ids: Vec<u64> = scans.iter().flat_map(|(_, ids)| ids.clone()).collect();
        assert_eq!(all_ids.len(), 5);
        let n = t.delete_rowids(&all_ids[..2]).unwrap();
        assert_eq!(n, 2);
        assert_eq!(t.num_rows(), 3);
        // Deleting the same ROS rowids again is a no-op.
        let n2 = t.delete_rowids(&all_ids[..2]).unwrap();
        assert_eq!(n2, 0);
    }

    #[test]
    fn update_rows_replaces_values() {
        let mut t = small_table();
        t.moveout().unwrap();
        let pred = ColumnPredicate::new(0, PredicateOp::Eq, Value::Int(2));
        let scans = t.scan_with_rowids(None, &[pred]).unwrap();
        let (batch, ids) = &scans[0];
        assert_eq!(batch.num_rows(), 1);
        let updated = t
            .update_rows(vec![(ids[0], vec![Value::Int(2), Value::Int(99), Value::Float(5.0)])])
            .unwrap();
        assert_eq!(updated, 1);
        let pred = ColumnPredicate::new(1, PredicateOp::Eq, Value::Int(99));
        let found = t.scan(None, &[pred]).unwrap();
        assert_eq!(RecordBatch::total_rows(&found), 1);
    }

    #[test]
    fn mergeout_compacts() {
        let mut t =
            Table::new("t", edge_schema(), TableOptions::default().with_moveout_threshold(1));
        for i in 0..4i64 {
            t.insert_row(vec![Value::Int(i), Value::Int(0), Value::Null]).unwrap();
        }
        assert_eq!(t.num_segments(), 4);
        let scans = t.scan_with_rowids(None, &[]).unwrap();
        let first_id = scans[0].1[0];
        t.delete_rowids(&[first_id]).unwrap();
        t.mergeout().unwrap();
        assert_eq!(t.num_segments(), 1);
        assert_eq!(t.num_rows(), 3);
        assert!(t.delete_vectors()[0].count_ones() == 0);
    }

    #[test]
    fn nullability_enforced() {
        let mut t = small_table();
        let r = t.insert_row(vec![Value::Null, Value::Int(1), Value::Null]);
        assert!(matches!(r, Err(StorageError::NullViolation(_))));
    }

    #[test]
    fn arity_enforced() {
        let mut t = small_table();
        assert!(t.insert_row(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn coercion_on_insert() {
        let mut t = small_table();
        t.insert_row(vec![Value::Int(5), Value::Int(6), Value::Int(2)]).unwrap();
        let pred = ColumnPredicate::new(0, PredicateOp::Eq, Value::Int(5));
        let batches = t.scan(None, &[pred]).unwrap();
        assert_eq!(batches[0].row(0)[2], Value::Float(2.0));
    }

    #[test]
    fn append_batch_creates_segment() {
        let mut t = Table::new("t", edge_schema(), TableOptions::default());
        let batch = RecordBatch::from_rows(
            edge_schema(),
            &[vec![Value::Int(1), Value::Int(2), Value::Float(0.5)]],
        )
        .unwrap();
        t.append_batch(&batch).unwrap();
        assert_eq!(t.num_segments(), 1);
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn build_and_adopt_segment_off_table() {
        let schema = edge_schema();
        let batch = RecordBatch::from_rows(
            schema.clone(),
            &[
                vec![Value::Int(1), Value::Int(2), Value::Int(3)], // Int weight coerces to Float
                vec![Value::Int(4), Value::Int(5), Value::Null],
            ],
        )
        .unwrap();
        // Built with no table in hand (as a pool worker would).
        let seg = Segment::build(&schema, &batch, false).unwrap();
        assert_eq!(seg.num_rows(), 2);
        let mut t = Table::new("t", schema, TableOptions::default());
        t.adopt_segment(seg).unwrap();
        assert_eq!(t.num_segments(), 1);
        assert_eq!(t.num_rows(), 2);
        let rows = t.scan(None, &[]).unwrap()[0].rows();
        assert_eq!(rows[0][2], Value::Float(3.0));
    }

    #[test]
    fn adopt_segment_validates_shape() {
        let narrow = Schema::new(vec![Field::new("only", DataType::Int)]);
        let batch = RecordBatch::from_rows(narrow.clone(), &[vec![Value::Int(1)]]).unwrap();
        let seg = Segment::build(&narrow, &batch, false).unwrap();
        let mut t = Table::new("t", edge_schema(), TableOptions::default());
        assert!(matches!(t.adopt_segment(seg), Err(StorageError::ArityMismatch { .. })));

        let wrong_type = Schema::new(vec![
            Field::new("src", DataType::Str),
            Field::new("dst", DataType::Str),
            Field::new("weight", DataType::Str),
        ]);
        let batch = RecordBatch::from_rows(
            wrong_type.clone(),
            &[vec![Value::Str("a".into()), Value::Str("b".into()), Value::Str("c".into())]],
        )
        .unwrap();
        let seg = Segment::build(&wrong_type, &batch, false).unwrap();
        assert!(matches!(t.adopt_segment(seg), Err(StorageError::TypeMismatch { .. })));

        // Empty segments are silently dropped.
        let empty =
            Segment::build(&edge_schema(), &RecordBatch::empty(edge_schema()), false).unwrap();
        t.adopt_segment(empty).unwrap();
        assert_eq!(t.num_segments(), 0);
    }

    #[test]
    fn truncate_empties() {
        let mut t = small_table();
        t.moveout().unwrap();
        t.truncate().unwrap();
        assert_eq!(t.num_rows(), 0);
        assert!(t.scan(None, &[]).unwrap().is_empty());
    }

    #[test]
    fn predicate_matches_null_is_false() {
        let p = ColumnPredicate::new(0, PredicateOp::Eq, Value::Int(1));
        assert!(!p.matches(&Value::Null));
    }

    #[test]
    fn scan_cursor_matches_eager_scan_batches() {
        let mut t =
            Table::new("t", edge_schema(), TableOptions::default().with_moveout_threshold(3));
        for i in 0..10i64 {
            t.insert_row(vec![Value::Int(i), Value::Int(i + 1), Value::Float(i as f64)]).unwrap();
        }
        // 3 ROS segments + 1 WOS row; delete one ROS row.
        let first_id = t.scan_with_rowids(None, &[]).unwrap()[0].1[0];
        t.delete_rowids(&[first_id]).unwrap();
        let pred = ColumnPredicate::new(0, PredicateOp::Lt, Value::Int(8));
        let eager = t.scan(None, std::slice::from_ref(&pred)).unwrap();
        let mut cursor = t.scan_cursor(None, &[pred]).unwrap();
        let mut pulled = Vec::new();
        while let Some(b) = cursor.next_batch().unwrap() {
            pulled.push(b);
        }
        assert_eq!(eager.len(), pulled.len());
        for (e, p) in eager.iter().zip(&pulled) {
            assert_eq!(e.rows(), p.rows());
        }
    }

    #[test]
    fn scan_cursor_snapshot_ignores_later_writes() {
        let mut t = small_table();
        t.moveout().unwrap();
        let mut cursor = t.scan_cursor(None, &[]).unwrap();
        // Mutations after the snapshot are invisible to the open cursor.
        t.insert_row(vec![Value::Int(42), Value::Int(43), Value::Null]).unwrap();
        let all_ids: Vec<u64> = t
            .scan_with_rowids(None, &[])
            .unwrap()
            .iter()
            .flat_map(|(_, ids)| ids.clone())
            .collect();
        t.delete_rowids(&all_ids).unwrap();
        assert_eq!(t.num_rows(), 0);
        let mut rows = 0;
        while let Some(b) = cursor.next_batch().unwrap() {
            rows += b.num_rows();
        }
        assert_eq!(rows, 4, "cursor must see exactly the snapshot contents");
    }

    #[test]
    fn cursor_and_eager_scan_prune_identically() {
        let mut t =
            Table::new("t", edge_schema(), TableOptions::default().with_moveout_threshold(2));
        // Three segments: src in {0,1}, {10,11}, {20,21}.
        for s in [0i64, 1, 10, 11, 20, 21] {
            t.insert_row(vec![Value::Int(s), Value::Int(0), Value::Null]).unwrap();
        }
        assert_eq!(t.num_segments(), 3);
        let pred = ColumnPredicate::new(0, PredicateOp::Gt, Value::Int(15));

        let before = t.segments_pruned();
        let eager = t.scan(None, std::slice::from_ref(&pred)).unwrap();
        let eager_pruned = t.segments_pruned() - before;
        assert_eq!(eager_pruned, 2);

        let before = t.segments_pruned();
        let mut cursor = t.scan_cursor(None, &[pred]).unwrap();
        let mut pulled = Vec::new();
        while let Some(b) = cursor.next_batch().unwrap() {
            pulled.push(b);
        }
        let cursor_pruned = t.segments_pruned() - before;
        assert_eq!(
            cursor_pruned, eager_pruned,
            "zone-map pruning must fire identically through the cursor"
        );
        assert_eq!(RecordBatch::total_rows(&eager), RecordBatch::total_rows(&pulled));
    }

    #[test]
    fn cursor_prune_counts_after_lock_is_dropped() {
        // The counter cell is shared: prunes observed while pulling a cursor
        // whose table handle (lock guard in real use) is long gone still land
        // on the table's gauge.
        let mut t =
            Table::new("t", edge_schema(), TableOptions::default().with_moveout_threshold(2));
        for s in [0i64, 1, 10, 11] {
            t.insert_row(vec![Value::Int(s), Value::Int(0), Value::Null]).unwrap();
        }
        let pred = ColumnPredicate::new(0, PredicateOp::Gt, Value::Int(5));
        let mut cursor = t.scan_cursor(None, &[pred]).unwrap();
        assert_eq!(t.segments_pruned(), 0, "pruning is lazy: nothing pruned before a pull");
        while cursor.next_batch().unwrap().is_some() {}
        assert_eq!(t.segments_pruned(), 1);
    }

    fn int_table_segment(n: usize) -> Table {
        let schema =
            Schema::new(vec![Field::not_null("k", DataType::Int), Field::new("v", DataType::Int)]);
        let rows: Vec<Row> =
            (0..n).map(|i| vec![Value::Int(i as i64), Value::Int((i % 3) as i64)]).collect();
        let batch = RecordBatch::from_rows(schema.clone(), &rows).unwrap();
        let mut t = Table::new("t", schema, TableOptions::default());
        t.append_batch(&batch).unwrap();
        t
    }

    #[test]
    fn bulk_load_carries_per_block_zone_maps() {
        let t = int_table_segment(BLOCK_ROWS * 3 + 17);
        let seg = t.segments()[0].read().unwrap();
        assert_eq!(seg.num_blocks(), 4);
        for b in 0..seg.num_blocks() {
            let (start, len) = seg.block_range(b);
            let zm = seg.block_zone_map(0, b);
            assert_eq!(zm.min, Value::Int(start as i64));
            assert_eq!(zm.max, Value::Int((start + len - 1) as i64));
            assert_eq!(zm.null_count, 0);
        }
        // The last block is the 17-row remainder.
        assert_eq!(seg.block_range(3), (BLOCK_ROWS * 3, 17));
        // Single-block segments answer block queries from the segment map.
        let small = int_table_segment(10);
        let seg = small.segments()[0].read().unwrap();
        assert_eq!(seg.num_blocks(), 1);
        assert_eq!(seg.block_zone_map(0, 0).max, Value::Int(9));
    }

    #[test]
    fn selective_scan_prunes_blocks_and_decodes_less() {
        let t = int_table_segment(BLOCK_ROWS * 4);
        // Baseline: unpredicated scan decodes the full segment.
        let before = t.bytes_decoded();
        t.scan(None, &[]).unwrap();
        let full_bytes = t.bytes_decoded() - before;
        assert!(full_bytes > 0);

        // A point predicate falls inside exactly one block.
        let pred = ColumnPredicate::new(0, PredicateOp::Eq, Value::Int(5));
        let (pruned_before, bytes_before) = (t.blocks_pruned(), t.bytes_decoded());
        let got = t.scan(None, std::slice::from_ref(&pred)).unwrap();
        assert_eq!(RecordBatch::total_rows(&got), 1);
        assert_eq!(got[0].row(0)[0], Value::Int(5));
        assert_eq!(t.blocks_pruned() - pruned_before, 3);
        let partial_bytes = t.bytes_decoded() - bytes_before;
        assert!(
            partial_bytes < full_bytes,
            "partial decode ({partial_bytes}B) must stay below full-segment decode ({full_bytes}B)"
        );
    }

    #[test]
    fn block_pruning_never_drops_matching_rows() {
        // Matches placed at every block boundary (first and last row of each
        // block): an off-by-one in block skipping would drop them.
        let n = BLOCK_ROWS * 3;
        let t = int_table_segment(n);
        for target in [0, BLOCK_ROWS - 1, BLOCK_ROWS, 2 * BLOCK_ROWS - 1, 2 * BLOCK_ROWS, n - 1] {
            let pred = ColumnPredicate::new(0, PredicateOp::Eq, Value::Int(target as i64));
            let got = t.scan(None, std::slice::from_ref(&pred)).unwrap();
            assert_eq!(RecordBatch::total_rows(&got), 1, "row {target} was dropped");
            assert_eq!(got[0].row(0)[0], Value::Int(target as i64));
        }
        // A range predicate spanning a block boundary keeps both sides, in
        // one batch, in segment order.
        let lo = BLOCK_ROWS - 2;
        let preds = [
            ColumnPredicate::new(0, PredicateOp::GtEq, Value::Int(lo as i64)),
            ColumnPredicate::new(0, PredicateOp::Lt, Value::Int((lo + 4) as i64)),
        ];
        let got = t.scan(None, &preds).unwrap();
        assert_eq!(got.len(), 1);
        let ks: Vec<Value> = got[0].column(0).iter().collect();
        assert_eq!(ks, (lo..lo + 4).map(|i| Value::Int(i as i64)).collect::<Vec<_>>());
    }

    #[test]
    fn block_pruning_respects_deletes_and_compression() {
        // Compressed (RLE-friendly) segment: partial decode must honor the
        // delete vector with absolute row addressing.
        let schema = Schema::new(vec![Field::not_null("k", DataType::Int)]);
        let rows: Vec<Row> =
            (0..BLOCK_ROWS * 2).map(|i| vec![Value::Int((i / 64) as i64)]).collect();
        let batch = RecordBatch::from_rows(schema.clone(), &rows).unwrap();
        let mut t = Table::new("t", schema, TableOptions::default().compressed());
        t.append_batch(&batch).unwrap();
        let target = (BLOCK_ROWS + 128) / 64; // lives in block 1 only
        let pred = ColumnPredicate::new(0, PredicateOp::Eq, Value::Int(target as i64));
        let with_ids = t.scan_with_rowids(None, std::slice::from_ref(&pred)).unwrap();
        assert_eq!(with_ids.len(), 1);
        assert_eq!(with_ids[0].0.num_rows(), 64);
        // Delete half the matches; a rescan sees exactly the survivors.
        let doomed: Vec<u64> = with_ids[0].1.iter().copied().take(32).collect();
        assert_eq!(t.delete_rowids(&doomed).unwrap(), 32);
        let again = t.scan(None, std::slice::from_ref(&pred)).unwrap();
        assert_eq!(RecordBatch::total_rows(&again), 32);
    }

    #[test]
    fn compressed_table_roundtrips() {
        let mut t = Table::new(
            "t",
            edge_schema(),
            TableOptions::default().compressed().with_moveout_threshold(8),
        );
        for i in 0..20i64 {
            t.insert_row(vec![Value::Int(i / 10), Value::Int(i), Value::Float(1.0)]).unwrap();
        }
        t.moveout().unwrap();
        let batches = t.scan(None, &[]).unwrap();
        assert_eq!(RecordBatch::total_rows(&batches), 20);
    }
}
