//! Scalar values, data types, fields and schemas.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::error::{StorageError, StorageResult};

/// The engine's scalar type system.
///
/// The paper's graph schema needs 64-bit ids (`Int`), floats (PageRank values,
/// edge weights), strings (edge types, metadata) and binary blobs (encoded
/// vertex/message values — Vertica's `VARBINARY`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Str,
    Blob,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int => "BIGINT",
            DataType::Float => "FLOAT",
            DataType::Str => "VARCHAR",
            DataType::Blob => "VARBINARY",
        };
        f.write_str(s)
    }
}

impl DataType {
    /// Parses the SQL spelling of a type (as produced by `Display`, plus
    /// common aliases).
    pub fn parse(s: &str) -> Option<DataType> {
        match s.to_ascii_uppercase().as_str() {
            "BOOLEAN" | "BOOL" => Some(DataType::Bool),
            "BIGINT" | "INT" | "INTEGER" | "SMALLINT" => Some(DataType::Int),
            "FLOAT" | "DOUBLE" | "REAL" | "DOUBLE PRECISION" | "NUMERIC" => Some(DataType::Float),
            "VARCHAR" | "TEXT" | "STRING" | "CHAR" => Some(DataType::Str),
            "VARBINARY" | "BYTEA" | "BLOB" => Some(DataType::Blob),
            _ => None,
        }
    }
}

/// A dynamically-typed scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Blob(Vec<u8>),
}

impl Value {
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Blob(_) => Some(DataType::Blob),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_blob(&self) -> Option<&[u8]> {
        match self {
            Value::Blob(v) => Some(v),
            _ => None,
        }
    }

    /// Coerces the value to `target`, following SQL-ish implicit casts
    /// (Int ↔ Float; anything → its own type; Null → any).
    pub fn coerce(&self, target: DataType) -> StorageResult<Value> {
        match (self, target) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Bool(_), DataType::Bool)
            | (Value::Int(_), DataType::Int)
            | (Value::Float(_), DataType::Float)
            | (Value::Str(_), DataType::Str)
            | (Value::Blob(_), DataType::Blob) => Ok(self.clone()),
            (Value::Int(v), DataType::Float) => Ok(Value::Float(*v as f64)),
            (Value::Float(v), DataType::Int) => Ok(Value::Int(*v as i64)),
            (Value::Bool(v), DataType::Int) => Ok(Value::Int(*v as i64)),
            _ => Err(StorageError::TypeMismatch {
                expected: target.to_string(),
                found: format!("{self}"),
            }),
        }
    }

    /// Total order used for sorting and zone maps: `Null` sorts first; values
    /// of different types order by type tag; floats use IEEE total order.
    /// `Int` and `Float` compare numerically so mixed arithmetic results sort
    /// sensibly.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Blob(a), Blob(b)) => a.cmp(b),
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    /// SQL equality (`=`): `Null = x` is unknown, represented here as `None`.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Value::Int(a), Value::Float(b)) => Some((*a as f64) == *b),
            (Value::Float(a), Value::Int(b)) => Some(*a == (*b as f64)),
            _ => Some(self == other),
        }
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 2, // numerics compare against each other
        Value::Str(_) => 3,
        Value::Blob(_) => 4,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Blob(v) => write!(f, "0x{}", hex(v)),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Blob(v)
    }
}

/// A named, typed column in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
    pub nullable: bool,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field { name: name.into(), dtype, nullable: true }
    }

    pub fn not_null(name: impl Into<String>, dtype: DataType) -> Self {
        Field { name: name.into(), dtype, nullable: false }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    pub fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Arc<Self> {
        Arc::new(Schema { fields })
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column with the given (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name.eq_ignore_ascii_case(name))
    }

    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Schema restricted to the given column indices (projection).
    pub fn project(&self, indices: &[usize]) -> Arc<Schema> {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datatype_roundtrips_through_display() {
        for dt in [DataType::Bool, DataType::Int, DataType::Float, DataType::Str, DataType::Blob] {
            assert_eq!(DataType::parse(&dt.to_string()), Some(dt));
        }
        assert_eq!(DataType::parse("double"), Some(DataType::Float));
        assert_eq!(DataType::parse("nonsense"), None);
    }

    #[test]
    fn coercion_int_float() {
        assert_eq!(Value::Int(3).coerce(DataType::Float).unwrap(), Value::Float(3.0));
        assert_eq!(Value::Float(3.9).coerce(DataType::Int).unwrap(), Value::Int(3));
        assert_eq!(Value::Null.coerce(DataType::Str).unwrap(), Value::Null);
        assert!(Value::Str("x".into()).coerce(DataType::Int).is_err());
    }

    #[test]
    fn total_cmp_orders_nulls_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(1)), Ordering::Less);
        assert_eq!(Value::Int(1).total_cmp(&Value::Null), Ordering::Greater);
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn total_cmp_mixed_numerics() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(2)), Ordering::Greater);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
    }

    #[test]
    fn sql_eq_null_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Float(1.0)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn schema_lookup_is_case_insensitive() {
        let schema =
            Schema::new(vec![Field::new("Id", DataType::Int), Field::new("name", DataType::Str)]);
        assert_eq!(schema.index_of("id"), Some(0));
        assert_eq!(schema.index_of("NAME"), Some(1));
        assert_eq!(schema.index_of("missing"), None);
    }

    #[test]
    fn schema_projection() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Str),
            Field::new("c", DataType::Float),
        ]);
        let p = schema.project(&[2, 0]);
        assert_eq!(p.fields[0].name, "c");
        assert_eq!(p.fields[1].name, "a");
    }

    #[test]
    fn blob_displays_as_hex() {
        assert_eq!(Value::Blob(vec![0xde, 0xad]).to_string(), "0xdead");
    }
}
