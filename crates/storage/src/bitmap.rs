//! A packed bitset used for validity masks, delete vectors and selections.

/// A fixed-length bitmap. Bit `i` is stored in word `i / 64`, bit `i % 64`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zeros bitmap of length `len`.
    pub fn zeros(len: usize) -> Self {
        Bitmap { words: vec![0; len.div_ceil(64)], len }
    }

    /// All-ones bitmap of length `len`.
    pub fn ones(len: usize) -> Self {
        let mut b = Bitmap { words: vec![u64::MAX; len.div_ceil(64)], len };
        b.mask_tail();
        b
    }

    /// Builds from an iterator of booleans.
    pub fn from_iter_bool(iter: impl IntoIterator<Item = bool>) -> Self {
        let mut b = Bitmap::zeros(0);
        for v in iter {
            b.push(v);
        }
        b
    }

    /// Packs a boolean slice directly into words — the kernel-speed
    /// counterpart of [`Bitmap::from_iter_bool`], used by the vectorized
    /// expression kernels to move between boolean column data and
    /// bitmap-native three-valued logic.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut words = vec![0u64; bits.len().div_ceil(64)];
        for (chunk, word) in bits.chunks(64).zip(words.iter_mut()) {
            let mut w = 0u64;
            for (bit, &b) in chunk.iter().enumerate() {
                w |= (b as u64) << bit;
            }
            *word = w;
        }
        Bitmap { words, len: bits.len() }
    }

    /// Unpacks into one `bool` per bit (inverse of [`Bitmap::from_bools`]).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    fn mask_tail(&mut self) {
        let tail_bits = self.len % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        if v {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Appends a bit.
    pub fn push(&mut self, v: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        if v {
            let i = self.len - 1;
            self.words[i / 64] |= 1 << (i % 64);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of unset bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    pub fn all(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// Bitwise AND of equal-length bitmaps.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            words: self.words.iter().zip(&other.words).map(|(a, b)| a & b).collect(),
            len: self.len,
        }
    }

    /// Bitwise OR of equal-length bitmaps.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            words: self.words.iter().zip(&other.words).map(|(a, b)| a | b).collect(),
            len: self.len,
        }
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Bitmap {
        let mut b = Bitmap { words: self.words.iter().map(|w| !w).collect(), len: self.len };
        b.mask_tail();
        b
    }

    /// `self AND NOT other`.
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            words: self.words.iter().zip(&other.words).map(|(a, b)| a & !b).collect(),
            len: self.len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Bitmap::zeros(70);
        assert_eq!(z.len(), 70);
        assert_eq!(z.count_ones(), 0);
        assert!(!z.any());

        let o = Bitmap::ones(70);
        assert_eq!(o.count_ones(), 70);
        assert!(o.all());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bitmap::zeros(130);
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(63) && !b.get(128));
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn push_extends() {
        let mut b = Bitmap::zeros(0);
        for i in 0..200 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 200);
        assert_eq!(b.count_ones(), (0..200).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn from_bools_roundtrips() {
        let bits: Vec<bool> = (0..130).map(|i| i % 5 == 0 || i % 7 == 3).collect();
        let b = Bitmap::from_bools(&bits);
        assert_eq!(b.len(), 130);
        assert_eq!(b.to_bools(), bits);
        assert_eq!(b, Bitmap::from_iter_bool(bits.iter().copied()));
        assert!(Bitmap::from_bools(&[]).is_empty());
    }

    #[test]
    fn iter_ones_matches_get() {
        let b = Bitmap::from_iter_bool((0..150).map(|i| i % 7 == 0));
        let ones: Vec<usize> = b.iter_ones().collect();
        let expected: Vec<usize> = (0..150).filter(|i| i % 7 == 0).collect();
        assert_eq!(ones, expected);
    }

    #[test]
    fn boolean_algebra() {
        let a = Bitmap::from_iter_bool([true, true, false, false]);
        let b = Bitmap::from_iter_bool([true, false, true, false]);
        assert_eq!(a.and(&b), Bitmap::from_iter_bool([true, false, false, false]));
        assert_eq!(a.or(&b), Bitmap::from_iter_bool([true, true, true, false]));
        assert_eq!(a.not(), Bitmap::from_iter_bool([false, false, true, true]));
        assert_eq!(a.and_not(&b), Bitmap::from_iter_bool([false, true, false, false]));
    }

    #[test]
    fn not_masks_tail_bits() {
        // A NOT on a non-multiple-of-64 bitmap must not set phantom tail bits.
        let b = Bitmap::zeros(65).not();
        assert_eq!(b.count_ones(), 65);
        assert!(b.all());
    }

    #[test]
    fn count_zeros_complements() {
        let b = Bitmap::from_iter_bool((0..100).map(|i| i % 2 == 0));
        assert_eq!(b.count_ones() + b.count_zeros(), 100);
    }
}
