//! Hash partitioning of record batches.
//!
//! This is the mechanism behind the paper's *vertex batching* optimization
//! (§2.3): the table union is hash-partitioned on the vertex id into a fixed
//! number of partitions; each worker UDF then processes one partition,
//! executing the vertex program serially within it. It is also reused by the
//! SQL engine for parallel hash joins and aggregations.

use crate::batch::RecordBatch;
use crate::error::{StorageError, StorageResult};
use vertexica_common::hash::mix64;

/// The partition a single non-null integer key lands in — exactly the row
/// placement [`partition_assignments`] computes for a one-column Int key.
///
/// The parallel apply path uses this to scatter parsed update/message rows
/// (plain `i64` ids, no longer inside a batch) into apply segments that stay
/// consistent with batch-level partitioning.
pub fn int_key_partition(key: i64, num_partitions: usize) -> usize {
    assert!(num_partitions > 0, "num_partitions must be positive");
    // Mirrors Column::hash_combine for an Int column folded into a zero
    // seed: h = mix64(rotl(0, 23) ^ mix64(key)).
    (mix64(mix64(key as u64)) % num_partitions as u64) as usize
}

/// Computes, for every row across `batches`, the target partition in
/// `0..num_partitions` by hashing the `key_columns`.
pub fn partition_assignments(
    batches: &[RecordBatch],
    key_columns: &[usize],
    num_partitions: usize,
) -> Vec<Vec<usize>> {
    assert!(num_partitions > 0, "num_partitions must be positive");
    batches
        .iter()
        .map(|batch| {
            let mut hashes = vec![0u64; batch.num_rows()];
            for &k in key_columns {
                batch.column(k).hash_combine(&mut hashes);
            }
            hashes.iter().map(|h| (h % num_partitions as u64) as usize).collect()
        })
        .collect()
}

/// Splits `batches` into `num_partitions` groups of batches by hashing the
/// key columns. Every input row lands in exactly one output partition; rows
/// with equal keys land in the same partition.
///
/// This is the one-shot (fully materialized) form; callers that produce
/// their input incrementally should use [`StreamingPartitioner`] instead so
/// the unpartitioned input never has to exist in full.
pub fn hash_partition(
    batches: &[RecordBatch],
    key_columns: &[usize],
    num_partitions: usize,
) -> StorageResult<Vec<Vec<RecordBatch>>> {
    let mut partitioner = StreamingPartitioner::new(key_columns.to_vec(), num_partitions);
    for batch in batches {
        partitioner.push(batch)?;
    }
    Ok(partitioner.finish())
}

/// Splits one chunk into per-partition pieces by hashing `key_columns` —
/// the pure scatter step of [`StreamingPartitioner::push`], exposed so
/// concurrent callers (the pipelined superstep dispatcher runs one scatter
/// task per chunk on the worker pool) can hash and copy rows *outside* the
/// lock guarding the shared partitioner, then [`StreamingPartitioner::absorb`]
/// the pieces under it. Only non-empty pieces are returned.
pub fn split_batch(
    batch: &RecordBatch,
    key_columns: &[usize],
    num_partitions: usize,
) -> StorageResult<Vec<(usize, RecordBatch)>> {
    assert!(num_partitions > 0, "num_partitions must be positive");
    if batch.num_rows() == 0 {
        return Ok(Vec::new());
    }
    if num_partitions == 1 {
        return Ok(vec![(0, batch.clone())]);
    }
    // One source of truth for row placement: the same assignment rule as
    // the one-shot path.
    let assign = partition_assignments(std::slice::from_ref(batch), key_columns, num_partitions);
    let mut indices: Vec<Vec<usize>> = vec![Vec::new(); num_partitions];
    for (row, &p) in assign[0].iter().enumerate() {
        indices[p].push(row);
    }
    let mut pieces = Vec::new();
    for (p, idx) in indices.into_iter().enumerate() {
        if !idx.is_empty() {
            pieces.push((p, batch.take(&idx)?));
        }
    }
    Ok(pieces)
}

/// Incremental hash partitioning: feed input one [`RecordBatch`] chunk at a
/// time and the chunk's rows are scattered to their partitions immediately,
/// so the caller can drop each chunk right after pushing it. Compared to
/// [`hash_partition`] on a fully assembled input, peak memory drops from
/// roughly 2× the input (input + its partitioned copy) to 1× plus a single
/// chunk — the streaming half of the superstep hot path.
///
/// Rows with equal keys always land in the same partition, regardless of
/// which chunk carried them.
///
/// # Per-partition completion detection
///
/// A partitioner built with [`StreamingPartitioner::with_expected_rows`]
/// additionally knows, per partition, how many input rows it will
/// eventually receive (the chunk sources declare what they can still touch
/// — in practice a cheap key-column prescan). The moment a partition's last
/// expected row is scattered the partition **seals**: [`absorb`] hands its
/// accumulated batches back to the caller, which can start computing on
/// them while later chunks are still streaming — the heart of the pipelined
/// superstep. Without a plan (or for open-ended sources like the 3-way-join
/// replay, whose row placement isn't known up front) nothing seals until
/// [`drain_unsealed`] is called at end-of-stream.
///
/// [`absorb`]: StreamingPartitioner::absorb
/// [`drain_unsealed`]: StreamingPartitioner::drain_unsealed
#[derive(Debug)]
pub struct StreamingPartitioner {
    key_columns: Vec<usize>,
    partitions: Vec<Vec<RecordBatch>>,
    /// Rows each partition still expects before sealing (`None`: open-ended,
    /// seal only at [`StreamingPartitioner::drain_unsealed`]).
    remaining: Option<Vec<u64>>,
    /// Partitions already handed out by seal or drain; guards double-takes.
    sealed: Vec<bool>,
}

impl StreamingPartitioner {
    /// A partitioner hashing `key_columns` into `num_partitions` outputs,
    /// with no completion plan (partitions never seal early).
    pub fn new(key_columns: Vec<usize>, num_partitions: usize) -> Self {
        assert!(num_partitions > 0, "num_partitions must be positive");
        StreamingPartitioner {
            key_columns,
            partitions: vec![Vec::new(); num_partitions],
            remaining: None,
            sealed: vec![false; num_partitions],
        }
    }

    /// A partitioner that seals each partition the moment its declared row
    /// count has been scattered. `expected_rows[p]` is the total number of
    /// input rows (across all chunks and sources) hashing to partition `p`;
    /// partitions expecting zero rows are sealed (empty) from the start.
    pub fn with_expected_rows(
        key_columns: Vec<usize>,
        num_partitions: usize,
        expected_rows: Vec<u64>,
    ) -> Self {
        assert_eq!(expected_rows.len(), num_partitions, "plan arity must match partitions");
        let mut p = Self::new(key_columns, num_partitions);
        p.sealed = expected_rows.iter().map(|&n| n == 0).collect();
        p.remaining = Some(expected_rows);
        p
    }

    /// The configured number of output partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The key columns rows are hashed on.
    pub fn key_columns(&self) -> &[usize] {
        &self.key_columns
    }

    /// Scatters one input chunk across the partitions (sealing, if a plan
    /// is armed, is reported by [`StreamingPartitioner::absorb`]; `push`
    /// keeps everything accumulated for [`StreamingPartitioner::finish`]).
    pub fn push(&mut self, batch: &RecordBatch) -> StorageResult<()> {
        let pieces = split_batch(batch, &self.key_columns, self.partitions.len())?;
        for (p, piece) in pieces {
            self.partitions[p].push(piece);
        }
        Ok(())
    }

    /// Files pre-split pieces (from [`split_batch`] with this partitioner's
    /// key columns and partition count) and returns every partition that
    /// this call **sealed**: its full accumulated input, moved out. Requires
    /// an expected-rows plan for anything to seal; receiving more rows than
    /// a partition declared is a plan violation and errors out (a silent
    /// excess would mean a compute task already ran on truncated input).
    pub fn absorb(
        &mut self,
        pieces: Vec<(usize, RecordBatch)>,
    ) -> StorageResult<Vec<(usize, Vec<RecordBatch>)>> {
        let mut newly_sealed = Vec::new();
        for (p, piece) in pieces {
            let rows = piece.num_rows() as u64;
            if rows == 0 {
                continue;
            }
            if self.sealed[p] {
                return Err(StorageError::Internal(format!(
                    "partition {p} received {rows} rows after sealing"
                )));
            }
            self.partitions[p].push(piece);
            if let Some(remaining) = &mut self.remaining {
                if remaining[p] < rows {
                    return Err(StorageError::Internal(format!(
                        "partition {p} received {rows} rows but expected only {} more",
                        remaining[p]
                    )));
                }
                remaining[p] -= rows;
                if remaining[p] == 0 {
                    self.sealed[p] = true;
                    newly_sealed.push((p, std::mem::take(&mut self.partitions[p])));
                }
            }
        }
        Ok(newly_sealed)
    }

    /// Seals every remaining partition at end-of-stream, returning the
    /// non-empty ones. This is how open-ended (plan-less) partitions are
    /// dispatched, and how a planned run recovers if a source under-delivers
    /// (the caller decides whether that is an error).
    pub fn drain_unsealed(&mut self) -> Vec<(usize, Vec<RecordBatch>)> {
        let mut drained = Vec::new();
        for p in 0..self.partitions.len() {
            if !self.sealed[p] {
                self.sealed[p] = true;
                let batches = std::mem::take(&mut self.partitions[p]);
                if !batches.is_empty() {
                    drained.push((p, batches));
                }
            }
        }
        drained
    }

    /// True when every partition has been sealed (its input handed out).
    pub fn fully_sealed(&self) -> bool {
        self.sealed.iter().all(|&s| s)
    }

    /// Consumes the partitioner, returning the accumulated partitions.
    pub fn finish(self) -> Vec<Vec<RecordBatch>> {
        self.partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Field, Schema, Value};

    fn batch_with_ids(ids: &[i64]) -> RecordBatch {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("payload", DataType::Int),
        ]);
        let rows: Vec<Vec<Value>> =
            ids.iter().map(|&i| vec![Value::Int(i), Value::Int(i * 10)]).collect();
        RecordBatch::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn every_row_lands_exactly_once() {
        let b = batch_with_ids(&(0..100).collect::<Vec<_>>());
        let parts = hash_partition(&[b], &[0], 7).unwrap();
        let total: usize = parts.iter().flat_map(|p| p.iter().map(|b| b.num_rows())).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn equal_keys_colocate() {
        let b = batch_with_ids(&[5, 5, 5, 9, 9]);
        let parts = hash_partition(&[b], &[0], 4).unwrap();
        // Find where key 5 lives; all three copies must be there.
        let mut count5 = Vec::new();
        for p in &parts {
            let c: usize =
                p.iter().map(|b| b.column(0).iter().filter(|v| *v == Value::Int(5)).count()).sum();
            if c > 0 {
                count5.push(c);
            }
        }
        assert_eq!(count5, vec![3]);
    }

    #[test]
    fn single_partition_passthrough() {
        let b = batch_with_ids(&[1, 2, 3]);
        let parts = hash_partition(&[b], &[0], 1).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0][0].num_rows(), 3);
    }

    #[test]
    fn multiple_input_batches_merge_by_key() {
        let b1 = batch_with_ids(&[1, 2]);
        let b2 = batch_with_ids(&[1, 3]);
        let parts = hash_partition(&[b1, b2], &[0], 8).unwrap();
        // Key 1 appears in exactly one partition, with 2 rows across batches.
        let mut ones = 0;
        for p in &parts {
            let c: usize =
                p.iter().map(|b| b.column(0).iter().filter(|v| *v == Value::Int(1)).count()).sum();
            if c > 0 {
                assert_eq!(c, 2);
                ones += 1;
            }
        }
        assert_eq!(ones, 1);
    }

    #[test]
    fn streaming_chunks_match_one_shot_partitioning() {
        // Pushing chunk-by-chunk must yield exactly the same row placement
        // as partitioning the concatenated input in one shot.
        let chunks: Vec<RecordBatch> = vec![
            batch_with_ids(&(0..40).collect::<Vec<_>>()),
            batch_with_ids(&(40..55).collect::<Vec<_>>()),
            batch_with_ids(&[]),
            batch_with_ids(&(55..90).collect::<Vec<_>>()),
        ];
        let one_shot = hash_partition(&chunks, &[0], 6).unwrap();
        let mut streaming = StreamingPartitioner::new(vec![0], 6);
        for c in &chunks {
            streaming.push(c).unwrap();
        }
        let streamed = streaming.finish();
        assert_eq!(one_shot.len(), streamed.len());
        for (a, b) in one_shot.iter().zip(&streamed) {
            let rows_a: Vec<_> = a.iter().flat_map(|b| b.rows()).collect();
            let rows_b: Vec<_> = b.iter().flat_map(|b| b.rows()).collect();
            assert_eq!(rows_a, rows_b);
        }
    }

    #[test]
    fn int_key_partition_matches_batch_assignments() {
        let keys: Vec<i64> = (-64..64).chain([i64::MIN, i64::MAX, 1 << 40]).collect();
        let batch = {
            let schema = Schema::new(vec![Field::new("k", DataType::Int)]);
            let rows: Vec<Vec<Value>> = keys.iter().map(|&k| vec![Value::Int(k)]).collect();
            RecordBatch::from_rows(schema, &rows).unwrap()
        };
        for parts in [1usize, 2, 7, 16] {
            let assign = partition_assignments(std::slice::from_ref(&batch), &[0], parts);
            for (row, &k) in keys.iter().enumerate() {
                assert_eq!(
                    int_key_partition(k, parts),
                    assign[0][row],
                    "key {k} with {parts} partitions"
                );
            }
        }
    }

    /// Expected-rows plan for a set of chunks: count rows per partition the
    /// same way the scatter will.
    fn row_plan(chunks: &[RecordBatch], parts: usize) -> Vec<u64> {
        let mut plan = vec![0u64; parts];
        for assign in partition_assignments(chunks, &[0], parts) {
            for p in assign {
                plan[p] += 1;
            }
        }
        plan
    }

    #[test]
    fn split_batch_matches_push() {
        let chunks = vec![
            batch_with_ids(&(0..50).collect::<Vec<_>>()),
            batch_with_ids(&(50..77).collect::<Vec<_>>()),
        ];
        let mut pushed = StreamingPartitioner::new(vec![0], 5);
        let mut split = StreamingPartitioner::new(vec![0], 5);
        for c in &chunks {
            pushed.push(c).unwrap();
            for (p, piece) in split_batch(c, &[0], 5).unwrap() {
                split.partitions[p].push(piece);
            }
        }
        let (a, b) = (pushed.finish(), split.finish());
        for (pa, pb) in a.iter().zip(&b) {
            let rows_a: Vec<_> = pa.iter().flat_map(|b| b.rows()).collect();
            let rows_b: Vec<_> = pb.iter().flat_map(|b| b.rows()).collect();
            assert_eq!(rows_a, rows_b);
        }
    }

    #[test]
    fn partitions_seal_exactly_when_their_last_row_lands() {
        let chunks: Vec<RecordBatch> = vec![
            batch_with_ids(&(0..40).collect::<Vec<_>>()),
            batch_with_ids(&(40..70).collect::<Vec<_>>()),
            batch_with_ids(&(70..100).collect::<Vec<_>>()),
        ];
        let parts = 6;
        let plan = row_plan(&chunks, parts);
        // Reference placement from the one-shot path.
        let one_shot = hash_partition(&chunks, &[0], parts).unwrap();

        let mut partitioner =
            StreamingPartitioner::with_expected_rows(vec![0], parts, plan.clone());
        let mut sealed_rows: Vec<Option<Vec<Vec<crate::value::Value>>>> = vec![None; parts];
        let mut seal_chunk: Vec<Option<usize>> = vec![None; parts];
        for (ci, c) in chunks.iter().enumerate() {
            let pieces = split_batch(c, &[0], parts).unwrap();
            for (p, batches) in partitioner.absorb(pieces).unwrap() {
                assert!(sealed_rows[p].is_none(), "partition {p} sealed twice");
                sealed_rows[p] = Some(batches.iter().flat_map(|b| b.rows()).collect());
                seal_chunk[p] = Some(ci);
            }
        }
        // Every non-empty partition sealed (the plan covered all chunks)…
        assert!(partitioner.fully_sealed() || partitioner.drain_unsealed().is_empty());
        for p in 0..parts {
            let expected: Vec<_> = one_shot[p].iter().flat_map(|b| b.rows()).collect();
            if expected.is_empty() {
                assert!(sealed_rows[p].is_none());
                continue;
            }
            // …with exactly the one-shot contents…
            assert_eq!(sealed_rows[p].as_ref().unwrap(), &expected, "partition {p}");
            // …at the chunk carrying its last row, not later.
            let last_touch = partition_assignments(&chunks, &[0], parts)
                .iter()
                .enumerate()
                .filter(|(_, a)| a.contains(&p))
                .map(|(ci, _)| ci)
                .max()
                .unwrap();
            assert_eq!(seal_chunk[p], Some(last_touch), "partition {p} sealed late");
        }
    }

    #[test]
    fn over_receipt_is_a_plan_violation() {
        let chunk = batch_with_ids(&(0..32).collect::<Vec<_>>());
        let parts = 4;
        let mut plan = row_plan(std::slice::from_ref(&chunk), parts);
        // Understate one partition's expectation: it seals early, and the
        // stream then delivers rows to a sealed partition.
        let victim = plan.iter().position(|&n| n > 1).unwrap();
        plan[victim] -= 1;
        let mut partitioner = StreamingPartitioner::with_expected_rows(vec![0], parts, plan);
        let pieces = split_batch(&chunk, &[0], parts).unwrap();
        assert!(partitioner.absorb(pieces).is_err(), "excess rows must not pass silently");
    }

    #[test]
    fn planless_partitioner_seals_only_on_drain() {
        let chunk = batch_with_ids(&(0..64).collect::<Vec<_>>());
        let mut partitioner = StreamingPartitioner::new(vec![0], 4);
        let sealed = partitioner.absorb(split_batch(&chunk, &[0], 4).unwrap()).unwrap();
        assert!(sealed.is_empty(), "no plan, nothing seals early");
        assert!(!partitioner.fully_sealed());
        let drained = partitioner.drain_unsealed();
        let total: usize = drained.iter().flat_map(|(_, bs)| bs.iter().map(|b| b.num_rows())).sum();
        assert_eq!(total, 64);
        assert!(partitioner.fully_sealed());
        // A second drain yields nothing.
        assert!(partitioner.drain_unsealed().is_empty());
    }

    #[test]
    fn zero_expectation_partitions_start_sealed() {
        let mut partitioner = StreamingPartitioner::with_expected_rows(vec![0], 3, vec![0, 5, 0]);
        assert!(!partitioner.fully_sealed());
        assert!(partitioner.drain_unsealed().is_empty(), "empty partitions carry no work");
        assert!(partitioner.fully_sealed());
    }

    #[test]
    fn estimated_bytes_tracks_row_count() {
        let small = batch_with_ids(&[1, 2, 3]);
        let large = batch_with_ids(&(0..1000).collect::<Vec<_>>());
        assert!(small.estimated_bytes() > 0);
        assert!(large.estimated_bytes() > 100 * small.estimated_bytes());
    }

    #[test]
    fn partitions_are_roughly_balanced() {
        let b = batch_with_ids(&(0..10_000).collect::<Vec<_>>());
        let parts = hash_partition(&[b], &[0], 8).unwrap();
        for p in &parts {
            let rows: usize = p.iter().map(|b| b.num_rows()).sum();
            // Expect 1250 ± 40%.
            assert!(rows > 700 && rows < 1800, "partition had {rows} rows");
        }
    }
}
