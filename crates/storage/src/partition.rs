//! Hash partitioning of record batches.
//!
//! This is the mechanism behind the paper's *vertex batching* optimization
//! (§2.3): the table union is hash-partitioned on the vertex id into a fixed
//! number of partitions; each worker UDF then processes one partition,
//! executing the vertex program serially within it. It is also reused by the
//! SQL engine for parallel hash joins and aggregations.

use crate::batch::RecordBatch;
use crate::error::StorageResult;
use vertexica_common::hash::mix64;

/// The partition a single non-null integer key lands in — exactly the row
/// placement [`partition_assignments`] computes for a one-column Int key.
///
/// The parallel apply path uses this to scatter parsed update/message rows
/// (plain `i64` ids, no longer inside a batch) into apply segments that stay
/// consistent with batch-level partitioning.
pub fn int_key_partition(key: i64, num_partitions: usize) -> usize {
    assert!(num_partitions > 0, "num_partitions must be positive");
    // Mirrors Column::hash_combine for an Int column folded into a zero
    // seed: h = mix64(rotl(0, 23) ^ mix64(key)).
    (mix64(mix64(key as u64)) % num_partitions as u64) as usize
}

/// Computes, for every row across `batches`, the target partition in
/// `0..num_partitions` by hashing the `key_columns`.
pub fn partition_assignments(
    batches: &[RecordBatch],
    key_columns: &[usize],
    num_partitions: usize,
) -> Vec<Vec<usize>> {
    assert!(num_partitions > 0, "num_partitions must be positive");
    batches
        .iter()
        .map(|batch| {
            let mut hashes = vec![0u64; batch.num_rows()];
            for &k in key_columns {
                batch.column(k).hash_combine(&mut hashes);
            }
            hashes.iter().map(|h| (h % num_partitions as u64) as usize).collect()
        })
        .collect()
}

/// Splits `batches` into `num_partitions` groups of batches by hashing the
/// key columns. Every input row lands in exactly one output partition; rows
/// with equal keys land in the same partition.
///
/// This is the one-shot (fully materialized) form; callers that produce
/// their input incrementally should use [`StreamingPartitioner`] instead so
/// the unpartitioned input never has to exist in full.
pub fn hash_partition(
    batches: &[RecordBatch],
    key_columns: &[usize],
    num_partitions: usize,
) -> StorageResult<Vec<Vec<RecordBatch>>> {
    let mut partitioner = StreamingPartitioner::new(key_columns.to_vec(), num_partitions);
    for batch in batches {
        partitioner.push(batch)?;
    }
    Ok(partitioner.finish())
}

/// Incremental hash partitioning: feed input one [`RecordBatch`] chunk at a
/// time and the chunk's rows are scattered to their partitions immediately,
/// so the caller can drop each chunk right after pushing it. Compared to
/// [`hash_partition`] on a fully assembled input, peak memory drops from
/// roughly 2× the input (input + its partitioned copy) to 1× plus a single
/// chunk — the streaming half of the superstep hot path.
///
/// Rows with equal keys always land in the same partition, regardless of
/// which chunk carried them.
#[derive(Debug)]
pub struct StreamingPartitioner {
    key_columns: Vec<usize>,
    partitions: Vec<Vec<RecordBatch>>,
}

impl StreamingPartitioner {
    /// A partitioner hashing `key_columns` into `num_partitions` outputs.
    pub fn new(key_columns: Vec<usize>, num_partitions: usize) -> Self {
        assert!(num_partitions > 0, "num_partitions must be positive");
        StreamingPartitioner { key_columns, partitions: vec![Vec::new(); num_partitions] }
    }

    /// The configured number of output partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Scatters one input chunk across the partitions.
    pub fn push(&mut self, batch: &RecordBatch) -> StorageResult<()> {
        if batch.num_rows() == 0 {
            return Ok(());
        }
        let num_partitions = self.partitions.len();
        if num_partitions == 1 {
            self.partitions[0].push(batch.clone());
            return Ok(());
        }
        // One source of truth for row placement: the same assignment rule
        // as the one-shot path.
        let assign =
            partition_assignments(std::slice::from_ref(batch), &self.key_columns, num_partitions);
        let mut indices: Vec<Vec<usize>> = vec![Vec::new(); num_partitions];
        for (row, &p) in assign[0].iter().enumerate() {
            indices[p].push(row);
        }
        for (p, idx) in indices.into_iter().enumerate() {
            if !idx.is_empty() {
                self.partitions[p].push(batch.take(&idx)?);
            }
        }
        Ok(())
    }

    /// Consumes the partitioner, returning the accumulated partitions.
    pub fn finish(self) -> Vec<Vec<RecordBatch>> {
        self.partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Field, Schema, Value};

    fn batch_with_ids(ids: &[i64]) -> RecordBatch {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("payload", DataType::Int),
        ]);
        let rows: Vec<Vec<Value>> =
            ids.iter().map(|&i| vec![Value::Int(i), Value::Int(i * 10)]).collect();
        RecordBatch::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn every_row_lands_exactly_once() {
        let b = batch_with_ids(&(0..100).collect::<Vec<_>>());
        let parts = hash_partition(&[b], &[0], 7).unwrap();
        let total: usize = parts.iter().flat_map(|p| p.iter().map(|b| b.num_rows())).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn equal_keys_colocate() {
        let b = batch_with_ids(&[5, 5, 5, 9, 9]);
        let parts = hash_partition(&[b], &[0], 4).unwrap();
        // Find where key 5 lives; all three copies must be there.
        let mut count5 = Vec::new();
        for p in &parts {
            let c: usize =
                p.iter().map(|b| b.column(0).iter().filter(|v| *v == Value::Int(5)).count()).sum();
            if c > 0 {
                count5.push(c);
            }
        }
        assert_eq!(count5, vec![3]);
    }

    #[test]
    fn single_partition_passthrough() {
        let b = batch_with_ids(&[1, 2, 3]);
        let parts = hash_partition(&[b], &[0], 1).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0][0].num_rows(), 3);
    }

    #[test]
    fn multiple_input_batches_merge_by_key() {
        let b1 = batch_with_ids(&[1, 2]);
        let b2 = batch_with_ids(&[1, 3]);
        let parts = hash_partition(&[b1, b2], &[0], 8).unwrap();
        // Key 1 appears in exactly one partition, with 2 rows across batches.
        let mut ones = 0;
        for p in &parts {
            let c: usize =
                p.iter().map(|b| b.column(0).iter().filter(|v| *v == Value::Int(1)).count()).sum();
            if c > 0 {
                assert_eq!(c, 2);
                ones += 1;
            }
        }
        assert_eq!(ones, 1);
    }

    #[test]
    fn streaming_chunks_match_one_shot_partitioning() {
        // Pushing chunk-by-chunk must yield exactly the same row placement
        // as partitioning the concatenated input in one shot.
        let chunks: Vec<RecordBatch> = vec![
            batch_with_ids(&(0..40).collect::<Vec<_>>()),
            batch_with_ids(&(40..55).collect::<Vec<_>>()),
            batch_with_ids(&[]),
            batch_with_ids(&(55..90).collect::<Vec<_>>()),
        ];
        let one_shot = hash_partition(&chunks, &[0], 6).unwrap();
        let mut streaming = StreamingPartitioner::new(vec![0], 6);
        for c in &chunks {
            streaming.push(c).unwrap();
        }
        let streamed = streaming.finish();
        assert_eq!(one_shot.len(), streamed.len());
        for (a, b) in one_shot.iter().zip(&streamed) {
            let rows_a: Vec<_> = a.iter().flat_map(|b| b.rows()).collect();
            let rows_b: Vec<_> = b.iter().flat_map(|b| b.rows()).collect();
            assert_eq!(rows_a, rows_b);
        }
    }

    #[test]
    fn int_key_partition_matches_batch_assignments() {
        let keys: Vec<i64> = (-64..64).chain([i64::MIN, i64::MAX, 1 << 40]).collect();
        let batch = {
            let schema = Schema::new(vec![Field::new("k", DataType::Int)]);
            let rows: Vec<Vec<Value>> = keys.iter().map(|&k| vec![Value::Int(k)]).collect();
            RecordBatch::from_rows(schema, &rows).unwrap()
        };
        for parts in [1usize, 2, 7, 16] {
            let assign = partition_assignments(std::slice::from_ref(&batch), &[0], parts);
            for (row, &k) in keys.iter().enumerate() {
                assert_eq!(
                    int_key_partition(k, parts),
                    assign[0][row],
                    "key {k} with {parts} partitions"
                );
            }
        }
    }

    #[test]
    fn estimated_bytes_tracks_row_count() {
        let small = batch_with_ids(&[1, 2, 3]);
        let large = batch_with_ids(&(0..1000).collect::<Vec<_>>());
        assert!(small.estimated_bytes() > 0);
        assert!(large.estimated_bytes() > 100 * small.estimated_bytes());
    }

    #[test]
    fn partitions_are_roughly_balanced() {
        let b = batch_with_ids(&(0..10_000).collect::<Vec<_>>());
        let parts = hash_partition(&[b], &[0], 8).unwrap();
        for p in &parts {
            let rows: usize = p.iter().map(|b| b.num_rows()).sum();
            // Expect 1250 ± 40%.
            assert!(rows > 700 && rows < 1800, "partition had {rows} rows");
        }
    }
}
