//! Durability: write-ahead log, segment flushing, checkpointing, recovery.
//!
//! The paper's pitch is that running graph analytics *inside* a relational
//! engine buys the database features graph systems forgo — durability and
//! recovery chief among them (§1). This module is that layer:
//!
//! * **WAL** — every table mutation (WOS appends, segment adoptions, deletes,
//!   updates, truncates, moveouts) and every catalog DDL is appended to an
//!   append-only, length-prefixed, CRC32-checksummed log *before* the
//!   in-memory mutation is acknowledged. Each record carries a global
//!   monotonically increasing sequence number.
//! * **Segment flushing** — tables are flushed to `t<N>.vxtb` files in the
//!   physical `VXTB2` format ([`crate::persist::table_to_bytes_physical`]),
//!   which preserves the exact WOS/segment/zone-map/delete-vector layout, so
//!   a recovered table is **bitwise identical** under re-serialization.
//! * **Commit marker** — the superstep apply path replaces whole tables via
//!   [`crate::catalog::Catalog::replace_contents_many`]. Its commit protocol
//!   writes the fresh tables' physical bytes to files, then appends **one**
//!   `Commit` record naming all `(table, file)` pairs: the single-frame
//!   append is the atomic commit point covering every swapped table.
//! * **Checkpoint / truncate cycle** — a checkpoint flushes every table,
//!   writes a `MANIFEST` (tmp + rename, CRC-trailed) recording per-table
//!   `(file, watermark)` pairs plus the log's sequence floor, and — when no
//!   live record remains — rotates to a fresh WAL file and garbage-collects
//!   unreferenced files. Replacement commits rotate opportunistically too,
//!   so a long superstep run keeps the log near-empty.
//! * **Recovery** — [`open_durable`] loads the manifest's table files, then
//!   replays WAL records in sequence order, applying a record only if its
//!   seq is at or past the owning table's watermark (DDL gates on the
//!   manifest's global floor). A torn final frame — the signature of a crash
//!   mid-append — is discarded; a *complete* frame with a bad checksum or
//!   tag is [`StorageError::Corrupt`].
//!
//! **Crash injection**: [`WalSink::set_crash_budget`] arms a byte budget on
//! all durable writes. The write that would exceed the budget persists only
//! its in-budget prefix and fails, and every later durable operation fails —
//! exactly a machine losing power mid-`write()`. Because acknowledgement
//! follows logging, the recovery invariant is testable: the reopened
//! database equals the state after the last *acknowledged* operation (or
//! that plus the crashing operation, if its bytes happened to land whole).

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::{Buf, BufMut};
use vertexica_common::sync::Mutex;

use crate::catalog::Catalog;
use crate::error::{StorageError, StorageResult};
use crate::persist;
use crate::table::{Row, Segment, TableOptions};
use crate::value::Schema;

/// CRC-32 (IEEE 802.3, reflected) — hand-rolled because the build is
/// offline; bitwise form, fast enough for log framing.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------------
// Frame layer (shared with the `graphdb` crate's transaction log)
// ---------------------------------------------------------------------------

/// Encodes one log frame: `[u32 len][u32 crc32(payload)][payload]`.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.put_u32_le(payload.len() as u32);
    out.put_u32_le(crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// Splits a byte stream into frames. An **incomplete trailing frame** (fewer
/// bytes on disk than its header promises, or a partial header) is the
/// signature of a crash mid-append: it is discarded and reported via the
/// returned `torn_tail` flag. A *complete* frame whose checksum does not
/// match its payload is corruption, not a crash, and fails with
/// [`StorageError::Corrupt`].
pub fn decode_frames(mut bytes: &[u8]) -> StorageResult<(Vec<&[u8]>, bool)> {
    let mut frames = Vec::new();
    while !bytes.is_empty() {
        if bytes.len() < 8 {
            return Ok((frames, true));
        }
        // vxlint: allow(no-unwrap-recovery) -- infallible: the len >= 8 guard above makes both 4-byte slices exact
        let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
        // vxlint: allow(no-unwrap-recovery) -- infallible: same len >= 8 guard covers bytes[4..8]
        let stored_crc = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if bytes.len() - 8 < len {
            return Ok((frames, true));
        }
        let payload = &bytes[8..8 + len];
        if crc32(payload) != stored_crc {
            return Err(StorageError::Corrupt(format!(
                "log frame checksum mismatch ({len}-byte frame)"
            )));
        }
        frames.push(payload);
        bytes = &bytes[8 + len..];
    }
    Ok((frames, false))
}

/// A minimal length-prefixed, checksummed, append-only frame log over one
/// file — the framing shared by the Vertexica WAL and the `graphdb` crate's
/// transaction log (one frame per committed transaction there). `None` path
/// means ephemeral: appends are no-ops and reads see nothing.
#[derive(Debug)]
pub struct FrameLog {
    file: Option<File>,
    sync: bool,
}

impl FrameLog {
    /// Opens (creating or appending to) the log at `path`.
    pub fn open(path: Option<&Path>, sync: bool) -> StorageResult<FrameLog> {
        let file = match path {
            Some(p) => {
                if let Some(parent) = p.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                Some(OpenOptions::new().create(true).append(true).open(p)?)
            }
            None => None,
        };
        Ok(FrameLog { file, sync })
    }

    /// Appends one frame; with `sync`, fdatasyncs before acknowledging.
    pub fn append(&mut self, payload: &[u8]) -> StorageResult<()> {
        if let Some(f) = &mut self.file {
            f.write_all(&encode_frame(payload))?;
            if self.sync {
                f.sync_data()?;
            }
        }
        Ok(())
    }

    /// Reads every complete frame from `path` (missing file = empty log).
    /// The torn-tail flag reports whether a trailing partial append was
    /// discarded.
    pub fn read_frames(path: &Path) -> StorageResult<(Vec<Vec<u8>>, bool)> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), false)),
            Err(e) => return Err(e.into()),
        };
        let (frames, torn) = decode_frames(&bytes)?;
        Ok((frames.into_iter().map(|f| f.to_vec()).collect(), torn))
    }
}

// ---------------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------------

const WAL_MAGIC: &[u8; 6] = b"VXWL1\n";
const MANIFEST_MAGIC: &[u8; 6] = b"VXMF1\n";
const MANIFEST_NAME: &str = "MANIFEST";

const TAG_INSERT_ROWS: u8 = 1;
const TAG_ADOPT_SEGMENT: u8 = 2;
const TAG_DELETE_ROWIDS: u8 = 3;
const TAG_UPDATE_ROWS: u8 = 4;
const TAG_TRUNCATE: u8 = 5;
const TAG_MOVEOUT: u8 = 6;
const TAG_MERGEOUT: u8 = 7;
const TAG_CREATE_TABLE: u8 = 8;
const TAG_DROP_TABLE: u8 = 9;
const TAG_RENAME_TABLE: u8 = 10;
const TAG_SWAP_TABLES: u8 = 11;
const TAG_REGISTER_TABLE: u8 = 12;
const TAG_COMMIT: u8 = 13;

/// A decoded WAL record. Data records name the table they mutate; DDL
/// records mutate the catalog; `Commit` is the superstep-apply marker naming
/// every `(table, segment file)` pair swapped by one
/// [`Catalog::replace_contents_many`] call.
#[derive(Debug)]
pub enum WalRecord {
    InsertRows { table: String, rows: Vec<Row> },
    AdoptSegment { table: String, segment: Segment },
    DeleteRowids { table: String, rowids: Vec<u64> },
    UpdateRows { table: String, updates: Vec<(u64, Row)> },
    Truncate { table: String },
    Moveout { table: String },
    Mergeout { table: String },
    CreateTable { name: String, schema: Arc<Schema>, options: TableOptions },
    DropTable { name: String },
    RenameTable { from: String, to: String },
    SwapTables { a: String, b: String },
    RegisterTable { physical: Vec<u8> },
    Commit { tables: Vec<(String, String)> },
}

fn tagged(tag: u8, table: &str) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.put_u8(tag);
    persist::put_str(&mut buf, table);
    buf
}

pub(crate) fn payload_insert_rows(table: &str, rows: &[Row]) -> Vec<u8> {
    let mut buf = tagged(TAG_INSERT_ROWS, table);
    buf.put_u32_le(rows.len() as u32);
    for row in rows {
        persist::put_row(&mut buf, row);
    }
    buf
}

pub(crate) fn payload_adopt_segment(table: &str, seg: &Segment) -> Vec<u8> {
    let mut buf = tagged(TAG_ADOPT_SEGMENT, table);
    persist::put_segment(&mut buf, seg);
    buf
}

pub(crate) fn payload_delete_rowids(table: &str, rowids: &[u64]) -> Vec<u8> {
    let mut buf = tagged(TAG_DELETE_ROWIDS, table);
    buf.put_u64_le(rowids.len() as u64);
    for &id in rowids {
        buf.put_u64_le(id);
    }
    buf
}

pub(crate) fn payload_update_rows(table: &str, updates: &[(u64, Row)]) -> Vec<u8> {
    let mut buf = tagged(TAG_UPDATE_ROWS, table);
    buf.put_u32_le(updates.len() as u32);
    for (id, row) in updates {
        buf.put_u64_le(*id);
        persist::put_row(&mut buf, row);
    }
    buf
}

pub(crate) fn payload_truncate(table: &str) -> Vec<u8> {
    tagged(TAG_TRUNCATE, table)
}

pub(crate) fn payload_moveout(table: &str) -> Vec<u8> {
    tagged(TAG_MOVEOUT, table)
}

pub(crate) fn payload_mergeout(table: &str) -> Vec<u8> {
    tagged(TAG_MERGEOUT, table)
}

fn payload_create_table(name: &str, schema: &Schema, options: &TableOptions) -> Vec<u8> {
    let mut buf = tagged(TAG_CREATE_TABLE, name);
    persist::put_schema(&mut buf, schema);
    persist::put_options(&mut buf, options);
    buf
}

fn payload_drop_table(name: &str) -> Vec<u8> {
    tagged(TAG_DROP_TABLE, name)
}

fn payload_rename_table(from: &str, to: &str) -> Vec<u8> {
    let mut buf = tagged(TAG_RENAME_TABLE, from);
    persist::put_str(&mut buf, to);
    buf
}

fn payload_swap_tables(a: &str, b: &str) -> Vec<u8> {
    let mut buf = tagged(TAG_SWAP_TABLES, a);
    persist::put_str(&mut buf, b);
    buf
}

fn payload_register_table(physical: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(5 + physical.len());
    buf.put_u8(TAG_REGISTER_TABLE);
    buf.put_u32_le(physical.len() as u32);
    buf.extend_from_slice(physical);
    buf
}

fn payload_commit(tables: &[(String, String)]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.put_u8(TAG_COMMIT);
    buf.put_u32_le(tables.len() as u32);
    for (table, file) in tables {
        persist::put_str(&mut buf, table);
        persist::put_str(&mut buf, file);
    }
    buf
}

/// Decodes one WAL frame payload into `(seq, record)`.
pub fn decode_record(payload: &[u8]) -> StorageResult<(u64, WalRecord)> {
    let mut buf = payload;
    let buf = &mut buf;
    if buf.len() < 9 {
        return Err(StorageError::Corrupt("truncated wal record header".into()));
    }
    let seq = buf.get_u64_le();
    let tag = buf.get_u8();
    let rec = match tag {
        TAG_INSERT_ROWS => {
            let table = persist::get_str(buf)?;
            if buf.len() < 4 {
                return Err(StorageError::Corrupt("truncated insert count".into()));
            }
            let n = buf.get_u32_le() as usize;
            let mut rows = Vec::with_capacity(n.min(1 << 22));
            for _ in 0..n {
                rows.push(persist::get_row(buf)?);
            }
            WalRecord::InsertRows { table, rows }
        }
        TAG_ADOPT_SEGMENT => {
            let table = persist::get_str(buf)?;
            let segment = persist::get_segment(buf)?;
            WalRecord::AdoptSegment { table, segment }
        }
        TAG_DELETE_ROWIDS => {
            let table = persist::get_str(buf)?;
            if buf.len() < 8 {
                return Err(StorageError::Corrupt("truncated delete count".into()));
            }
            let n = buf.get_u64_le() as usize;
            if buf.len() < n * 8 {
                return Err(StorageError::Corrupt("truncated rowid list".into()));
            }
            let mut rowids = Vec::with_capacity(n);
            for _ in 0..n {
                rowids.push(buf.get_u64_le());
            }
            WalRecord::DeleteRowids { table, rowids }
        }
        TAG_UPDATE_ROWS => {
            let table = persist::get_str(buf)?;
            if buf.len() < 4 {
                return Err(StorageError::Corrupt("truncated update count".into()));
            }
            let n = buf.get_u32_le() as usize;
            let mut updates = Vec::with_capacity(n.min(1 << 22));
            for _ in 0..n {
                if buf.len() < 8 {
                    return Err(StorageError::Corrupt("truncated update rowid".into()));
                }
                let id = buf.get_u64_le();
                updates.push((id, persist::get_row(buf)?));
            }
            WalRecord::UpdateRows { table, updates }
        }
        TAG_TRUNCATE => WalRecord::Truncate { table: persist::get_str(buf)? },
        TAG_MOVEOUT => WalRecord::Moveout { table: persist::get_str(buf)? },
        TAG_MERGEOUT => WalRecord::Mergeout { table: persist::get_str(buf)? },
        TAG_CREATE_TABLE => {
            let name = persist::get_str(buf)?;
            let schema = persist::get_schema(buf)?;
            let options = persist::get_options(buf)?;
            WalRecord::CreateTable { name, schema, options }
        }
        TAG_DROP_TABLE => WalRecord::DropTable { name: persist::get_str(buf)? },
        TAG_RENAME_TABLE => {
            let from = persist::get_str(buf)?;
            let to = persist::get_str(buf)?;
            WalRecord::RenameTable { from, to }
        }
        TAG_SWAP_TABLES => {
            let a = persist::get_str(buf)?;
            let b = persist::get_str(buf)?;
            WalRecord::SwapTables { a, b }
        }
        TAG_REGISTER_TABLE => {
            if buf.len() < 4 {
                return Err(StorageError::Corrupt("truncated register length".into()));
            }
            let len = buf.get_u32_le() as usize;
            if buf.len() < len {
                return Err(StorageError::Corrupt("truncated register body".into()));
            }
            let physical = buf[..len].to_vec();
            buf.advance(len);
            WalRecord::RegisterTable { physical }
        }
        TAG_COMMIT => {
            if buf.len() < 4 {
                return Err(StorageError::Corrupt("truncated commit count".into()));
            }
            let n = buf.get_u32_le() as usize;
            let mut tables = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let table = persist::get_str(buf)?;
                let file = persist::get_str(buf)?;
                tables.push((table, file));
            }
            WalRecord::Commit { tables }
        }
        other => return Err(StorageError::Corrupt(format!("bad wal record tag {other}"))),
    };
    Ok((seq, rec))
}

// ---------------------------------------------------------------------------
// The sink: shared mutable durability state
// ---------------------------------------------------------------------------

/// Counters describing the durability layer's work so far. Snapshots are
/// cheap; the coordinator's per-superstep gauges are deltas of these.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// WAL records appended (data + DDL + commit markers).
    pub wal_records: u64,
    /// Bytes appended to the WAL (frame headers included).
    pub wal_bytes: u64,
    /// Table images flushed to segment files (checkpoints + replace commits).
    pub tables_flushed: u64,
    /// Bytes written to segment files and manifests.
    pub flush_bytes: u64,
    /// Replace-commit markers logged.
    pub commits: u64,
    /// Full checkpoints completed.
    pub checkpoints: u64,
    /// WAL rotations (log truncations) performed.
    pub rotations: u64,
}

/// Per-table durability bookkeeping.
#[derive(Debug, Clone, Default)]
struct TableMeta {
    /// Segment file holding this table's last flushed image, if any.
    file: Option<String>,
    /// Records with `seq >= watermark` are NOT covered by `file` and must
    /// replay on top of it.
    watermark: u64,
    /// Whether the current WAL file holds any live record for this table.
    dirty: bool,
}

struct WalState {
    dir: PathBuf,
    wal_name: String,
    wal_file: File,
    /// Sequence number the next record will take.
    next_seq: u64,
    /// Allocator for `t<N>.vxtb` / `wal-<N>.log` file names.
    next_file_id: u64,
    metas: BTreeMap<String, TableMeta>,
    /// Remaining bytes of durable writes before an injected crash, if armed.
    crash_budget: Option<u64>,
    /// Set once an injected crash fired: all later durable ops fail.
    crashed: bool,
    sync: bool,
    stats: DurabilityStats,
    /// The catalog's segment buffer pool, when attached. GC consults it so
    /// checkpoint files still referenced by evicted-segment spill addresses
    /// (e.g. held by an open cursor over a since-replaced table) survive.
    pool: Option<Arc<crate::buffer_pool::BufferPool>>,
}

fn crash_err() -> StorageError {
    StorageError::Io(std::io::Error::other("injected crash: durable write truncated"))
}

impl WalState {
    /// Consumes `n` bytes of crash budget. Returns the number of bytes the
    /// caller may write: `n` normally; fewer (with the crashed flag set) when
    /// the budget is exhausted mid-write. Errors if a crash already fired.
    fn take_budget(&mut self, n: usize) -> StorageResult<usize> {
        if self.crashed {
            return Err(crash_err());
        }
        match self.crash_budget {
            None => Ok(n),
            Some(b) if (n as u64) <= b => {
                self.crash_budget = Some(b - n as u64);
                Ok(n)
            }
            Some(b) => {
                self.crash_budget = Some(0);
                self.crashed = true;
                Ok(b as usize)
            }
        }
    }

    /// Appends raw bytes to the WAL file under the crash budget.
    fn write_wal_bytes(&mut self, bytes: &[u8]) -> StorageResult<()> {
        let allowed = self.take_budget(bytes.len())?;
        self.wal_file.write_all(&bytes[..allowed])?;
        if allowed < bytes.len() {
            return Err(crash_err());
        }
        if self.sync {
            self.wal_file.sync_data()?;
        }
        self.stats.wal_bytes += bytes.len() as u64;
        Ok(())
    }

    /// Creates `name` in the durability directory with `bytes`, under the
    /// crash budget; fsyncs when in sync mode.
    fn write_new_file(&mut self, name: &str, bytes: &[u8]) -> StorageResult<()> {
        let allowed = self.take_budget(bytes.len())?;
        let path = self.dir.join(name);
        let mut f = File::create(&path)?;
        f.write_all(&bytes[..allowed])?;
        if allowed < bytes.len() {
            return Err(crash_err());
        }
        if self.sync {
            f.sync_data()?;
            // Also sync the directory entry: without this, a crash after the
            // checkpoint could lose the file itself even though its contents
            // were synced (the MANIFEST rename already does the same).
            File::open(&self.dir)?.sync_all()?;
        }
        self.stats.flush_bytes += bytes.len() as u64;
        Ok(())
    }

    fn alloc_file(&mut self, prefix: &str, suffix: &str) -> String {
        let id = self.next_file_id;
        self.next_file_id += 1;
        format!("{prefix}{id}{suffix}")
    }

    /// Appends one record payload (tag + body) as the next sequenced frame.
    fn append_record(&mut self, tag_body: &[u8]) -> StorageResult<u64> {
        let seq = self.next_seq;
        let mut payload = Vec::with_capacity(8 + tag_body.len());
        payload.put_u64_le(seq);
        payload.extend_from_slice(tag_body);
        self.write_wal_bytes(&encode_frame(&payload))?;
        self.next_seq = seq + 1;
        self.stats.wal_records += 1;
        Ok(seq)
    }

    fn manifest_bytes(&self) -> StorageResult<Vec<u8>> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MANIFEST_MAGIC);
        buf.put_u64_le(self.next_seq);
        persist::put_str(&mut buf, &self.wal_name);
        buf.put_u32_le(self.metas.len() as u32);
        for (name, meta) in &self.metas {
            let file = meta.file.as_deref().ok_or_else(|| {
                StorageError::Internal(format!("manifest write with unflushed table {name}"))
            })?;
            persist::put_str(&mut buf, name);
            persist::put_str(&mut buf, file);
            buf.put_u64_le(meta.watermark);
        }
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        Ok(buf)
    }

    /// Writes the manifest via tmp + rename (the atomic publish point).
    fn write_manifest(&mut self) -> StorageResult<()> {
        let bytes = self.manifest_bytes()?;
        let tmp = "MANIFEST.tmp";
        self.write_new_file(tmp, &bytes)?;
        std::fs::rename(self.dir.join(tmp), self.dir.join(MANIFEST_NAME))?;
        if self.sync {
            File::open(&self.dir)?.sync_all()?;
        }
        Ok(())
    }

    /// Creates a fresh WAL file (header only) and makes it current.
    fn create_wal_file(&mut self, name: String) -> StorageResult<()> {
        let mut header = Vec::with_capacity(14);
        header.extend_from_slice(WAL_MAGIC);
        header.put_u64_le(self.next_seq);
        self.write_new_file(&name, &header)?;
        self.wal_file = OpenOptions::new().append(true).open(self.dir.join(&name))?;
        self.wal_name = name;
        Ok(())
    }

    /// True when the current WAL file holds no live record: every table has a
    /// flushed image and nothing logged past its watermark.
    fn wal_fully_dead(&self) -> bool {
        self.metas.values().all(|m| m.file.is_some() && !m.dirty)
    }

    /// Publishes a manifest and, when the WAL is fully dead, rotates to a
    /// fresh log file and garbage-collects unreferenced files.
    fn publish_and_maybe_rotate(&mut self) -> StorageResult<()> {
        if !self.wal_fully_dead() {
            // Live records remain: publish the manifest only if every table
            // has a flushed image (otherwise keep the previous manifest).
            if self.metas.values().all(|m| m.file.is_some()) {
                self.write_manifest()?;
            }
            return Ok(());
        }
        let old_wal = self.wal_name.clone();
        let new_wal = self.alloc_file("wal-", ".log");
        // Publish the manifest referencing the new (not yet created) WAL
        // first: recovery treats a missing WAL file as an empty log, so a
        // crash between rename and creation is safe.
        self.wal_name = new_wal.clone();
        if let Err(e) = self.write_manifest() {
            self.wal_name = old_wal;
            return Err(e);
        }
        self.create_wal_file(new_wal)?;
        self.stats.rotations += 1;
        self.gc()?;
        Ok(())
    }

    /// Removes durability files referenced by neither the manifest tables,
    /// nor the current WAL, nor any live buffer-pool spill address. Only
    /// safe right after rotation (no live record can reference a flushed
    /// file). I/O errors surface to the caller (a silently failed removal
    /// would resurrect stale tables if a later crash lost the manifest);
    /// the directory is fsynced after removals in sync mode so a crash
    /// cannot resurrect the removed files either.
    fn gc(&self) -> StorageResult<()> {
        let pool_keep = self.pool.as_ref().map(|p| p.referenced_files()).unwrap_or_default();
        let keep: std::collections::HashSet<&str> = self
            .metas
            .values()
            .filter_map(|m| m.file.as_deref())
            .chain([self.wal_name.as_str()])
            .chain(pool_keep.iter().map(String::as_str))
            .collect();
        let mut removed = false;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let ours = (name.starts_with('t') && name.ends_with(".vxtb"))
                || (name.starts_with("wal-") && name.ends_with(".log"));
            if ours && !keep.contains(name) {
                match std::fs::remove_file(entry.path()) {
                    Ok(()) => removed = true,
                    // Already gone (e.g. a prior partial GC): not an error.
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e.into()),
                }
            }
        }
        if removed && self.sync {
            File::open(&self.dir)?.sync_all()?;
        }
        Ok(())
    }
}

/// The shared durability sink: one per open durable database, attached to
/// the catalog and to every table it contains. All durable writes funnel
/// through its single mutex, which is what makes the log's sequence order
/// equal each table's apply order.
pub struct WalSink {
    state: Mutex<WalState>,
}

impl std::fmt::Debug for WalSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("WalSink")
    }
}

impl WalSink {
    /// Arms (or disarms, with `None`) the injected-crash byte budget over all
    /// durable writes. Test hook for the crash-injection harness.
    pub fn set_crash_budget(&self, budget: Option<u64>) {
        let mut st = self.state.lock();
        st.crash_budget = budget;
        if budget.is_some() {
            st.crashed = false;
        }
    }

    /// Whether an injected crash has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Snapshot of the durability counters.
    pub fn stats(&self) -> DurabilityStats {
        self.state.lock().stats.clone()
    }

    /// Whether appends fdatasync before acknowledging.
    pub fn sync_mode(&self) -> bool {
        self.state.lock().sync
    }

    /// Logs one data record against `table` (payload from the `payload_*`
    /// builders) and marks the table dirty in the current WAL file.
    pub(crate) fn log_data(&self, table: &str, tag_body: &[u8]) -> StorageResult<u64> {
        let mut st = self.state.lock();
        let seq = st.append_record(tag_body)?;
        st.metas.entry(table.to_string()).or_default().dirty = true;
        Ok(seq)
    }

    pub(crate) fn log_create_table(
        &self,
        name: &str,
        schema: &Schema,
        options: &TableOptions,
    ) -> StorageResult<()> {
        let mut st = self.state.lock();
        st.append_record(&payload_create_table(name, schema, options))?;
        st.metas.insert(name.to_string(), TableMeta { file: None, watermark: 0, dirty: true });
        Ok(())
    }

    pub(crate) fn log_register_table(&self, name: &str, physical: &[u8]) -> StorageResult<()> {
        let mut st = self.state.lock();
        st.append_record(&payload_register_table(physical))?;
        st.metas.insert(name.to_string(), TableMeta { file: None, watermark: 0, dirty: true });
        Ok(())
    }

    pub(crate) fn log_drop_table(&self, name: &str) -> StorageResult<()> {
        let mut st = self.state.lock();
        st.append_record(&payload_drop_table(name))?;
        st.metas.remove(name);
        Ok(())
    }

    pub(crate) fn log_rename(&self, from: &str, to: &str) -> StorageResult<()> {
        let mut st = self.state.lock();
        st.append_record(&payload_rename_table(from, to))?;
        if let Some(meta) = st.metas.remove(from) {
            st.metas.insert(to.to_string(), meta);
        }
        Ok(())
    }

    pub(crate) fn log_swap(&self, a: &str, b: &str) -> StorageResult<()> {
        let mut st = self.state.lock();
        st.append_record(&payload_swap_tables(a, b))?;
        let ma = st.metas.remove(a);
        let mb = st.metas.remove(b);
        if let Some(m) = mb {
            st.metas.insert(a.to_string(), m);
        }
        if let Some(m) = ma {
            st.metas.insert(b.to_string(), m);
        }
        Ok(())
    }

    /// Ensures a bookkeeping entry exists for `table` (used at attach time).
    pub(crate) fn ensure_meta(&self, table: &str) {
        self.state.lock().metas.entry(table.to_string()).or_default();
    }

    /// The replace-commit protocol: writes each fresh table's physical bytes
    /// to a new segment file, then appends **one** `Commit` marker naming all
    /// `(table, file)` pairs — the atomic commit point for the whole group.
    /// Callers must hold every target table's write lock across this call
    /// *and* the in-memory install that follows, so no writer can log against
    /// doomed contents after the marker.
    /// Returns the `(table, file)` pairs written, so the caller can record
    /// per-segment spill addresses against the new image files.
    pub(crate) fn commit_replace(
        &self,
        entries: &[(String, Vec<u8>)],
    ) -> StorageResult<Vec<(String, String)>> {
        let mut st = self.state.lock();
        let mut pairs = Vec::with_capacity(entries.len());
        for (name, bytes) in entries {
            let file = st.alloc_file("t", ".vxtb");
            st.write_new_file(&file, bytes)?;
            st.stats.tables_flushed += 1;
            pairs.push((name.clone(), file));
        }
        let seq = st.append_record(&payload_commit(&pairs))?;
        for (name, file) in &pairs {
            st.metas.insert(
                name.clone(),
                // The flushed image includes the commit itself, so the next
                // uncovered record is seq + 1 and the marker is not "live"
                // for rotation purposes once a manifest references the file.
                TableMeta { file: Some(file.clone()), watermark: seq + 1, dirty: false },
            );
        }
        st.stats.commits += 1;
        st.publish_and_maybe_rotate()?;
        Ok(pairs)
    }

    /// Flushes one table's physical image to a fresh segment file and moves
    /// its watermark to the current sequence head. The caller must hold the
    /// table's (read or write) lock so no mutation can interleave between
    /// serialization and the watermark sample.
    /// Returns the new image file's name, so the caller can record
    /// per-segment spill addresses against it.
    pub(crate) fn flush_table(&self, name: &str, physical: &[u8]) -> StorageResult<String> {
        let mut st = self.state.lock();
        let file = st.alloc_file("t", ".vxtb");
        st.write_new_file(&file, physical)?;
        st.stats.tables_flushed += 1;
        let watermark = st.next_seq;
        st.metas.insert(
            name.to_string(),
            TableMeta { file: Some(file.clone()), watermark, dirty: false },
        );
        Ok(file)
    }

    /// Whether a checkpoint must re-flush `table`: true when the current WAL
    /// file holds a live record for it or it has no flushed image at all. A
    /// clean table's existing image (and the spill addresses pointing into
    /// it) stays valid across the checkpoint.
    pub(crate) fn needs_flush(&self, table: &str) -> bool {
        let st = self.state.lock();
        st.metas.get(table).is_none_or(|m| m.dirty || m.file.is_none())
    }

    /// Attaches the catalog's buffer pool so GC keeps spill-referenced files.
    pub(crate) fn attach_pool(&self, pool: Arc<crate::buffer_pool::BufferPool>) {
        self.state.lock().pool = Some(pool);
    }

    /// The durability directory this sink writes into.
    pub(crate) fn dir(&self) -> PathBuf {
        self.state.lock().dir.clone()
    }

    /// Ends a checkpoint: publishes the manifest and rotates the WAL if no
    /// live record remains.
    pub(crate) fn finish_checkpoint(&self) -> StorageResult<()> {
        let mut st = self.state.lock();
        st.publish_and_maybe_rotate()?;
        st.stats.checkpoints += 1;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Manifest + recovery
// ---------------------------------------------------------------------------

/// Parsed `MANIFEST`: the durable root pointer.
#[derive(Debug)]
struct Manifest {
    /// Global sequence floor: DDL records below this are already reflected in
    /// the manifest's table list. Doubles as the minimum `next_seq`.
    next_seq: u64,
    /// Current WAL file name (missing file = empty log).
    wal_name: String,
    /// `(table, segment file, watermark)` triples.
    tables: Vec<(String, String, u64)>,
}

fn parse_manifest(bytes: &[u8]) -> StorageResult<Manifest> {
    let mut body = persist::check_magic_and_crc(bytes, MANIFEST_MAGIC)?;
    let buf = &mut body;
    if buf.len() < 8 {
        return Err(StorageError::Corrupt("truncated manifest header".into()));
    }
    let next_seq = buf.get_u64_le();
    let wal_name = persist::get_str(buf)?;
    if buf.len() < 4 {
        return Err(StorageError::Corrupt("truncated manifest table count".into()));
    }
    let n = buf.get_u32_le() as usize;
    let mut tables = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let name = persist::get_str(buf)?;
        let file = persist::get_str(buf)?;
        if buf.len() < 8 {
            return Err(StorageError::Corrupt("truncated manifest watermark".into()));
        }
        let watermark = buf.get_u64_le();
        tables.push((name, file, watermark));
    }
    if !buf.is_empty() {
        return Err(StorageError::Corrupt("trailing bytes after manifest".into()));
    }
    Ok(Manifest { next_seq, wal_name, tables })
}

/// Largest numeric id used by `t<N>.vxtb` / `wal-<N>.log` files in `dir`,
/// plus one — the safe starting point for the file-name allocator.
fn scan_next_file_id(dir: &Path) -> u64 {
    let mut max_id: Option<u64> = None;
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let id = name
            .strip_prefix("wal-")
            .and_then(|r| r.strip_suffix(".log"))
            .or_else(|| name.strip_prefix('t').and_then(|r| r.strip_suffix(".vxtb")))
            .and_then(|r| r.parse::<u64>().ok());
        if let Some(id) = id {
            max_id = Some(max_id.map_or(id, |m| m.max(id)));
        }
    }
    max_id.map_or(0, |m| m + 1)
}

/// Reads the current WAL file and returns its decoded `(seq, record)` list in
/// log order. A missing file or a torn header is an empty log. A torn trailing
/// frame is discarded **and truncated away on disk**, so subsequent appends
/// extend a clean log. Complete-but-invalid frames are [`StorageError::Corrupt`].
fn read_wal_records(path: &Path) -> StorageResult<Vec<(u64, WalRecord)>> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < WAL_MAGIC.len() + 8 {
        // A header torn mid-write: the log holds nothing. Remove the stump so
        // the sink recreates a clean header — and surface removal failures,
        // since a lingering stump would shadow the recreated log.
        match std::fs::remove_file(path) {
            Ok(()) => {
                if let Some(parent) = path.parent() {
                    File::open(parent)?.sync_all()?;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        return Ok(Vec::new());
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(StorageError::Corrupt("bad wal magic".into()));
    }
    let body = &bytes[WAL_MAGIC.len() + 8..];
    let (frames, torn) = decode_frames(body)?;
    let mut records = Vec::with_capacity(frames.len());
    let mut clean_len = (WAL_MAGIC.len() + 8) as u64;
    for frame in frames {
        records.push(decode_record(frame)?);
        clean_len += 8 + frame.len() as u64;
    }
    if torn {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(clean_len)?;
        f.sync_data()?;
    }
    Ok(records)
}

/// Opens (or initialises) a durable database directory and returns its
/// recovered catalog with the WAL sink attached.
///
/// Recovery: load the manifest's flushed table images, replay WAL records in
/// sequence order — a data record applies only if its seq is at or past the
/// owning table's watermark; DDL applies only at or past the manifest's global
/// floor; a `Commit` marker re-installs its flushed files per pair — then run
/// a full checkpoint so the directory converges to "flushed images + empty
/// log" regardless of where the previous process stopped. Opening, closing,
/// and reopening is therefore idempotent: the recovered state is bitwise
/// stable.
pub fn open_durable(dir: impl AsRef<Path>, sync: bool) -> StorageResult<Arc<Catalog>> {
    let dir = dir.as_ref().to_path_buf();
    std::fs::create_dir_all(&dir)?;
    let catalog = Arc::new(Catalog::new());
    // Point the buffer pool at the durable directory up front so segments
    // loaded below are evictable as soon as their spill addresses land.
    catalog.buffer_pool().set_dir(dir.clone());

    let manifest = match std::fs::read(dir.join(MANIFEST_NAME)) {
        Ok(bytes) => Some(parse_manifest(&bytes)?),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(e.into()),
    };

    let mut metas: BTreeMap<String, TableMeta> = BTreeMap::new();
    let mut floor = 0u64;
    let wal_name = match &manifest {
        Some(m) => {
            floor = m.next_seq;
            for (name, file, watermark) in &m.tables {
                let bytes = std::fs::read(dir.join(file))?;
                let (mut table, spans) = persist::table_from_bytes_physical_indexed(&bytes)?;
                table.set_name(name.clone());
                catalog.register(table)?;
                // The image we just parsed IS the spill file: its segments
                // are evictable immediately.
                catalog.get(name)?.read().assign_spill_addrs(file, &spans)?;
                metas.insert(
                    name.clone(),
                    TableMeta { file: Some(file.clone()), watermark: *watermark, dirty: false },
                );
            }
            m.wal_name.clone()
        }
        None => "wal-0.log".to_string(),
    };

    // Replay committed records past each table's watermark.
    let records = read_wal_records(&dir.join(&wal_name))?;
    let mut last_seq: Option<u64> = None;
    let watermark_of = |metas: &BTreeMap<String, TableMeta>, table: &str| -> u64 {
        metas.get(table).map_or(0, |m| m.watermark)
    };
    for (seq, record) in records {
        last_seq = Some(seq);
        match record {
            WalRecord::InsertRows { table, rows } => {
                if seq >= watermark_of(&metas, &table) {
                    let t = catalog.get(&table)?;
                    let mut guard = t.write();
                    for row in rows {
                        guard.insert_row_unlogged(row)?;
                    }
                }
            }
            WalRecord::AdoptSegment { table, segment } => {
                if seq >= watermark_of(&metas, &table) {
                    catalog.get(&table)?.write().adopt_segment_unlogged(segment);
                }
            }
            WalRecord::DeleteRowids { table, rowids } => {
                if seq >= watermark_of(&metas, &table) {
                    catalog.get(&table)?.write().delete_rowids_unlogged(&rowids);
                }
            }
            WalRecord::UpdateRows { table, updates } => {
                if seq >= watermark_of(&metas, &table) {
                    catalog.get(&table)?.write().update_rows_unlogged(updates)?;
                }
            }
            WalRecord::Truncate { table } => {
                if seq >= watermark_of(&metas, &table) {
                    catalog.get(&table)?.write().truncate_unlogged();
                }
            }
            WalRecord::Moveout { table } => {
                if seq >= watermark_of(&metas, &table) {
                    catalog.get(&table)?.write().moveout_unlogged()?;
                }
            }
            WalRecord::Mergeout { table } => {
                if seq >= watermark_of(&metas, &table) {
                    catalog.get(&table)?.write().mergeout_unlogged()?;
                }
            }
            WalRecord::CreateTable { name, schema, options } => {
                if seq >= floor {
                    catalog.create_table(&name, schema, options)?;
                    metas.insert(name, TableMeta::default());
                }
            }
            WalRecord::DropTable { name } => {
                if seq >= floor {
                    catalog.drop_table_if_exists(&name)?;
                    metas.remove(&name);
                }
            }
            WalRecord::RenameTable { from, to } => {
                if seq >= floor {
                    catalog.rename(&from, &to)?;
                    if let Some(m) = metas.remove(&from) {
                        metas.insert(to, m);
                    }
                }
            }
            WalRecord::SwapTables { a, b } => {
                if seq >= floor {
                    catalog.swap(&a, &b)?;
                    let ma = metas.remove(&a);
                    let mb = metas.remove(&b);
                    if let Some(m) = mb {
                        metas.insert(a, m);
                    }
                    if let Some(m) = ma {
                        metas.insert(b, m);
                    }
                }
            }
            WalRecord::RegisterTable { physical } => {
                if seq >= floor {
                    let table = persist::table_from_bytes_physical(&physical)?;
                    let name = table.name().to_string();
                    catalog.register(table)?;
                    metas.insert(name, TableMeta::default());
                }
            }
            WalRecord::Commit { tables } => {
                for (table, file) in tables {
                    if seq >= watermark_of(&metas, &table) {
                        let bytes = std::fs::read(dir.join(&file))?;
                        let (mut fresh, spans) =
                            persist::table_from_bytes_physical_indexed(&bytes)?;
                        if catalog.contains(&table) {
                            catalog.replace_contents(&table, fresh)?;
                        } else {
                            fresh.set_name(table.clone());
                            catalog.register(fresh)?;
                        }
                        catalog.get(&table)?.read().assign_spill_addrs(&file, &spans)?;
                        metas.insert(
                            table,
                            TableMeta { file: Some(file), watermark: seq + 1, dirty: false },
                        );
                    }
                }
            }
        }
    }

    // Build the sink. Tables touched since their flushed image are marked
    // dirty; the recovery checkpoint below re-flushes them and rotates.
    let next_seq = last_seq.map_or(floor, |s| floor.max(s + 1));
    for name in catalog.list() {
        let entry = metas.entry(name).or_default();
        entry.dirty = entry.watermark < next_seq || entry.file.is_none();
    }
    metas.retain(|name, _| catalog.contains(name));
    let wal_path = dir.join(&wal_name);
    if !wal_path.exists() {
        let mut header = Vec::with_capacity(14);
        header.extend_from_slice(WAL_MAGIC);
        header.put_u64_le(next_seq);
        let mut f = File::create(&wal_path)?;
        f.write_all(&header)?;
        if sync {
            f.sync_data()?;
        }
    }
    let wal_file = OpenOptions::new().append(true).open(&wal_path)?;
    let next_file_id = scan_next_file_id(&dir);
    let sink = Arc::new(WalSink {
        state: Mutex::new(WalState {
            dir,
            wal_name,
            wal_file,
            next_seq,
            next_file_id,
            metas,
            crash_budget: None,
            crashed: false,
            sync,
            stats: DurabilityStats::default(),
            pool: None,
        }),
    });

    catalog.attach_wal(sink);
    // Recovery checkpoint: converge to "flushed images + empty log" so the
    // on-disk state after open is deterministic no matter how we got here.
    catalog.checkpoint()?;
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use crate::value::{DataType, Field, Schema, Value};

    fn temp_dir(tag: &str) -> PathBuf {
        use vertexica_common::sync::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "vxwal-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn schema() -> Arc<Schema> {
        Schema::new(vec![Field::new("id", DataType::Int), Field::new("val", DataType::Float)])
    }

    /// Physical images of every table, in name order — the bitwise identity
    /// used by all recovery assertions.
    fn catalog_image(c: &Catalog) -> Vec<(String, Vec<u8>)> {
        c.list()
            .into_iter()
            .map(|n| {
                let t = c.get(&n).unwrap();
                let bytes = persist::table_to_bytes_physical(&t.read()).unwrap();
                (n, bytes)
            })
            .collect()
    }

    #[test]
    fn crc32_check_value() {
        // The CRC-32/ISO-HDLC check value from the catalogue of CRC algorithms.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn frame_roundtrip() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(b"alpha"));
        stream.extend_from_slice(&encode_frame(b""));
        stream.extend_from_slice(&encode_frame(b"gamma"));
        let (frames, torn) = decode_frames(&stream).unwrap();
        assert!(!torn);
        assert_eq!(frames, vec![b"alpha".as_slice(), b"".as_slice(), b"gamma".as_slice()]);
    }

    #[test]
    fn torn_tail_is_clean_stop_at_every_offset() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(b"first"));
        let full = stream.len();
        stream.extend_from_slice(&encode_frame(b"second, longer payload"));
        for cut in full..stream.len() {
            let (frames, torn) = decode_frames(&stream[..cut]).unwrap();
            assert_eq!(frames.len(), 1, "cut at {cut}");
            assert_eq!(torn, cut != full, "cut at {cut}");
        }
    }

    #[test]
    fn complete_frame_with_bad_crc_is_corrupt() {
        let mut stream = encode_frame(b"payload");
        let last = stream.len() - 1;
        stream[last] ^= 0x01;
        assert!(matches!(decode_frames(&stream), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn record_codec_roundtrips() {
        let rows = vec![vec![Value::Int(1), Value::Float(0.5)], vec![Value::Int(2), Value::Null]];
        let mut payload = Vec::new();
        payload.put_u64_le(42);
        payload.extend_from_slice(&payload_insert_rows("vertex", &rows));
        let (seq, rec) = decode_record(&payload).unwrap();
        assert_eq!(seq, 42);
        match rec {
            WalRecord::InsertRows { table, rows: got } => {
                assert_eq!(table, "vertex");
                assert_eq!(got, rows);
            }
            other => panic!("wrong record: {other:?}"),
        }

        let mut payload = Vec::new();
        payload.put_u64_le(7);
        payload.extend_from_slice(&payload_delete_rowids("edge", &[3, 9, 27]));
        match decode_record(&payload).unwrap() {
            (7, WalRecord::DeleteRowids { table, rowids }) => {
                assert_eq!(table, "edge");
                assert_eq!(rowids, vec![3, 9, 27]);
            }
            other => panic!("wrong record: {other:?}"),
        }

        let pairs = vec![
            ("vertex".to_string(), "t3.vxtb".to_string()),
            ("msg".to_string(), "t4.vxtb".to_string()),
        ];
        let mut payload = Vec::new();
        payload.put_u64_le(99);
        payload.extend_from_slice(&payload_commit(&pairs));
        match decode_record(&payload).unwrap() {
            (99, WalRecord::Commit { tables }) => assert_eq!(tables, pairs),
            other => panic!("wrong record: {other:?}"),
        }

        let opts = TableOptions::default();
        let mut payload = Vec::new();
        payload.put_u64_le(0);
        payload.extend_from_slice(&payload_create_table("v", &schema(), &opts));
        match decode_record(&payload).unwrap() {
            (0, WalRecord::CreateTable { name, schema: s, options }) => {
                assert_eq!(name, "v");
                assert_eq!(*s, *schema());
                assert_eq!(options.moveout_threshold, opts.moveout_threshold);
            }
            other => panic!("wrong record: {other:?}"),
        }
    }

    #[test]
    fn record_codec_rejects_bad_tag_and_truncation() {
        let mut payload = Vec::new();
        payload.put_u64_le(1);
        payload.put_u8(200);
        assert!(matches!(decode_record(&payload), Err(StorageError::Corrupt(_))));

        let rows = vec![vec![Value::Int(1), Value::Float(0.5)]];
        let mut payload = Vec::new();
        payload.put_u64_le(1);
        payload.extend_from_slice(&payload_insert_rows("t", &rows));
        for cut in 0..payload.len() {
            // Every proper prefix must decode to an error, never panic.
            let _ = decode_record(&payload[..cut]);
        }
    }

    #[test]
    fn framelog_appends_and_reads_back() {
        let dir = temp_dir("framelog");
        let path = dir.join("txn.log");
        let mut log = FrameLog::open(Some(&path), false).unwrap();
        log.append(b"one").unwrap();
        log.append(b"two").unwrap();
        drop(log);
        let (frames, torn) = FrameLog::read_frames(&path).unwrap();
        assert!(!torn);
        assert_eq!(frames, vec![b"one".to_vec(), b"two".to_vec()]);
        // Reopen appends after existing frames.
        let mut log = FrameLog::open(Some(&path), false).unwrap();
        log.append(b"three").unwrap();
        let (frames, _) = FrameLog::read_frames(&path).unwrap();
        assert_eq!(frames.len(), 3);
        // Ephemeral log is a no-op.
        let mut none = FrameLog::open(None, false).unwrap();
        none.append(b"void").unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_open_reopen_roundtrip() {
        let dir = temp_dir("fresh");
        let image = {
            let catalog = open_durable(&dir, false).unwrap();
            let t = catalog.create_table("vertex", schema(), TableOptions::default()).unwrap();
            {
                let mut g = t.write();
                for i in 0..100i64 {
                    g.insert_row(vec![Value::Int(i), Value::Float(i as f64 * 0.5)]).unwrap();
                }
                let ids: Vec<u64> = (0..10).map(|r| (u64::from(u32::MAX) << 32) | r).collect();
                g.delete_rowids(&ids).unwrap();
            }
            catalog.checkpoint().unwrap();
            catalog_image(&catalog)
        };
        let reopened = open_durable(&dir, false).unwrap();
        assert_eq!(catalog_image(&reopened), image);
        // Reopen again: recovery must be idempotent (bitwise stable).
        drop(reopened);
        let again = open_durable(&dir, false).unwrap();
        assert_eq!(catalog_image(&again), image);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_replays_unflushed_tail() {
        let dir = temp_dir("tail");
        let image = {
            let catalog = open_durable(&dir, false).unwrap();
            let t = catalog.create_table("vertex", schema(), TableOptions::default()).unwrap();
            {
                let mut g = t.write();
                for i in 0..50i64 {
                    g.insert_row(vec![Value::Int(i), Value::Float(-(i as f64))]).unwrap();
                }
            }
            // NO checkpoint: the rows live only in the WAL.
            catalog_image(&catalog)
        };
        let reopened = open_durable(&dir, false).unwrap();
        assert_eq!(catalog_image(&reopened), image);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ddl_survives_reopen() {
        let dir = temp_dir("ddl");
        let image = {
            let catalog = open_durable(&dir, false).unwrap();
            catalog.create_table("a", schema(), TableOptions::default()).unwrap();
            catalog.create_table("b", schema(), TableOptions::default()).unwrap();
            catalog.get("a").unwrap().write().insert_row(vec![Value::Int(1), Value::Null]).unwrap();
            catalog.rename("a", "c").unwrap();
            catalog.swap("b", "c").unwrap();
            catalog.drop_table_if_exists("b").unwrap();
            catalog_image(&catalog)
        };
        let reopened = open_durable(&dir, false).unwrap();
        assert_eq!(catalog_image(&reopened), image);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_budget_zero_loses_unacknowledged_write() {
        let dir = temp_dir("budget");
        let image = {
            let catalog = open_durable(&dir, false).unwrap();
            let t = catalog.create_table("vertex", schema(), TableOptions::default()).unwrap();
            t.write().insert_row(vec![Value::Int(1), Value::Null]).unwrap();
            catalog.checkpoint().unwrap();
            let image = catalog_image(&catalog);
            let sink = catalog.wal_sink().unwrap();
            sink.set_crash_budget(Some(0));
            // The write fails before acknowledgement...
            assert!(t.write().insert_row(vec![Value::Int(2), Value::Null]).is_err());
            assert!(sink.crashed());
            // ...and all later durable writes fail too.
            assert!(t.write().insert_row(vec![Value::Int(3), Value::Null]).is_err());
            image
        };
        let reopened = open_durable(&dir, false).unwrap();
        assert_eq!(catalog_image(&reopened), image);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replace_commit_is_atomic_across_tables() {
        let dir = temp_dir("commit");
        let (before, after) = {
            let catalog = open_durable(&dir, false).unwrap();
            catalog.create_table("vertex", schema(), TableOptions::default()).unwrap();
            catalog.create_table("msg", schema(), TableOptions::default()).unwrap();
            catalog.checkpoint().unwrap();
            let before = catalog_image(&catalog);

            let mut v = Table::new("vertex", schema(), TableOptions::default());
            v.insert_row(vec![Value::Int(10), Value::Float(1.0)]).unwrap();
            let mut m = Table::new("msg", schema(), TableOptions::default());
            m.insert_row(vec![Value::Int(20), Value::Float(2.0)]).unwrap();
            catalog.replace_contents_many(vec![("vertex".into(), v), ("msg".into(), m)]).unwrap();
            (before, catalog_image(&catalog))
        };
        assert_ne!(before, after);
        let reopened = open_durable(&dir, false).unwrap();
        assert_eq!(catalog_image(&reopened), after);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_corruption_is_detected() {
        let dir = temp_dir("mf");
        {
            let catalog = open_durable(&dir, false).unwrap();
            catalog.create_table("vertex", schema(), TableOptions::default()).unwrap();
            catalog.checkpoint().unwrap();
        }
        let path = dir.join(MANIFEST_NAME);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(open_durable(&dir, false), Err(StorageError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
