//! Out-of-core integration proofs over the durable layer.
//!
//! 1. **Counter identity** (regression pin): a scan over pool-**reloaded**
//!    segments must bump `segments_pruned` / `blocks_pruned` /
//!    `bytes_decoded` by exactly the same deltas — and return bitwise-equal
//!    batches — as the identical scan over **fresh** resident segments, for
//!    single-block, multi-block and fully pruned segments alike. Eager scans
//!    (`Table::scan`) and cursor pulls share one code path, so the pin runs
//!    both shapes.
//!
//! 2. **Prune-without-reload**: zone-map pruning of an evicted segment is
//!    answered from the handle's cached maps — the pool's `reloads` gauge
//!    must not move.
//!
//! 3. **Eviction end-to-end**: a checkpoint gives every cold segment a
//!    `.vxtb` spill twin; a 1-byte budget then evicts them all, and a full
//!    table re-serialization (which pins every segment back in) is
//!    bitwise-identical to the pre-eviction image.

use std::path::PathBuf;
use std::sync::Arc;
use vertexica_common::sync::{AtomicU64, Ordering};

use vertexica_storage::persist;
use vertexica_storage::{
    open_durable, Catalog, ColumnPredicate, DataType, Field, PredicateOp, Schema, TableOptions,
    Value, BLOCK_ROWS,
};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("vx_pool_{tag}_{}_{n}", std::process::id()))
}

fn pair_schema() -> Arc<Schema> {
    Schema::new(vec![Field::not_null("id", DataType::Int), Field::new("val", DataType::Int)])
}

/// Durable catalog with one table `t` holding two checkpointed ROS
/// segments: segment 0 spans ids `0..2500` (3 blocks), segment 1 spans ids
/// `10_000..10_100` (1 block — its per-block zone maps are elided, so the
/// whole-segment fallback is on the scan path).
fn catalog_with_segments(dir: &PathBuf) -> Arc<Catalog> {
    let catalog = open_durable(dir, false).unwrap();
    let t = catalog.create_table("t", pair_schema(), TableOptions::default()).unwrap();
    {
        let mut guard = t.write();
        let rows: Vec<Vec<Value>> =
            (0..2500).map(|i| vec![Value::Int(i), Value::Int(i % 97)]).collect();
        guard.insert_rows(rows).unwrap();
        guard.moveout().unwrap();
        let rows: Vec<Vec<Value>> =
            (10_000..10_100).map(|i| vec![Value::Int(i), Value::Int(i % 7)]).collect();
        guard.insert_rows(rows).unwrap();
        guard.moveout().unwrap();
        assert_eq!(guard.num_segments(), 2);
    }
    // Spill twins land here; every cold segment becomes evictable.
    catalog.checkpoint().unwrap();
    catalog
}

/// Counter deltas + scan output for one predicated scan of `t`.
#[derive(Debug, PartialEq)]
struct ScanObservation {
    rows: Vec<(Value, Value)>,
    segments_pruned: u64,
    blocks_pruned: u64,
    bytes_decoded: u64,
}

fn observe_scan(catalog: &Catalog, predicates: &[ColumnPredicate]) -> ScanObservation {
    let t = catalog.get("t").unwrap();
    let guard = t.read();
    let (sp0, bp0, bd0) = (guard.segments_pruned(), guard.blocks_pruned(), guard.bytes_decoded());
    let batches = guard.scan(None, predicates).unwrap();
    let mut rows = Vec::new();
    for b in &batches {
        for r in 0..b.num_rows() {
            rows.push((b.column(0).value(r), b.column(1).value(r)));
        }
    }
    ScanObservation {
        rows,
        segments_pruned: guard.segments_pruned() - sp0,
        blocks_pruned: guard.blocks_pruned() - bp0,
        bytes_decoded: guard.bytes_decoded() - bd0,
    }
}

#[test]
fn reloaded_segments_scan_and_count_identically_to_fresh() {
    let dir = temp_dir("counters");
    let catalog = catalog_with_segments(&dir);
    let pool = catalog.buffer_pool();

    // Point hit inside block 1 of the multi-block segment: prunes the
    // single-block segment at segment level and two of three blocks inside
    // the survivor.
    let probe = (BLOCK_ROWS + 5) as i64;
    let point = [ColumnPredicate::new(0, PredicateOp::Eq, Value::Int(probe))];
    // Range hitting only the single-block segment (fallback zone map path).
    let high = [ColumnPredicate::new(0, PredicateOp::GtEq, Value::Int(10_050))];
    // Full scan, no predicates.
    let full: [ColumnPredicate; 0] = [];

    let fresh_point = observe_scan(&catalog, &point);
    let fresh_high = observe_scan(&catalog, &high);
    let fresh_full = observe_scan(&catalog, &full);
    assert_eq!(fresh_point.rows, vec![(Value::Int(probe), Value::Int(probe % 97))]);
    assert_eq!(fresh_point.segments_pruned, 1, "single-block segment pruned whole");
    assert_eq!(fresh_point.blocks_pruned, 2, "two of three blocks pruned in the survivor");
    assert_eq!(fresh_high.rows.len(), 50);
    assert_eq!(fresh_high.segments_pruned, 1);
    assert_eq!(fresh_full.rows.len(), 2600);
    assert_eq!(pool.stats().reloads, 0);

    // Evict everything, then replay the same scans over reloads.
    pool.set_budget(Some(1));
    assert!(pool.stats().evictions >= 2, "both checkpointed segments must evict");
    assert_eq!(pool.stats().resident_bytes, 0);

    let reload_point = observe_scan(&catalog, &point);
    assert_eq!(reload_point, fresh_point, "point scan: counters/rows diverge after reload");
    let reload_high = observe_scan(&catalog, &high);
    assert_eq!(reload_high, fresh_high, "fallback-map scan: counters/rows diverge after reload");
    let reload_full = observe_scan(&catalog, &full);
    assert_eq!(reload_full, fresh_full, "full scan: counters/rows diverge after reload");
    assert!(pool.stats().reloads >= 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pruning_evicted_segments_never_reloads_them() {
    let dir = temp_dir("prune");
    let catalog = catalog_with_segments(&dir);
    let pool = catalog.buffer_pool();
    pool.set_budget(Some(1));
    assert!(pool.stats().evictions >= 2);

    // Predicate outside every segment's id range: both segments are pruned
    // from their handle-cached zone maps without touching disk.
    let miss = [ColumnPredicate::new(0, PredicateOp::GtEq, Value::Int(1_000_000))];
    let obs = observe_scan(&catalog, &miss);
    assert!(obs.rows.is_empty());
    assert_eq!(obs.segments_pruned, 2);
    assert_eq!(obs.bytes_decoded, 0);
    assert_eq!(pool.stats().reloads, 0, "pruning must not fault segments back in");
    assert_eq!(pool.stats().resident_bytes, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn evict_then_reload_reserializes_bitwise_identically() {
    let dir = temp_dir("bitwise");
    let catalog = catalog_with_segments(&dir);
    let pool = catalog.buffer_pool();

    let before = {
        let t = catalog.get("t").unwrap();
        let bytes = persist::table_to_bytes_physical(&t.read()).unwrap();
        bytes
    };
    pool.set_budget(Some(1));
    assert!(pool.stats().evictions >= 2);

    // Re-serializing pins every segment back in through the reload path; the
    // physical image must be bitwise what it was before eviction.
    let after = {
        let t = catalog.get("t").unwrap();
        let bytes = persist::table_to_bytes_physical(&t.read()).unwrap();
        bytes
    };
    assert_eq!(before, after, "evict→reload changed the physical table image");
    assert!(pool.stats().reloads >= 2);

    // And the reloaded state survives a real reopen.
    drop(catalog);
    let reopened = open_durable(&dir, false).unwrap();
    let image = {
        let t = reopened.get("t").unwrap();
        let bytes = persist::table_to_bytes_physical(&t.read()).unwrap();
        bytes
    };
    assert_eq!(before, image, "recovery image diverged");

    let _ = std::fs::remove_dir_all(&dir);
}
