//! Property-based tests for the storage layer: encoding round-trips, bitmap
//! algebra, persistence fidelity, table scan/DML invariants.

use proptest::prelude::*;
use vertexica_storage::encoding::EncodedColumn;
use vertexica_storage::persist;
use vertexica_storage::{
    Bitmap, Column, ColumnPredicate, DataType, Field, PredicateOp, RecordBatch, Schema, Table,
    TableOptions, Value,
};

fn arb_value_for(dtype: DataType) -> BoxedStrategy<Value> {
    match dtype {
        DataType::Bool => {
            prop_oneof![Just(Value::Null), any::<bool>().prop_map(Value::Bool)].boxed()
        }
        DataType::Int => prop_oneof![
            1 => Just(Value::Null),
            9 => any::<i64>().prop_map(Value::Int)
        ]
        .boxed(),
        DataType::Float => prop_oneof![
            1 => Just(Value::Null),
            9 => (-1e12f64..1e12).prop_map(Value::Float)
        ]
        .boxed(),
        DataType::Str => prop_oneof![
            1 => Just(Value::Null),
            9 => "[a-z]{0,12}".prop_map(Value::Str)
        ]
        .boxed(),
        DataType::Blob => prop_oneof![
            1 => Just(Value::Null),
            9 => proptest::collection::vec(any::<u8>(), 0..24).prop_map(Value::Blob)
        ]
        .boxed(),
    }
}

fn arb_dtype() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Bool),
        Just(DataType::Int),
        Just(DataType::Float),
        Just(DataType::Str),
        Just(DataType::Blob),
    ]
}

fn arb_column() -> impl Strategy<Value = (DataType, Vec<Value>)> {
    arb_dtype().prop_flat_map(|dt| {
        proptest::collection::vec(arb_value_for(dt), 0..200).prop_map(move |vals| (dt, vals))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every encoding decodes back to exactly the input values.
    #[test]
    fn encodings_roundtrip((dtype, values) in arb_column()) {
        let col = Column::from_values(dtype, &values).unwrap();
        let auto = EncodedColumn::encode_auto(&col).decode().unwrap();
        prop_assert_eq!(auto.iter().collect::<Vec<_>>(), values.clone());

        let rle = EncodedColumn::encode_rle(&col).decode().unwrap();
        prop_assert_eq!(rle.iter().collect::<Vec<_>>(), values.clone());

        if dtype == DataType::Str {
            let dict = EncodedColumn::encode_dict(&col).decode().unwrap();
            prop_assert_eq!(dict.iter().collect::<Vec<_>>(), values);
        }
    }

    /// Bitmap algebra obeys De Morgan and cardinality laws.
    #[test]
    fn bitmap_algebra(bits_a in proptest::collection::vec(any::<bool>(), 1..300)) {
        let n = bits_a.len();
        let bits_b: Vec<bool> = bits_a.iter().map(|b| !b).collect();
        let a = Bitmap::from_iter_bool(bits_a.iter().copied());
        let b = Bitmap::from_iter_bool(bits_b.iter().copied());
        prop_assert_eq!(a.and(&b).count_ones(), 0);
        prop_assert_eq!(a.or(&b).count_ones(), n);
        // De Morgan: !(a & b) == !a | !b
        prop_assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        prop_assert_eq!(a.count_ones() + a.count_zeros(), n);
        // iter_ones agrees with get.
        for i in a.iter_ones() {
            prop_assert!(a.get(i));
        }
    }

    /// Tables persist and restore to the same logical content.
    #[test]
    fn persistence_is_lossless(
        rows in proptest::collection::vec(
            (any::<i64>(), "[a-z]{0,6}", proptest::option::of(-1e6f64..1e6)),
            0..120,
        )
    ) {
        let schema = Schema::new(vec![
            Field::not_null("id", DataType::Int),
            Field::new("name", DataType::Str),
            Field::new("score", DataType::Float),
        ]);
        let mut t = Table::new("t", schema.clone(), TableOptions::default().with_moveout_threshold(32));
        for (id, name, score) in &rows {
            t.insert_row(vec![
                Value::Int(*id),
                Value::Str(name.clone()),
                score.map(Value::Float).unwrap_or(Value::Null),
            ]).unwrap();
        }
        let bytes = persist::table_to_bytes(&t).unwrap();
        let back = persist::table_from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.num_rows(), t.num_rows());
        let read = |t: &Table| {
            let b = t.scan(None, &[]).unwrap();
            let merged = RecordBatch::concat(schema.clone(), &b).unwrap();
            let mut rows = merged.rows();
            rows.sort_by(|a, b| {
                format!("{a:?}").cmp(&format!("{b:?}"))
            });
            rows
        };
        prop_assert_eq!(read(&t), read(&back));
    }

    /// Scan predicates return exactly the rows a full-scan filter would.
    #[test]
    fn scan_predicates_match_post_filter(
        keys in proptest::collection::vec(-100i64..100, 1..200),
        threshold in -100i64..100,
    ) {
        let schema = Schema::new(vec![Field::not_null("k", DataType::Int)]);
        let mut t = Table::new("t", schema, TableOptions::default().with_moveout_threshold(16).sorted_by(vec![0]));
        for k in &keys {
            t.insert_row(vec![Value::Int(*k)]).unwrap();
        }
        let pred = ColumnPredicate::new(0, PredicateOp::Gt, Value::Int(threshold));
        let got: usize = t.scan(None, &[pred]).unwrap().iter().map(|b| b.num_rows()).sum();
        let expected = keys.iter().filter(|&&k| k > threshold).count();
        prop_assert_eq!(got, expected);
    }

    /// delete + count stays consistent under arbitrary delete sets.
    #[test]
    fn deletes_are_exact(
        n in 1usize..150,
        delete_mask in proptest::collection::vec(any::<bool>(), 150),
    ) {
        let schema = Schema::new(vec![Field::not_null("k", DataType::Int)]);
        let mut t = Table::new("t", schema, TableOptions::default().with_moveout_threshold(20));
        for i in 0..n {
            t.insert_row(vec![Value::Int(i as i64)]).unwrap();
        }
        let scans = t.scan_with_rowids(None, &[]).unwrap();
        let mut doomed = Vec::new();
        let mut expected_dead = 0;
        for (batch, ids) in &scans {
            for (i, &rowid) in ids.iter().enumerate().take(batch.num_rows()) {
                let key = batch.row(i)[0].as_int().unwrap() as usize;
                if delete_mask[key] {
                    doomed.push(rowid);
                    expected_dead += 1;
                }
            }
        }
        let dead = t.delete_rowids(&doomed).unwrap();
        prop_assert_eq!(dead, expected_dead);
        prop_assert_eq!(t.num_rows(), n - expected_dead);
        // Deleted keys never reappear in scans.
        for b in t.scan(None, &[]).unwrap() {
            for i in 0..b.num_rows() {
                let key = b.row(i)[0].as_int().unwrap() as usize;
                prop_assert!(!delete_mask[key]);
            }
        }
    }

    /// A pull-based scan cursor over any mix of WOS rows, ROS segments,
    /// delete vectors and pushed-down predicates yields, concatenated,
    /// exactly the eager scan's batches — bitwise, batch for batch — and
    /// exactly the rows a reference row-filter selects.
    #[test]
    fn scan_cursor_is_bitwise_equal_to_eager_scan(
        rows in proptest::collection::vec(
            (-50i64..50, proptest::option::of(-100i64..100)),
            0..150,
        ),
        moveout in 3usize..40,
        compress in any::<bool>(),
        delete_mask in proptest::collection::vec(any::<bool>(), 150),
        threshold in -50i64..50,
        flip in any::<bool>(),
    ) {
        let schema = Schema::new(vec![
            Field::not_null("k", DataType::Int),
            Field::new("v", DataType::Int),
        ]);
        let mut options = TableOptions::default().with_moveout_threshold(moveout);
        if compress {
            options = options.compressed();
        }
        let mut t = Table::new("t", schema, options);
        for (k, v) in &rows {
            t.insert_row(vec![Value::Int(*k), v.map(Value::Int).unwrap_or(Value::Null)]).unwrap();
        }
        // Random deletes across WOS and ROS, addressed by scan position.
        let mut doomed = Vec::new();
        let mut live = vec![true; rows.len()];
        let mut pos = 0usize;
        for (_, ids) in t.scan_with_rowids(None, &[]).unwrap() {
            for id in ids {
                if delete_mask[pos % delete_mask.len()] {
                    doomed.push(id);
                    live[pos] = false;
                }
                pos += 1;
            }
        }
        // Rowid scan order may interleave WOS/ROS differently from insert
        // order, so recompute the expected survivors from the table itself.
        t.delete_rowids(&doomed).unwrap();
        let op = if flip { PredicateOp::Gt } else { PredicateOp::LtEq };
        let pred = ColumnPredicate::new(0, op, Value::Int(threshold));

        let eager = t.scan(None, std::slice::from_ref(&pred)).unwrap();
        let mut cursor = t.scan_cursor(None, std::slice::from_ref(&pred)).unwrap();
        let mut pulled = Vec::new();
        while let Some(b) = cursor.next_batch().unwrap() {
            pulled.push(b);
        }
        // Batch-for-batch bitwise identity (same segmentation, same rows).
        prop_assert_eq!(eager.len(), pulled.len());
        for (e, p) in eager.iter().zip(&pulled) {
            prop_assert_eq!(e.num_rows(), p.num_rows());
            prop_assert_eq!(e.rows(), p.rows());
        }
        // And both equal the reference row filter over live rows.
        let unfiltered: usize = t.scan(None, &[]).unwrap().iter().map(|b| b.num_rows()).sum();
        let expected: usize = {
            let all: Vec<Vec<Value>> =
                t.scan(None, &[]).unwrap().iter().flat_map(|b| b.rows()).collect();
            all.iter().filter(|r| pred.matches(&r[0])).count()
        };
        prop_assert!(unfiltered <= rows.len());
        prop_assert_eq!(RecordBatch::total_rows(&pulled), expected);
    }

    /// Evicting every checkpointed segment out of the buffer pool and
    /// faulting it back in through its `.vxtb` spill image is bitwise
    /// lossless: scans return identical rows and the physical table image
    /// re-serializes to the same bytes, for arbitrary row mixes, moveout
    /// granularities and encodings.
    #[test]
    fn evict_reload_roundtrips_bitwise(
        rows in proptest::collection::vec(
            (any::<i64>(), proptest::option::of("[a-z]{0,8}"), proptest::option::of(-1e9f64..1e9)),
            1..180,
        ),
        moveout in 4usize..48,
        compress in any::<bool>(),
    ) {
        use vertexica_common::sync::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "vx_evict_prop_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let schema = Schema::new(vec![
            Field::not_null("id", DataType::Int),
            Field::new("name", DataType::Str),
            Field::new("score", DataType::Float),
        ]);
        let mut options = TableOptions::default().with_moveout_threshold(moveout);
        if compress {
            options = options.compressed();
        }
        let catalog = vertexica_storage::open_durable(&dir, false).unwrap();
        let t = catalog.create_table("t", schema, options).unwrap();
        for (id, name, score) in &rows {
            t.write().insert_row(vec![
                Value::Int(*id),
                name.clone().map(Value::Str).unwrap_or(Value::Null),
                score.map(Value::Float).unwrap_or(Value::Null),
            ]).unwrap();
        }
        t.write().moveout().unwrap();
        catalog.checkpoint().unwrap();

        let before_rows: Vec<Vec<Value>> = t
            .read()
            .scan(None, &[])
            .unwrap()
            .iter()
            .flat_map(|b| b.rows())
            .collect();
        let before_image = persist::table_to_bytes_physical(&t.read()).unwrap();

        let pool = catalog.buffer_pool();
        pool.set_budget(Some(1));
        prop_assert!(pool.stats().evictions >= 1, "at least one segment must evict");

        let after_rows: Vec<Vec<Value>> = t
            .read()
            .scan(None, &[])
            .unwrap()
            .iter()
            .flat_map(|b| b.rows())
            .collect();
        prop_assert_eq!(before_rows, after_rows);
        let after_image = persist::table_to_bytes_physical(&t.read()).unwrap();
        prop_assert_eq!(before_image, after_image);
        prop_assert!(pool.stats().reloads >= 1);

        drop(t);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Values survive a coerce to their own type, and Int→Float→Int is the
    /// identity on integers that fit.
    #[test]
    fn coercion_laws(v in any::<i32>()) {
        let int = Value::Int(v as i64);
        prop_assert_eq!(int.coerce(DataType::Int).unwrap(), int.clone());
        let f = int.coerce(DataType::Float).unwrap();
        prop_assert_eq!(f.coerce(DataType::Int).unwrap(), int);
    }
}
