//! Times the §3.2 1-hop SQL algorithms and hybrid analyses.
//!
//! ```text
//! cargo run -p vertexica-bench --release --bin hybrid_bench
//! ```

use vertexica_algorithms::{hybrid, sqlalgo};
use vertexica_bench::{figure2_dataset, fresh_session, HarnessConfig};
use vertexica_common::timer::Stopwatch;

fn main() {
    let cfg = HarnessConfig::from_env();
    let graph = figure2_dataset("twitter", &cfg);
    println!(
        "# 1-hop + hybrid analyses on twitter profile at scale {}: {} nodes, {} edges\n",
        cfg.scale,
        graph.num_vertices,
        graph.num_edges()
    );
    let session = fresh_session(&graph);

    let sw = Stopwatch::start();
    let triangles = sqlalgo::triangle_count_sql(&session).unwrap();
    println!("triangle counting      {:.3}s  ({} triangles)", sw.elapsed_secs(), triangles);

    let sw = Stopwatch::start();
    let overlap = sqlalgo::strong_overlap_sql(&session, 3).unwrap();
    println!("strong overlap (k=3)   {:.3}s  ({} pairs)", sw.elapsed_secs(), overlap.len());

    let sw = Stopwatch::start();
    let ties = sqlalgo::weak_ties_sql(&session).unwrap();
    let bridges = ties.iter().filter(|&&(_, c)| c > 0).count();
    println!("weak ties              {:.3}s  ({} bridging nodes)", sw.elapsed_secs(), bridges);

    let sw = Stopwatch::start();
    let global = sqlalgo::global_clustering_sql(&session).unwrap();
    println!("global clustering      {:.3}s  (coefficient {:.4})", sw.elapsed_secs(), global);

    let sw = Stopwatch::start();
    let important = hybrid::important_bridges(&session, 5, 0.0, 1).unwrap();
    println!("important bridges      {:.3}s  ({} nodes)", sw.elapsed_secs(), important.len());

    let sw = Stopwatch::start();
    let (source, _) = hybrid::sssp_from_most_clustered(&session).unwrap();
    println!("sssp from most-clustered {:.3}s (source {})", sw.elapsed_secs(), source);
}
