//! Reproduces the paper's Figure 2: PageRank and Shortest Paths across
//! Graph Database / Giraph / Vertexica / Vertexica (SQL) on the three
//! datasets.
//!
//! ```text
//! cargo run -p vertexica-bench --release --bin figure2 -- [--panel a|b|both]
//! VERTEXICA_SCALE=0.05 cargo run -p vertexica-bench --release --bin figure2
//! ```

use vertexica_bench::{figure2_panel, format_figure2, HarnessConfig, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let panel = args
        .iter()
        .position(|a| a == "--panel")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("both")
        .to_string();

    let cfg = HarnessConfig::from_env();
    println!(
        "# Figure 2 reproduction — scale {} of paper dataset sizes, DNF budget {:?}",
        cfg.scale, cfg.dnf_budget
    );
    println!(
        "# paper (full scale): PageRank  Twitter 589.0/47.0/10.9/3.3  GPlus -/53.5/47.7/4.2  LiveJournal -/190.4/321.5/29.4"
    );
    println!(
        "# paper (full scale): SSSP      Twitter 395.6/43.7/10.5/3.0  GPlus -/50.8/23.8/3.9  LiveJournal -/115.5/146.3/54.4"
    );
    println!();

    if panel == "a" || panel == "both" {
        let rows = figure2_panel(Workload::PageRank, &cfg);
        println!("{}", format_figure2(Workload::PageRank, &rows));
    }
    if panel == "b" || panel == "both" {
        let rows = figure2_panel(Workload::ShortestPaths, &cfg);
        println!("{}", format_figure2(Workload::ShortestPaths, &rows));
    }
}
