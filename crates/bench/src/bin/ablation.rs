//! Ablation benchmarks for the four §2.3 optimizations.
//!
//! ```text
//! cargo run -p vertexica-bench --release --bin ablation -- \
//!     [--exp union-vs-join|worker-scaling|batching|update-vs-replace|pool-size|pipeline|all]
//! ```

use std::sync::Arc;

use vertexica::{run_program, InputMode, VertexicaConfig};
use vertexica_algorithms::vc::{PageRank, Sssp};
use vertexica_bench::{figure2_dataset, fresh_session, HarnessConfig};
use vertexica_common::timer::Stopwatch;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let exp = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all")
        .to_string();

    let cfg = HarnessConfig::from_env();
    // Ablations use the small (Twitter-profile) dataset so every variant —
    // including the deliberately slow ones — completes.
    let graph = figure2_dataset("twitter", &cfg);
    println!(
        "# Ablations on twitter profile at scale {}: {} nodes, {} edges\n",
        cfg.scale,
        graph.num_vertices,
        graph.num_edges()
    );

    if exp == "union-vs-join" || exp == "all" {
        println!("## §2.3 Table Unions: input assembly strategy (PageRank)");
        for (label, mode) in
            [("table-union", InputMode::TableUnion), ("3-way-join", InputMode::ThreeWayJoin)]
        {
            let session = fresh_session(&graph);
            let config = VertexicaConfig::default().with_input_mode(mode);
            let sw = Stopwatch::start();
            run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap();
            println!("{label:<14} {:.3}s", sw.elapsed_secs());
        }
        println!();
    }

    if exp == "worker-scaling" || exp == "all" {
        println!("## §2.3 Parallel Workers: worker count (PageRank)");
        for workers in [1usize, 2, 4, 8] {
            let session = fresh_session(&graph);
            let config = VertexicaConfig::default().with_workers(workers);
            let sw = Stopwatch::start();
            run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap();
            println!("workers={workers:<3} {:.3}s", sw.elapsed_secs());
        }
        println!();
    }

    if exp == "batching" || exp == "all" {
        println!("## §2.3 Vertex Batching: partition count (PageRank)");
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        for partitions in [1, cores, cores * 4, cores * 16, cores * 64] {
            let session = fresh_session(&graph);
            let config = VertexicaConfig::default().with_partitions(partitions);
            let sw = Stopwatch::start();
            run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap();
            println!("partitions={partitions:<6} {:.3}s", sw.elapsed_secs());
        }
        println!();
    }

    if exp == "pool-size" || exp == "all" {
        println!("## Shared runtime: pool-size sweep on one persistent session");
        println!("# Unlike worker-scaling, each session (and its Database pool) is");
        println!("# created once per dataset and resized in place between runs,");
        println!("# isolating the runtime's scaling from graph-reload cost.");
        println!("# The micro (1k-vertex) dataset is deliberately included as the");
        println!("# flat baseline; the larger generator scales are where parallel");
        println!("# scaling regressions become visible. Queue-wait / steal counts");
        println!("# come from the per-superstep runtime metrics.");
        // Sweep the Figure-2 generators at increasing scale multipliers.
        // `VERTEXICA_POOL_SWEEP_MULTS` overrides the multiplier list.
        let mults: Vec<f64> = std::env::var("VERTEXICA_POOL_SWEEP_MULTS")
            .map(|s| s.split(',').filter_map(|v| v.trim().parse().ok()).collect())
            .unwrap_or_else(|_| vec![1.0, 4.0, 16.0]);
        for mult in mults {
            let scaled = vertexica_graphgen::dataset("twitter", cfg.scale * mult, cfg.seed)
                .expect("twitter profile");
            println!(
                "### twitter ×{mult}: {} nodes, {} edges",
                scaled.num_vertices,
                scaled.num_edges()
            );
            let session = fresh_session(&scaled);
            let mut baseline = None;
            for pool_size in [1usize, 2, 4, 8, 16] {
                // run_program resizes the session's shared pool to num_workers.
                let config = VertexicaConfig::default().with_workers(pool_size);
                let sw = Stopwatch::start();
                let stats =
                    run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap();
                let secs = sw.elapsed_secs();
                let speedup = baseline.get_or_insert(secs).max(1e-12) / secs.max(1e-12);
                let queue_wait: f64 = stats.per_superstep.iter().map(|s| s.queue_wait_secs).sum();
                let steals: u64 = stats.per_superstep.iter().map(|s| s.steals).sum();
                let overlap: f64 = stats.per_superstep.iter().map(|s| s.overlap_secs).sum();
                let peak =
                    stats.per_superstep.iter().map(|s| s.peak_batch_bytes).max().unwrap_or(0);
                let apply: f64 = stats.per_superstep.iter().map(|s| s.apply_secs).sum();
                let apply_par =
                    stats.per_superstep.iter().map(|s| s.apply_parallelism).max().unwrap_or(1);
                // Ablation column: the same run with the serial one-shot SQL
                // apply path, isolating what the segment-parallel apply
                // saves (it also wins at pool=1 by dropping the staged
                // LEFT JOIN rebuild and the post-commit halting scan).
                let serial_config = config.clone().with_parallel_apply(false);
                let serial_stats =
                    run_program(&session, Arc::new(PageRank::new(5, 0.85)), &serial_config)
                        .unwrap();
                let serial_apply: f64 =
                    serial_stats.per_superstep.iter().map(|s| s.apply_secs).sum();
                println!(
                    "pool={pool_size:<3} {secs:.3}s  speedup×{speedup:<5.2} \
                     apply={apply:.3}s(×{apply_par}, serial {serial_apply:.3}s) \
                     overlap={overlap:.3}s queue-wait={queue_wait:.3}s steals={steals} \
                     peak-batch={peak}B"
                );
            }
            println!();
        }
    }

    if exp == "pipeline" || exp == "all" {
        println!("## Pipelined supersteps: overlapped vs phased streaming (PageRank)");
        println!("# pipelined: chunks scatter on the pool and sealed partitions compute");
        println!("# while assemble streams; phased: scatter on the coordinator thread,");
        println!("# then compute. The overlap column is the wall-clock time worker");
        println!("# compute ran inside the assemble window (pipelined-only by");
        println!("# construction); chunk-rows shrinks chunks to give the dispatcher");
        println!("# more scatter granularity. peak-resident-scan is the most");
        println!("# un-emitted source-scan data assemble ever held: one in-flight");
        println!("# batch with the pull-based cursor (streamed), whole tables with");
        println!("# the eager scan — the streaming-scan memory win, made visible.");
        for (label, pipelined, stream_scan, chunk_rows) in [
            ("phased", false, true, vertexica::input::STREAM_CHUNK_ROWS),
            ("pipelined", true, true, vertexica::input::STREAM_CHUNK_ROWS),
            ("pipelined-4k", true, true, 4096),
            ("eager-scan", true, false, vertexica::input::STREAM_CHUNK_ROWS),
        ] {
            let session = fresh_session(&graph);
            // Pin the worker count: the pipelined dataflow needs a real pool
            // (on a 1-core host the default degrades to the sequential
            // fallback, which by design reports zero overlap).
            let config = VertexicaConfig::default()
                .with_workers(4)
                .with_pipelined(pipelined)
                .with_streaming_scan(stream_scan)
                .with_stream_chunk_rows(chunk_rows);
            let sw = Stopwatch::start();
            let stats = run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap();
            let secs = sw.elapsed_secs();
            let overlap: f64 = stats.per_superstep.iter().map(|s| s.overlap_secs).sum();
            let assemble: f64 = stats.per_superstep.iter().map(|s| s.assemble_secs).sum();
            let compute: f64 = stats.per_superstep.iter().map(|s| s.compute_secs).sum();
            let nested: u64 = stats.per_superstep.iter().map(|s| s.nested_scopes).sum();
            let resident =
                stats.per_superstep.iter().map(|s| s.peak_resident_scan_bytes).max().unwrap_or(0);
            println!(
                "{label:<13} {secs:.3}s  assemble={assemble:.3}s compute={compute:.3}s \
                 overlap={overlap:.3}s nested-scopes={nested} peak-resident-scan={resident}B"
            );
        }
        println!();
    }

    if exp == "update-vs-replace" || exp == "all" {
        println!("## §2.3 Update vs Replace: threshold sweep");
        println!("# PageRank touches every vertex each superstep (dense updates);");
        println!("# SSSP touches a shrinking frontier (sparse updates).");
        for (wl, dense) in [("pagerank", true), ("sssp", false)] {
            for threshold in [0.0, 0.2, 0.5, 1.01] {
                let session = fresh_session(&graph);
                let config = VertexicaConfig::default().with_replace_threshold(threshold);
                let sw = Stopwatch::start();
                let stats = if dense {
                    run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap()
                } else {
                    run_program(&session, Arc::new(Sssp::new(0)), &config).unwrap()
                };
                let replaced = stats.per_superstep.iter().filter(|s| s.replaced).count();
                println!(
                    "{wl:<9} threshold={threshold:<5} {:.3}s  (replaced {}/{} supersteps)",
                    sw.elapsed_secs(),
                    replaced,
                    stats.per_superstep.len()
                );
            }
        }
    }
}
