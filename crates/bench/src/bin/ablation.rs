//! Ablation benchmarks for the four §2.3 optimizations.
//!
//! ```text
//! cargo run -p vertexica-bench --release --bin ablation -- \
//!     [--exp union-vs-join|worker-scaling|batching|update-vs-replace|pool-size|pipeline|expr|wal|evict|shard|all]
//! ```

use std::sync::Arc;

use vertexica::{run_program, InputMode, VertexicaConfig};
use vertexica_algorithms::vc::{PageRank, Sssp};
use vertexica_bench::{figure2_dataset, fresh_session, HarnessConfig};
use vertexica_common::timer::Stopwatch;
use vertexica_sql::ast::BinaryOp;
use vertexica_sql::expr::{set_vectorized_expr, PhysExpr};
use vertexica_sql::Database;
use vertexica_storage::{DataType, Field, RecordBatch, Schema, Value, BLOCK_ROWS};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let exp = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all")
        .to_string();

    let cfg = HarnessConfig::from_env();
    // Ablations use the small (Twitter-profile) dataset so every variant —
    // including the deliberately slow ones — completes.
    let graph = figure2_dataset("twitter", &cfg);
    println!(
        "# Ablations on twitter profile at scale {}: {} nodes, {} edges\n",
        cfg.scale,
        graph.num_vertices,
        graph.num_edges()
    );

    if exp == "union-vs-join" || exp == "all" {
        println!("## §2.3 Table Unions: input assembly strategy (PageRank)");
        for (label, mode) in
            [("table-union", InputMode::TableUnion), ("3-way-join", InputMode::ThreeWayJoin)]
        {
            let session = fresh_session(&graph);
            let config = VertexicaConfig::default().with_input_mode(mode);
            let sw = Stopwatch::start();
            run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap();
            println!("{label:<14} {:.3}s", sw.elapsed_secs());
        }
        println!();
    }

    if exp == "worker-scaling" || exp == "all" {
        println!("## §2.3 Parallel Workers: worker count (PageRank)");
        for workers in [1usize, 2, 4, 8] {
            let session = fresh_session(&graph);
            let config = VertexicaConfig::default().with_workers(workers);
            let sw = Stopwatch::start();
            run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap();
            println!("workers={workers:<3} {:.3}s", sw.elapsed_secs());
        }
        println!();
    }

    if exp == "batching" || exp == "all" {
        println!("## §2.3 Vertex Batching: partition count (PageRank)");
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        for partitions in [1, cores, cores * 4, cores * 16, cores * 64] {
            let session = fresh_session(&graph);
            let config = VertexicaConfig::default().with_partitions(partitions);
            let sw = Stopwatch::start();
            run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap();
            println!("partitions={partitions:<6} {:.3}s", sw.elapsed_secs());
        }
        println!();
    }

    if exp == "pool-size" || exp == "all" {
        println!("## Shared runtime: pool-size sweep on one persistent session");
        println!("# Unlike worker-scaling, each session (and its Database pool) is");
        println!("# created once per dataset and resized in place between runs,");
        println!("# isolating the runtime's scaling from graph-reload cost.");
        println!("# The micro (1k-vertex) dataset is deliberately included as the");
        println!("# flat baseline; the larger generator scales are where parallel");
        println!("# scaling regressions become visible. Queue-wait / steal counts");
        println!("# come from the per-superstep runtime metrics.");
        // Sweep the Figure-2 generators at increasing scale multipliers.
        // `VERTEXICA_POOL_SWEEP_MULTS` overrides the multiplier list.
        let mults: Vec<f64> = std::env::var("VERTEXICA_POOL_SWEEP_MULTS")
            .map(|s| s.split(',').filter_map(|v| v.trim().parse().ok()).collect())
            .unwrap_or_else(|_| vec![1.0, 4.0, 16.0]);
        for mult in mults {
            let scaled = vertexica_graphgen::dataset("twitter", cfg.scale * mult, cfg.seed)
                .expect("twitter profile");
            println!(
                "### twitter ×{mult}: {} nodes, {} edges",
                scaled.num_vertices,
                scaled.num_edges()
            );
            let session = fresh_session(&scaled);
            let mut baseline = None;
            for pool_size in [1usize, 2, 4, 8, 16] {
                // run_program resizes the session's shared pool to num_workers.
                let config = VertexicaConfig::default().with_workers(pool_size);
                let sw = Stopwatch::start();
                let stats =
                    run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap();
                let secs = sw.elapsed_secs();
                let speedup = baseline.get_or_insert(secs).max(1e-12) / secs.max(1e-12);
                let queue_wait: f64 = stats.per_superstep.iter().map(|s| s.queue_wait_secs).sum();
                let steals: u64 = stats.per_superstep.iter().map(|s| s.steals).sum();
                let overlap: f64 = stats.per_superstep.iter().map(|s| s.overlap_secs).sum();
                let peak =
                    stats.per_superstep.iter().map(|s| s.peak_batch_bytes).max().unwrap_or(0);
                let apply: f64 = stats.per_superstep.iter().map(|s| s.apply_secs).sum();
                let apply_par =
                    stats.per_superstep.iter().map(|s| s.apply_parallelism).max().unwrap_or(1);
                // Ablation column: the same run with the serial one-shot SQL
                // apply path, isolating what the segment-parallel apply
                // saves (it also wins at pool=1 by dropping the staged
                // LEFT JOIN rebuild and the post-commit halting scan).
                let serial_config = config.clone().with_parallel_apply(false);
                let serial_stats =
                    run_program(&session, Arc::new(PageRank::new(5, 0.85)), &serial_config)
                        .unwrap();
                let serial_apply: f64 =
                    serial_stats.per_superstep.iter().map(|s| s.apply_secs).sum();
                println!(
                    "pool={pool_size:<3} {secs:.3}s  speedup×{speedup:<5.2} \
                     apply={apply:.3}s(×{apply_par}, serial {serial_apply:.3}s) \
                     overlap={overlap:.3}s queue-wait={queue_wait:.3}s steals={steals} \
                     peak-batch={peak}B"
                );
            }
            println!();
        }
    }

    if exp == "pipeline" || exp == "all" {
        println!("## Pipelined supersteps: overlapped vs phased streaming (PageRank)");
        println!("# pipelined: chunks scatter on the pool and sealed partitions compute");
        println!("# while assemble streams; phased: scatter on the coordinator thread,");
        println!("# then compute. The overlap column is the wall-clock time worker");
        println!("# compute ran inside the assemble window (pipelined-only by");
        println!("# construction); chunk-rows shrinks chunks to give the dispatcher");
        println!("# more scatter granularity. peak-resident-scan is the most");
        println!("# un-emitted source-scan data assemble ever held: one in-flight");
        println!("# batch with the pull-based cursor (streamed), whole tables with");
        println!("# the eager scan — the streaming-scan memory win, made visible.");
        for (label, pipelined, stream_scan, chunk_rows) in [
            ("phased", false, true, vertexica::input::STREAM_CHUNK_ROWS),
            ("pipelined", true, true, vertexica::input::STREAM_CHUNK_ROWS),
            ("pipelined-4k", true, true, 4096),
            ("eager-scan", true, false, vertexica::input::STREAM_CHUNK_ROWS),
        ] {
            let session = fresh_session(&graph);
            // Pin the worker count: the pipelined dataflow needs a real pool
            // (on a 1-core host the default degrades to the sequential
            // fallback, which by design reports zero overlap).
            let config = VertexicaConfig::default()
                .with_workers(4)
                .with_pipelined(pipelined)
                .with_streaming_scan(stream_scan)
                .with_stream_chunk_rows(chunk_rows);
            let sw = Stopwatch::start();
            let stats = run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap();
            let secs = sw.elapsed_secs();
            let overlap: f64 = stats.per_superstep.iter().map(|s| s.overlap_secs).sum();
            let assemble: f64 = stats.per_superstep.iter().map(|s| s.assemble_secs).sum();
            let compute: f64 = stats.per_superstep.iter().map(|s| s.compute_secs).sum();
            let nested: u64 = stats.per_superstep.iter().map(|s| s.nested_scopes).sum();
            let resident =
                stats.per_superstep.iter().map(|s| s.peak_resident_scan_bytes).max().unwrap_or(0);
            println!(
                "{label:<13} {secs:.3}s  assemble={assemble:.3}s compute={compute:.3}s \
                 overlap={overlap:.3}s nested-scopes={nested} peak-resident-scan={resident}B"
            );
        }
        println!();
    }

    if exp == "expr" || exp == "all" {
        expr_ablation(&cfg);
    }

    if exp == "wal" || exp == "all" {
        wal_ablation(&graph, &cfg);
    }

    if exp == "evict" || exp == "all" {
        evict_ablation(&graph, &cfg);
    }

    if exp == "shard" || exp == "all" {
        shard_ablation(&graph, &cfg);
    }

    if exp == "update-vs-replace" || exp == "all" {
        println!("## §2.3 Update vs Replace: threshold sweep");
        println!("# PageRank touches every vertex each superstep (dense updates);");
        println!("# SSSP touches a shrinking frontier (sparse updates).");
        for (wl, dense) in [("pagerank", true), ("sssp", false)] {
            for threshold in [0.0, 0.2, 0.5, 1.01] {
                let session = fresh_session(&graph);
                let config = VertexicaConfig::default().with_replace_threshold(threshold);
                let sw = Stopwatch::start();
                let stats = if dense {
                    run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap()
                } else {
                    run_program(&session, Arc::new(Sssp::new(0)), &config).unwrap()
                };
                let replaced = stats.per_superstep.iter().filter(|s| s.replaced).count();
                println!(
                    "{wl:<9} threshold={threshold:<5} {:.3}s  (replaced {}/{} supersteps)",
                    sw.elapsed_secs(),
                    replaced,
                    stats.per_superstep.len()
                );
            }
        }
    }
}

fn bin(left: PhysExpr, op: BinaryOp, right: PhysExpr) -> PhysExpr {
    PhysExpr::Binary { left: Box::new(left), op, right: Box::new(right) }
}

/// Durability ablation: the same PageRank run in-memory, write-ahead-logged
/// without fsync, and fully fsynced — isolating what the WAL append, the
/// grouped-commit table flushes, and `fsync` each cost. Writes
/// `BENCH_pr7.json` into the current directory.
fn wal_ablation(graph: &vertexica_common::graph::EdgeList, cfg: &HarnessConfig) {
    println!("## Durability: WAL + grouped-commit flush + fsync (PageRank)");
    println!("# in-memory: the baseline database (no durability);");
    println!("# wal-nosync: every superstep apply rides one atomic WAL commit");
    println!("#   record and flushes the swapped tables' images (OS-cached);");
    println!("# wal-fsync: the same, with fsync before each acknowledgment.");
    let mut lines = Vec::new();
    for (label, durable, sync) in
        [("in-memory", false, false), ("wal-nosync", true, false), ("wal-fsync", true, true)]
    {
        let (session, dir) = if durable {
            std::env::set_var("VERTEXICA_DURABLE_SYNC", if sync { "1" } else { "0" });
            let dir =
                std::env::temp_dir().join(format!("vx_bench_wal_{}_{label}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            let db = Arc::new(Database::open(&dir).expect("open durable bench db"));
            let session = vertexica::GraphSession::create(db, "bench").expect("create session");
            session.load_edges(graph).expect("load edges");
            (session, Some(dir))
        } else {
            (fresh_session(graph), None)
        };
        let config = VertexicaConfig::default().with_durable(durable);
        let sw = Stopwatch::start();
        let stats = run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap();
        let secs = sw.elapsed_secs();
        let wal_records: u64 = stats.per_superstep.iter().map(|s| s.wal_records).sum();
        let wal_bytes: u64 = stats.per_superstep.iter().map(|s| s.wal_bytes).sum();
        let flush_bytes: u64 = stats.per_superstep.iter().map(|s| s.flush_bytes).sum();
        let totals = session.db().durability_stats().unwrap_or_default();
        println!(
            "{label:<11} {secs:.3}s  wal-records={wal_records} wal-bytes={wal_bytes}B \
             flush-bytes={flush_bytes}B commits={} checkpoints={} rotations={}",
            totals.commits, totals.checkpoints, totals.rotations
        );
        lines.push(format!(
            "    {{\"label\": \"{label}\", \"secs\": {secs:.6}, \"wal_records\": {wal_records}, \
             \"wal_bytes\": {wal_bytes}, \"flush_bytes\": {flush_bytes}, \
             \"commits\": {}, \"checkpoints\": {}, \"rotations\": {}}}",
            totals.commits, totals.checkpoints, totals.rotations
        ));
        if let Some(dir) = dir {
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"experiment\": \"wal\",\n  \"cores\": {cores},\n  \"scale\": {},\n  \
         \"workload\": \"pagerank x5 on twitter profile\",\n  \"variants\": [\n{}\n  ]\n}}\n",
        cfg.scale,
        lines.join(",\n")
    );
    std::fs::write("BENCH_pr7.json", &json).expect("write BENCH_pr7.json");
    println!("wrote BENCH_pr7.json");
    println!();
}

/// Out-of-core ablation: the same durable PageRank run with the segment
/// buffer pool unbounded, then squeezed to fractions of the checkpointed
/// footprint — isolating what clock eviction and reload-on-miss cost (and
/// proving the budgeted runs stay at or below their cap while producing the
/// same ranks). Writes `BENCH_pr8.json` into the current directory.
fn evict_ablation(graph: &vertexica_common::graph::EdgeList, cfg: &HarnessConfig) {
    use vertexica::session::edge_schema;
    use vertexica_common::graph::EdgeList;
    use vertexica_storage::ColumnBuilder;

    println!("## Out-of-core: segment buffer pool budget sweep (PageRank, durable)");
    println!("# Edges load in small append batches so the checkpointed graph spans");
    println!("# many ROS segments (the segment is the eviction granule — a budget");
    println!("# only binds if it exceeds the largest pinned segment). Each variant");
    println!("# caps the pool at a fraction of the unbounded footprint; evictions /");
    println!("# reloads are spill-twin round-trips, peak-resident is the per-");
    println!("# superstep high-water mark of pooled bytes.");
    std::env::set_var("VERTEXICA_DURABLE_SYNC", "0");

    // Finely segmented load: vertices via the normal path, then edges in
    // small append batches (one WOS moveout -> one ROS segment each).
    let load = |session: &vertexica::GraphSession| {
        let base = EdgeList::new(graph.num_vertices, vec![]);
        session.load_edges(&base).expect("load vertices");
        for chunk in graph.edges.chunks(512) {
            let mut src = ColumnBuilder::new(DataType::Int);
            let mut dst = ColumnBuilder::new(DataType::Int);
            let mut weight = ColumnBuilder::new(DataType::Float);
            let mut created = ColumnBuilder::new(DataType::Int);
            let mut etype = ColumnBuilder::new(DataType::Str);
            for e in chunk {
                src.push_int(e.src as i64);
                dst.push_int(e.dst as i64);
                weight.push_float(e.weight);
                created.push_int(0);
                etype.push_null();
            }
            let batch = RecordBatch::new(
                edge_schema(),
                vec![src.finish(), dst.finish(), weight.finish(), created.finish(), etype.finish()],
            )
            .expect("edge batch");
            session.db().append_batches(&session.edge_table(), &[batch]).expect("append edges");
        }
    };

    let mut lines = Vec::new();
    let mut footprint = 0usize;
    let mut reference: Option<Vec<(i64, Option<Vec<u8>>)>> = None;
    for (label, fraction) in
        [("unbounded", None), ("budget-1/2", Some(0.5f64)), ("budget-1/4", Some(0.25f64))]
    {
        let dir =
            std::env::temp_dir().join(format!("vx_bench_evict_{}_{label}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let db = Arc::new(Database::open(&dir).expect("open durable bench db"));
        // The measurement load runs unbounded even when the ambient
        // VERTEXICA_MEMORY_BUDGET (the CI out-of-core mode) is set.
        db.catalog().buffer_pool().set_budget(None);
        let session = vertexica::GraphSession::create(db.clone(), "bench").expect("create session");
        load(&session);
        db.checkpoint().expect("checkpoint load");
        if footprint == 0 {
            footprint = db.catalog().buffer_pool().stats().resident_bytes as usize;
        }
        let budget = fraction.map(|f| ((footprint as f64) * f) as usize);
        let config = VertexicaConfig::default().with_durable(true).with_memory_budget(budget);
        if budget.is_none() {
            db.catalog().buffer_pool().set_budget(None);
        }
        let sw = Stopwatch::start();
        let stats = run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap();
        let secs = sw.elapsed_secs();
        let evictions: u64 = stats.per_superstep.iter().map(|s| s.evictions).sum();
        let reloads: u64 = stats.per_superstep.iter().map(|s| s.reloads).sum();
        let peak = stats.per_superstep.iter().map(|s| s.resident_bytes).max().unwrap_or(0);
        let ranks: Vec<(i64, Option<Vec<u8>>)> = {
            let batches =
                session.db().scan_table(&session.vertex_table(), None, &[]).expect("rank scan");
            let mut rows = Vec::new();
            for b in &batches {
                for i in 0..b.num_rows() {
                    let row = b.row(i);
                    rows.push((row[0].as_int().expect("id"), row[1].as_blob().map(|v| v.to_vec())));
                }
            }
            rows.sort();
            rows
        };
        match &reference {
            None => reference = Some(ranks),
            Some(expected) => {
                assert_eq!(&ranks, expected, "{label}: budgeted ranks diverged from unbounded")
            }
        }
        if let Some(b) = budget {
            assert!(evictions > 0, "{label}: a below-footprint budget must force evictions");
            assert!(peak <= b as u64, "{label}: peak residency {peak} exceeds the {b}-byte budget");
        }
        let budget_str = budget.map_or("null".to_string(), |b| b.to_string());
        println!(
            "{label:<11} {secs:.3}s  budget={}B evictions={evictions} reloads={reloads} \
             peak-resident={peak}B",
            budget.map_or("∞".to_string(), |b| b.to_string())
        );
        lines.push(format!(
            "    {{\"label\": \"{label}\", \"secs\": {secs:.6}, \"budget_bytes\": {budget_str}, \
             \"footprint_bytes\": {footprint}, \"evictions\": {evictions}, \
             \"reloads\": {reloads}, \"peak_resident_bytes\": {peak}}}"
        ));
        drop(session);
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"experiment\": \"evict\",\n  \"cores\": {cores},\n  \"scale\": {},\n  \
         \"workload\": \"pagerank x5 on twitter profile, durable, finely segmented edges\",\n  \
         \"variants\": [\n{}\n  ]\n}}\n",
        cfg.scale,
        lines.join(",\n")
    );
    std::fs::write("BENCH_pr8.json", &json).expect("write BENCH_pr8.json");
    println!("wrote BENCH_pr8.json");
    println!();
}

/// Sharded-execution ablation: the same PageRank run on 1, 2 and 4 engine
/// shards — isolating what graph partitioning, outbox routing and
/// prescan-sealed cross-shard dataflow cost (and what they move: remote
/// rows, routed bytes, load skew, early partition seals). On few-core hosts
/// the routing counters — not wall clock — are the experiment; the JSON
/// discloses the core count for exactly that reason. Writes
/// `BENCH_pr9.json` into the current directory.
fn shard_ablation(graph: &vertexica_common::graph::EdgeList, cfg: &HarnessConfig) {
    use vertexica::shard::{run_sharded, ShardedDatabase, ShardedGraphSession};

    println!("## Sharded execution: shard-count sweep (PageRank, in-memory)");
    println!("# Ownership is the engine-wide key hash over vertex id, so vertex");
    println!("# rows, outbound edges and inbound messages are shard-local by");
    println!("# construction — only produced messages route, through lock-free");
    println!("# per-(src,dst) outboxes while both sides still stream. remote-rows /");
    println!("# routed-bytes count that traffic; skew is the max/mean worker-input");
    println!("# ratio across shards; early-dispatches are partitions sealed by the");
    println!("# summed prescan counts before end-of-stream. shards=1 is the plain");
    println!("# single-database engine, byte for byte.");
    // The combiner is pinned off on every variant (the sharded coordinator
    // coerces it off; the 1-shard baseline must run the same fold), so ranks
    // are bitwise-comparable across the sweep.
    let config = VertexicaConfig::default()
        .with_workers(4)
        .with_partitions(16)
        .with_combiner(false)
        .with_replace_threshold(0.0);
    let mut lines = Vec::new();
    let mut reference: Option<Vec<(vertexica_common::VertexId, f64)>> = None;
    for shards in [1usize, 2, 4] {
        let db = ShardedDatabase::new(shards);
        let ss = ShardedGraphSession::create(db, "bench").expect("create sharded session");
        ss.load_edges(graph).expect("load edges");
        let sw = Stopwatch::start();
        let stats = run_sharded(&ss, Arc::new(PageRank::new(5, 0.85)), &config).unwrap();
        let secs = sw.elapsed_secs();
        let remote: u64 = stats.per_superstep.iter().map(|s| s.remote_messages).sum();
        let routed: u64 = stats.per_superstep.iter().map(|s| s.routed_bytes).sum();
        let early: usize = stats.per_superstep.iter().map(|s| s.early_dispatches).sum();
        let skew = stats.per_superstep.iter().map(|s| s.shard_skew).fold(1.0f64, f64::max);
        let ranks: Vec<(vertexica_common::VertexId, f64)> =
            ss.vertex_values().expect("readable ranks");
        match &reference {
            None => reference = Some(ranks),
            Some(expected) => {
                assert_eq!(&ranks, expected, "shards={shards}: ranks diverged from 1-shard")
            }
        }
        println!(
            "shards={shards:<2} {secs:.3}s  remote-rows={remote} routed-bytes={routed}B \
             skew={skew:.3} early-dispatches={early} supersteps={}",
            stats.supersteps
        );
        lines.push(format!(
            "    {{\"shards\": {shards}, \"secs\": {secs:.6}, \"remote_messages\": {remote}, \
             \"routed_bytes\": {routed}, \"shard_skew\": {skew:.4}, \
             \"early_dispatches\": {early}, \"supersteps\": {}}}",
            stats.supersteps
        ));
    }
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"experiment\": \"shard\",\n  \"cores\": {cores},\n  \"scale\": {},\n  \
         \"workload\": \"pagerank x5 on twitter profile, in-memory, combiner off\",\n  \
         \"note\": \"routing counters are the experiment on few-core hosts; \
         wall-clock deltas are not meaningful at cores={cores}\",\n  \"variants\": [\n{}\n  ]\n}}\n",
        cfg.scale,
        lines.join(",\n")
    );
    std::fs::write("BENCH_pr9.json", &json).expect("write BENCH_pr9.json");
    println!("wrote BENCH_pr9.json");
    println!();
}

/// Vectorized-expression + block-decode ablation: typed slice kernels vs the
/// `Value`-per-row loop on a selective predicate, then per-block zone-map
/// pruning vs a full-segment decode. Writes `BENCH_pr6.json` into the
/// current directory.
fn expr_ablation(cfg: &HarnessConfig) {
    println!("## Expression kernels: vectorized vs row-at-a-time predicate eval");
    println!("# Same predicate tree, same batches; the only difference is the");
    println!("# VERTEXICA_VECTOR_EXPR toggle. Both paths are bitwise-identical");
    println!("# (proven by the config-matrix harness and a property test), so");
    println!("# the delta is pure evaluation cost.");

    // A selective filter over a mixed Int/Float batch, with enough operator
    // nodes that per-row dispatch overhead dominates the row path:
    //   (a * 2 + k % 97 < 1000 AND b * 0.5 < t) OR a IS NULL
    let eval_rows: usize = 65_536;
    let eval_iters: usize = (40.0 * (cfg.scale / 0.01).clamp(0.05, 4.0)) as usize;
    let schema = Schema::new(vec![
        Field::new("a", DataType::Int),
        Field::not_null("b", DataType::Float),
        Field::not_null("k", DataType::Int),
    ]);
    let rows: Vec<Vec<Value>> = (0..eval_rows)
        .map(|i| {
            let a = if i % 97 == 0 { Value::Null } else { Value::Int((i % 1000) as i64) };
            vec![a, Value::Float(i as f64 * 0.25), Value::Int(i as i64)]
        })
        .collect();
    let batch = RecordBatch::from_rows(schema, &rows).expect("bench batch");
    let predicate = bin(
        bin(
            bin(
                bin(
                    bin(PhysExpr::col(0), BinaryOp::Multiply, PhysExpr::lit(2i64)),
                    BinaryOp::Plus,
                    bin(PhysExpr::col(2), BinaryOp::Modulo, PhysExpr::lit(97i64)),
                ),
                BinaryOp::Lt,
                PhysExpr::lit(1000i64),
            ),
            BinaryOp::And,
            bin(
                bin(PhysExpr::col(1), BinaryOp::Multiply, PhysExpr::lit(0.5f64)),
                BinaryOp::Lt,
                PhysExpr::lit(7000.0f64),
            ),
        ),
        BinaryOp::Or,
        PhysExpr::IsNull { expr: Box::new(PhysExpr::col(0)), negated: false },
    );
    let mut timings = [0.0f64; 2];
    for (slot, vectorized) in [(0usize, true), (1usize, false)] {
        set_vectorized_expr(vectorized);
        let sw = Stopwatch::start();
        let mut selected = 0u64;
        for _ in 0..eval_iters.max(1) {
            let sel = predicate.eval_predicate(&batch).expect("predicate eval");
            selected += sel.count_ones() as u64;
        }
        timings[slot] = sw.elapsed_secs();
        std::hint::black_box(selected);
    }
    set_vectorized_expr(true);
    let (vec_secs, row_secs) = (timings[0], timings[1]);
    let speedup = row_secs.max(1e-12) / vec_secs.max(1e-12);
    println!(
        "rows={eval_rows} iters={} vectorized={vec_secs:.3}s row-at-a-time={row_secs:.3}s \
         speedup×{speedup:.2}",
        eval_iters.max(1)
    );

    println!();
    println!("## Block-granular decode: zone-map pruning inside one segment");
    println!("# A point-range query over a sorted key only decodes the blocks");
    println!("# whose [min,max] overlap the predicate; the full scan decodes");
    println!("# every block. bytes-decoded counts post-prune decode work.");
    let db = Database::new();
    db.execute("CREATE TABLE zb (k BIGINT NOT NULL, v BIGINT NOT NULL)").expect("create");
    let zb_schema = db.catalog().get("zb").expect("zb").read().schema().clone();
    let blocks_total: usize = 16;
    let n = BLOCK_ROWS * blocks_total;
    let zb_rows: Vec<Vec<Value>> =
        (0..n).map(|i| vec![Value::Int(i as i64), Value::Int((i * 3 % 1001) as i64)]).collect();
    let zb_batch = RecordBatch::from_rows(zb_schema, &zb_rows).expect("zb batch");
    db.replace_table_segmented("zb", vec![zb_batch]).expect("load zb");
    let handle = db.catalog().get("zb").expect("zb");
    let counters = || {
        let t = handle.read();
        (t.blocks_pruned(), t.bytes_decoded())
    };
    let (p0, d0) = counters();
    let lo = (BLOCK_ROWS * 7) as i64;
    let hi = lo + 99;
    let selective =
        db.query_int(&format!("SELECT SUM(v) FROM zb WHERE k >= {lo} AND k <= {hi}")).expect("sum");
    let (p1, d1) = counters();
    let full = db.query_int("SELECT SUM(v) FROM zb WHERE k >= 0").expect("full sum");
    let (_, d2) = counters();
    let pruned = p1 - p0;
    let (sel_bytes, full_bytes) = (d1 - d0, d2 - d1);
    println!(
        "blocks={blocks_total} pruned={pruned} selective-bytes={sel_bytes}B \
         full-scan-bytes={full_bytes}B (selective sum={selective}, full sum={full})"
    );
    assert!(pruned > 0, "selective scan should prune blocks");
    assert!(sel_bytes < full_bytes, "partial decode should beat the full-segment path");

    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"experiment\": \"expr\",\n  \"cores\": {cores},\n  \"scale\": {},\n  \
         \"eval_rows\": {eval_rows},\n  \"eval_iters\": {},\n  \
         \"vectorized_secs\": {vec_secs:.6},\n  \"row_secs\": {row_secs:.6},\n  \
         \"speedup\": {speedup:.3},\n  \"blocks_total\": {blocks_total},\n  \
         \"blocks_pruned\": {pruned},\n  \"selective_bytes_decoded\": {sel_bytes},\n  \
         \"full_scan_bytes_decoded\": {full_bytes}\n}}\n",
        cfg.scale,
        eval_iters.max(1)
    );
    std::fs::write("BENCH_pr6.json", &json).expect("write BENCH_pr6.json");
    println!("wrote BENCH_pr6.json");
    println!();
}
