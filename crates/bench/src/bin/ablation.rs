//! Ablation benchmarks for the four §2.3 optimizations.
//!
//! ```text
//! cargo run -p vertexica-bench --release --bin ablation -- \
//!     [--exp union-vs-join|worker-scaling|batching|update-vs-replace|pool-size|all]
//! ```

use std::sync::Arc;

use vertexica::{run_program, InputMode, VertexicaConfig};
use vertexica_algorithms::vc::{PageRank, Sssp};
use vertexica_bench::{figure2_dataset, fresh_session, HarnessConfig};
use vertexica_common::timer::Stopwatch;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let exp = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all")
        .to_string();

    let cfg = HarnessConfig::from_env();
    // Ablations use the small (Twitter-profile) dataset so every variant —
    // including the deliberately slow ones — completes.
    let graph = figure2_dataset("twitter", &cfg);
    println!(
        "# Ablations on twitter profile at scale {}: {} nodes, {} edges\n",
        cfg.scale,
        graph.num_vertices,
        graph.num_edges()
    );

    if exp == "union-vs-join" || exp == "all" {
        println!("## §2.3 Table Unions: input assembly strategy (PageRank)");
        for (label, mode) in
            [("table-union", InputMode::TableUnion), ("3-way-join", InputMode::ThreeWayJoin)]
        {
            let session = fresh_session(&graph);
            let config = VertexicaConfig::default().with_input_mode(mode);
            let sw = Stopwatch::start();
            run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap();
            println!("{label:<14} {:.3}s", sw.elapsed_secs());
        }
        println!();
    }

    if exp == "worker-scaling" || exp == "all" {
        println!("## §2.3 Parallel Workers: worker count (PageRank)");
        for workers in [1usize, 2, 4, 8] {
            let session = fresh_session(&graph);
            let config = VertexicaConfig::default().with_workers(workers);
            let sw = Stopwatch::start();
            run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap();
            println!("workers={workers:<3} {:.3}s", sw.elapsed_secs());
        }
        println!();
    }

    if exp == "batching" || exp == "all" {
        println!("## §2.3 Vertex Batching: partition count (PageRank)");
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        for partitions in [1, cores, cores * 4, cores * 16, cores * 64] {
            let session = fresh_session(&graph);
            let config = VertexicaConfig::default().with_partitions(partitions);
            let sw = Stopwatch::start();
            run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap();
            println!("partitions={partitions:<6} {:.3}s", sw.elapsed_secs());
        }
        println!();
    }

    if exp == "pool-size" || exp == "all" {
        println!("## Shared runtime: pool-size sweep on one persistent session");
        println!("# Unlike worker-scaling, the session (and its Database pool) is");
        println!("# created once and resized in place between runs, isolating the");
        println!("# runtime's scaling from graph-reload cost.");
        let session = fresh_session(&graph);
        for pool_size in [1usize, 2, 4, 8, 16] {
            // run_program resizes the session's shared pool to num_workers.
            let config = VertexicaConfig::default().with_workers(pool_size);
            let sw = Stopwatch::start();
            run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap();
            println!(
                "pool={pool_size:<3} {:.3}s  (pool size now {})",
                sw.elapsed_secs(),
                session.db().worker_threads()
            );
        }
        println!();
    }

    if exp == "update-vs-replace" || exp == "all" {
        println!("## §2.3 Update vs Replace: threshold sweep");
        println!("# PageRank touches every vertex each superstep (dense updates);");
        println!("# SSSP touches a shrinking frontier (sparse updates).");
        for (wl, dense) in [("pagerank", true), ("sssp", false)] {
            for threshold in [0.0, 0.2, 0.5, 1.01] {
                let session = fresh_session(&graph);
                let config = VertexicaConfig::default().with_replace_threshold(threshold);
                let sw = Stopwatch::start();
                let stats = if dense {
                    run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap()
                } else {
                    run_program(&session, Arc::new(Sssp::new(0)), &config).unwrap()
                };
                let replaced = stats.per_superstep.iter().filter(|s| s.replaced).count();
                println!(
                    "{wl:<9} threshold={threshold:<5} {:.3}s  (replaced {}/{} supersteps)",
                    sw.elapsed_secs(),
                    replaced,
                    stats.per_superstep.len()
                );
            }
        }
    }
}
