//! Benchmark harness: shared runners for the Figure-2 matrix and ablations.
//!
//! Every run compares the four systems of the paper's Figure 2 on the same
//! generated graph:
//!
//! 1. **Graph Database** — the Neo4j-like transactional store
//!    (`vertexica-graphdb`), with a DNF budget;
//! 2. **Apache Giraph** — the BSP engine with the scaled overhead model
//!    (`vertexica-giraph`);
//! 3. **Vertexica** — the vertex-centric interface on the relational engine;
//! 4. **Vertexica (SQL)** — the hand-written SQL implementations.
//!
//! Scale is controlled by `VERTEXICA_SCALE` (fraction of the paper's dataset
//! sizes, default 0.01) and the graph-database budget by
//! `VERTEXICA_DNF_BUDGET_SECS` (default 30).

use std::sync::Arc;
use std::time::Duration;

use vertexica::{run_program, GraphSession, VertexicaConfig};
use vertexica_algorithms::sqlalgo;
use vertexica_algorithms::vc::{PageRank, Sssp};
use vertexica_common::graph::EdgeList;
use vertexica_common::timer::Stopwatch;
use vertexica_common::VertexId;
use vertexica_giraph::{GiraphEngine, OverheadModel};
use vertexica_graphdb::GraphDb;
use vertexica_graphgen::profiles::PROFILES;
use vertexica_sql::Database;

/// PageRank iterations used throughout Figure 2.
pub const PR_ITERATIONS: u64 = 10;
/// Damping factor.
pub const DAMPING: f64 = 0.85;
/// SSSP source vertex.
pub const SSSP_SOURCE: VertexId = 0;

/// Benchmark-wide configuration from the environment.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    pub scale: f64,
    pub dnf_budget: Duration,
    /// Modelled durable-commit latency for the graph-database baseline
    /// (`VERTEXICA_GRAPHDB_COMMIT_MS`, default 0.25 ms — SSD-era fsync;
    /// see DESIGN.md substitutions).
    pub graphdb_commit_latency: Duration,
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

impl HarnessConfig {
    pub fn from_env() -> Self {
        let scale: f64 =
            std::env::var("VERTEXICA_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.01);
        // Default budget scales with the datasets (the paper's runs lasted
        // minutes at full scale; a fixed budget would DNF everything or
        // nothing as scale varies).
        let budget = std::env::var("VERTEXICA_DNF_BUDGET_SECS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or((3000.0 * scale).max(10.0));
        // 0.75 ms/commit reproduces the paper's ~54x GraphDB-vs-Vertexica
        // gap on the small graph (see EXPERIMENTS.md calibration).
        let commit_ms = std::env::var("VERTEXICA_GRAPHDB_COMMIT_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.75);
        HarnessConfig {
            scale,
            dnf_budget: Duration::from_secs_f64(budget),
            graphdb_commit_latency: Duration::from_secs_f64(commit_ms / 1000.0),
            seed: 42,
        }
    }
}

/// The two Figure-2 workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    PageRank,
    ShortestPaths,
}

impl Workload {
    pub fn label(self) -> &'static str {
        match self {
            Workload::PageRank => "PageRank",
            Workload::ShortestPaths => "Shortest Paths",
        }
    }
}

/// One measurement: seconds, or DNF.
#[derive(Debug, Clone, Copy)]
pub enum Measurement {
    Seconds(f64),
    DidNotFinish,
}

impl Measurement {
    pub fn display(&self) -> String {
        match self {
            Measurement::Seconds(s) => format!("{s:.3}"),
            Measurement::DidNotFinish => "DNF".to_string(),
        }
    }

    pub fn seconds(&self) -> Option<f64> {
        match self {
            Measurement::Seconds(s) => Some(*s),
            Measurement::DidNotFinish => None,
        }
    }
}

/// Generates the named Figure-2 dataset at the harness scale.
pub fn figure2_dataset(name: &str, cfg: &HarnessConfig) -> EdgeList {
    vertexica_graphgen::dataset(name, cfg.scale, cfg.seed)
        .unwrap_or_else(|| panic!("unknown dataset {name}"))
}

/// All three Figure-2 dataset names, small to large.
pub fn figure2_dataset_names() -> Vec<&'static str> {
    PROFILES.iter().map(|p| p.name).collect()
}

/// Builds a fresh graph session over a new embedded database.
pub fn fresh_session(graph: &EdgeList) -> GraphSession {
    let db = Arc::new(Database::new());
    let session = GraphSession::create(db, "bench").expect("create session");
    session.load_edges(graph).expect("load edges");
    session
}

// ---- the four systems ----

/// System 1: the transactional graph database, with DNF budget.
///
/// Opened with a real write-ahead log and fsync-on-commit, as a disk-backed
/// transactional store runs in production — the durability tax is the
/// central reason the paper's graph database is orders of magnitude slower
/// and DNFs on larger graphs.
pub fn run_graphdb_with_latency(
    graph: &EdgeList,
    workload: Workload,
    budget: Duration,
    commit_latency: Duration,
) -> Measurement {
    let wal_path = std::env::temp_dir().join(format!(
        "vertexica_bench_graphdb_{}_{}.wal",
        std::process::id(),
        vertexica_common::hash::mix64(graph.num_edges() ^ graph.num_vertices)
    ));
    std::fs::remove_file(&wal_path).ok();
    let db = GraphDb::open(vertexica_graphdb::GraphDbConfig {
        wal_path: Some(wal_path.clone()),
        sync_commits: true,
        commit_latency,
    })
    .expect("open graphdb");
    db.load_edges(graph).expect("load");
    let _cleanup = WalCleanup(wal_path);
    let outcome = match workload {
        Workload::PageRank => vertexica_graphdb::algo::pagerank(
            &db,
            graph.num_vertices,
            PR_ITERATIONS as usize,
            DAMPING,
            budget,
        )
        .map(|o| o.elapsed_secs()),
        Workload::ShortestPaths => {
            vertexica_graphdb::algo::sssp(&db, graph.num_vertices, SSSP_SOURCE, budget)
                .map(|o| o.elapsed_secs())
        }
    };
    match outcome {
        Ok(Some(secs)) => Measurement::Seconds(secs),
        _ => Measurement::DidNotFinish,
    }
}

/// Back-compat wrapper with zero modelled commit latency.
pub fn run_graphdb(graph: &EdgeList, workload: Workload, budget: Duration) -> Measurement {
    run_graphdb_with_latency(graph, workload, budget, Duration::ZERO)
}

/// Removes the benchmark WAL file on drop.
struct WalCleanup(std::path::PathBuf);

impl Drop for WalCleanup {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

/// System 2: the Giraph-like engine with the scaled overhead model.
pub fn run_giraph(graph: &EdgeList, workload: Workload, scale: f64) -> Measurement {
    // Combiner off, matching the Vertexica-side configuration (the paper
    // describes no message combining on either system).
    let engine = GiraphEngine::default()
        .with_combiner(false)
        .with_overhead(OverheadModel::giraph_scaled(scale));
    let secs = match workload {
        Workload::PageRank => {
            let (_, stats) = engine.run(graph, &PageRank::new(PR_ITERATIONS, DAMPING));
            stats.elapsed_secs
        }
        Workload::ShortestPaths => {
            let (_, stats) = engine.run(graph, &Sssp::new(SSSP_SOURCE));
            stats.elapsed_secs
        }
    };
    Measurement::Seconds(secs)
}

/// System 3: Vertexica's vertex-centric interface on the relational engine.
/// Measures the run itself (graph already loaded), like the paper.
pub fn run_vertexica_vertex(
    session: &GraphSession,
    workload: Workload,
    config: &VertexicaConfig,
) -> Measurement {
    let sw = Stopwatch::start();
    let result = match workload {
        Workload::PageRank => {
            run_program(session, Arc::new(PageRank::new(PR_ITERATIONS, DAMPING)), config)
        }
        Workload::ShortestPaths => run_program(session, Arc::new(Sssp::new(SSSP_SOURCE)), config),
    };
    match result {
        Ok(_) => Measurement::Seconds(sw.elapsed_secs()),
        Err(e) => panic!("vertexica run failed: {e}"),
    }
}

/// System 4: the hand-optimized SQL implementations.
pub fn run_vertexica_sql(session: &GraphSession, workload: Workload) -> Measurement {
    let sw = Stopwatch::start();
    let ok = match workload {
        Workload::PageRank => {
            sqlalgo::pagerank_sql(session, PR_ITERATIONS as usize, DAMPING).map(|_| ())
        }
        Workload::ShortestPaths => sqlalgo::sssp_sql(session, SSSP_SOURCE).map(|_| ()),
    };
    match ok {
        Ok(()) => Measurement::Seconds(sw.elapsed_secs()),
        Err(e) => panic!("vertexica-sql run failed: {e}"),
    }
}

/// One full Figure-2 row: all four systems on one dataset/workload.
pub struct Figure2Row {
    pub dataset: String,
    pub nodes: u64,
    pub edges: u64,
    pub graphdb: Measurement,
    pub giraph: Measurement,
    pub vertexica: Measurement,
    pub vertexica_sql: Measurement,
}

/// Runs the complete Figure-2 matrix for one workload.
pub fn figure2_panel(workload: Workload, cfg: &HarnessConfig) -> Vec<Figure2Row> {
    let mut rows = Vec::new();
    for name in figure2_dataset_names() {
        let graph = figure2_dataset(name, cfg);
        let graphdb =
            run_graphdb_with_latency(&graph, workload, cfg.dnf_budget, cfg.graphdb_commit_latency);
        let giraph = run_giraph(&graph, workload, cfg.scale);
        let session = fresh_session(&graph);
        // Paper-faithful configuration: the message table stores per-edge
        // messages (no combiner — §2.3 describes none).
        let vertexica = run_vertexica_vertex(
            &session,
            workload,
            &VertexicaConfig::default().with_combiner(false),
        );
        let vertexica_sql = run_vertexica_sql(&session, workload);
        rows.push(Figure2Row {
            dataset: name.to_string(),
            nodes: graph.num_vertices,
            edges: graph.num_edges(),
            graphdb,
            giraph,
            vertexica,
            vertexica_sql,
        });
    }
    rows
}

/// Formats Figure-2 rows as the table the paper prints.
pub fn format_figure2(workload: Workload, rows: &[Figure2Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!("Figure 2 — {} runtime (seconds)\n", workload.label()));
    out.push_str(&format!(
        "{:<14} {:>10} {:>10} | {:>10} {:>10} {:>10} {:>14}\n",
        "dataset", "nodes", "edges", "GraphDB", "Giraph", "Vertexica", "Vertexica(SQL)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>10} {:>10} | {:>10} {:>10} {:>10} {:>14}\n",
            r.dataset,
            r.nodes,
            r.edges,
            r.graphdb.display(),
            r.giraph.display(),
            r.vertexica.display(),
            r.vertexica_sql.display(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> HarnessConfig {
        HarnessConfig {
            scale: 0.0008,
            dnf_budget: Duration::from_secs(20),
            graphdb_commit_latency: Duration::ZERO,
            seed: 7,
        }
    }

    #[test]
    fn all_four_systems_complete_on_tiny_graph() {
        let cfg = tiny_cfg();
        let graph = figure2_dataset("twitter", &cfg);
        assert!(graph.num_vertices > 0);
        let d = run_graphdb(&graph, Workload::PageRank, cfg.dnf_budget);
        assert!(d.seconds().is_some());
        let g = run_giraph(&graph, Workload::PageRank, cfg.scale);
        assert!(g.seconds().is_some());
        let session = fresh_session(&graph);
        let v = run_vertexica_vertex(&session, Workload::PageRank, &VertexicaConfig::default());
        assert!(v.seconds().is_some());
        let s = run_vertexica_sql(&session, Workload::PageRank);
        assert!(s.seconds().is_some());
    }

    #[test]
    fn engines_agree_on_pagerank_results() {
        let cfg = tiny_cfg();
        let graph = figure2_dataset("twitter", &cfg);
        // Giraph result.
        let engine = GiraphEngine::default();
        let (giraph_vals, _) = engine.run(&graph, &PageRank::new(5, DAMPING));
        // Vertexica result.
        let session = fresh_session(&graph);
        run_program(&session, Arc::new(PageRank::new(5, DAMPING)), &VertexicaConfig::default())
            .unwrap();
        let vx: Vec<(VertexId, f64)> = session.vertex_values().unwrap();
        // Reference.
        let reference = vertexica_algorithms::reference::pagerank(&graph, 5, DAMPING);
        for (id, rank) in vx {
            assert!((rank - reference[id as usize]).abs() < 1e-9, "vertexica vertex {id}");
        }
        for (id, rank) in giraph_vals.iter().enumerate() {
            assert!((rank - reference[id]).abs() < 1e-9, "giraph vertex {id}");
        }
    }

    #[test]
    fn dnf_display() {
        assert_eq!(Measurement::DidNotFinish.display(), "DNF");
        assert_eq!(Measurement::Seconds(1.23456).display(), "1.235");
    }

    #[test]
    fn format_figure2_layout() {
        let rows = vec![Figure2Row {
            dataset: "twitter".into(),
            nodes: 10,
            edges: 20,
            graphdb: Measurement::DidNotFinish,
            giraph: Measurement::Seconds(1.0),
            vertexica: Measurement::Seconds(0.5),
            vertexica_sql: Measurement::Seconds(0.1),
        }];
        let s = format_figure2(Workload::PageRank, &rows);
        assert!(s.contains("PageRank"));
        assert!(s.contains("DNF"));
        assert!(s.contains("twitter"));
    }
}
