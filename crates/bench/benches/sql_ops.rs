//! Criterion micro-benchmarks for the SQL engine: the operators Vertexica's
//! superstep machinery leans on (union-all assembly, hash join, aggregation).

use criterion::{criterion_group, criterion_main, Criterion};
use vertexica_sql::Database;

fn db_with_graph(edges: usize) -> Database {
    let db = Database::new();
    db.execute(
        "CREATE TABLE edge (src BIGINT NOT NULL, dst BIGINT NOT NULL, weight FLOAT) ORDER BY src",
    )
    .unwrap();
    db.execute("CREATE TABLE vertex (id BIGINT NOT NULL, value FLOAT) ORDER BY id").unwrap();
    // Bulk insert via multi-row VALUES in chunks.
    let n_vertices = (edges / 8).max(16);
    let mut chunk = Vec::new();
    for i in 0..edges {
        chunk.push(format!("({}, {}, 1.0)", i % n_vertices, (i * 7 + 1) % n_vertices));
        if chunk.len() == 1024 {
            db.execute(&format!("INSERT INTO edge VALUES {}", chunk.join(","))).unwrap();
            chunk.clear();
        }
    }
    if !chunk.is_empty() {
        db.execute(&format!("INSERT INTO edge VALUES {}", chunk.join(","))).unwrap();
    }
    let mut chunk = Vec::new();
    for v in 0..n_vertices {
        chunk.push(format!("({v}, 0.5)"));
        if chunk.len() == 1024 {
            db.execute(&format!("INSERT INTO vertex VALUES {}", chunk.join(","))).unwrap();
            chunk.clear();
        }
    }
    if !chunk.is_empty() {
        db.execute(&format!("INSERT INTO vertex VALUES {}", chunk.join(","))).unwrap();
    }
    db
}

fn bench_sql_operators(c: &mut Criterion) {
    let db = db_with_graph(50_000);
    let mut group = c.benchmark_group("sql_ops");
    group.sample_size(15);

    group.bench_function("filter_scan", |b| {
        b.iter(|| {
            std::hint::black_box(db.query_int("SELECT COUNT(*) FROM edge WHERE src < 100").unwrap())
        })
    });

    group.bench_function("hash_join", |b| {
        b.iter(|| {
            std::hint::black_box(
                db.query_int("SELECT COUNT(*) FROM edge e JOIN vertex v ON e.src = v.id").unwrap(),
            )
        })
    });

    group.bench_function("group_by_aggregate", |b| {
        b.iter(|| {
            std::hint::black_box(
                db.query("SELECT src, COUNT(*), SUM(weight) FROM edge GROUP BY src").unwrap().len(),
            )
        })
    });

    group.bench_function("union_all_assembly", |b| {
        // The shape of Vertexica's table-union input assembly.
        b.iter(|| {
            std::hint::black_box(
                db.query_int(
                    "SELECT COUNT(*) FROM (\
                     SELECT id AS vid FROM vertex \
                     UNION ALL SELECT src FROM edge \
                     UNION ALL SELECT dst FROM edge) u",
                )
                .unwrap(),
            )
        })
    });

    group.bench_function("order_by_limit", |b| {
        b.iter(|| {
            std::hint::black_box(
                db.query(
                    "SELECT src, COUNT(*) AS d FROM edge GROUP BY src ORDER BY d DESC LIMIT 10",
                )
                .unwrap()
                .len(),
            )
        })
    });

    group.finish();
}

fn bench_dml(c: &mut Criterion) {
    let mut group = c.benchmark_group("sql_dml");
    group.sample_size(10);
    group.bench_function("ctas_swap_cycle", |b| {
        let db = db_with_graph(20_000);
        let mut i = 0u64;
        b.iter(|| {
            // The replace pattern: CTAS + swap + drop.
            i += 1;
            db.execute("CREATE TABLE vertex_new AS SELECT id, value + 1.0 AS value FROM vertex")
                .unwrap();
            db.catalog().swap("vertex", "vertex_new").unwrap();
            let _ = db.catalog().drop_table_if_exists("vertex_new");
        })
    });
    group.bench_function("update_in_place_1pct", |b| {
        let db = db_with_graph(20_000);
        b.iter(|| {
            std::hint::black_box(
                db.execute("UPDATE vertex SET value = value + 1.0 WHERE id < 25").unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sql_operators, bench_dml);
criterion_main!(benches);
