//! Criterion ablations of the §2.3 optimizations on a small fixed graph.
//! (Wall-clock sweeps at dataset scale live in `bin/ablation`.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;
use vertexica::{run_program, InputMode, VertexicaConfig};
use vertexica_algorithms::vc::PageRank;
use vertexica_bench::{figure2_dataset, fresh_session, HarnessConfig};

fn micro_cfg() -> HarnessConfig {
    HarnessConfig {
        scale: 0.002,
        dnf_budget: Duration::from_secs(120),
        graphdb_commit_latency: Duration::ZERO,
        seed: 42,
    }
}

fn bench_input_assembly(c: &mut Criterion) {
    let graph = figure2_dataset("twitter", &micro_cfg());
    let mut group = c.benchmark_group("ablation_input_assembly");
    group.sample_size(10);
    for (label, mode) in [("union", InputMode::TableUnion), ("join", InputMode::ThreeWayJoin)] {
        group.bench_function(BenchmarkId::new("pagerank5", label), |b| {
            b.iter(|| {
                let session = fresh_session(&graph);
                let config = VertexicaConfig::default().with_input_mode(mode);
                run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_batching(c: &mut Criterion) {
    let graph = figure2_dataset("twitter", &micro_cfg());
    let mut group = c.benchmark_group("ablation_batching");
    group.sample_size(10);
    for partitions in [1usize, 8, 64, 512] {
        group.bench_with_input(BenchmarkId::new("pagerank5", partitions), &partitions, |b, &p| {
            b.iter(|| {
                let session = fresh_session(&graph);
                let config = VertexicaConfig::default().with_partitions(p);
                run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_update_vs_replace(c: &mut Criterion) {
    let graph = figure2_dataset("twitter", &micro_cfg());
    let mut group = c.benchmark_group("ablation_update_vs_replace");
    group.sample_size(10);
    for (label, threshold) in
        [("always_replace", 0.0f64), ("paper_0.2", 0.2), ("always_update", 1.01)]
    {
        group.bench_function(BenchmarkId::new("pagerank5", label), |b| {
            b.iter(|| {
                let session = fresh_session(&graph);
                let config = VertexicaConfig::default().with_replace_threshold(threshold);
                run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_combiner(c: &mut Criterion) {
    let graph = figure2_dataset("twitter", &micro_cfg());
    let mut group = c.benchmark_group("ablation_combiner");
    group.sample_size(10);
    for (label, on) in [("combiner_on", true), ("combiner_off", false)] {
        group.bench_function(BenchmarkId::new("pagerank5", label), |b| {
            b.iter(|| {
                let session = fresh_session(&graph);
                let config = VertexicaConfig::default().with_combiner(on);
                run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_pool_size(c: &mut Criterion) {
    // Pool-size ablation hook: one persistent session, the shared runtime
    // pool resized in place between measurements, so the sweep isolates the
    // runtime's scaling from graph-reload cost.
    let graph = figure2_dataset("twitter", &micro_cfg());
    let session = fresh_session(&graph);
    let mut group = c.benchmark_group("ablation_pool_size");
    group.sample_size(10);
    for pool_size in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("pagerank5", pool_size), &pool_size, |b, &n| {
            // run_program resizes the session's shared pool to num_workers.
            let config = VertexicaConfig::default().with_workers(n);
            b.iter(|| run_program(&session, Arc::new(PageRank::new(5, 0.85)), &config).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_input_assembly,
    bench_batching,
    bench_update_vs_replace,
    bench_combiner,
    bench_pool_size
);
criterion_main!(benches);
