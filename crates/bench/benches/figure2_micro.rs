//! Criterion version of Figure 2 at micro scale: each system × workload on a
//! small fixed graph, so relative ordering is tracked by CI-friendly runs.
//! (The full harness with the paper's dataset profiles is `bin/figure2`.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use vertexica::VertexicaConfig;
use vertexica_bench::figure2_dataset;
use vertexica_bench::{
    fresh_session, run_giraph, run_graphdb, run_vertexica_sql, run_vertexica_vertex, HarnessConfig,
    Workload,
};

fn micro_cfg() -> HarnessConfig {
    HarnessConfig {
        scale: 0.002,
        dnf_budget: Duration::from_secs(120),
        graphdb_commit_latency: Duration::ZERO,
        seed: 42,
    }
}

fn bench_figure2_micro(c: &mut Criterion) {
    let cfg = micro_cfg();
    let graph = figure2_dataset("twitter", &cfg);
    let mut group = c.benchmark_group("figure2_micro_twitter");
    group.sample_size(10);

    for workload in [Workload::PageRank, Workload::ShortestPaths] {
        let wl = workload.label().replace(' ', "_");
        group.bench_function(BenchmarkId::new("graphdb", &wl), |b| {
            b.iter(|| std::hint::black_box(run_graphdb(&graph, workload, cfg.dnf_budget)))
        });
        group.bench_function(BenchmarkId::new("giraph", &wl), |b| {
            // Raw engine (no overhead model) for microbenchmark stability.
            b.iter(|| std::hint::black_box(run_giraph(&graph, workload, 0.0000001)))
        });
        group.bench_function(BenchmarkId::new("vertexica", &wl), |b| {
            b.iter(|| {
                let session = fresh_session(&graph);
                std::hint::black_box(run_vertexica_vertex(
                    &session,
                    workload,
                    &VertexicaConfig::default(),
                ))
            })
        });
        group.bench_function(BenchmarkId::new("vertexica_sql", &wl), |b| {
            b.iter(|| {
                let session = fresh_session(&graph);
                std::hint::black_box(run_vertexica_sql(&session, workload))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure2_micro);
criterion_main!(benches);
