//! Criterion micro-benchmarks for the storage layer: scans over plain vs
//! encoded segments, zone-map pruning, hash partitioning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vertexica_storage::{
    partition::hash_partition, Column, ColumnPredicate, PredicateOp, RecordBatch, Schema, Table,
    TableOptions, Value,
};
use vertexica_storage::{DataType, Field};

fn edge_schema() -> std::sync::Arc<Schema> {
    Schema::new(vec![
        Field::not_null("src", DataType::Int),
        Field::not_null("dst", DataType::Int),
        Field::new("etype", DataType::Str),
    ])
}

fn build_table(rows: usize, compress: bool, sorted: bool) -> Table {
    let opts =
        if sorted { TableOptions::default().sorted_by(vec![0]) } else { TableOptions::default() };
    let opts = if compress { opts.compressed() } else { opts };
    let mut t = Table::new("edge", edge_schema(), opts.with_moveout_threshold(rows + 1));
    let types = ["friend", "family", "classmate"];
    for i in 0..rows {
        t.insert_row(vec![
            Value::Int((i / 8) as i64),
            Value::Int((i % 997) as i64),
            Value::Str(types[i % 3].to_string()),
        ])
        .unwrap();
    }
    t.moveout().unwrap();
    t
}

fn bench_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_scan");
    group.sample_size(20);
    for (label, compress) in [("plain", false), ("encoded", true)] {
        let table = build_table(100_000, compress, true);
        group.bench_function(BenchmarkId::new("full_scan", label), |b| {
            b.iter(|| {
                let batches = table.scan(None, &[]).unwrap();
                std::hint::black_box(RecordBatch::total_rows(&batches))
            })
        });
    }
    group.finish();
}

fn bench_zone_map_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_pruning");
    group.sample_size(20);
    // Many segments, sorted on src: selective predicates should prune.
    let mut t = Table::new(
        "edge",
        edge_schema(),
        TableOptions::default().sorted_by(vec![0]).with_moveout_threshold(4096),
    );
    for i in 0..100_000usize {
        t.insert_row(vec![Value::Int(i as i64), Value::Int((i % 997) as i64), Value::Null])
            .unwrap();
    }
    t.moveout().unwrap();
    let selective = vec![ColumnPredicate::new(0, PredicateOp::Gt, Value::Int(95_000))];
    group.bench_function("selective_with_zone_maps", |b| {
        b.iter(|| {
            let batches = t.scan(None, &selective).unwrap();
            std::hint::black_box(RecordBatch::total_rows(&batches))
        })
    });
    group.bench_function("unselective", |b| {
        let loose = vec![ColumnPredicate::new(0, PredicateOp::GtEq, Value::Int(0))];
        b.iter(|| {
            let batches = t.scan(None, &loose).unwrap();
            std::hint::black_box(RecordBatch::total_rows(&batches))
        })
    });
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_partition");
    group.sample_size(20);
    let table = build_table(100_000, false, false);
    let batches = table.scan(None, &[]).unwrap();
    for parts in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("hash_partition", parts), &parts, |b, &p| {
            b.iter(|| {
                let out = hash_partition(&batches, &[0], p).unwrap();
                std::hint::black_box(out.len())
            })
        });
    }
    group.finish();
}

fn bench_column_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_column");
    group.sample_size(20);
    let values: Vec<Value> = (0..100_000).map(|i| Value::Int(i % 1000)).collect();
    let col = Column::from_values(DataType::Int, &values).unwrap();
    group.bench_function("hash_combine_100k", |b| {
        b.iter(|| {
            let mut h = vec![0u64; col.len()];
            col.hash_combine(&mut h);
            std::hint::black_box(h[0])
        })
    });
    let indices: Vec<usize> = (0..50_000).map(|i| i * 2).collect();
    group.bench_function("take_50k", |b| b.iter(|| std::hint::black_box(col.take(&indices).len())));
    group.finish();
}

criterion_group!(
    benches,
    bench_scans,
    bench_zone_map_pruning,
    bench_partitioning,
    bench_column_ops
);
criterion_main!(benches);
