//! Error type for the SQL layer.

use std::fmt;

use vertexica_storage::StorageError;

/// Errors surfaced by parsing, planning or executing SQL.
#[derive(Debug)]
pub enum SqlError {
    /// Lexing/parsing failure with a byte offset into the statement.
    Parse { message: String, position: usize },
    /// Name resolution / semantic analysis failure.
    Plan(String),
    /// Runtime execution failure.
    Execution(String),
    /// Failure bubbled up from the storage layer.
    Storage(StorageError),
    /// A user-defined function failed.
    Udf(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            SqlError::Plan(m) => write!(f, "planning error: {m}"),
            SqlError::Execution(m) => write!(f, "execution error: {m}"),
            SqlError::Storage(e) => write!(f, "storage error: {e}"),
            SqlError::Udf(m) => write!(f, "udf error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for SqlError {
    fn from(e: StorageError) -> Self {
        SqlError::Storage(e)
    }
}

/// Result alias for SQL operations.
pub type SqlResult<T> = Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = SqlError::Parse { message: "unexpected token".into(), position: 17 };
        assert!(e.to_string().contains("17"));
    }

    #[test]
    fn storage_error_converts() {
        let e: SqlError = StorageError::NoSuchTable("v".into()).into();
        assert!(matches!(e, SqlError::Storage(_)));
        assert!(e.to_string().contains("no such table"));
    }
}
