//! Resolved (physical) scalar expressions and their vectorized evaluation.
//!
//! The planner lowers AST expressions ([`crate::ast::Expr`]) into
//! [`PhysExpr`], with column references resolved to input-schema indices and
//! function names bound to implementations. Evaluation is column-at-a-time:
//! children evaluate to [`Column`]s, then the node combines them row-wise with
//! SQL NULL semantics (three-valued logic for booleans).

use std::sync::Arc;

use vertexica_storage::{Column, ColumnBuilder, DataType, RecordBatch, Schema, Value};

use crate::ast::{BinaryOp, UnaryOp};
use crate::error::{SqlError, SqlResult};
use crate::functions::ScalarFunction;

/// A fully-resolved scalar expression.
#[derive(Clone)]
pub enum PhysExpr {
    /// Input column by index.
    Column(usize),
    Literal(Value),
    Binary {
        left: Box<PhysExpr>,
        op: BinaryOp,
        right: Box<PhysExpr>,
    },
    Unary {
        op: UnaryOp,
        expr: Box<PhysExpr>,
    },
    IsNull {
        expr: Box<PhysExpr>,
        negated: bool,
    },
    InList {
        expr: Box<PhysExpr>,
        list: Vec<PhysExpr>,
        negated: bool,
    },
    Like {
        expr: Box<PhysExpr>,
        pattern: Box<PhysExpr>,
        negated: bool,
    },
    Case {
        when_then: Vec<(PhysExpr, PhysExpr)>,
        else_expr: Option<Box<PhysExpr>>,
    },
    Cast {
        expr: Box<PhysExpr>,
        dtype: DataType,
    },
    ScalarFn {
        func: Arc<ScalarFunction>,
        args: Vec<PhysExpr>,
    },
}

impl std::fmt::Debug for PhysExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhysExpr::Column(i) => write!(f, "#{i}"),
            PhysExpr::Literal(v) => write!(f, "{v}"),
            PhysExpr::Binary { left, op, right } => write!(f, "({left:?} {op:?} {right:?})"),
            PhysExpr::Unary { op, expr } => write!(f, "({op:?} {expr:?})"),
            PhysExpr::IsNull { expr, negated } => {
                write!(f, "({expr:?} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            PhysExpr::InList { expr, list, negated } => {
                write!(f, "({expr:?} {}IN {list:?})", if *negated { "NOT " } else { "" })
            }
            PhysExpr::Like { expr, pattern, negated } => {
                write!(f, "({expr:?} {}LIKE {pattern:?})", if *negated { "NOT " } else { "" })
            }
            PhysExpr::Case { when_then, else_expr } => {
                write!(f, "CASE {when_then:?} ELSE {else_expr:?}")
            }
            PhysExpr::Cast { expr, dtype } => write!(f, "CAST({expr:?} AS {dtype})"),
            PhysExpr::ScalarFn { func, args } => write!(f, "{}({args:?})", func.name),
        }
    }
}

impl PhysExpr {
    pub fn col(i: usize) -> PhysExpr {
        PhysExpr::Column(i)
    }

    pub fn lit(v: impl Into<Value>) -> PhysExpr {
        PhysExpr::Literal(v.into())
    }

    /// Output type given the input schema.
    pub fn data_type(&self, input: &Schema) -> SqlResult<DataType> {
        Ok(match self {
            PhysExpr::Column(i) => {
                input
                    .fields
                    .get(*i)
                    .ok_or_else(|| SqlError::Plan(format!("column index {i} out of range")))?
                    .dtype
            }
            PhysExpr::Literal(v) => v.data_type().unwrap_or(DataType::Int),
            PhysExpr::Binary { left, op, right } => {
                if op.is_comparison() || matches!(op, BinaryOp::And | BinaryOp::Or) {
                    DataType::Bool
                } else {
                    let lt = left.data_type(input)?;
                    let rt = right.data_type(input)?;
                    match op {
                        // Int/Int division promotes to Float (documented
                        // dialect choice — keeps PageRank-style arithmetic
                        // exact without explicit casts).
                        BinaryOp::Divide => DataType::Float,
                        _ => {
                            if lt == DataType::Float || rt == DataType::Float {
                                DataType::Float
                            } else if lt == DataType::Str && *op == BinaryOp::Plus {
                                DataType::Str
                            } else {
                                DataType::Int
                            }
                        }
                    }
                }
            }
            PhysExpr::Unary { op, expr } => match op {
                UnaryOp::Not => DataType::Bool,
                UnaryOp::Neg => expr.data_type(input)?,
            },
            PhysExpr::IsNull { .. } | PhysExpr::InList { .. } | PhysExpr::Like { .. } => {
                DataType::Bool
            }
            PhysExpr::Case { when_then, else_expr } => {
                let mut t = None;
                for (_, then) in when_then {
                    let tt = then.data_type(input)?;
                    t = Some(merge_types(t, tt));
                }
                if let Some(e) = else_expr {
                    let tt = e.data_type(input)?;
                    t = Some(merge_types(t, tt));
                }
                t.unwrap_or(DataType::Int)
            }
            PhysExpr::Cast { dtype, .. } => *dtype,
            PhysExpr::ScalarFn { func, args } => {
                let arg_types: SqlResult<Vec<DataType>> =
                    args.iter().map(|a| a.data_type(input)).collect();
                (func.return_type)(&arg_types?)?
            }
        })
    }

    /// Evaluates over a batch, producing one output column.
    pub fn eval(&self, batch: &RecordBatch) -> SqlResult<Column> {
        let n = batch.num_rows();
        match self {
            PhysExpr::Column(i) => {
                if *i >= batch.num_columns() {
                    return Err(SqlError::Execution(format!("column index {i} out of range")));
                }
                Ok(batch.column(*i).clone())
            }
            PhysExpr::Literal(v) => {
                let dtype = v.data_type().unwrap_or(DataType::Int);
                Column::repeat(dtype, v, n).map_err(Into::into)
            }
            PhysExpr::Binary { left, op, right } => {
                let l = left.eval(batch)?;
                let r = right.eval(batch)?;
                eval_binary(&l, *op, &r, batch.schema())
            }
            PhysExpr::Unary { op, expr } => {
                let c = expr.eval(batch)?;
                let mut b = ColumnBuilder::with_capacity(
                    match op {
                        UnaryOp::Not => DataType::Bool,
                        UnaryOp::Neg => c.dtype(),
                    },
                    n,
                );
                for i in 0..n {
                    let v = c.value(i);
                    let out = match (op, v) {
                        (_, Value::Null) => Value::Null,
                        (UnaryOp::Not, Value::Bool(x)) => Value::Bool(!x),
                        (UnaryOp::Neg, Value::Int(x)) => Value::Int(-x),
                        (UnaryOp::Neg, Value::Float(x)) => Value::Float(-x),
                        (op, v) => {
                            return Err(SqlError::Execution(format!("cannot apply {op:?} to {v}")))
                        }
                    };
                    b.push(out)?;
                }
                Ok(b.finish())
            }
            PhysExpr::IsNull { expr, negated } => {
                let c = expr.eval(batch)?;
                let mut b = ColumnBuilder::with_capacity(DataType::Bool, n);
                for i in 0..n {
                    let isnull = c.is_null(i);
                    b.push(Value::Bool(isnull != *negated))?;
                }
                Ok(b.finish())
            }
            PhysExpr::InList { expr, list, negated } => {
                let c = expr.eval(batch)?;
                let lists: SqlResult<Vec<Column>> = list.iter().map(|e| e.eval(batch)).collect();
                let lists = lists?;
                let mut b = ColumnBuilder::with_capacity(DataType::Bool, n);
                for i in 0..n {
                    let v = c.value(i);
                    if v.is_null() {
                        b.push_null();
                        continue;
                    }
                    let mut found = false;
                    let mut saw_null = false;
                    for lc in &lists {
                        let lv = lc.value(i);
                        match v.sql_eq(&lv) {
                            Some(true) => {
                                found = true;
                                break;
                            }
                            Some(false) => {}
                            None => saw_null = true,
                        }
                    }
                    if found {
                        b.push(Value::Bool(!*negated))?;
                    } else if saw_null {
                        b.push_null();
                    } else {
                        b.push(Value::Bool(*negated))?;
                    }
                }
                Ok(b.finish())
            }
            PhysExpr::Like { expr, pattern, negated } => {
                let c = expr.eval(batch)?;
                let p = pattern.eval(batch)?;
                let mut b = ColumnBuilder::with_capacity(DataType::Bool, n);
                for i in 0..n {
                    if c.is_null(i) || p.is_null(i) {
                        b.push_null();
                        continue;
                    }
                    let (Value::Str(s), Value::Str(pat)) = (c.value(i), p.value(i)) else {
                        return Err(SqlError::Execution("LIKE requires strings".into()));
                    };
                    let m = like_match(&s, &pat);
                    b.push(Value::Bool(m != *negated))?;
                }
                Ok(b.finish())
            }
            PhysExpr::Case { when_then, else_expr } => {
                let out_type = self.data_type(batch.schema())?;
                let whens: SqlResult<Vec<Column>> =
                    when_then.iter().map(|(w, _)| w.eval(batch)).collect();
                let whens = whens?;
                let thens: SqlResult<Vec<Column>> =
                    when_then.iter().map(|(_, t)| t.eval(batch)).collect();
                let thens = thens?;
                let else_col = else_expr.as_ref().map(|e| e.eval(batch)).transpose()?;
                let mut b = ColumnBuilder::with_capacity(out_type, n);
                'rows: for i in 0..n {
                    for (w, t) in whens.iter().zip(&thens) {
                        if w.value(i) == Value::Bool(true) {
                            b.push(t.value(i))?;
                            continue 'rows;
                        }
                    }
                    match &else_col {
                        Some(e) => b.push(e.value(i))?,
                        None => b.push_null(),
                    }
                }
                Ok(b.finish())
            }
            PhysExpr::Cast { expr, dtype } => {
                let c = expr.eval(batch)?;
                let mut b = ColumnBuilder::with_capacity(*dtype, n);
                for i in 0..n {
                    let v = c.value(i);
                    let out = cast_value(&v, *dtype)?;
                    b.push(out)?;
                }
                Ok(b.finish())
            }
            PhysExpr::ScalarFn { func, args } => {
                let arg_cols: SqlResult<Vec<Column>> = args.iter().map(|a| a.eval(batch)).collect();
                let arg_cols = arg_cols?;
                let arg_types: Vec<DataType> = arg_cols.iter().map(|c| c.dtype()).collect();
                let out_type = (func.return_type)(&arg_types)?;
                let mut b = ColumnBuilder::with_capacity(out_type, n);
                let mut row: Vec<Value> = Vec::with_capacity(arg_cols.len());
                for i in 0..n {
                    row.clear();
                    for c in &arg_cols {
                        row.push(c.value(i));
                    }
                    b.push((func.eval)(&row)?)?;
                }
                Ok(b.finish())
            }
        }
    }

    /// Evaluates a constant expression (no column references) to a scalar.
    /// Used for `VALUES` rows and constant folding.
    pub fn eval_scalar(&self) -> SqlResult<Value> {
        match self {
            PhysExpr::Column(i) => {
                Err(SqlError::Execution(format!("column #{i} in constant context")))
            }
            PhysExpr::Literal(v) => Ok(v.clone()),
            PhysExpr::Binary { left, op, right } => {
                binary_value_op(&left.eval_scalar()?, *op, &right.eval_scalar()?)
            }
            PhysExpr::Unary { op, expr } => {
                let v = expr.eval_scalar()?;
                Ok(match (op, v) {
                    (_, Value::Null) => Value::Null,
                    (UnaryOp::Not, Value::Bool(x)) => Value::Bool(!x),
                    (UnaryOp::Neg, Value::Int(x)) => Value::Int(-x),
                    (UnaryOp::Neg, Value::Float(x)) => Value::Float(-x),
                    (op, v) => {
                        return Err(SqlError::Execution(format!("cannot apply {op:?} to {v}")))
                    }
                })
            }
            PhysExpr::IsNull { expr, negated } => {
                Ok(Value::Bool(expr.eval_scalar()?.is_null() != *negated))
            }
            PhysExpr::InList { expr, list, negated } => {
                let v = expr.eval_scalar()?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    match v.sql_eq(&item.eval_scalar()?) {
                        Some(true) => return Ok(Value::Bool(!*negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                Ok(if saw_null { Value::Null } else { Value::Bool(*negated) })
            }
            PhysExpr::Like { expr, pattern, negated } => {
                let v = expr.eval_scalar()?;
                let p = pattern.eval_scalar()?;
                match (v, p) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Str(s), Value::Str(pat)) => {
                        Ok(Value::Bool(like_match(&s, &pat) != *negated))
                    }
                    _ => Err(SqlError::Execution("LIKE requires strings".into())),
                }
            }
            PhysExpr::Case { when_then, else_expr } => {
                for (w, t) in when_then {
                    if w.eval_scalar()? == Value::Bool(true) {
                        return t.eval_scalar();
                    }
                }
                match else_expr {
                    Some(e) => e.eval_scalar(),
                    None => Ok(Value::Null),
                }
            }
            PhysExpr::Cast { expr, dtype } => cast_value(&expr.eval_scalar()?, *dtype),
            PhysExpr::ScalarFn { func, args } => {
                let vals: SqlResult<Vec<Value>> = args.iter().map(|a| a.eval_scalar()).collect();
                (func.eval)(&vals?)
            }
        }
    }

    /// True if the expression references no input columns.
    pub fn is_constant(&self) -> bool {
        match self {
            PhysExpr::Column(_) => false,
            PhysExpr::Literal(_) => true,
            PhysExpr::Binary { left, right, .. } => left.is_constant() && right.is_constant(),
            PhysExpr::Unary { expr, .. } => expr.is_constant(),
            PhysExpr::IsNull { expr, .. } => expr.is_constant(),
            PhysExpr::InList { expr, list, .. } => {
                expr.is_constant() && list.iter().all(|e| e.is_constant())
            }
            PhysExpr::Like { expr, pattern, .. } => expr.is_constant() && pattern.is_constant(),
            PhysExpr::Case { when_then, else_expr } => {
                when_then.iter().all(|(w, t)| w.is_constant() && t.is_constant())
                    && else_expr.as_ref().is_none_or(|e| e.is_constant())
            }
            PhysExpr::Cast { expr, .. } => expr.is_constant(),
            PhysExpr::ScalarFn { args, .. } => args.iter().all(|a| a.is_constant()),
        }
    }

    /// Evaluates and requires a boolean column; returns per-row truthiness
    /// with SQL semantics (NULL → false).
    pub fn eval_predicate(&self, batch: &RecordBatch) -> SqlResult<Vec<bool>> {
        let c = self.eval(batch)?;
        if c.dtype() != DataType::Bool {
            return Err(SqlError::Execution(format!(
                "predicate must be boolean, got {}",
                c.dtype()
            )));
        }
        Ok((0..c.len()).map(|i| c.value(i) == Value::Bool(true)).collect())
    }
}

fn merge_types(acc: Option<DataType>, t: DataType) -> DataType {
    match acc {
        None => t,
        Some(a) if a == t => a,
        Some(DataType::Int) if t == DataType::Float => DataType::Float,
        Some(DataType::Float) if t == DataType::Int => DataType::Float,
        Some(a) => a,
    }
}

/// SQL CAST semantics (stricter than coercion: supports string parsing).
pub fn cast_value(v: &Value, target: DataType) -> SqlResult<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    let out = match (v, target) {
        (Value::Str(s), DataType::Int) => s
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| SqlError::Execution(format!("cannot cast '{s}' to BIGINT")))?,
        (Value::Str(s), DataType::Float) => s
            .trim()
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| SqlError::Execution(format!("cannot cast '{s}' to FLOAT")))?,
        (Value::Str(s), DataType::Bool) => match s.to_ascii_lowercase().as_str() {
            "true" | "t" | "1" => Value::Bool(true),
            "false" | "f" | "0" => Value::Bool(false),
            _ => return Err(SqlError::Execution(format!("cannot cast '{s}' to BOOLEAN"))),
        },
        (v, DataType::Str) => Value::Str(v.to_string()),
        (v, t) => v.coerce(t).map_err(|e| SqlError::Execution(e.to_string()))?,
    };
    Ok(out)
}

/// SQL LIKE pattern matching: `%` = any sequence, `_` = any one char.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Try all splits.
                for i in 0..=s.len() {
                    if rec(&s[i..], &p[1..]) {
                        return true;
                    }
                }
                false
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => !s.is_empty() && s[0] == *c && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

fn eval_binary(l: &Column, op: BinaryOp, r: &Column, _schema: &Schema) -> SqlResult<Column> {
    let n = l.len();
    debug_assert_eq!(n, r.len());

    // Typed fast path: Float arithmetic with no nulls.
    if !op.is_comparison()
        && !matches!(op, BinaryOp::And | BinaryOp::Or)
        && l.validity().is_none()
        && r.validity().is_none()
    {
        if let (Some(lf), Some(rf)) = (l.as_float(), r.as_float()) {
            let mut b = ColumnBuilder::with_capacity(DataType::Float, n);
            for i in 0..n {
                let v = match op {
                    BinaryOp::Plus => lf[i] + rf[i],
                    BinaryOp::Minus => lf[i] - rf[i],
                    BinaryOp::Multiply => lf[i] * rf[i],
                    BinaryOp::Divide => {
                        if rf[i] == 0.0 {
                            b.push_null();
                            continue;
                        }
                        lf[i] / rf[i]
                    }
                    BinaryOp::Modulo => {
                        if rf[i] == 0.0 {
                            b.push_null();
                            continue;
                        }
                        lf[i] % rf[i]
                    }
                    _ => unreachable!(),
                };
                b.push_float(v);
            }
            return Ok(b.finish());
        }
    }

    // Generic value-wise path.
    let out_dtype = match op {
        op if op.is_comparison() => DataType::Bool,
        BinaryOp::And | BinaryOp::Or => DataType::Bool,
        BinaryOp::Divide => DataType::Float,
        _ => {
            if l.dtype() == DataType::Float || r.dtype() == DataType::Float {
                DataType::Float
            } else if l.dtype() == DataType::Str {
                DataType::Str
            } else {
                DataType::Int
            }
        }
    };
    let mut b = ColumnBuilder::with_capacity(out_dtype, n);
    for i in 0..n {
        let lv = l.value(i);
        let rv = r.value(i);
        let out = binary_value_op(&lv, op, &rv)?;
        b.push(out)?;
    }
    Ok(b.finish())
}

/// Applies a binary operator to two scalars with SQL NULL semantics.
pub fn binary_value_op(l: &Value, op: BinaryOp, r: &Value) -> SqlResult<Value> {
    use BinaryOp::*;
    // Three-valued logic for AND/OR must inspect nulls specially.
    if matches!(op, And | Or) {
        let lb = match l {
            Value::Null => None,
            Value::Bool(b) => Some(*b),
            other => return Err(SqlError::Execution(format!("AND/OR on non-boolean {other}"))),
        };
        let rb = match r {
            Value::Null => None,
            Value::Bool(b) => Some(*b),
            other => return Err(SqlError::Execution(format!("AND/OR on non-boolean {other}"))),
        };
        return Ok(match (op, lb, rb) {
            (And, Some(false), _) | (And, _, Some(false)) => Value::Bool(false),
            (And, Some(true), Some(true)) => Value::Bool(true),
            (Or, Some(true), _) | (Or, _, Some(true)) => Value::Bool(true),
            (Or, Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        });
    }

    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }

    if op.is_comparison() {
        let result = match (l, r) {
            // Numeric comparison handles Int/Float mixing.
            (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
                let a = l.as_float().unwrap();
                let b = r.as_float().unwrap();
                compare_with(op, a.partial_cmp(&b))
            }
            (Value::Str(a), Value::Str(b)) => compare_with(op, a.partial_cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => compare_with(op, a.partial_cmp(b)),
            (Value::Blob(a), Value::Blob(b)) => compare_with(op, a.partial_cmp(b)),
            (a, b) => {
                return Err(SqlError::Execution(format!("cannot compare {a} with {b}")));
            }
        };
        return Ok(result);
    }

    // Arithmetic / concatenation.
    let out = match (l, r, op) {
        (Value::Str(a), Value::Str(b), Plus) => Value::Str(format!("{a}{b}")),
        (Value::Int(a), Value::Int(b), Plus) => Value::Int(a.wrapping_add(*b)),
        (Value::Int(a), Value::Int(b), Minus) => Value::Int(a.wrapping_sub(*b)),
        (Value::Int(a), Value::Int(b), Multiply) => Value::Int(a.wrapping_mul(*b)),
        (Value::Int(a), Value::Int(b), Modulo) => {
            if *b == 0 {
                Value::Null
            } else {
                Value::Int(a % b)
            }
        }
        // Division always floats; division by zero yields NULL.
        (a, b, Divide) => {
            let (x, y) = promote(a, b)?;
            if y == 0.0 {
                Value::Null
            } else {
                Value::Float(x / y)
            }
        }
        (a, b, Plus) => {
            let (x, y) = promote(a, b)?;
            Value::Float(x + y)
        }
        (a, b, Minus) => {
            let (x, y) = promote(a, b)?;
            Value::Float(x - y)
        }
        (a, b, Multiply) => {
            let (x, y) = promote(a, b)?;
            Value::Float(x * y)
        }
        (a, b, Modulo) => {
            let (x, y) = promote(a, b)?;
            if y == 0.0 {
                Value::Null
            } else {
                Value::Float(x % y)
            }
        }
        (a, b, op) => {
            return Err(SqlError::Execution(format!("cannot apply {op:?} to {a}, {b}")));
        }
    };
    Ok(out)
}

fn promote(a: &Value, b: &Value) -> SqlResult<(f64, f64)> {
    match (a.as_float(), b.as_float()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(SqlError::Execution(format!("non-numeric arithmetic on {a}, {b}"))),
    }
}

fn compare_with(op: BinaryOp, ord: Option<std::cmp::Ordering>) -> Value {
    let Some(ord) = ord else {
        return Value::Null; // NaN comparisons are unknown
    };
    let b = match op {
        BinaryOp::Eq => ord.is_eq(),
        BinaryOp::NotEq => !ord.is_eq(),
        BinaryOp::Lt => ord.is_lt(),
        BinaryOp::LtEq => ord.is_le(),
        BinaryOp::Gt => ord.is_gt(),
        BinaryOp::GtEq => ord.is_ge(),
        _ => unreachable!(),
    };
    Value::Bool(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vertexica_storage::Field;

    fn batch() -> RecordBatch {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Float),
            Field::new("s", DataType::Str),
        ]);
        RecordBatch::from_rows(
            schema,
            &[
                vec![Value::Int(1), Value::Float(0.5), Value::Str("family".into())],
                vec![Value::Int(2), Value::Float(1.5), Value::Str("friend".into())],
                vec![Value::Null, Value::Float(2.5), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn column_and_literal() {
        let b = batch();
        let c = PhysExpr::col(0).eval(&b).unwrap();
        assert_eq!(c.value(1), Value::Int(2));
        let l = PhysExpr::lit(7i64).eval(&b).unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(l.value(2), Value::Int(7));
    }

    #[test]
    fn arithmetic_with_nulls() {
        let b = batch();
        let e = PhysExpr::Binary {
            left: Box::new(PhysExpr::col(0)),
            op: BinaryOp::Plus,
            right: Box::new(PhysExpr::lit(10i64)),
        };
        let c = e.eval(&b).unwrap();
        assert_eq!(c.value(0), Value::Int(11));
        assert_eq!(c.value(2), Value::Null);
    }

    #[test]
    fn int_division_floats() {
        let b = batch();
        let e = PhysExpr::Binary {
            left: Box::new(PhysExpr::lit(1i64)),
            op: BinaryOp::Divide,
            right: Box::new(PhysExpr::lit(4i64)),
        };
        let c = e.eval(&b).unwrap();
        assert_eq!(c.value(0), Value::Float(0.25));
    }

    #[test]
    fn division_by_zero_is_null() {
        assert_eq!(
            binary_value_op(&Value::Int(1), BinaryOp::Divide, &Value::Int(0)).unwrap(),
            Value::Null
        );
        assert_eq!(
            binary_value_op(&Value::Int(1), BinaryOp::Modulo, &Value::Int(0)).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn three_valued_logic() {
        use BinaryOp::{And, Or};
        let t = Value::Bool(true);
        let f = Value::Bool(false);
        let n = Value::Null;
        assert_eq!(binary_value_op(&f, And, &n).unwrap(), Value::Bool(false));
        assert_eq!(binary_value_op(&t, And, &n).unwrap(), Value::Null);
        assert_eq!(binary_value_op(&t, Or, &n).unwrap(), Value::Bool(true));
        assert_eq!(binary_value_op(&f, Or, &n).unwrap(), Value::Null);
    }

    #[test]
    fn comparisons_mix_int_float() {
        let b = batch();
        let e = PhysExpr::Binary {
            left: Box::new(PhysExpr::col(0)),
            op: BinaryOp::Lt,
            right: Box::new(PhysExpr::col(1)),
        };
        let c = e.eval(&b).unwrap();
        assert_eq!(c.value(0), Value::Bool(false)); // 1 < 0.5
        assert_eq!(c.value(1), Value::Bool(false)); // 2 < 1.5
        assert_eq!(c.value(2), Value::Null);
    }

    #[test]
    fn is_null_and_in_list() {
        let b = batch();
        let e = PhysExpr::IsNull { expr: Box::new(PhysExpr::col(0)), negated: false };
        let c = e.eval(&b).unwrap();
        assert_eq!(c.value(0), Value::Bool(false));
        assert_eq!(c.value(2), Value::Bool(true));

        let e = PhysExpr::InList {
            expr: Box::new(PhysExpr::col(2)),
            list: vec![PhysExpr::lit("family"), PhysExpr::lit("classmate")],
            negated: false,
        };
        let c = e.eval(&b).unwrap();
        assert_eq!(c.value(0), Value::Bool(true));
        assert_eq!(c.value(1), Value::Bool(false));
        assert_eq!(c.value(2), Value::Null);
    }

    #[test]
    fn like_matching() {
        assert!(like_match("family", "fam%"));
        assert!(like_match("family", "%ily"));
        assert!(like_match("family", "f_mily"));
        assert!(!like_match("family", "fam"));
        assert!(like_match("", "%"));
        assert!(like_match("abc", "%%c"));
        assert!(!like_match("abc", "_"));
    }

    #[test]
    fn case_expression() {
        let b = batch();
        let e = PhysExpr::Case {
            when_then: vec![(
                PhysExpr::Binary {
                    left: Box::new(PhysExpr::col(0)),
                    op: BinaryOp::Eq,
                    right: Box::new(PhysExpr::lit(1i64)),
                },
                PhysExpr::lit("one"),
            )],
            else_expr: Some(Box::new(PhysExpr::lit("other"))),
        };
        let c = e.eval(&b).unwrap();
        assert_eq!(c.value(0), Value::Str("one".into()));
        assert_eq!(c.value(1), Value::Str("other".into()));
        assert_eq!(c.value(2), Value::Str("other".into())); // null comparison → else
    }

    #[test]
    fn cast_string_numbers() {
        assert_eq!(cast_value(&Value::Str(" 42 ".into()), DataType::Int).unwrap(), Value::Int(42));
        assert_eq!(
            cast_value(&Value::Str("2.5".into()), DataType::Float).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(cast_value(&Value::Int(3), DataType::Str).unwrap(), Value::Str("3".into()));
        assert!(cast_value(&Value::Str("zzz".into()), DataType::Int).is_err());
    }

    #[test]
    fn eval_predicate_null_is_false() {
        let b = batch();
        let e = PhysExpr::Binary {
            left: Box::new(PhysExpr::col(0)),
            op: BinaryOp::Gt,
            right: Box::new(PhysExpr::lit(1i64)),
        };
        let mask = e.eval_predicate(&b).unwrap();
        assert_eq!(mask, vec![false, true, false]);
    }

    #[test]
    fn predicate_type_checked() {
        let b = batch();
        assert!(PhysExpr::col(0).eval_predicate(&b).is_err());
    }

    #[test]
    fn float_fast_path_matches_generic() {
        let schema =
            Schema::new(vec![Field::new("x", DataType::Float), Field::new("y", DataType::Float)]);
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::Float(i as f64), Value::Float((i * 2) as f64 + 0.5)])
            .collect();
        let b = RecordBatch::from_rows(schema, &rows).unwrap();
        let e = PhysExpr::Binary {
            left: Box::new(PhysExpr::col(0)),
            op: BinaryOp::Multiply,
            right: Box::new(PhysExpr::col(1)),
        };
        let c = e.eval(&b).unwrap();
        for i in 0..100 {
            let expected = (i as f64) * ((i * 2) as f64 + 0.5);
            assert_eq!(c.value(i), Value::Float(expected));
        }
    }
}
