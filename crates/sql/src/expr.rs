//! Resolved (physical) scalar expressions and their vectorized evaluation.
//!
//! The planner lowers AST expressions ([`crate::ast::Expr`]) into
//! [`PhysExpr`], with column references resolved to input-schema indices and
//! function names bound to implementations. Evaluation is column-at-a-time:
//! children evaluate to [`Column`]s, then the node combines them with **typed
//! slice kernels** — Int/Float arithmetic and comparisons run over raw
//! `&[i64]`/`&[f64]` with validity-bitmap NULL handling, AND/OR/NOT run
//! word-wise on packed [`Bitmap`]s, and IsNull/InList/CASE have dedicated
//! columnar paths. The `Value`-per-row loop survives as the generic fallback
//! for type combinations with no kernel, and as the whole-path ablation
//! baseline via [`set_vectorized_expr`] / `VERTEXICA_VECTOR_EXPR=0`. Both
//! paths are bitwise identical (property-tested in `tests/proptest_sql.rs`).

use std::sync::Arc;
use vertexica_common::sync::{AtomicU8, Ordering};

use vertexica_storage::{
    Bitmap, Column, ColumnBuilder, ColumnData, DataType, RecordBatch, Schema, Value,
};

use crate::ast::{BinaryOp, UnaryOp};
use crate::error::{SqlError, SqlResult};
use crate::functions::ScalarFunction;

/// Whether expression evaluation uses the typed slice kernels:
/// 0 = uninitialized (consult `VERTEXICA_VECTOR_EXPR` on first use),
/// 1 = vectorized, 2 = row-at-a-time fallback.
static VECTORIZED_EXPR: AtomicU8 = AtomicU8::new(0);

/// True when the vectorized expression kernels are enabled (the default).
/// The first call consults the `VERTEXICA_VECTOR_EXPR` environment variable
/// (`0`/`false`/`off` disable); [`set_vectorized_expr`] overrides either way.
pub fn vectorized_expr_enabled() -> bool {
    match VECTORIZED_EXPR.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = !matches!(
                std::env::var("VERTEXICA_VECTOR_EXPR")
                    .unwrap_or_default()
                    .to_ascii_lowercase()
                    .as_str(),
                "0" | "false" | "off"
            );
            VECTORIZED_EXPR.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Switches between the vectorized kernels and the row-at-a-time fallback
/// (process-wide; the coordinator applies `VertexicaConfig::vectorized_expr`
/// here per run). Safe to flip at any time: the two paths produce bitwise
/// identical columns.
pub fn set_vectorized_expr(on: bool) {
    VECTORIZED_EXPR.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// A fully-resolved scalar expression.
#[derive(Clone)]
pub enum PhysExpr {
    /// Input column by index.
    Column(usize),
    Literal(Value),
    Binary {
        left: Box<PhysExpr>,
        op: BinaryOp,
        right: Box<PhysExpr>,
    },
    Unary {
        op: UnaryOp,
        expr: Box<PhysExpr>,
    },
    IsNull {
        expr: Box<PhysExpr>,
        negated: bool,
    },
    InList {
        expr: Box<PhysExpr>,
        list: Vec<PhysExpr>,
        negated: bool,
    },
    Like {
        expr: Box<PhysExpr>,
        pattern: Box<PhysExpr>,
        negated: bool,
    },
    Case {
        when_then: Vec<(PhysExpr, PhysExpr)>,
        else_expr: Option<Box<PhysExpr>>,
    },
    Cast {
        expr: Box<PhysExpr>,
        dtype: DataType,
    },
    ScalarFn {
        func: Arc<ScalarFunction>,
        args: Vec<PhysExpr>,
    },
}

impl std::fmt::Debug for PhysExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhysExpr::Column(i) => write!(f, "#{i}"),
            PhysExpr::Literal(v) => write!(f, "{v}"),
            PhysExpr::Binary { left, op, right } => write!(f, "({left:?} {op:?} {right:?})"),
            PhysExpr::Unary { op, expr } => write!(f, "({op:?} {expr:?})"),
            PhysExpr::IsNull { expr, negated } => {
                write!(f, "({expr:?} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            PhysExpr::InList { expr, list, negated } => {
                write!(f, "({expr:?} {}IN {list:?})", if *negated { "NOT " } else { "" })
            }
            PhysExpr::Like { expr, pattern, negated } => {
                write!(f, "({expr:?} {}LIKE {pattern:?})", if *negated { "NOT " } else { "" })
            }
            PhysExpr::Case { when_then, else_expr } => {
                write!(f, "CASE {when_then:?} ELSE {else_expr:?}")
            }
            PhysExpr::Cast { expr, dtype } => write!(f, "CAST({expr:?} AS {dtype})"),
            PhysExpr::ScalarFn { func, args } => write!(f, "{}({args:?})", func.name),
        }
    }
}

impl PhysExpr {
    pub fn col(i: usize) -> PhysExpr {
        PhysExpr::Column(i)
    }

    pub fn lit(v: impl Into<Value>) -> PhysExpr {
        PhysExpr::Literal(v.into())
    }

    /// True for a bare `NULL` literal, which has no type of its own and
    /// should adopt one from surrounding context.
    pub fn is_untyped_null(&self) -> bool {
        matches!(self, PhysExpr::Literal(Value::Null))
    }

    /// Output type given the input schema.
    pub fn data_type(&self, input: &Schema) -> SqlResult<DataType> {
        Ok(match self {
            PhysExpr::Column(i) => {
                input
                    .fields
                    .get(*i)
                    .ok_or_else(|| SqlError::Plan(format!("column index {i} out of range")))?
                    .dtype
            }
            PhysExpr::Literal(v) => v.data_type().unwrap_or(DataType::Int),
            PhysExpr::Binary { left, op, right } => {
                if op.is_comparison() || matches!(op, BinaryOp::And | BinaryOp::Or) {
                    DataType::Bool
                } else {
                    let lt = left.data_type(input)?;
                    let rt = right.data_type(input)?;
                    match op {
                        // Int/Int division promotes to Float (documented
                        // dialect choice — keeps PageRank-style arithmetic
                        // exact without explicit casts).
                        BinaryOp::Divide => DataType::Float,
                        _ => {
                            if lt == DataType::Float || rt == DataType::Float {
                                DataType::Float
                            } else if lt == DataType::Str && *op == BinaryOp::Plus {
                                DataType::Str
                            } else {
                                DataType::Int
                            }
                        }
                    }
                }
            }
            PhysExpr::Unary { op, expr } => match op {
                UnaryOp::Not => DataType::Bool,
                UnaryOp::Neg => expr.data_type(input)?,
            },
            PhysExpr::IsNull { .. } | PhysExpr::InList { .. } | PhysExpr::Like { .. } => {
                DataType::Bool
            }
            PhysExpr::Case { when_then, else_expr } => {
                // A bare NULL branch carries no type of its own — it adopts
                // whatever the typed branches agree on (previously it was
                // silently typed Int, making `CASE ... THEN NULL ELSE 'x'`
                // fail at eval time).
                let mut t = None;
                for (_, then) in when_then {
                    if then.is_untyped_null() {
                        continue;
                    }
                    let tt = then.data_type(input)?;
                    t = Some(merge_types(t, tt));
                }
                if let Some(e) = else_expr {
                    if !e.is_untyped_null() {
                        let tt = e.data_type(input)?;
                        t = Some(merge_types(t, tt));
                    }
                }
                t.unwrap_or(DataType::Int)
            }
            PhysExpr::Cast { dtype, .. } => *dtype,
            PhysExpr::ScalarFn { func, args } => {
                let arg_types: SqlResult<Vec<DataType>> =
                    args.iter().map(|a| a.data_type(input)).collect();
                (func.return_type)(&arg_types?)?
            }
        })
    }

    /// Evaluates over a batch, producing one output column.
    pub fn eval(&self, batch: &RecordBatch) -> SqlResult<Column> {
        let n = batch.num_rows();
        match self {
            PhysExpr::Column(i) => {
                if *i >= batch.num_columns() {
                    return Err(SqlError::Execution(format!("column index {i} out of range")));
                }
                Ok(batch.column(*i).clone())
            }
            PhysExpr::Literal(v) => {
                let dtype = v.data_type().unwrap_or(DataType::Int);
                Column::repeat(dtype, v, n).map_err(Into::into)
            }
            PhysExpr::Binary { left, op, right } => {
                let l = left.eval(batch)?;
                let r = right.eval(batch)?;
                eval_binary(&l, *op, &r, batch.schema())
            }
            PhysExpr::Unary { op, expr } => {
                let c = expr.eval(batch)?;
                if vectorized_expr_enabled() {
                    if let Some(out) = eval_unary_vectorized(*op, &c) {
                        return Ok(out);
                    }
                }
                let mut b = ColumnBuilder::with_capacity(
                    match op {
                        UnaryOp::Not => DataType::Bool,
                        UnaryOp::Neg => c.dtype(),
                    },
                    n,
                );
                for i in 0..n {
                    let v = c.value(i);
                    let out = match (op, v) {
                        (_, Value::Null) => Value::Null,
                        (UnaryOp::Not, Value::Bool(x)) => Value::Bool(!x),
                        (UnaryOp::Neg, Value::Int(x)) => Value::Int(-x),
                        (UnaryOp::Neg, Value::Float(x)) => Value::Float(-x),
                        (op, v) => {
                            return Err(SqlError::Execution(format!("cannot apply {op:?} to {v}")))
                        }
                    };
                    b.push(out)?;
                }
                Ok(b.finish())
            }
            PhysExpr::IsNull { expr, negated } => {
                let c = expr.eval(batch)?;
                if vectorized_expr_enabled() {
                    // IS [NOT] NULL reads the validity bitmap directly; the
                    // output is never null itself.
                    let data: Vec<bool> = match c.validity() {
                        None => vec![*negated; n],
                        Some(valid) => (0..n).map(|i| valid.get(i) == *negated).collect(),
                    };
                    return Ok(Column::new(ColumnData::Bool(data), None));
                }
                let mut b = ColumnBuilder::with_capacity(DataType::Bool, n);
                for i in 0..n {
                    let isnull = c.is_null(i);
                    b.push(Value::Bool(isnull != *negated))?;
                }
                Ok(b.finish())
            }
            PhysExpr::InList { expr, list, negated } => {
                let c = expr.eval(batch)?;
                let lists: SqlResult<Vec<Column>> = list.iter().map(|e| e.eval(batch)).collect();
                let lists = lists?;
                if vectorized_expr_enabled() {
                    return Ok(eval_in_list_vectorized(&c, &lists, *negated));
                }
                let mut b = ColumnBuilder::with_capacity(DataType::Bool, n);
                for i in 0..n {
                    let v = c.value(i);
                    if v.is_null() {
                        b.push_null();
                        continue;
                    }
                    let mut found = false;
                    let mut saw_null = false;
                    for lc in &lists {
                        let lv = lc.value(i);
                        match v.sql_eq(&lv) {
                            Some(true) => {
                                found = true;
                                break;
                            }
                            Some(false) => {}
                            None => saw_null = true,
                        }
                    }
                    if found {
                        b.push(Value::Bool(!*negated))?;
                    } else if saw_null {
                        b.push_null();
                    } else {
                        b.push(Value::Bool(*negated))?;
                    }
                }
                Ok(b.finish())
            }
            PhysExpr::Like { expr, pattern, negated } => {
                let c = expr.eval(batch)?;
                let p = pattern.eval(batch)?;
                let mut b = ColumnBuilder::with_capacity(DataType::Bool, n);
                for i in 0..n {
                    if c.is_null(i) || p.is_null(i) {
                        b.push_null();
                        continue;
                    }
                    let (Value::Str(s), Value::Str(pat)) = (c.value(i), p.value(i)) else {
                        return Err(SqlError::Execution("LIKE requires strings".into()));
                    };
                    let m = like_match(&s, &pat);
                    b.push(Value::Bool(m != *negated))?;
                }
                Ok(b.finish())
            }
            PhysExpr::Case { when_then, else_expr } => {
                let out_type = self.data_type(batch.schema())?;
                let whens: SqlResult<Vec<Column>> =
                    when_then.iter().map(|(w, _)| w.eval(batch)).collect();
                let whens = whens?;
                let thens: SqlResult<Vec<Column>> =
                    when_then.iter().map(|(_, t)| t.eval(batch)).collect();
                let thens = thens?;
                let else_col = else_expr.as_ref().map(|e| e.eval(batch)).transpose()?;
                if vectorized_expr_enabled() {
                    if let Some(out) =
                        eval_case_vectorized(out_type, &whens, &thens, else_col.as_ref(), n)?
                    {
                        return Ok(out);
                    }
                }
                let mut b = ColumnBuilder::with_capacity(out_type, n);
                'rows: for i in 0..n {
                    for (w, t) in whens.iter().zip(&thens) {
                        if w.value(i) == Value::Bool(true) {
                            b.push(t.value(i))?;
                            continue 'rows;
                        }
                    }
                    match &else_col {
                        Some(e) => b.push(e.value(i))?,
                        None => b.push_null(),
                    }
                }
                Ok(b.finish())
            }
            PhysExpr::Cast { expr, dtype } => {
                let c = expr.eval(batch)?;
                let mut b = ColumnBuilder::with_capacity(*dtype, n);
                for i in 0..n {
                    let v = c.value(i);
                    let out = cast_value(&v, *dtype)?;
                    b.push(out)?;
                }
                Ok(b.finish())
            }
            PhysExpr::ScalarFn { func, args } => {
                let arg_cols: SqlResult<Vec<Column>> = args.iter().map(|a| a.eval(batch)).collect();
                let arg_cols = arg_cols?;
                let arg_types: Vec<DataType> = arg_cols.iter().map(|c| c.dtype()).collect();
                let out_type = (func.return_type)(&arg_types)?;
                let mut b = ColumnBuilder::with_capacity(out_type, n);
                let mut row: Vec<Value> = Vec::with_capacity(arg_cols.len());
                for i in 0..n {
                    row.clear();
                    for c in &arg_cols {
                        row.push(c.value(i));
                    }
                    b.push((func.eval)(&row)?)?;
                }
                Ok(b.finish())
            }
        }
    }

    /// Evaluates a constant expression (no column references) to a scalar.
    /// Used for `VALUES` rows and constant folding.
    pub fn eval_scalar(&self) -> SqlResult<Value> {
        match self {
            PhysExpr::Column(i) => {
                Err(SqlError::Execution(format!("column #{i} in constant context")))
            }
            PhysExpr::Literal(v) => Ok(v.clone()),
            PhysExpr::Binary { left, op, right } => {
                binary_value_op(&left.eval_scalar()?, *op, &right.eval_scalar()?)
            }
            PhysExpr::Unary { op, expr } => {
                let v = expr.eval_scalar()?;
                Ok(match (op, v) {
                    (_, Value::Null) => Value::Null,
                    (UnaryOp::Not, Value::Bool(x)) => Value::Bool(!x),
                    (UnaryOp::Neg, Value::Int(x)) => Value::Int(-x),
                    (UnaryOp::Neg, Value::Float(x)) => Value::Float(-x),
                    (op, v) => {
                        return Err(SqlError::Execution(format!("cannot apply {op:?} to {v}")))
                    }
                })
            }
            PhysExpr::IsNull { expr, negated } => {
                Ok(Value::Bool(expr.eval_scalar()?.is_null() != *negated))
            }
            PhysExpr::InList { expr, list, negated } => {
                let v = expr.eval_scalar()?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    match v.sql_eq(&item.eval_scalar()?) {
                        Some(true) => return Ok(Value::Bool(!*negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                Ok(if saw_null { Value::Null } else { Value::Bool(*negated) })
            }
            PhysExpr::Like { expr, pattern, negated } => {
                let v = expr.eval_scalar()?;
                let p = pattern.eval_scalar()?;
                match (v, p) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Str(s), Value::Str(pat)) => {
                        Ok(Value::Bool(like_match(&s, &pat) != *negated))
                    }
                    _ => Err(SqlError::Execution("LIKE requires strings".into())),
                }
            }
            PhysExpr::Case { when_then, else_expr } => {
                for (w, t) in when_then {
                    if w.eval_scalar()? == Value::Bool(true) {
                        return t.eval_scalar();
                    }
                }
                match else_expr {
                    Some(e) => e.eval_scalar(),
                    None => Ok(Value::Null),
                }
            }
            PhysExpr::Cast { expr, dtype } => cast_value(&expr.eval_scalar()?, *dtype),
            PhysExpr::ScalarFn { func, args } => {
                let vals: SqlResult<Vec<Value>> = args.iter().map(|a| a.eval_scalar()).collect();
                (func.eval)(&vals?)
            }
        }
    }

    /// True if the expression references no input columns.
    pub fn is_constant(&self) -> bool {
        match self {
            PhysExpr::Column(_) => false,
            PhysExpr::Literal(_) => true,
            PhysExpr::Binary { left, right, .. } => left.is_constant() && right.is_constant(),
            PhysExpr::Unary { expr, .. } => expr.is_constant(),
            PhysExpr::IsNull { expr, .. } => expr.is_constant(),
            PhysExpr::InList { expr, list, .. } => {
                expr.is_constant() && list.iter().all(|e| e.is_constant())
            }
            PhysExpr::Like { expr, pattern, .. } => expr.is_constant() && pattern.is_constant(),
            PhysExpr::Case { when_then, else_expr } => {
                when_then.iter().all(|(w, t)| w.is_constant() && t.is_constant())
                    && else_expr.as_ref().is_none_or(|e| e.is_constant())
            }
            PhysExpr::Cast { expr, .. } => expr.is_constant(),
            PhysExpr::ScalarFn { args, .. } => args.iter().all(|a| a.is_constant()),
        }
    }

    /// Evaluates and requires a boolean column; returns a selection bitmap
    /// with SQL semantics (bit set iff the row is a known `true`; NULL →
    /// unset). Operators consume this directly — `RecordBatch::filter` and
    /// the bitmap algebra work on it without a `Vec<bool>` detour.
    pub fn eval_predicate(&self, batch: &RecordBatch) -> SqlResult<Bitmap> {
        let c = self.eval(batch)?;
        if c.dtype() != DataType::Bool {
            return Err(SqlError::Execution(format!(
                "predicate must be boolean, got {}",
                c.dtype()
            )));
        }
        let data = Bitmap::from_bools(c.as_bool().expect("bool column"));
        // Mask out nulls: payload bits behind an unset validity bit are
        // unspecified (gathers can carry stale values).
        Ok(match c.validity() {
            Some(valid) => data.and(valid),
            None => data,
        })
    }
}

fn merge_types(acc: Option<DataType>, t: DataType) -> DataType {
    match acc {
        None => t,
        Some(a) if a == t => a,
        Some(DataType::Int) if t == DataType::Float => DataType::Float,
        Some(DataType::Float) if t == DataType::Int => DataType::Float,
        Some(a) => a,
    }
}

/// SQL CAST semantics (stricter than coercion: supports string parsing).
pub fn cast_value(v: &Value, target: DataType) -> SqlResult<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    let out = match (v, target) {
        (Value::Str(s), DataType::Int) => s
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| SqlError::Execution(format!("cannot cast '{s}' to BIGINT")))?,
        (Value::Str(s), DataType::Float) => s
            .trim()
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| SqlError::Execution(format!("cannot cast '{s}' to FLOAT")))?,
        (Value::Str(s), DataType::Bool) => match s.to_ascii_lowercase().as_str() {
            "true" | "t" | "1" => Value::Bool(true),
            "false" | "f" | "0" => Value::Bool(false),
            _ => return Err(SqlError::Execution(format!("cannot cast '{s}' to BOOLEAN"))),
        },
        (v, DataType::Str) => Value::Str(v.to_string()),
        (v, t) => v.coerce(t).map_err(|e| SqlError::Execution(e.to_string()))?,
    };
    Ok(out)
}

/// SQL LIKE pattern matching: `%` = any sequence, `_` = any one char.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Try all splits.
                for i in 0..=s.len() {
                    if rec(&s[i..], &p[1..]) {
                        return true;
                    }
                }
                false
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => !s.is_empty() && s[0] == *c && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

fn eval_binary(l: &Column, op: BinaryOp, r: &Column, _schema: &Schema) -> SqlResult<Column> {
    let n = l.len();
    debug_assert_eq!(n, r.len());

    if vectorized_expr_enabled() {
        if let Some(out) = eval_binary_vectorized(l, op, r)? {
            return Ok(out);
        }
    }

    // Generic value-wise path.
    let out_dtype = match op {
        op if op.is_comparison() => DataType::Bool,
        BinaryOp::And | BinaryOp::Or => DataType::Bool,
        BinaryOp::Divide => DataType::Float,
        _ => {
            if l.dtype() == DataType::Float || r.dtype() == DataType::Float {
                DataType::Float
            } else if l.dtype() == DataType::Str {
                DataType::Str
            } else {
                DataType::Int
            }
        }
    };
    let mut b = ColumnBuilder::with_capacity(out_dtype, n);
    for i in 0..n {
        let lv = l.value(i);
        let rv = r.value(i);
        let out = binary_value_op(&lv, op, &rv)?;
        b.push(out)?;
    }
    Ok(b.finish())
}

/// A borrowed numeric column payload; lets comparison and arithmetic kernels
/// treat Int and Float operands uniformly through the same f64 promotion the
/// row-path oracle ([`binary_value_op`]) applies.
#[derive(Clone, Copy)]
enum NumView<'a> {
    I(&'a [i64]),
    F(&'a [f64]),
}

impl NumView<'_> {
    fn of(c: &Column) -> Option<NumView<'_>> {
        c.as_int().map(NumView::I).or_else(|| c.as_float().map(NumView::F))
    }

    #[inline]
    fn get(&self, i: usize) -> f64 {
        match self {
            NumView::I(v) => v[i] as f64,
            NumView::F(v) => v[i],
        }
    }
}

/// Dispatches to a typed slice kernel, or returns `None` when no kernel
/// applies. Unsupported dtype pairings deliberately fall back to the row
/// loop: it raises type errors lazily, only for rows where **both** sides
/// are non-null, and a kernel must not error eagerly where the row path
/// would have succeeded.
fn eval_binary_vectorized(l: &Column, op: BinaryOp, r: &Column) -> SqlResult<Option<Column>> {
    if matches!(op, BinaryOp::And | BinaryOp::Or) {
        if l.dtype() == DataType::Bool && r.dtype() == DataType::Bool {
            return Ok(Some(bool_logic_kernel(l, op, r)));
        }
        return Ok(None);
    }
    if op.is_comparison() {
        return Ok(compare_kernel(l, op, r));
    }
    Ok(arith_kernel(l, op, r))
}

/// Word-wise three-valued AND/OR. With LT/LF = "left valid and true/false"
/// (RT/RF likewise), `AND` is false when either side is a known false and
/// true when both are known true; `OR` is the dual. Everything else is NULL.
/// Payload bits behind an unset validity bit are never trusted.
fn bool_logic_kernel(l: &Column, op: BinaryOp, r: &Column) -> Column {
    let n = l.len();
    let ld = Bitmap::from_bools(l.as_bool().expect("bool column"));
    let rd = Bitmap::from_bools(r.as_bool().expect("bool column"));
    let lv = l.validity().cloned().unwrap_or_else(|| Bitmap::ones(n));
    let rv = r.validity().cloned().unwrap_or_else(|| Bitmap::ones(n));
    let (lt, lf) = (lv.and(&ld), lv.and_not(&ld));
    let (rt, rf) = (rv.and(&rd), rv.and_not(&rd));
    let (data, valid) = match op {
        BinaryOp::And => {
            let t = lt.and(&rt);
            let valid = lf.or(&rf).or(&t);
            (t, valid)
        }
        BinaryOp::Or => {
            let t = lt.or(&rt);
            let valid = lf.and(&rf).or(&t);
            (t, valid)
        }
        _ => unreachable!("bool_logic_kernel only handles AND/OR"),
    };
    let has_null = !valid.all();
    Column::new(ColumnData::Bool(data.to_bools()), has_null.then_some(valid))
}

fn cmp_ord(op: BinaryOp, ord: std::cmp::Ordering) -> bool {
    match op {
        BinaryOp::Eq => ord.is_eq(),
        BinaryOp::NotEq => !ord.is_eq(),
        BinaryOp::Lt => ord.is_lt(),
        BinaryOp::LtEq => ord.is_le(),
        BinaryOp::Gt => ord.is_gt(),
        BinaryOp::GtEq => ord.is_ge(),
        _ => unreachable!("not a comparison"),
    }
}

/// Typed comparison kernel. Numeric operands promote through f64 even for
/// Int/Int — the row-path oracle does the same, so behaviour at magnitudes
/// beyond 2^53 stays bit-identical. Cross-type pairings return `None`.
fn compare_kernel(l: &Column, op: BinaryOp, r: &Column) -> Option<Column> {
    let n = l.len();
    if let (Some(a), Some(b)) = (NumView::of(l), NumView::of(r)) {
        let mut data = vec![false; n];
        let mut valid = Bitmap::ones(n);
        let mut has_null = false;
        for (i, slot) in data.iter_mut().enumerate() {
            if l.is_null(i) || r.is_null(i) {
                valid.set(i, false);
                has_null = true;
                continue;
            }
            match a.get(i).partial_cmp(&b.get(i)) {
                Some(ord) => *slot = cmp_ord(op, ord),
                None => {
                    // NaN comparisons are unknown.
                    valid.set(i, false);
                    has_null = true;
                }
            }
        }
        return Some(Column::new(ColumnData::Bool(data), has_null.then_some(valid)));
    }
    fn ordered<T: PartialOrd>(l: &Column, a: &[T], op: BinaryOp, r: &Column, b: &[T]) -> Column {
        let n = a.len();
        let mut data = vec![false; n];
        let mut valid = Bitmap::ones(n);
        let mut has_null = false;
        for i in 0..n {
            match (!l.is_null(i) && !r.is_null(i)).then(|| a[i].partial_cmp(&b[i])).flatten() {
                Some(ord) => data[i] = cmp_ord(op, ord),
                None => {
                    valid.set(i, false);
                    has_null = true;
                }
            }
        }
        Column::new(ColumnData::Bool(data), has_null.then_some(valid))
    }
    match (l.dtype(), r.dtype()) {
        (DataType::Str, DataType::Str) => {
            Some(ordered(l, l.as_str().unwrap(), op, r, r.as_str().unwrap()))
        }
        (DataType::Bool, DataType::Bool) => {
            Some(ordered(l, l.as_bool().unwrap(), op, r, r.as_bool().unwrap()))
        }
        (DataType::Blob, DataType::Blob) => {
            Some(ordered(l, l.as_blob().unwrap(), op, r, r.as_blob().unwrap()))
        }
        _ => None,
    }
}

/// Typed arithmetic kernels: Int stays in i64 with wrapping semantics
/// (except division, which always floats), any Float operand promotes both
/// sides to f64, and `Str + Str` concatenates. Division/modulo by zero is
/// NULL, matching the oracle. Non-numeric pairings return `None`.
fn arith_kernel(l: &Column, op: BinaryOp, r: &Column) -> Option<Column> {
    use BinaryOp::*;
    let n = l.len();
    if let (Some(a), Some(b)) = (l.as_int(), r.as_int()) {
        if matches!(op, Plus | Minus | Multiply) {
            let mut data = vec![0i64; n];
            let mut valid = Bitmap::ones(n);
            let mut has_null = false;
            for i in 0..n {
                if l.is_null(i) || r.is_null(i) {
                    valid.set(i, false);
                    has_null = true;
                    continue;
                }
                data[i] = match op {
                    Plus => a[i].wrapping_add(b[i]),
                    Minus => a[i].wrapping_sub(b[i]),
                    _ => a[i].wrapping_mul(b[i]),
                };
            }
            return Some(Column::new(ColumnData::Int(data), has_null.then_some(valid)));
        }
        if op == Modulo {
            let mut data = vec![0i64; n];
            let mut valid = Bitmap::ones(n);
            let mut has_null = false;
            for i in 0..n {
                if l.is_null(i) || r.is_null(i) || b[i] == 0 {
                    valid.set(i, false);
                    has_null = true;
                    continue;
                }
                data[i] = a[i] % b[i];
            }
            return Some(Column::new(ColumnData::Int(data), has_null.then_some(valid)));
        }
        // Divide falls through to the float kernel below.
    }
    if op == Plus {
        if let (Some(a), Some(b)) = (l.as_str(), r.as_str()) {
            let mut data = Vec::with_capacity(n);
            let mut valid = Bitmap::ones(n);
            let mut has_null = false;
            for i in 0..n {
                if l.is_null(i) || r.is_null(i) {
                    valid.set(i, false);
                    has_null = true;
                    data.push(String::new());
                    continue;
                }
                let mut s = String::with_capacity(a[i].len() + b[i].len());
                s.push_str(&a[i]);
                s.push_str(&b[i]);
                data.push(s);
            }
            return Some(Column::new(ColumnData::Str(data), has_null.then_some(valid)));
        }
    }
    if let (Some(a), Some(b)) = (NumView::of(l), NumView::of(r)) {
        let mut data = vec![0f64; n];
        let mut valid = Bitmap::ones(n);
        let mut has_null = false;
        for (i, slot) in data.iter_mut().enumerate() {
            if l.is_null(i) || r.is_null(i) {
                valid.set(i, false);
                has_null = true;
                continue;
            }
            let (x, y) = (a.get(i), b.get(i));
            *slot = match op {
                Plus => x + y,
                Minus => x - y,
                Multiply => x * y,
                Divide | Modulo => {
                    if y == 0.0 {
                        valid.set(i, false);
                        has_null = true;
                        continue;
                    }
                    if op == Divide {
                        x / y
                    } else {
                        x % y
                    }
                }
                _ => unreachable!("not an arithmetic operator"),
            };
        }
        return Some(Column::new(ColumnData::Float(data), has_null.then_some(valid)));
    }
    None
}

/// Vectorized NOT (bitmap complement under validity) and Neg (typed slice
/// negation). `None` falls back to the row loop for its lazy type errors.
fn eval_unary_vectorized(op: UnaryOp, c: &Column) -> Option<Column> {
    let n = c.len();
    match op {
        UnaryOp::Not => {
            let data = Bitmap::from_bools(c.as_bool()?);
            let valid = c.validity().cloned().unwrap_or_else(|| Bitmap::ones(n));
            let out = valid.and_not(&data);
            let has_null = !valid.all();
            Some(Column::new(ColumnData::Bool(out.to_bools()), has_null.then_some(valid)))
        }
        UnaryOp::Neg => {
            if let Some(v) = c.as_int() {
                // `-x`, not wrapping_neg: a debug-build overflow on i64::MIN
                // must panic exactly as the row loop does.
                let data = (0..n).map(|i| if c.is_null(i) { 0 } else { -v[i] }).collect();
                Some(Column::new(ColumnData::Int(data), c.validity().cloned()))
            } else if let Some(v) = c.as_float() {
                let data = (0..n).map(|i| if c.is_null(i) { 0.0 } else { -v[i] }).collect();
                Some(Column::new(ColumnData::Float(data), c.validity().cloned()))
            } else {
                None
            }
        }
    }
}

/// Columnar IN-list: probes every list column against the needle with typed
/// loops, accumulating per-row "found a match" / "saw a NULL item" flags,
/// then assembles the three-valued result in one pass. `sql_eq` semantics
/// throughout: a type mismatch is plain false, NULL items make a miss
/// unknown rather than false.
fn eval_in_list_vectorized(v: &Column, lists: &[Column], negated: bool) -> Column {
    let n = v.len();
    let mut found = vec![false; n];
    let mut saw_null = vec![false; n];
    for lc in lists {
        in_list_probe(v, lc, &mut found, &mut saw_null);
    }
    let mut data = vec![false; n];
    let mut valid = Bitmap::ones(n);
    let mut has_null = false;
    for i in 0..n {
        if v.is_null(i) || (!found[i] && saw_null[i]) {
            valid.set(i, false);
            has_null = true;
        } else {
            data[i] = found[i] != negated;
        }
    }
    Column::new(ColumnData::Bool(data), has_null.then_some(valid))
}

fn in_list_probe(v: &Column, lc: &Column, found: &mut [bool], saw_null: &mut [bool]) {
    let n = v.len();
    macro_rules! probe {
        ($eq:expr) => {
            for i in 0..n {
                if v.is_null(i) {
                    continue;
                }
                if lc.is_null(i) {
                    saw_null[i] = true;
                } else if $eq(i) {
                    found[i] = true;
                }
            }
        };
    }
    match (v.dtype(), lc.dtype()) {
        (DataType::Int, DataType::Int) => {
            let (a, b) = (v.as_int().unwrap(), lc.as_int().unwrap());
            probe!(|i: usize| a[i] == b[i]);
        }
        (DataType::Float, DataType::Float) => {
            let (a, b) = (v.as_float().unwrap(), lc.as_float().unwrap());
            probe!(|i: usize| a[i] == b[i]);
        }
        (DataType::Int, DataType::Float) => {
            let (a, b) = (v.as_int().unwrap(), lc.as_float().unwrap());
            probe!(|i: usize| (a[i] as f64) == b[i]);
        }
        (DataType::Float, DataType::Int) => {
            let (a, b) = (v.as_float().unwrap(), lc.as_int().unwrap());
            probe!(|i: usize| a[i] == (b[i] as f64));
        }
        (DataType::Str, DataType::Str) => {
            let (a, b) = (v.as_str().unwrap(), lc.as_str().unwrap());
            probe!(|i: usize| a[i] == b[i]);
        }
        _ => {
            // Bool/Blob and cross-type pairings: per-row sql_eq (a mismatch
            // is an ordinary false, never an error).
            probe!(|i: usize| v.value(i).sql_eq(&lc.value(i)) == Some(true));
        }
    }
}

/// Columnar CASE: computes a per-row branch choice from the WHEN columns,
/// then gathers from the matching THEN/ELSE columns. Only engages when every
/// source column is losslessly pushable into the output type — otherwise the
/// row loop runs, which coerces (and can error) only on selected rows.
fn eval_case_vectorized(
    out_type: DataType,
    whens: &[Column],
    thens: &[Column],
    else_col: Option<&Column>,
    n: usize,
) -> SqlResult<Option<Column>> {
    let coercible = |c: &Column| {
        c.null_count() == c.len()
            || c.dtype() == out_type
            || matches!(
                (c.dtype(), out_type),
                (DataType::Int, DataType::Float)
                    | (DataType::Float, DataType::Int)
                    | (DataType::Bool, DataType::Int)
            )
    };
    if !thens.iter().all(coercible) || !else_col.is_none_or(coercible) {
        return Ok(None);
    }
    // u32::MAX = "no branch matched" → ELSE (or NULL without one).
    let mut choice = vec![u32::MAX; n];
    for (bi, w) in whens.iter().enumerate() {
        // A non-boolean WHEN column never equals TRUE row-wise; skip it.
        let Some(wd) = w.as_bool() else { continue };
        for i in 0..n {
            if choice[i] == u32::MAX && !w.is_null(i) && wd[i] {
                choice[i] = bi as u32;
            }
        }
    }
    let mut b = ColumnBuilder::with_capacity(out_type, n);
    for (i, &ch) in choice.iter().enumerate() {
        let src = match ch {
            u32::MAX => match else_col {
                Some(e) => e,
                None => {
                    b.push_null();
                    continue;
                }
            },
            bi => &thens[bi as usize],
        };
        b.push(src.value(i))?;
    }
    Ok(Some(b.finish()))
}

/// Applies a binary operator to two scalars with SQL NULL semantics.
pub fn binary_value_op(l: &Value, op: BinaryOp, r: &Value) -> SqlResult<Value> {
    use BinaryOp::*;
    // Three-valued logic for AND/OR must inspect nulls specially.
    if matches!(op, And | Or) {
        let lb = match l {
            Value::Null => None,
            Value::Bool(b) => Some(*b),
            other => return Err(SqlError::Execution(format!("AND/OR on non-boolean {other}"))),
        };
        let rb = match r {
            Value::Null => None,
            Value::Bool(b) => Some(*b),
            other => return Err(SqlError::Execution(format!("AND/OR on non-boolean {other}"))),
        };
        return Ok(match (op, lb, rb) {
            (And, Some(false), _) | (And, _, Some(false)) => Value::Bool(false),
            (And, Some(true), Some(true)) => Value::Bool(true),
            (Or, Some(true), _) | (Or, _, Some(true)) => Value::Bool(true),
            (Or, Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        });
    }

    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }

    if op.is_comparison() {
        let result = match (l, r) {
            // Numeric comparison handles Int/Float mixing.
            (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
                let a = l.as_float().unwrap();
                let b = r.as_float().unwrap();
                compare_with(op, a.partial_cmp(&b))
            }
            (Value::Str(a), Value::Str(b)) => compare_with(op, a.partial_cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => compare_with(op, a.partial_cmp(b)),
            (Value::Blob(a), Value::Blob(b)) => compare_with(op, a.partial_cmp(b)),
            (a, b) => {
                return Err(SqlError::Execution(format!("cannot compare {a} with {b}")));
            }
        };
        return Ok(result);
    }

    // Arithmetic / concatenation.
    let out = match (l, r, op) {
        (Value::Str(a), Value::Str(b), Plus) => Value::Str(format!("{a}{b}")),
        (Value::Int(a), Value::Int(b), Plus) => Value::Int(a.wrapping_add(*b)),
        (Value::Int(a), Value::Int(b), Minus) => Value::Int(a.wrapping_sub(*b)),
        (Value::Int(a), Value::Int(b), Multiply) => Value::Int(a.wrapping_mul(*b)),
        (Value::Int(a), Value::Int(b), Modulo) => {
            if *b == 0 {
                Value::Null
            } else {
                Value::Int(a % b)
            }
        }
        // Division always floats; division by zero yields NULL.
        (a, b, Divide) => {
            let (x, y) = promote(a, b)?;
            if y == 0.0 {
                Value::Null
            } else {
                Value::Float(x / y)
            }
        }
        (a, b, Plus) => {
            let (x, y) = promote(a, b)?;
            Value::Float(x + y)
        }
        (a, b, Minus) => {
            let (x, y) = promote(a, b)?;
            Value::Float(x - y)
        }
        (a, b, Multiply) => {
            let (x, y) = promote(a, b)?;
            Value::Float(x * y)
        }
        (a, b, Modulo) => {
            let (x, y) = promote(a, b)?;
            if y == 0.0 {
                Value::Null
            } else {
                Value::Float(x % y)
            }
        }
        (a, b, op) => {
            return Err(SqlError::Execution(format!("cannot apply {op:?} to {a}, {b}")));
        }
    };
    Ok(out)
}

fn promote(a: &Value, b: &Value) -> SqlResult<(f64, f64)> {
    match (a.as_float(), b.as_float()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(SqlError::Execution(format!("non-numeric arithmetic on {a}, {b}"))),
    }
}

fn compare_with(op: BinaryOp, ord: Option<std::cmp::Ordering>) -> Value {
    let Some(ord) = ord else {
        return Value::Null; // NaN comparisons are unknown
    };
    let b = match op {
        BinaryOp::Eq => ord.is_eq(),
        BinaryOp::NotEq => !ord.is_eq(),
        BinaryOp::Lt => ord.is_lt(),
        BinaryOp::LtEq => ord.is_le(),
        BinaryOp::Gt => ord.is_gt(),
        BinaryOp::GtEq => ord.is_ge(),
        _ => unreachable!(),
    };
    Value::Bool(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vertexica_storage::Field;

    fn batch() -> RecordBatch {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Float),
            Field::new("s", DataType::Str),
        ]);
        RecordBatch::from_rows(
            schema,
            &[
                vec![Value::Int(1), Value::Float(0.5), Value::Str("family".into())],
                vec![Value::Int(2), Value::Float(1.5), Value::Str("friend".into())],
                vec![Value::Null, Value::Float(2.5), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn column_and_literal() {
        let b = batch();
        let c = PhysExpr::col(0).eval(&b).unwrap();
        assert_eq!(c.value(1), Value::Int(2));
        let l = PhysExpr::lit(7i64).eval(&b).unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(l.value(2), Value::Int(7));
    }

    #[test]
    fn arithmetic_with_nulls() {
        let b = batch();
        let e = PhysExpr::Binary {
            left: Box::new(PhysExpr::col(0)),
            op: BinaryOp::Plus,
            right: Box::new(PhysExpr::lit(10i64)),
        };
        let c = e.eval(&b).unwrap();
        assert_eq!(c.value(0), Value::Int(11));
        assert_eq!(c.value(2), Value::Null);
    }

    #[test]
    fn int_division_floats() {
        let b = batch();
        let e = PhysExpr::Binary {
            left: Box::new(PhysExpr::lit(1i64)),
            op: BinaryOp::Divide,
            right: Box::new(PhysExpr::lit(4i64)),
        };
        let c = e.eval(&b).unwrap();
        assert_eq!(c.value(0), Value::Float(0.25));
    }

    #[test]
    fn division_by_zero_is_null() {
        assert_eq!(
            binary_value_op(&Value::Int(1), BinaryOp::Divide, &Value::Int(0)).unwrap(),
            Value::Null
        );
        assert_eq!(
            binary_value_op(&Value::Int(1), BinaryOp::Modulo, &Value::Int(0)).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn three_valued_logic() {
        use BinaryOp::{And, Or};
        let t = Value::Bool(true);
        let f = Value::Bool(false);
        let n = Value::Null;
        assert_eq!(binary_value_op(&f, And, &n).unwrap(), Value::Bool(false));
        assert_eq!(binary_value_op(&t, And, &n).unwrap(), Value::Null);
        assert_eq!(binary_value_op(&t, Or, &n).unwrap(), Value::Bool(true));
        assert_eq!(binary_value_op(&f, Or, &n).unwrap(), Value::Null);
    }

    #[test]
    fn comparisons_mix_int_float() {
        let b = batch();
        let e = PhysExpr::Binary {
            left: Box::new(PhysExpr::col(0)),
            op: BinaryOp::Lt,
            right: Box::new(PhysExpr::col(1)),
        };
        let c = e.eval(&b).unwrap();
        assert_eq!(c.value(0), Value::Bool(false)); // 1 < 0.5
        assert_eq!(c.value(1), Value::Bool(false)); // 2 < 1.5
        assert_eq!(c.value(2), Value::Null);
    }

    #[test]
    fn is_null_and_in_list() {
        let b = batch();
        let e = PhysExpr::IsNull { expr: Box::new(PhysExpr::col(0)), negated: false };
        let c = e.eval(&b).unwrap();
        assert_eq!(c.value(0), Value::Bool(false));
        assert_eq!(c.value(2), Value::Bool(true));

        let e = PhysExpr::InList {
            expr: Box::new(PhysExpr::col(2)),
            list: vec![PhysExpr::lit("family"), PhysExpr::lit("classmate")],
            negated: false,
        };
        let c = e.eval(&b).unwrap();
        assert_eq!(c.value(0), Value::Bool(true));
        assert_eq!(c.value(1), Value::Bool(false));
        assert_eq!(c.value(2), Value::Null);
    }

    #[test]
    fn like_matching() {
        assert!(like_match("family", "fam%"));
        assert!(like_match("family", "%ily"));
        assert!(like_match("family", "f_mily"));
        assert!(!like_match("family", "fam"));
        assert!(like_match("", "%"));
        assert!(like_match("abc", "%%c"));
        assert!(!like_match("abc", "_"));
    }

    #[test]
    fn case_expression() {
        let b = batch();
        let e = PhysExpr::Case {
            when_then: vec![(
                PhysExpr::Binary {
                    left: Box::new(PhysExpr::col(0)),
                    op: BinaryOp::Eq,
                    right: Box::new(PhysExpr::lit(1i64)),
                },
                PhysExpr::lit("one"),
            )],
            else_expr: Some(Box::new(PhysExpr::lit("other"))),
        };
        let c = e.eval(&b).unwrap();
        assert_eq!(c.value(0), Value::Str("one".into()));
        assert_eq!(c.value(1), Value::Str("other".into()));
        assert_eq!(c.value(2), Value::Str("other".into())); // null comparison → else
    }

    #[test]
    fn cast_string_numbers() {
        assert_eq!(cast_value(&Value::Str(" 42 ".into()), DataType::Int).unwrap(), Value::Int(42));
        assert_eq!(
            cast_value(&Value::Str("2.5".into()), DataType::Float).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(cast_value(&Value::Int(3), DataType::Str).unwrap(), Value::Str("3".into()));
        assert!(cast_value(&Value::Str("zzz".into()), DataType::Int).is_err());
    }

    #[test]
    fn eval_predicate_null_is_false() {
        let b = batch();
        let e = PhysExpr::Binary {
            left: Box::new(PhysExpr::col(0)),
            op: BinaryOp::Gt,
            right: Box::new(PhysExpr::lit(1i64)),
        };
        let mask = e.eval_predicate(&b).unwrap();
        assert_eq!(mask, Bitmap::from_iter_bool([false, true, false]));
    }

    #[test]
    fn predicate_type_checked() {
        let b = batch();
        assert!(PhysExpr::col(0).eval_predicate(&b).is_err());
    }

    #[test]
    fn case_null_branch_adopts_other_branch_type() {
        // Regression: a bare NULL THEN-branch used to be typed Int, so
        // `CASE WHEN a=1 THEN NULL ELSE 'x' END` failed pushing 'x' into an
        // Int column. The NULL branch must adopt the Str type instead.
        let b = batch();
        let e = PhysExpr::Case {
            when_then: vec![(
                PhysExpr::Binary {
                    left: Box::new(PhysExpr::col(0)),
                    op: BinaryOp::Eq,
                    right: Box::new(PhysExpr::lit(1i64)),
                },
                PhysExpr::Literal(Value::Null),
            )],
            else_expr: Some(Box::new(PhysExpr::lit("x"))),
        };
        assert_eq!(e.data_type(b.schema()).unwrap(), DataType::Str);
        let c = e.eval(&b).unwrap();
        assert_eq!(c.value(0), Value::Null);
        assert_eq!(c.value(1), Value::Str("x".into()));
        assert_eq!(c.value(2), Value::Str("x".into()));
        // All branches NULL still defaults to Int.
        let all_null = PhysExpr::Case {
            when_then: vec![],
            else_expr: Some(Box::new(PhysExpr::lit(Value::Null))),
        };
        assert_eq!(all_null.data_type(b.schema()).unwrap(), DataType::Int);
    }

    /// Evaluates `e` with kernels on and off and asserts the outputs are
    /// bitwise identical (dtype, values, and validity placement).
    fn assert_paths_agree(e: &PhysExpr, b: &RecordBatch) {
        set_vectorized_expr(true);
        let fast = e.eval(b).unwrap();
        set_vectorized_expr(false);
        let slow = e.eval(b).unwrap();
        set_vectorized_expr(true);
        assert_eq!(fast.dtype(), slow.dtype());
        assert_eq!(fast.len(), slow.len());
        for i in 0..fast.len() {
            assert_eq!(fast.value(i), slow.value(i), "row {i} of {e:?}");
            assert_eq!(fast.is_null(i), slow.is_null(i), "row {i} nullness of {e:?}");
        }
        assert_eq!(fast.validity(), slow.validity(), "validity of {e:?}");
    }

    #[test]
    fn kernels_match_row_path() {
        let b = batch();
        let bin = |l: PhysExpr, op, r: PhysExpr| PhysExpr::Binary {
            left: Box::new(l),
            op,
            right: Box::new(r),
        };
        for op in [
            BinaryOp::Plus,
            BinaryOp::Minus,
            BinaryOp::Multiply,
            BinaryOp::Divide,
            BinaryOp::Modulo,
            BinaryOp::Eq,
            BinaryOp::NotEq,
            BinaryOp::Lt,
            BinaryOp::LtEq,
            BinaryOp::Gt,
            BinaryOp::GtEq,
        ] {
            // Int×Int, Int×Float (incl. nulls in column a), and zero divisors.
            assert_paths_agree(&bin(PhysExpr::col(0), op, PhysExpr::col(0)), &b);
            assert_paths_agree(&bin(PhysExpr::col(0), op, PhysExpr::col(1)), &b);
            assert_paths_agree(&bin(PhysExpr::col(0), op, PhysExpr::lit(0i64)), &b);
        }
        // Str concat and Str comparison, with nulls.
        assert_paths_agree(&bin(PhysExpr::col(2), BinaryOp::Plus, PhysExpr::col(2)), &b);
        assert_paths_agree(&bin(PhysExpr::col(2), BinaryOp::Lt, PhysExpr::lit("friend")), &b);
        // Three-valued AND/OR over (a > 1) and (b < 2.0), NOT, IS NULL.
        let gt = bin(PhysExpr::col(0), BinaryOp::Gt, PhysExpr::lit(1i64));
        let lt = bin(PhysExpr::col(1), BinaryOp::Lt, PhysExpr::lit(2.0f64));
        assert_paths_agree(&bin(gt.clone(), BinaryOp::And, lt.clone()), &b);
        assert_paths_agree(&bin(gt.clone(), BinaryOp::Or, lt.clone()), &b);
        assert_paths_agree(&PhysExpr::Unary { op: UnaryOp::Not, expr: Box::new(gt.clone()) }, &b);
        assert_paths_agree(
            &PhysExpr::Unary { op: UnaryOp::Neg, expr: Box::new(PhysExpr::col(0)) },
            &b,
        );
        assert_paths_agree(
            &PhysExpr::IsNull { expr: Box::new(PhysExpr::col(0)), negated: true },
            &b,
        );
        // IN with a NULL list item: misses become unknown, not false.
        assert_paths_agree(
            &PhysExpr::InList {
                expr: Box::new(PhysExpr::col(0)),
                list: vec![PhysExpr::lit(2i64), PhysExpr::Literal(Value::Null)],
                negated: false,
            },
            &b,
        );
        // CASE gathering across branches of coercible types.
        assert_paths_agree(
            &PhysExpr::Case {
                when_then: vec![(gt, PhysExpr::col(0))],
                else_expr: Some(Box::new(PhysExpr::col(1))),
            },
            &b,
        );
    }

    #[test]
    fn float_fast_path_matches_generic() {
        let schema =
            Schema::new(vec![Field::new("x", DataType::Float), Field::new("y", DataType::Float)]);
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::Float(i as f64), Value::Float((i * 2) as f64 + 0.5)])
            .collect();
        let b = RecordBatch::from_rows(schema, &rows).unwrap();
        let e = PhysExpr::Binary {
            left: Box::new(PhysExpr::col(0)),
            op: BinaryOp::Multiply,
            right: Box::new(PhysExpr::col(1)),
        };
        let c = e.eval(&b).unwrap();
        for i in 0..100 {
            let expected = (i as f64) * ((i * 2) as f64 + 0.5);
            assert_eq!(c.value(i), Value::Float(expected));
        }
    }
}
