//! SQL tokenizer.

use crate::error::{SqlError, SqlResult};

/// A lexical token with its byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub position: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword or identifier (uppercased keywords are matched by the parser;
    /// the original text is preserved).
    Ident(String),
    /// Double-quoted identifier (kept verbatim).
    QuotedIdent(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (escapes resolved).
    Str(String),
    /// Punctuation / operators.
    LParen,
    RParen,
    Comma,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Dot,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// For `Ident` tokens: true if the text equals the given keyword
    /// (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes a SQL string.
pub fn tokenize(input: &str) -> SqlResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // block comment
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    i += 1;
                }
                if i + 1 >= bytes.len() {
                    return Err(SqlError::Parse {
                        message: "unterminated block comment".into(),
                        position: start,
                    });
                }
                i += 2;
            }
            '(' => {
                tokens.push(Token { kind: TokenKind::LParen, position: start });
                i += 1;
            }
            ')' => {
                tokens.push(Token { kind: TokenKind::RParen, position: start });
                i += 1;
            }
            ',' => {
                tokens.push(Token { kind: TokenKind::Comma, position: start });
                i += 1;
            }
            ';' => {
                tokens.push(Token { kind: TokenKind::Semicolon, position: start });
                i += 1;
            }
            '*' => {
                tokens.push(Token { kind: TokenKind::Star, position: start });
                i += 1;
            }
            '+' => {
                tokens.push(Token { kind: TokenKind::Plus, position: start });
                i += 1;
            }
            '-' => {
                tokens.push(Token { kind: TokenKind::Minus, position: start });
                i += 1;
            }
            '/' => {
                tokens.push(Token { kind: TokenKind::Slash, position: start });
                i += 1;
            }
            '%' => {
                tokens.push(Token { kind: TokenKind::Percent, position: start });
                i += 1;
            }
            '.' => {
                tokens.push(Token { kind: TokenKind::Dot, position: start });
                i += 1;
            }
            '=' => {
                tokens.push(Token { kind: TokenKind::Eq, position: start });
                i += 1;
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                tokens.push(Token { kind: TokenKind::NotEq, position: start });
                i += 2;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token { kind: TokenKind::LtEq, position: start });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token { kind: TokenKind::NotEq, position: start });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Lt, position: start });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token { kind: TokenKind::GtEq, position: start });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, position: start });
                    i += 1;
                }
            }
            '\'' => {
                // String literal; '' escapes a quote.
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(SqlError::Parse {
                            message: "unterminated string literal".into(),
                            position: start,
                        });
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Safe: iterate over UTF-8 via char_indices fallback.
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(&input[i..i + ch_len]);
                        i += ch_len;
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(s), position: start });
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(SqlError::Parse {
                            message: "unterminated quoted identifier".into(),
                            position: start,
                        });
                    }
                    if bytes[i] == b'"' {
                        i += 1;
                        break;
                    }
                    let ch_len = utf8_len(bytes[i]);
                    s.push_str(&input[i..i + ch_len]);
                    i += ch_len;
                }
                tokens.push(Token { kind: TokenKind::QuotedIdent(s), position: start });
            }
            '0'..='9' => {
                let mut end = i;
                let mut is_float = false;
                while end < bytes.len() && bytes[end].is_ascii_digit() {
                    end += 1;
                }
                if end < bytes.len()
                    && bytes[end] == b'.'
                    && end + 1 < bytes.len()
                    && bytes[end + 1].is_ascii_digit()
                {
                    is_float = true;
                    end += 1;
                    while end < bytes.len() && bytes[end].is_ascii_digit() {
                        end += 1;
                    }
                }
                if end < bytes.len() && (bytes[end] == b'e' || bytes[end] == b'E') {
                    let mut exp_end = end + 1;
                    if exp_end < bytes.len() && (bytes[exp_end] == b'+' || bytes[exp_end] == b'-') {
                        exp_end += 1;
                    }
                    if exp_end < bytes.len() && bytes[exp_end].is_ascii_digit() {
                        is_float = true;
                        end = exp_end;
                        while end < bytes.len() && bytes[end].is_ascii_digit() {
                            end += 1;
                        }
                    }
                }
                let text = &input[i..end];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| SqlError::Parse {
                        message: format!("bad float literal {text}"),
                        position: start,
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| SqlError::Parse {
                        message: format!("bad integer literal {text}"),
                        position: start,
                    })?)
                };
                tokens.push(Token { kind, position: start });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len()
                    && ((bytes[end] as char).is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[i..end].to_string()),
                    position: start,
                });
                i = end;
            }
            other => {
                return Err(SqlError::Parse {
                    message: format!("unexpected character {other:?}"),
                    position: start,
                });
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, position: input.len() });
    Ok(tokens)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_select() {
        let k = kinds("SELECT a, b FROM t WHERE a >= 1.5");
        assert_eq!(k[0], TokenKind::Ident("SELECT".into()));
        assert!(k.contains(&TokenKind::Comma));
        assert!(k.contains(&TokenKind::GtEq));
        assert!(k.contains(&TokenKind::Float(1.5)));
        assert_eq!(*k.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn operators() {
        let k = kinds("<> != <= >= < > = + - * / %");
        assert_eq!(
            &k[..k.len() - 1],
            &[
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::LtEq,
                TokenKind::GtEq,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eq,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
            ]
        );
    }

    #[test]
    fn string_escapes() {
        let k = kinds("'it''s'");
        assert_eq!(k[0], TokenKind::Str("it's".into()));
    }

    #[test]
    fn unicode_in_strings() {
        let k = kinds("'héllo ✓'");
        assert_eq!(k[0], TokenKind::Str("héllo ✓".into()));
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("SELECT -- comment\n 1 /* block */ + 2");
        assert_eq!(k.len(), 5); // SELECT, 1, +, 2, EOF
    }

    #[test]
    fn numbers() {
        let k = kinds("42 3.25 1e3 2.5e-2");
        assert_eq!(k[0], TokenKind::Int(42));
        assert_eq!(k[1], TokenKind::Float(3.25));
        assert_eq!(k[2], TokenKind::Float(1000.0));
        assert_eq!(k[3], TokenKind::Float(0.025));
    }

    #[test]
    fn qualified_name() {
        let k = kinds("t.col");
        assert_eq!(
            &k[..3],
            &[TokenKind::Ident("t".into()), TokenKind::Dot, TokenKind::Ident("col".into())]
        );
    }

    #[test]
    fn quoted_identifier() {
        let k = kinds("\"Weird Name\"");
        assert_eq!(k[0], TokenKind::QuotedIdent("Weird Name".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
        assert!(tokenize("/* oops").is_err());
    }

    #[test]
    fn positions_tracked() {
        let toks = tokenize("SELECT x").unwrap();
        assert_eq!(toks[0].position, 0);
        assert_eq!(toks[1].position, 7);
    }

    #[test]
    fn is_kw_case_insensitive() {
        let t = TokenKind::Ident("select".into());
        assert!(t.is_kw("SELECT"));
        assert!(!t.is_kw("FROM"));
    }
}
