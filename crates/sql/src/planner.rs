//! Query planner: name resolution and lowering of AST to logical plans.

use std::collections::HashMap;
use std::sync::Arc;

use vertexica_storage::{Catalog, DataType, Field, Schema, Value};

use crate::ast::{self, BinaryOp, JoinKind, Query, Select, SelectItem, SetExpr, TableRef};
use crate::error::{SqlError, SqlResult};
use crate::expr::PhysExpr;
use crate::functions::{is_aggregate_function, FunctionRegistry};
use crate::logical::{AggCall, AggFunc, LogicalPlan};

/// One visible column during name resolution.
#[derive(Debug, Clone)]
pub struct ScopeCol {
    pub qualifier: Option<String>,
    pub name: String,
    pub dtype: DataType,
}

/// The set of columns visible to expressions, in input-schema order.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    pub cols: Vec<ScopeCol>,
}

impl Scope {
    fn from_schema(schema: &Schema, qualifier: Option<&str>) -> Scope {
        Scope {
            cols: schema
                .fields
                .iter()
                .map(|f| ScopeCol {
                    qualifier: qualifier.map(|q| q.to_string()),
                    name: f.name.clone(),
                    dtype: f.dtype,
                })
                .collect(),
        }
    }

    fn concat(mut self, other: Scope) -> Scope {
        self.cols.extend(other.cols);
        self
    }

    fn resolve(&self, qualifier: Option<&str>, name: &str) -> SqlResult<usize> {
        let matches: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.name.eq_ignore_ascii_case(name)
                    && match qualifier {
                        None => true,
                        Some(q) => {
                            c.qualifier.as_deref().is_some_and(|cq| cq.eq_ignore_ascii_case(q))
                        }
                    }
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            0 => Err(SqlError::Plan(format!(
                "column not found: {}{name}",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default()
            ))),
            1 => Ok(matches[0]),
            _ => Err(SqlError::Plan(format!("ambiguous column reference: {name}"))),
        }
    }

    fn to_schema(&self) -> Arc<Schema> {
        Schema::new(self.cols.iter().map(|c| Field::new(c.name.clone(), c.dtype)).collect())
    }
}

/// A planned CTE body: its logical plan and output schema.
type CteEntry = (LogicalPlan, Arc<Schema>);

/// The planner. Holds the catalog (for table schemas), the scalar-function
/// registry and the in-scope CTEs.
pub struct Planner<'a> {
    catalog: &'a Catalog,
    functions: &'a FunctionRegistry,
    ctes: HashMap<String, CteEntry>,
}

impl<'a> Planner<'a> {
    pub fn new(catalog: &'a Catalog, functions: &'a FunctionRegistry) -> Self {
        Planner { catalog, functions, ctes: HashMap::new() }
    }

    /// Plans a full query (CTEs, body, ORDER BY, LIMIT).
    pub fn plan_query(&mut self, query: &Query) -> SqlResult<LogicalPlan> {
        // Register CTEs (visible to later CTEs and the body).
        let saved: Vec<(String, Option<CteEntry>)> = query
            .ctes
            .iter()
            .map(|(name, _)| {
                let key = name.to_ascii_lowercase();
                (key.clone(), self.ctes.get(&key).cloned())
            })
            .collect();
        for (name, cte_query) in &query.ctes {
            let plan = self.plan_query(cte_query)?;
            let schema = plan.schema();
            self.ctes.insert(name.to_ascii_lowercase(), (plan, schema));
        }

        let result = self.plan_query_body(query);

        // Restore CTE environment (lexical scoping).
        for (key, old) in saved {
            match old {
                Some(v) => {
                    self.ctes.insert(key, v);
                }
                None => {
                    self.ctes.remove(&key);
                }
            }
        }
        result
    }

    fn plan_query_body(&mut self, query: &Query) -> SqlResult<LogicalPlan> {
        let (mut plan, item_asts) = self.plan_set_expr(&query.body)?;

        // ORDER BY, resolved against the query output; keys referencing
        // non-projected base columns fall back to a sort below the
        // projection (`SELECT src FROM edge ORDER BY weight`).
        if !query.order_by.is_empty() {
            let out_schema = plan.schema();
            let out_scope = Scope::from_schema(&out_schema, None);
            let over_output: SqlResult<Vec<(PhysExpr, bool)>> = query
                .order_by
                .iter()
                .map(|ob| Ok((self.resolve_output_expr(&ob.expr, &item_asts, &out_scope)?, ob.asc)))
                .collect();
            match over_output {
                Ok(keys) => {
                    plan = LogicalPlan::Sort { input: Box::new(plan), keys };
                }
                Err(err) => {
                    let LogicalPlan::Project { input, exprs, schema } = plan else {
                        return Err(err);
                    };
                    let in_schema = input.schema();
                    let in_scope = Scope::from_schema(&in_schema, None);
                    let mut keys = Vec::new();
                    for ob in &query.order_by {
                        // Positional keys must resolve against the output.
                        if matches!(ob.expr, ast::Expr::Literal(Value::Int(_))) {
                            return Err(err);
                        }
                        let key = match self.resolve_output_expr(&ob.expr, &item_asts, &out_scope) {
                            // Remap an output-level key below the projection
                            // by substituting projection expressions.
                            Ok(k) => substitute_columns(k, &exprs),
                            Err(_) => {
                                self.plan_expr(&ob.expr, &in_scope).map_err(|_| err_clone(&err))?
                            }
                        };
                        keys.push((key, ob.asc));
                    }
                    plan = LogicalPlan::Project {
                        input: Box::new(LogicalPlan::Sort { input, keys }),
                        exprs,
                        schema,
                    };
                }
            }
        }
        if let Some(n) = query.limit {
            plan = LogicalPlan::Limit { input: Box::new(plan), n };
        }
        Ok(plan)
    }

    /// Resolves an expression against the *output* of a select (used by
    /// ORDER BY): by position (`ORDER BY 2`), by structural match with a
    /// select item, by output column name, or as an expression over output
    /// columns.
    fn resolve_output_expr(
        &self,
        expr: &ast::Expr,
        item_asts: &[ast::Expr],
        out_scope: &Scope,
    ) -> SqlResult<PhysExpr> {
        if let ast::Expr::Literal(Value::Int(k)) = expr {
            let idx = *k - 1;
            if idx < 0 || idx as usize >= out_scope.cols.len() {
                return Err(SqlError::Plan(format!("ORDER BY position {k} out of range")));
            }
            return Ok(PhysExpr::Column(idx as usize));
        }
        for (i, item) in item_asts.iter().enumerate() {
            if item == expr {
                return Ok(PhysExpr::Column(i));
            }
        }
        self.plan_expr(expr, out_scope)
    }

    fn plan_set_expr(&mut self, body: &SetExpr) -> SqlResult<(LogicalPlan, Vec<ast::Expr>)> {
        match body {
            SetExpr::Select(sel) => self.plan_select(sel),
            SetExpr::UnionAll(left, right) => {
                let (l, l_asts) = self.plan_set_expr(left)?;
                let (r, _) = self.plan_set_expr(right)?;
                let plan = self.union_all(l, r)?;
                Ok((plan, l_asts))
            }
        }
    }

    fn union_all(&self, l: LogicalPlan, r: LogicalPlan) -> SqlResult<LogicalPlan> {
        let ls = l.schema();
        let rs = r.schema();
        if ls.len() != rs.len() {
            return Err(SqlError::Plan(format!(
                "UNION ALL arity mismatch: {} vs {}",
                ls.len(),
                rs.len()
            )));
        }
        // Harmonize types: Int widens to Float; otherwise exact match needed.
        let mut target = Vec::with_capacity(ls.len());
        for (lf, rf) in ls.fields.iter().zip(&rs.fields) {
            let t = match (lf.dtype, rf.dtype) {
                (a, b) if a == b => a,
                (DataType::Int, DataType::Float) | (DataType::Float, DataType::Int) => {
                    DataType::Float
                }
                (a, b) => {
                    return Err(SqlError::Plan(format!(
                        "UNION ALL type mismatch on column {}: {a} vs {b}",
                        lf.name
                    )))
                }
            };
            target.push(t);
        }
        let schema = Schema::new(
            ls.fields.iter().zip(&target).map(|(f, t)| Field::new(f.name.clone(), *t)).collect(),
        );
        let cast_branch = |plan: LogicalPlan, from: &Schema| -> LogicalPlan {
            let needs_cast = from.fields.iter().zip(&target).any(|(f, t)| f.dtype != *t);
            if !needs_cast {
                return plan;
            }
            let exprs: Vec<PhysExpr> = from
                .fields
                .iter()
                .enumerate()
                .zip(&target)
                .map(|((i, f), t)| {
                    if f.dtype == *t {
                        PhysExpr::Column(i)
                    } else {
                        PhysExpr::Cast { expr: Box::new(PhysExpr::Column(i)), dtype: *t }
                    }
                })
                .collect();
            let schema = Schema::new(
                from.fields
                    .iter()
                    .zip(&target)
                    .map(|(f, t)| Field::new(f.name.clone(), *t))
                    .collect(),
            );
            LogicalPlan::Project { input: Box::new(plan), exprs, schema }
        };
        let l = cast_branch(l, &ls);
        let r = cast_branch(r, &rs);
        // Flatten nested unions.
        let mut inputs = Vec::new();
        for side in [l, r] {
            match side {
                LogicalPlan::UnionAll { inputs: mut i, .. } => inputs.append(&mut i),
                other => inputs.push(other),
            }
        }
        Ok(LogicalPlan::UnionAll { inputs, schema })
    }

    fn plan_select(&mut self, sel: &Select) -> SqlResult<(LogicalPlan, Vec<ast::Expr>)> {
        // FROM
        let (mut plan, scope) = match &sel.from {
            Some(tref) => self.plan_table_ref(tref)?,
            None => {
                // SELECT without FROM: a single empty row.
                let schema = Schema::new(vec![Field::new("__dummy", DataType::Int)]);
                (
                    LogicalPlan::Values { schema: schema.clone(), rows: vec![vec![Value::Int(0)]] },
                    Scope::from_schema(&schema, None),
                )
            }
        };

        // WHERE
        if let Some(filter) = &sel.filter {
            if filter.contains_aggregate() {
                return Err(SqlError::Plan("aggregates are not allowed in WHERE".into()));
            }
            let pred = self.plan_expr(filter, &scope)?;
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate: pred };
        }

        let is_aggregate = !sel.group_by.is_empty()
            || sel.items.iter().any(|i| match i {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                _ => false,
            })
            || sel.having.as_ref().is_some_and(|h| h.contains_aggregate());

        let (plan, item_asts) = if is_aggregate {
            self.plan_aggregate_select(plan, scope, sel)?
        } else {
            if sel.having.is_some() {
                return Err(SqlError::Plan("HAVING requires GROUP BY or aggregates".into()));
            }
            self.plan_plain_select(plan, scope, sel)?
        };

        let plan =
            if sel.distinct { LogicalPlan::Distinct { input: Box::new(plan) } } else { plan };
        Ok((plan, item_asts))
    }

    fn plan_plain_select(
        &mut self,
        input: LogicalPlan,
        scope: Scope,
        sel: &Select,
    ) -> SqlResult<(LogicalPlan, Vec<ast::Expr>)> {
        let items = expand_wildcards(&sel.items, &scope)?;
        let mut exprs = Vec::with_capacity(items.len());
        let mut fields = Vec::with_capacity(items.len());
        let mut item_asts = Vec::with_capacity(items.len());
        let input_schema = scope.to_schema();
        for (i, (expr_ast, alias)) in items.iter().enumerate() {
            let phys = self.plan_expr(expr_ast, &scope)?;
            let dtype = phys.data_type(&input_schema)?;
            let name = output_name(expr_ast, alias.as_deref(), i);
            fields.push(Field::new(name, dtype));
            exprs.push(phys);
            item_asts.push(expr_ast.clone());
        }
        let schema = Schema::new(fields);
        Ok((LogicalPlan::Project { input: Box::new(input), exprs, schema }, item_asts))
    }

    fn plan_aggregate_select(
        &mut self,
        input: LogicalPlan,
        scope: Scope,
        sel: &Select,
    ) -> SqlResult<(LogicalPlan, Vec<ast::Expr>)> {
        // Resolve GROUP BY expressions (support positions and aliases).
        let mut group_asts: Vec<ast::Expr> = Vec::new();
        for g in &sel.group_by {
            group_asts.push(self.resolve_group_expr(g, sel)?);
        }
        let input_schema = scope.to_schema();
        let mut group_phys = Vec::with_capacity(group_asts.len());
        for g in &group_asts {
            group_phys.push(self.plan_expr(g, &scope)?);
        }

        // Collect aggregate calls appearing in select items and HAVING.
        let mut agg_asts: Vec<ast::Expr> = Vec::new();
        for item in &sel.items {
            if let SelectItem::Expr { expr, .. } = item {
                collect_aggregates(expr, &mut agg_asts);
            }
        }
        if let Some(h) = &sel.having {
            collect_aggregates(h, &mut agg_asts);
        }
        if agg_asts.is_empty() && group_asts.is_empty() {
            return Err(SqlError::Plan("aggregate query with no aggregates".into()));
        }

        // Plan each aggregate call.
        let mut agg_calls = Vec::with_capacity(agg_asts.len());
        let mut agg_fields = Vec::with_capacity(agg_asts.len());
        for (i, a) in agg_asts.iter().enumerate() {
            let (call, name) = match a {
                ast::Expr::CountStar => (
                    AggCall { func: AggFunc::CountStar, arg: None, distinct: false },
                    "count".to_string(),
                ),
                ast::Expr::Function { name, args, distinct } => {
                    let func = AggFunc::parse(name)
                        .ok_or_else(|| SqlError::Plan(format!("unknown aggregate {name}")))?;
                    if args.len() != 1 {
                        return Err(SqlError::Plan(format!("{name} takes one argument")));
                    }
                    let arg = self.plan_expr(&args[0], &scope)?;
                    (AggCall { func, arg: Some(arg), distinct: *distinct }, name.clone())
                }
                other => {
                    return Err(SqlError::Plan(format!("unsupported aggregate {other:?}")));
                }
            };
            let dtype = agg_output_type(&call, &input_schema)?;
            agg_fields.push(Field::new(format!("{name}_{i}"), dtype));
            agg_calls.push(call);
        }

        // Aggregate output schema: group columns then aggregate columns.
        let mut fields = Vec::with_capacity(group_phys.len() + agg_calls.len());
        for (i, (g_ast, g_phys)) in group_asts.iter().zip(&group_phys).enumerate() {
            let name = match g_ast {
                ast::Expr::Column(_, n) => n.clone(),
                _ => format!("group_{i}"),
            };
            fields.push(Field::new(name, g_phys.data_type(&input_schema)?));
        }
        fields.extend(agg_fields);
        let agg_schema = Schema::new(fields);

        let mut plan = LogicalPlan::Aggregate {
            input: Box::new(input),
            group: group_phys,
            aggs: agg_calls,
            schema: agg_schema.clone(),
        };

        // HAVING over the aggregate output.
        if let Some(h) = &sel.having {
            let pred = self.rewrite_post_agg(h, &group_asts, &agg_asts, &agg_schema)?;
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate: pred };
        }

        // Projection over the aggregate output.
        let mut exprs = Vec::new();
        let mut out_fields = Vec::new();
        let mut item_asts = Vec::new();
        for (i, item) in sel.items.iter().enumerate() {
            let SelectItem::Expr { expr, alias } = item else {
                return Err(SqlError::Plan("* is not allowed with GROUP BY".into()));
            };
            let phys = self.rewrite_post_agg(expr, &group_asts, &agg_asts, &agg_schema)?;
            let dtype = phys.data_type(&agg_schema)?;
            out_fields.push(Field::new(output_name(expr, alias.as_deref(), i), dtype));
            exprs.push(phys);
            item_asts.push(expr.clone());
        }
        let schema = Schema::new(out_fields);
        Ok((LogicalPlan::Project { input: Box::new(plan), exprs, schema }, item_asts))
    }

    /// GROUP BY items may be positions (`GROUP BY 1`) or select aliases.
    fn resolve_group_expr(&self, g: &ast::Expr, sel: &Select) -> SqlResult<ast::Expr> {
        if let ast::Expr::Literal(Value::Int(k)) = g {
            let idx = *k - 1;
            if idx < 0 || idx as usize >= sel.items.len() {
                return Err(SqlError::Plan(format!("GROUP BY position {k} out of range")));
            }
            let SelectItem::Expr { expr, .. } = &sel.items[idx as usize] else {
                return Err(SqlError::Plan("GROUP BY position refers to *".into()));
            };
            return Ok(expr.clone());
        }
        if let ast::Expr::Column(None, name) = g {
            for item in &sel.items {
                if let SelectItem::Expr { expr, alias: Some(a) } = item {
                    if a.eq_ignore_ascii_case(name) && !matches!(expr, ast::Expr::Column(..)) {
                        return Ok(expr.clone());
                    }
                }
            }
        }
        Ok(g.clone())
    }

    /// Rewrites a post-aggregation expression (select item or HAVING) into a
    /// `PhysExpr` over the aggregate output schema: group expressions and
    /// aggregate calls become column references.
    // `agg_schema` is threaded through recursive calls so every rewrite level
    // resolves columns against the same aggregate output schema.
    #[allow(clippy::only_used_in_recursion)]
    fn rewrite_post_agg(
        &self,
        expr: &ast::Expr,
        group_asts: &[ast::Expr],
        agg_asts: &[ast::Expr],
        agg_schema: &Arc<Schema>,
    ) -> SqlResult<PhysExpr> {
        // Exact match with a group expression?
        for (i, g) in group_asts.iter().enumerate() {
            if g == expr {
                return Ok(PhysExpr::Column(i));
            }
            // An unqualified column in the query may match a qualified group
            // expression and vice versa — but two *differently qualified*
            // references (e1.src vs e2.src) are distinct columns.
            if let (ast::Expr::Column(gq, a), ast::Expr::Column(eq, b)) = (g, expr) {
                if a.eq_ignore_ascii_case(b) && (gq.is_none() || eq.is_none()) {
                    return Ok(PhysExpr::Column(i));
                }
            }
        }
        // Aggregate call?
        for (j, a) in agg_asts.iter().enumerate() {
            if a == expr {
                return Ok(PhysExpr::Column(group_asts.len() + j));
            }
        }
        // Recurse into the structure.
        match expr {
            ast::Expr::Literal(v) => Ok(PhysExpr::Literal(v.clone())),
            ast::Expr::Column(_, name) => Err(SqlError::Plan(format!(
                "column {name} must appear in GROUP BY or inside an aggregate"
            ))),
            ast::Expr::Binary { left, op, right } => Ok(PhysExpr::Binary {
                left: Box::new(self.rewrite_post_agg(left, group_asts, agg_asts, agg_schema)?),
                op: *op,
                right: Box::new(self.rewrite_post_agg(right, group_asts, agg_asts, agg_schema)?),
            }),
            ast::Expr::Unary { op, expr } => Ok(PhysExpr::Unary {
                op: *op,
                expr: Box::new(self.rewrite_post_agg(expr, group_asts, agg_asts, agg_schema)?),
            }),
            ast::Expr::IsNull { expr, negated } => Ok(PhysExpr::IsNull {
                expr: Box::new(self.rewrite_post_agg(expr, group_asts, agg_asts, agg_schema)?),
                negated: *negated,
            }),
            ast::Expr::InList { expr, list, negated } => Ok(PhysExpr::InList {
                expr: Box::new(self.rewrite_post_agg(expr, group_asts, agg_asts, agg_schema)?),
                list: list
                    .iter()
                    .map(|e| self.rewrite_post_agg(e, group_asts, agg_asts, agg_schema))
                    .collect::<SqlResult<Vec<_>>>()?,
                negated: *negated,
            }),
            ast::Expr::Between { expr, low, high, negated } => {
                let e = self.rewrite_post_agg(expr, group_asts, agg_asts, agg_schema)?;
                let lo = self.rewrite_post_agg(low, group_asts, agg_asts, agg_schema)?;
                let hi = self.rewrite_post_agg(high, group_asts, agg_asts, agg_schema)?;
                Ok(between_to_phys(e, lo, hi, *negated))
            }
            ast::Expr::Like { expr, pattern, negated } => Ok(PhysExpr::Like {
                expr: Box::new(self.rewrite_post_agg(expr, group_asts, agg_asts, agg_schema)?),
                pattern: Box::new(
                    self.rewrite_post_agg(pattern, group_asts, agg_asts, agg_schema)?,
                ),
                negated: *negated,
            }),
            ast::Expr::Case { when_then, else_expr } => Ok(PhysExpr::Case {
                when_then: when_then
                    .iter()
                    .map(|(w, t)| {
                        Ok((
                            self.rewrite_post_agg(w, group_asts, agg_asts, agg_schema)?,
                            self.rewrite_post_agg(t, group_asts, agg_asts, agg_schema)?,
                        ))
                    })
                    .collect::<SqlResult<Vec<_>>>()?,
                else_expr: else_expr
                    .as_ref()
                    .map(|e| {
                        self.rewrite_post_agg(e, group_asts, agg_asts, agg_schema).map(Box::new)
                    })
                    .transpose()?,
            }),
            ast::Expr::Cast { expr, dtype } => Ok(PhysExpr::Cast {
                expr: Box::new(self.rewrite_post_agg(expr, group_asts, agg_asts, agg_schema)?),
                dtype: *dtype,
            }),
            ast::Expr::Function { name, args, .. } => {
                if is_aggregate_function(name) {
                    return Err(SqlError::Plan(format!(
                        "aggregate {name} not collected — nested aggregates are unsupported"
                    )));
                }
                let func = self
                    .functions
                    .get(name)
                    .ok_or_else(|| SqlError::Plan(format!("unknown function {name}")))?;
                Ok(PhysExpr::ScalarFn {
                    func,
                    args: args
                        .iter()
                        .map(|a| self.rewrite_post_agg(a, group_asts, agg_asts, agg_schema))
                        .collect::<SqlResult<Vec<_>>>()?,
                })
            }
            ast::Expr::CountStar => {
                Err(SqlError::Plan("COUNT(*) not collected as aggregate".into()))
            }
        }
    }

    fn plan_table_ref(&mut self, tref: &TableRef) -> SqlResult<(LogicalPlan, Scope)> {
        match tref {
            TableRef::Named { name, alias } => {
                let key = name.to_ascii_lowercase();
                if let Some((plan, schema)) = self.ctes.get(&key) {
                    let qualifier = alias.as_deref().unwrap_or(name);
                    let scope = Scope::from_schema(schema, Some(qualifier));
                    return Ok((plan.clone(), scope));
                }
                let table = self.catalog.get(name)?;
                let schema = table.read().schema().clone();
                let qualifier = alias.as_deref().unwrap_or(name);
                let scope = Scope::from_schema(&schema, Some(qualifier));
                Ok((
                    LogicalPlan::Scan { table: key, schema, projection: None, predicates: vec![] },
                    scope,
                ))
            }
            TableRef::Subquery { query, alias } => {
                let plan = self.plan_query(query)?;
                let schema = plan.schema();
                let scope = Scope::from_schema(&schema, Some(alias));
                Ok((plan, scope))
            }
            TableRef::Join { left, right, kind, on } => {
                let (lplan, lscope) = self.plan_table_ref(left)?;
                let (rplan, rscope) = self.plan_table_ref(right)?;
                let left_width = lscope.cols.len();
                let combined = lscope.clone().concat(rscope.clone());

                let mut equi: Vec<(usize, usize)> = Vec::new();
                let mut residual: Option<PhysExpr> = None;
                if let Some(cond) = on {
                    let mut conjuncts = Vec::new();
                    flatten_and(cond, &mut conjuncts);
                    for c in conjuncts {
                        if let ast::Expr::Binary { left: a, op: BinaryOp::Eq, right: b } = c {
                            let la = self.try_resolve_column(a, &lscope);
                            let rb = self.try_resolve_column(b, &rscope);
                            if let (Some(li), Some(ri)) = (la, rb) {
                                equi.push((li, ri));
                                continue;
                            }
                            let lb = self.try_resolve_column(b, &lscope);
                            let ra = self.try_resolve_column(a, &rscope);
                            if let (Some(li), Some(ri)) = (lb, ra) {
                                equi.push((li, ri));
                                continue;
                            }
                        }
                        let phys = self.plan_expr(c, &combined)?;
                        residual = Some(match residual.take() {
                            None => phys,
                            Some(prev) => PhysExpr::Binary {
                                left: Box::new(prev),
                                op: BinaryOp::And,
                                right: Box::new(phys),
                            },
                        });
                    }
                }

                // Join output schema: left fields then right fields, with
                // nullability widened on the outer side.
                let mut fields = Vec::with_capacity(combined.cols.len());
                for (i, c) in combined.cols.iter().enumerate() {
                    let mut f = Field::new(c.name.clone(), c.dtype);
                    let on_right = i >= left_width;
                    if (*kind == JoinKind::Left && on_right)
                        || (*kind == JoinKind::Right && !on_right)
                    {
                        f.nullable = true;
                    }
                    fields.push(f);
                }
                let schema = Schema::new(fields);
                Ok((
                    LogicalPlan::Join {
                        left: Box::new(lplan),
                        right: Box::new(rplan),
                        kind: *kind,
                        on: equi,
                        filter: residual,
                        schema,
                    },
                    combined,
                ))
            }
        }
    }

    fn try_resolve_column(&self, e: &ast::Expr, scope: &Scope) -> Option<usize> {
        if let ast::Expr::Column(q, n) = e {
            scope.resolve(q.as_deref(), n).ok()
        } else {
            None
        }
    }

    /// Lowers an AST expression to a physical expression over `scope`.
    pub fn plan_expr(&self, expr: &ast::Expr, scope: &Scope) -> SqlResult<PhysExpr> {
        Ok(match expr {
            ast::Expr::Column(q, n) => PhysExpr::Column(scope.resolve(q.as_deref(), n)?),
            ast::Expr::Literal(v) => PhysExpr::Literal(v.clone()),
            ast::Expr::Binary { left, op, right } => PhysExpr::Binary {
                left: Box::new(self.plan_expr(left, scope)?),
                op: *op,
                right: Box::new(self.plan_expr(right, scope)?),
            },
            ast::Expr::Unary { op, expr } => {
                PhysExpr::Unary { op: *op, expr: Box::new(self.plan_expr(expr, scope)?) }
            }
            ast::Expr::IsNull { expr, negated } => {
                PhysExpr::IsNull { expr: Box::new(self.plan_expr(expr, scope)?), negated: *negated }
            }
            ast::Expr::InList { expr, list, negated } => PhysExpr::InList {
                expr: Box::new(self.plan_expr(expr, scope)?),
                list: list
                    .iter()
                    .map(|e| self.plan_expr(e, scope))
                    .collect::<SqlResult<Vec<_>>>()?,
                negated: *negated,
            },
            ast::Expr::Between { expr, low, high, negated } => {
                let e = self.plan_expr(expr, scope)?;
                let lo = self.plan_expr(low, scope)?;
                let hi = self.plan_expr(high, scope)?;
                between_to_phys(e, lo, hi, *negated)
            }
            ast::Expr::Like { expr, pattern, negated } => PhysExpr::Like {
                expr: Box::new(self.plan_expr(expr, scope)?),
                pattern: Box::new(self.plan_expr(pattern, scope)?),
                negated: *negated,
            },
            ast::Expr::Case { when_then, else_expr } => PhysExpr::Case {
                when_then: when_then
                    .iter()
                    .map(|(w, t)| Ok((self.plan_expr(w, scope)?, self.plan_expr(t, scope)?)))
                    .collect::<SqlResult<Vec<_>>>()?,
                else_expr: else_expr
                    .as_ref()
                    .map(|e| self.plan_expr(e, scope).map(Box::new))
                    .transpose()?,
            },
            ast::Expr::Cast { expr, dtype } => {
                PhysExpr::Cast { expr: Box::new(self.plan_expr(expr, scope)?), dtype: *dtype }
            }
            ast::Expr::Function { name, args, .. } => {
                if is_aggregate_function(name) {
                    return Err(SqlError::Plan(format!(
                        "aggregate function {name} is not allowed here"
                    )));
                }
                let func = self
                    .functions
                    .get(name)
                    .ok_or_else(|| SqlError::Plan(format!("unknown function {name}")))?;
                PhysExpr::ScalarFn {
                    func,
                    args: args
                        .iter()
                        .map(|a| self.plan_expr(a, scope))
                        .collect::<SqlResult<Vec<_>>>()?,
                }
            }
            ast::Expr::CountStar => {
                return Err(SqlError::Plan("COUNT(*) is not allowed here".into()))
            }
        })
    }

    /// Plans an expression against a base table's schema (used by UPDATE and
    /// DELETE, where only the target table is in scope).
    pub fn plan_expr_for_table(
        &self,
        expr: &ast::Expr,
        schema: &Schema,
        table_name: &str,
    ) -> SqlResult<PhysExpr> {
        let scope = Scope::from_schema(schema, Some(table_name));
        self.plan_expr(expr, &scope)
    }
}

/// Replaces `Column(i)` with `replacements[i]` (used to push ORDER BY keys
/// below a projection).
fn substitute_columns(expr: PhysExpr, replacements: &[PhysExpr]) -> PhysExpr {
    match expr {
        PhysExpr::Column(i) => replacements[i].clone(),
        PhysExpr::Literal(v) => PhysExpr::Literal(v),
        PhysExpr::Binary { left, op, right } => PhysExpr::Binary {
            left: Box::new(substitute_columns(*left, replacements)),
            op,
            right: Box::new(substitute_columns(*right, replacements)),
        },
        PhysExpr::Unary { op, expr } => {
            PhysExpr::Unary { op, expr: Box::new(substitute_columns(*expr, replacements)) }
        }
        PhysExpr::IsNull { expr, negated } => {
            PhysExpr::IsNull { expr: Box::new(substitute_columns(*expr, replacements)), negated }
        }
        PhysExpr::InList { expr, list, negated } => PhysExpr::InList {
            expr: Box::new(substitute_columns(*expr, replacements)),
            list: list.into_iter().map(|e| substitute_columns(e, replacements)).collect(),
            negated,
        },
        PhysExpr::Like { expr, pattern, negated } => PhysExpr::Like {
            expr: Box::new(substitute_columns(*expr, replacements)),
            pattern: Box::new(substitute_columns(*pattern, replacements)),
            negated,
        },
        PhysExpr::Case { when_then, else_expr } => PhysExpr::Case {
            when_then: when_then
                .into_iter()
                .map(|(w, t)| {
                    (substitute_columns(w, replacements), substitute_columns(t, replacements))
                })
                .collect(),
            else_expr: else_expr.map(|e| Box::new(substitute_columns(*e, replacements))),
        },
        PhysExpr::Cast { expr, dtype } => {
            PhysExpr::Cast { expr: Box::new(substitute_columns(*expr, replacements)), dtype }
        }
        PhysExpr::ScalarFn { func, args } => PhysExpr::ScalarFn {
            func,
            args: args.into_iter().map(|e| substitute_columns(e, replacements)).collect(),
        },
    }
}

fn err_clone(e: &SqlError) -> SqlError {
    SqlError::Plan(e.to_string())
}

/// `a BETWEEN x AND y` desugars to `a >= x AND a <= y`.
fn between_to_phys(e: PhysExpr, lo: PhysExpr, hi: PhysExpr, negated: bool) -> PhysExpr {
    let ge =
        PhysExpr::Binary { left: Box::new(e.clone()), op: BinaryOp::GtEq, right: Box::new(lo) };
    let le = PhysExpr::Binary { left: Box::new(e), op: BinaryOp::LtEq, right: Box::new(hi) };
    let both = PhysExpr::Binary { left: Box::new(ge), op: BinaryOp::And, right: Box::new(le) };
    if negated {
        PhysExpr::Unary { op: crate::ast::UnaryOp::Not, expr: Box::new(both) }
    } else {
        both
    }
}

fn flatten_and<'e>(expr: &'e ast::Expr, out: &mut Vec<&'e ast::Expr>) {
    if let ast::Expr::Binary { left, op: BinaryOp::And, right } = expr {
        flatten_and(left, out);
        flatten_and(right, out);
    } else {
        out.push(expr);
    }
}

/// Collects aggregate call sub-expressions (deduplicated structurally).
fn collect_aggregates(expr: &ast::Expr, out: &mut Vec<ast::Expr>) {
    match expr {
        ast::Expr::CountStar => {
            if !out.contains(expr) {
                out.push(expr.clone());
            }
        }
        ast::Expr::Function { name, args, .. } => {
            if is_aggregate_function(name) {
                if !out.contains(expr) {
                    out.push(expr.clone());
                }
            } else {
                for a in args {
                    collect_aggregates(a, out);
                }
            }
        }
        ast::Expr::Binary { left, right, .. } => {
            collect_aggregates(left, out);
            collect_aggregates(right, out);
        }
        ast::Expr::Unary { expr, .. } => collect_aggregates(expr, out),
        ast::Expr::IsNull { expr, .. } => collect_aggregates(expr, out),
        ast::Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, out);
            for e in list {
                collect_aggregates(e, out);
            }
        }
        ast::Expr::Between { expr, low, high, .. } => {
            collect_aggregates(expr, out);
            collect_aggregates(low, out);
            collect_aggregates(high, out);
        }
        ast::Expr::Like { expr, pattern, .. } => {
            collect_aggregates(expr, out);
            collect_aggregates(pattern, out);
        }
        ast::Expr::Case { when_then, else_expr } => {
            for (w, t) in when_then {
                collect_aggregates(w, out);
                collect_aggregates(t, out);
            }
            if let Some(e) = else_expr {
                collect_aggregates(e, out);
            }
        }
        ast::Expr::Cast { expr, .. } => collect_aggregates(expr, out),
        ast::Expr::Column(..) | ast::Expr::Literal(_) => {}
    }
}

fn agg_output_type(call: &AggCall, input: &Schema) -> SqlResult<DataType> {
    Ok(match call.func {
        AggFunc::Count | AggFunc::CountStar => DataType::Int,
        AggFunc::Avg => DataType::Float,
        AggFunc::Sum | AggFunc::Min | AggFunc::Max => match &call.arg {
            Some(a) => a.data_type(input)?,
            None => return Err(SqlError::Plan("aggregate requires an argument".into())),
        },
    })
}

fn output_name(expr: &ast::Expr, alias: Option<&str>, idx: usize) -> String {
    if let Some(a) = alias {
        return a.to_string();
    }
    match expr {
        ast::Expr::Column(_, n) => n.clone(),
        ast::Expr::Function { name, .. } => name.clone(),
        ast::Expr::CountStar => "count".to_string(),
        _ => format!("col_{idx}"),
    }
}

/// Expands `*` and `alias.*` into `(expr, alias)` pairs.
fn expand_wildcards(
    items: &[SelectItem],
    scope: &Scope,
) -> SqlResult<Vec<(ast::Expr, Option<String>)>> {
    let mut out = Vec::new();
    for item in items {
        match item {
            SelectItem::Wildcard => {
                for c in &scope.cols {
                    out.push((ast::Expr::Column(c.qualifier.clone(), c.name.clone()), None));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let mut any = false;
                for c in &scope.cols {
                    if c.qualifier.as_deref().is_some_and(|cq| cq.eq_ignore_ascii_case(q)) {
                        out.push((ast::Expr::Column(c.qualifier.clone(), c.name.clone()), None));
                        any = true;
                    }
                }
                if !any {
                    return Err(SqlError::Plan(format!("unknown table alias in {q}.*")));
                }
            }
            SelectItem::Expr { expr, alias } => out.push((expr.clone(), alias.clone())),
        }
    }
    if out.is_empty() {
        return Err(SqlError::Plan("empty select list".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use vertexica_storage::TableOptions;

    fn setup() -> Catalog {
        let cat = Catalog::new();
        cat.create_table(
            "edge",
            Schema::new(vec![
                Field::not_null("src", DataType::Int),
                Field::not_null("dst", DataType::Int),
                Field::new("weight", DataType::Float),
            ]),
            TableOptions::default(),
        )
        .unwrap();
        cat.create_table(
            "vertex",
            Schema::new(vec![
                Field::not_null("id", DataType::Int),
                Field::new("value", DataType::Float),
            ]),
            TableOptions::default(),
        )
        .unwrap();
        cat
    }

    fn plan(cat: &Catalog, sql: &str) -> SqlResult<LogicalPlan> {
        let stmt = parse_statement(sql)?;
        let crate::ast::Statement::Query(q) = stmt else { panic!("not a query") };
        let funcs = FunctionRegistry::new();
        let mut p = Planner::new(cat, &funcs);
        p.plan_query(&q)
    }

    #[test]
    fn plans_simple_scan_project() {
        let cat = setup();
        let p = plan(&cat, "SELECT src, dst FROM edge").unwrap();
        let s = p.schema();
        assert_eq!(s.fields[0].name, "src");
        assert_eq!(s.fields[1].name, "dst");
    }

    #[test]
    fn wildcard_expansion() {
        let cat = setup();
        let p = plan(&cat, "SELECT * FROM edge").unwrap();
        assert_eq!(p.schema().len(), 3);
    }

    #[test]
    fn qualified_wildcard() {
        let cat = setup();
        let p = plan(&cat, "SELECT e.* FROM edge e JOIN vertex v ON e.src = v.id").unwrap();
        assert_eq!(p.schema().len(), 3);
    }

    #[test]
    fn unknown_column_rejected() {
        let cat = setup();
        assert!(matches!(plan(&cat, "SELECT nonexistent FROM edge"), Err(SqlError::Plan(_))));
    }

    #[test]
    fn ambiguous_column_rejected() {
        let cat = setup();
        // Both edge and a self-join alias have `src`.
        let r = plan(&cat, "SELECT src FROM edge a JOIN edge b ON a.src = b.dst");
        assert!(matches!(r, Err(SqlError::Plan(m)) if m.contains("ambiguous")));
    }

    #[test]
    fn join_extracts_equi_keys() {
        let cat = setup();
        let p = plan(
            &cat,
            "SELECT a.src FROM edge a JOIN edge b ON a.dst = b.src AND a.weight < b.weight",
        )
        .unwrap();
        // Find the join node under the project.
        let LogicalPlan::Project { input, .. } = p else { panic!() };
        let LogicalPlan::Join { on, filter, .. } = *input else { panic!() };
        assert_eq!(on, vec![(1, 0)]);
        assert!(filter.is_some());
    }

    #[test]
    fn aggregate_with_having() {
        let cat = setup();
        let p =
            plan(&cat, "SELECT src, COUNT(*) AS cnt FROM edge GROUP BY src HAVING COUNT(*) > 2")
                .unwrap();
        let s = p.schema();
        assert_eq!(s.fields[0].name, "src");
        assert_eq!(s.fields[1].name, "cnt");
        assert_eq!(s.fields[1].dtype, DataType::Int);
    }

    #[test]
    fn aggregate_arithmetic_on_output() {
        let cat = setup();
        let p = plan(&cat, "SELECT src, SUM(weight) / COUNT(*) FROM edge GROUP BY src").unwrap();
        assert_eq!(p.schema().fields[1].dtype, DataType::Float);
    }

    #[test]
    fn bare_column_outside_group_by_rejected() {
        let cat = setup();
        let r = plan(&cat, "SELECT dst, COUNT(*) FROM edge GROUP BY src");
        assert!(matches!(r, Err(SqlError::Plan(m)) if m.contains("GROUP BY")));
    }

    #[test]
    fn group_by_position() {
        let cat = setup();
        let p = plan(&cat, "SELECT src, COUNT(*) FROM edge GROUP BY 1").unwrap();
        assert_eq!(p.schema().fields[0].name, "src");
    }

    #[test]
    fn order_by_position_and_alias() {
        let cat = setup();
        assert!(plan(&cat, "SELECT src AS s FROM edge ORDER BY 1").is_ok());
        assert!(plan(&cat, "SELECT src AS s FROM edge ORDER BY s DESC").is_ok());
        assert!(plan(&cat, "SELECT src FROM edge ORDER BY 5").is_err());
    }

    #[test]
    fn union_all_harmonizes_types() {
        let cat = setup();
        let p = plan(&cat, "SELECT src FROM edge UNION ALL SELECT weight FROM edge").unwrap();
        assert_eq!(p.schema().fields[0].dtype, DataType::Float);
        let LogicalPlan::UnionAll { inputs, .. } = p else { panic!() };
        assert_eq!(inputs.len(), 2);
    }

    #[test]
    fn union_arity_mismatch_rejected() {
        let cat = setup();
        assert!(plan(&cat, "SELECT src, dst FROM edge UNION ALL SELECT src FROM edge").is_err());
    }

    #[test]
    fn cte_resolution() {
        let cat = setup();
        let p = plan(
            &cat,
            "WITH deg AS (SELECT src, COUNT(*) AS d FROM edge GROUP BY src) \
             SELECT v.id, deg.d FROM vertex v JOIN deg ON v.id = deg.src",
        )
        .unwrap();
        assert_eq!(p.schema().len(), 2);
    }

    #[test]
    fn aggregates_in_where_rejected() {
        let cat = setup();
        assert!(plan(&cat, "SELECT src FROM edge WHERE COUNT(*) > 1").is_err());
    }

    #[test]
    fn count_distinct_plans() {
        let cat = setup();
        let p = plan(&cat, "SELECT COUNT(DISTINCT src) FROM edge").unwrap();
        assert_eq!(p.schema().len(), 1);
    }

    #[test]
    fn select_without_from() {
        let cat = setup();
        let p = plan(&cat, "SELECT 1 + 1 AS two").unwrap();
        assert_eq!(p.schema().fields[0].name, "two");
    }
}
