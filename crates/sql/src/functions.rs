//! Scalar and aggregate function library.

use std::collections::HashMap;
use std::sync::Arc;

use vertexica_storage::{DataType, Value};

use crate::error::{SqlError, SqlResult};

/// Implementation of a scalar function: row-at-a-time over values.
pub struct ScalarFunction {
    pub name: &'static str,
    /// Computes the output type from argument types.
    pub return_type: fn(&[DataType]) -> SqlResult<DataType>,
    /// Evaluates one row. Receives already-evaluated argument values.
    pub eval: fn(&[Value]) -> SqlResult<Value>,
}

/// Aggregate functions known to the planner.
pub fn is_aggregate_function(name: &str) -> bool {
    matches!(name, "count" | "sum" | "min" | "max" | "avg")
}

fn num_ret(args: &[DataType]) -> SqlResult<DataType> {
    if args.contains(&DataType::Float) {
        Ok(DataType::Float)
    } else {
        Ok(DataType::Int)
    }
}

fn float_ret(_args: &[DataType]) -> SqlResult<DataType> {
    Ok(DataType::Float)
}

fn str_ret(_args: &[DataType]) -> SqlResult<DataType> {
    Ok(DataType::Str)
}

fn int_ret(_args: &[DataType]) -> SqlResult<DataType> {
    Ok(DataType::Int)
}

fn first_arg_ret(args: &[DataType]) -> SqlResult<DataType> {
    args.first().copied().ok_or_else(|| SqlError::Plan("function requires arguments".into()))
}

fn need_f64(v: &Value, fname: &str) -> SqlResult<f64> {
    v.as_float()
        .ok_or_else(|| SqlError::Execution(format!("{fname}: expected numeric argument, got {v}")))
}

fn null_if_any_null(args: &[Value]) -> bool {
    args.iter().any(|a| a.is_null())
}

macro_rules! float_fn {
    ($name:literal, $f:expr) => {
        ScalarFunction {
            name: $name,
            return_type: float_ret,
            eval: |args| {
                if null_if_any_null(args) {
                    return Ok(Value::Null);
                }
                let x = need_f64(&args[0], $name)?;
                #[allow(clippy::redundant_closure_call)]
                Ok(Value::Float(($f)(x)))
            },
        }
    };
}

/// Registry of scalar functions (builtins plus user-registered ones).
#[derive(Clone, Default)]
pub struct FunctionRegistry {
    custom: HashMap<String, Arc<ScalarFunction>>,
}

impl FunctionRegistry {
    pub fn new() -> Self {
        FunctionRegistry::default()
    }

    /// Registers a user-defined scalar function (overrides builtins).
    pub fn register(&mut self, f: ScalarFunction) {
        self.custom.insert(f.name.to_ascii_lowercase(), Arc::new(f));
    }

    /// Resolves a function by lowercase name.
    pub fn get(&self, name: &str) -> Option<Arc<ScalarFunction>> {
        if let Some(f) = self.custom.get(name) {
            return Some(f.clone());
        }
        builtin(name)
    }
}

/// Looks up a builtin scalar function.
pub fn builtin(name: &str) -> Option<Arc<ScalarFunction>> {
    let f = match name {
        "abs" => ScalarFunction {
            name: "abs",
            return_type: num_ret,
            eval: |args| {
                if null_if_any_null(args) {
                    return Ok(Value::Null);
                }
                match &args[0] {
                    Value::Int(v) => Ok(Value::Int(v.abs())),
                    Value::Float(v) => Ok(Value::Float(v.abs())),
                    other => Err(SqlError::Execution(format!("abs: non-numeric {other}"))),
                }
            },
        },
        "sqrt" => float_fn!("sqrt", f64::sqrt),
        "ln" => float_fn!("ln", f64::ln),
        "exp" => float_fn!("exp", f64::exp),
        "floor" => float_fn!("floor", f64::floor),
        "ceil" | "ceiling" => float_fn!("ceil", f64::ceil),
        "round" => float_fn!("round", f64::round),
        "power" | "pow" => ScalarFunction {
            name: "power",
            return_type: float_ret,
            eval: |args| {
                if null_if_any_null(args) {
                    return Ok(Value::Null);
                }
                let x = need_f64(&args[0], "power")?;
                let y = need_f64(&args[1], "power")?;
                Ok(Value::Float(x.powf(y)))
            },
        },
        "least" => ScalarFunction {
            name: "least",
            return_type: first_arg_ret,
            eval: |args| {
                let vals: Vec<&Value> = args.iter().filter(|v| !v.is_null()).collect();
                if vals.is_empty() {
                    return Ok(Value::Null);
                }
                Ok(vals.into_iter().min_by(|a, b| a.total_cmp(b)).cloned().unwrap_or(Value::Null))
            },
        },
        "greatest" => ScalarFunction {
            name: "greatest",
            return_type: first_arg_ret,
            eval: |args| {
                let vals: Vec<&Value> = args.iter().filter(|v| !v.is_null()).collect();
                if vals.is_empty() {
                    return Ok(Value::Null);
                }
                Ok(vals.into_iter().max_by(|a, b| a.total_cmp(b)).cloned().unwrap_or(Value::Null))
            },
        },
        "coalesce" => ScalarFunction {
            name: "coalesce",
            return_type: first_arg_ret,
            eval: |args| {
                for a in args {
                    if !a.is_null() {
                        return Ok(a.clone());
                    }
                }
                Ok(Value::Null)
            },
        },
        "nullif" => ScalarFunction {
            name: "nullif",
            return_type: first_arg_ret,
            eval: |args| {
                if args.len() != 2 {
                    return Err(SqlError::Execution("nullif takes 2 arguments".into()));
                }
                if args[0].sql_eq(&args[1]) == Some(true) {
                    Ok(Value::Null)
                } else {
                    Ok(args[0].clone())
                }
            },
        },
        "length" => ScalarFunction {
            name: "length",
            return_type: int_ret,
            eval: |args| {
                if null_if_any_null(args) {
                    return Ok(Value::Null);
                }
                match &args[0] {
                    Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                    Value::Blob(b) => Ok(Value::Int(b.len() as i64)),
                    other => Err(SqlError::Execution(format!("length: bad argument {other}"))),
                }
            },
        },
        "lower" => ScalarFunction {
            name: "lower",
            return_type: str_ret,
            eval: |args| {
                if null_if_any_null(args) {
                    return Ok(Value::Null);
                }
                match &args[0] {
                    Value::Str(s) => Ok(Value::Str(s.to_lowercase())),
                    other => Err(SqlError::Execution(format!("lower: bad argument {other}"))),
                }
            },
        },
        "upper" => ScalarFunction {
            name: "upper",
            return_type: str_ret,
            eval: |args| {
                if null_if_any_null(args) {
                    return Ok(Value::Null);
                }
                match &args[0] {
                    Value::Str(s) => Ok(Value::Str(s.to_uppercase())),
                    other => Err(SqlError::Execution(format!("upper: bad argument {other}"))),
                }
            },
        },
        "substr" | "substring" => ScalarFunction {
            name: "substr",
            return_type: str_ret,
            eval: |args| {
                if null_if_any_null(args) {
                    return Ok(Value::Null);
                }
                let s = args[0]
                    .as_str()
                    .ok_or_else(|| SqlError::Execution("substr: bad string".into()))?;
                let start = args[1]
                    .as_int()
                    .ok_or_else(|| SqlError::Execution("substr: bad start".into()))?;
                let chars: Vec<char> = s.chars().collect();
                // SQL substr is 1-based.
                let from = (start.max(1) - 1) as usize;
                let len = if args.len() > 2 {
                    args[2]
                        .as_int()
                        .ok_or_else(|| SqlError::Execution("substr: bad length".into()))?
                        .max(0) as usize
                } else {
                    chars.len().saturating_sub(from)
                };
                let out: String = chars.into_iter().skip(from).take(len).collect();
                Ok(Value::Str(out))
            },
        },
        "concat" => ScalarFunction {
            name: "concat",
            return_type: str_ret,
            eval: |args| {
                let mut out = String::new();
                for a in args {
                    if !a.is_null() {
                        out.push_str(&a.to_string());
                    }
                }
                Ok(Value::Str(out))
            },
        },
        "sign" => ScalarFunction {
            name: "sign",
            return_type: int_ret,
            eval: |args| {
                if null_if_any_null(args) {
                    return Ok(Value::Null);
                }
                let x = need_f64(&args[0], "sign")?;
                Ok(Value::Int(if x > 0.0 {
                    1
                } else if x < 0.0 {
                    -1
                } else {
                    0
                }))
            },
        },
        _ => return None,
    };
    Some(Arc::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(name: &str, args: &[Value]) -> Value {
        (builtin(name).unwrap().eval)(args).unwrap()
    }

    #[test]
    fn math_functions() {
        assert_eq!(call("abs", &[Value::Int(-3)]), Value::Int(3));
        assert_eq!(call("sqrt", &[Value::Float(9.0)]), Value::Float(3.0));
        assert_eq!(call("power", &[Value::Int(2), Value::Int(10)]), Value::Float(1024.0));
        assert_eq!(call("floor", &[Value::Float(2.7)]), Value::Float(2.0));
        assert_eq!(call("sign", &[Value::Float(-2.5)]), Value::Int(-1));
    }

    #[test]
    fn null_propagation() {
        assert_eq!(call("abs", &[Value::Null]), Value::Null);
        assert_eq!(call("concat", &[Value::Null, Value::Str("x".into())]), Value::Str("x".into()));
    }

    #[test]
    fn string_functions() {
        assert_eq!(call("length", &[Value::Str("héllo".into())]), Value::Int(5));
        assert_eq!(call("upper", &[Value::Str("ab".into())]), Value::Str("AB".into()));
        assert_eq!(
            call("substr", &[Value::Str("vertexica".into()), Value::Int(1), Value::Int(6)]),
            Value::Str("vertex".into())
        );
        assert_eq!(
            call("substr", &[Value::Str("vertexica".into()), Value::Int(7)]),
            Value::Str("ica".into())
        );
    }

    #[test]
    fn conditional_functions() {
        assert_eq!(call("coalesce", &[Value::Null, Value::Int(2)]), Value::Int(2));
        assert_eq!(call("nullif", &[Value::Int(2), Value::Int(2)]), Value::Null);
        assert_eq!(call("nullif", &[Value::Int(2), Value::Int(3)]), Value::Int(2));
        assert_eq!(call("least", &[Value::Int(5), Value::Null, Value::Int(2)]), Value::Int(2));
        assert_eq!(call("greatest", &[Value::Int(5), Value::Int(2)]), Value::Int(5));
    }

    #[test]
    fn registry_custom_overrides() {
        let mut reg = FunctionRegistry::new();
        assert!(reg.get("abs").is_some());
        assert!(reg.get("nope").is_none());
        reg.register(ScalarFunction {
            name: "double_it",
            return_type: float_ret,
            eval: |args| Ok(Value::Float(args[0].as_float().unwrap_or(0.0) * 2.0)),
        });
        let f = reg.get("double_it").unwrap();
        assert_eq!((f.eval)(&[Value::Int(4)]).unwrap(), Value::Float(8.0));
    }

    #[test]
    fn aggregate_classifier() {
        assert!(is_aggregate_function("count"));
        assert!(is_aggregate_function("avg"));
        assert!(!is_aggregate_function("abs"));
    }
}
