//! Transform UDFs — the engine's equivalent of Vertica's UDx framework.
//!
//! The paper's **workers** (§2.2) "run as database UDFs": each receives a hash
//! partition of the table union, parses vertex/edge/message tuples out of it,
//! runs the vertex program, and emits new vertex values and messages as rows.
//! [`TransformUdf`] is that contract: a table-in/table-out function executed
//! per partition, in parallel across partitions.

use std::sync::Arc;

use vertexica_storage::{RecordBatch, Schema};

use crate::error::SqlResult;

/// A table-valued transform function.
///
/// Implementations must be thread-safe: the engine runs one logical invocation
/// per partition, on a pool of worker threads (the paper: "as many parallel
/// workers as the number of cores").
pub trait TransformUdf: Send + Sync {
    /// Registered name.
    fn name(&self) -> &str;

    /// Output schema for a given input schema.
    fn output_schema(&self, input: &Schema) -> SqlResult<Arc<Schema>>;

    /// Processes one partition of input batches into output batches.
    fn execute(&self, partition: Vec<RecordBatch>) -> SqlResult<Vec<RecordBatch>>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use vertexica_storage::{Column, ColumnBuilder, DataType, Field, Value};

    /// Doubles an integer column — the simplest possible transform.
    struct Doubler;

    impl TransformUdf for Doubler {
        fn name(&self) -> &str {
            "doubler"
        }

        fn output_schema(&self, _input: &Schema) -> SqlResult<Arc<Schema>> {
            Ok(Schema::new(vec![Field::new("doubled", DataType::Int)]))
        }

        fn execute(&self, partition: Vec<RecordBatch>) -> SqlResult<Vec<RecordBatch>> {
            let out_schema = Schema::new(vec![Field::new("doubled", DataType::Int)]);
            let mut out = Vec::new();
            for batch in partition {
                let mut b = ColumnBuilder::with_capacity(DataType::Int, batch.num_rows());
                for i in 0..batch.num_rows() {
                    match batch.column(0).value(i) {
                        Value::Int(v) => b.push_int(v * 2),
                        _ => b.push_null(),
                    }
                }
                let col: Column = b.finish();
                out.push(RecordBatch::new(out_schema.clone(), vec![col])?);
            }
            Ok(out)
        }
    }

    #[test]
    fn transform_udf_contract() {
        let udf = Doubler;
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let batch =
            RecordBatch::from_rows(schema.clone(), &[vec![Value::Int(1)], vec![Value::Int(5)]])
                .unwrap();
        let out = udf.execute(vec![batch]).unwrap();
        assert_eq!(out[0].column(0).value(1), Value::Int(10));
        assert_eq!(udf.output_schema(&schema).unwrap().fields[0].name, "doubled");
    }
}
