//! Logical plan optimizer.
//!
//! Rule passes, applied bottom-up:
//!
//! 1. **Constant folding** — constant sub-expressions collapse to literals.
//! 2. **Predicate pushdown into scans** — `col <op> literal` conjuncts of a
//!    `Filter` directly above a `Scan` become [`ColumnPredicate`]s, enabling
//!    zone-map pruning in the storage layer.
//! 3. **Join predicate pushdown** — conjuncts of a `Filter` above an INNER
//!    join that reference only one side sink into that side.
//! 4. **Projection pushdown** — `Project`/`Aggregate` over (optionally
//!    filtered) scans shrink the scan to the used columns (a column store's
//!    bread and butter).

use std::sync::Arc;

use vertexica_storage::{ColumnPredicate, PredicateOp, Schema};

use crate::ast::{BinaryOp, JoinKind, UnaryOp};
use crate::error::SqlResult;
use crate::expr::PhysExpr;
use crate::logical::LogicalPlan;

/// Runs all optimizer passes.
pub fn optimize(plan: LogicalPlan) -> SqlResult<LogicalPlan> {
    let plan = fold_constants_plan(plan)?;
    let plan = push_predicates(plan)?;
    let plan = push_projections(plan)?;
    Ok(plan)
}

// ---- constant folding ----

fn fold_constants_plan(plan: LogicalPlan) -> SqlResult<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(fold_constants_plan(*input)?),
            predicate: fold_expr(predicate)?,
        },
        LogicalPlan::Project { input, exprs, schema } => LogicalPlan::Project {
            input: Box::new(fold_constants_plan(*input)?),
            exprs: exprs.into_iter().map(fold_expr).collect::<SqlResult<Vec<_>>>()?,
            schema,
        },
        LogicalPlan::Join { left, right, kind, on, filter, schema } => LogicalPlan::Join {
            left: Box::new(fold_constants_plan(*left)?),
            right: Box::new(fold_constants_plan(*right)?),
            kind,
            on,
            filter: filter.map(fold_expr).transpose()?,
            schema,
        },
        LogicalPlan::Aggregate { input, group, aggs, schema } => LogicalPlan::Aggregate {
            input: Box::new(fold_constants_plan(*input)?),
            group: group.into_iter().map(fold_expr).collect::<SqlResult<Vec<_>>>()?,
            aggs,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(fold_constants_plan(*input)?),
            keys: keys
                .into_iter()
                .map(|(e, asc)| Ok((fold_expr(e)?, asc)))
                .collect::<SqlResult<Vec<_>>>()?,
        },
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(fold_constants_plan(*input)?), n }
        }
        LogicalPlan::UnionAll { inputs, schema } => LogicalPlan::UnionAll {
            inputs: inputs.into_iter().map(fold_constants_plan).collect::<SqlResult<Vec<_>>>()?,
            schema,
        },
        LogicalPlan::Distinct { input } => {
            LogicalPlan::Distinct { input: Box::new(fold_constants_plan(*input)?) }
        }
        leaf @ (LogicalPlan::Scan { .. } | LogicalPlan::Values { .. }) => leaf,
    })
}

/// Folds constant sub-expressions to literals.
pub fn fold_expr(expr: PhysExpr) -> SqlResult<PhysExpr> {
    // Fold children first.
    let expr = match expr {
        PhysExpr::Binary { left, op, right } => PhysExpr::Binary {
            left: Box::new(fold_expr(*left)?),
            op,
            right: Box::new(fold_expr(*right)?),
        },
        PhysExpr::Unary { op, expr } => PhysExpr::Unary { op, expr: Box::new(fold_expr(*expr)?) },
        PhysExpr::IsNull { expr, negated } => {
            PhysExpr::IsNull { expr: Box::new(fold_expr(*expr)?), negated }
        }
        PhysExpr::InList { expr, list, negated } => PhysExpr::InList {
            expr: Box::new(fold_expr(*expr)?),
            list: list.into_iter().map(fold_expr).collect::<SqlResult<Vec<_>>>()?,
            negated,
        },
        PhysExpr::Like { expr, pattern, negated } => PhysExpr::Like {
            expr: Box::new(fold_expr(*expr)?),
            pattern: Box::new(fold_expr(*pattern)?),
            negated,
        },
        PhysExpr::Case { when_then, else_expr } => PhysExpr::Case {
            when_then: when_then
                .into_iter()
                .map(|(w, t)| Ok((fold_expr(w)?, fold_expr(t)?)))
                .collect::<SqlResult<Vec<_>>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(fold_expr(*e)?)),
                None => None,
            },
        },
        PhysExpr::Cast { expr, dtype } => {
            PhysExpr::Cast { expr: Box::new(fold_expr(*expr)?), dtype }
        }
        PhysExpr::ScalarFn { func, args } => PhysExpr::ScalarFn {
            func,
            args: args.into_iter().map(fold_expr).collect::<SqlResult<Vec<_>>>()?,
        },
        leaf => leaf,
    };
    if !matches!(expr, PhysExpr::Literal(_)) && expr.is_constant() {
        // Evaluation errors at fold time (e.g. bad cast) are deferred to
        // runtime rather than failing the whole plan.
        if let Ok(v) = expr.eval_scalar() {
            return Ok(PhysExpr::Literal(v));
        }
    }
    Ok(expr)
}

// ---- predicate pushdown ----

fn push_predicates(plan: LogicalPlan) -> SqlResult<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = push_predicates(*input)?;
            match input {
                LogicalPlan::Scan { table, schema, projection, mut predicates } => {
                    let mut conjuncts = Vec::new();
                    split_conjuncts(predicate, &mut conjuncts);
                    let mut residual: Vec<PhysExpr> = Vec::new();
                    for c in conjuncts {
                        // Scan predicates index the *full table schema*; they
                        // are only extractable when the scan has no
                        // projection (the planner emits projection-less
                        // scans; projection pushdown runs afterwards).
                        match (projection.is_none(), to_column_predicate(&c)) {
                            (true, Some(p)) => predicates.push(p),
                            _ => residual.push(c),
                        }
                    }
                    let scan = LogicalPlan::Scan { table, schema, projection, predicates };
                    match recombine(residual) {
                        Some(pred) => {
                            LogicalPlan::Filter { input: Box::new(scan), predicate: pred }
                        }
                        None => scan,
                    }
                }
                LogicalPlan::Join { left, right, kind: JoinKind::Inner, on, filter, schema } => {
                    let left_width = left.schema().len();
                    let mut conjuncts = Vec::new();
                    split_conjuncts(predicate, &mut conjuncts);
                    let mut left_preds = Vec::new();
                    let mut right_preds = Vec::new();
                    let mut keep = Vec::new();
                    for c in conjuncts {
                        let mut cols = Vec::new();
                        collect_columns(&c, &mut cols);
                        if !cols.is_empty() && cols.iter().all(|&i| i < left_width) {
                            left_preds.push(c);
                        } else if !cols.is_empty() && cols.iter().all(|&i| i >= left_width) {
                            right_preds.push(shift_columns(c, -(left_width as isize)));
                        } else {
                            keep.push(c);
                        }
                    }
                    let left = match recombine(left_preds) {
                        Some(p) => LogicalPlan::Filter { input: left, predicate: p },
                        None => *left,
                    };
                    let right = match recombine(right_preds) {
                        Some(p) => LogicalPlan::Filter { input: right, predicate: p },
                        None => *right,
                    };
                    // Recurse so sunk filters can merge into scans.
                    let join = LogicalPlan::Join {
                        left: Box::new(push_predicates(left)?),
                        right: Box::new(push_predicates(right)?),
                        kind: JoinKind::Inner,
                        on,
                        filter,
                        schema,
                    };
                    match recombine(keep) {
                        Some(p) => LogicalPlan::Filter { input: Box::new(join), predicate: p },
                        None => join,
                    }
                }
                other => LogicalPlan::Filter { input: Box::new(other), predicate },
            }
        }
        LogicalPlan::Project { input, exprs, schema } => {
            LogicalPlan::Project { input: Box::new(push_predicates(*input)?), exprs, schema }
        }
        LogicalPlan::Join { left, right, kind, on, filter, schema } => LogicalPlan::Join {
            left: Box::new(push_predicates(*left)?),
            right: Box::new(push_predicates(*right)?),
            kind,
            on,
            filter,
            schema,
        },
        LogicalPlan::Aggregate { input, group, aggs, schema } => LogicalPlan::Aggregate {
            input: Box::new(push_predicates(*input)?),
            group,
            aggs,
            schema,
        },
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(push_predicates(*input)?), keys }
        }
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(push_predicates(*input)?), n }
        }
        LogicalPlan::UnionAll { inputs, schema } => LogicalPlan::UnionAll {
            inputs: inputs.into_iter().map(push_predicates).collect::<SqlResult<Vec<_>>>()?,
            schema,
        },
        LogicalPlan::Distinct { input } => {
            LogicalPlan::Distinct { input: Box::new(push_predicates(*input)?) }
        }
        leaf => leaf,
    })
}

fn split_conjuncts(expr: PhysExpr, out: &mut Vec<PhysExpr>) {
    match expr {
        PhysExpr::Binary { left, op: BinaryOp::And, right } => {
            split_conjuncts(*left, out);
            split_conjuncts(*right, out);
        }
        other => out.push(other),
    }
}

fn recombine(conjuncts: Vec<PhysExpr>) -> Option<PhysExpr> {
    conjuncts.into_iter().reduce(|a, b| PhysExpr::Binary {
        left: Box::new(a),
        op: BinaryOp::And,
        right: Box::new(b),
    })
}

/// Extracts `col <op> literal` (or flipped) as a storage-level predicate.
fn to_column_predicate(expr: &PhysExpr) -> Option<ColumnPredicate> {
    let PhysExpr::Binary { left, op, right } = expr else {
        return None;
    };
    let op = *op;
    let storage_op = |op: BinaryOp| -> Option<PredicateOp> {
        Some(match op {
            BinaryOp::Eq => PredicateOp::Eq,
            BinaryOp::NotEq => PredicateOp::NotEq,
            BinaryOp::Lt => PredicateOp::Lt,
            BinaryOp::LtEq => PredicateOp::LtEq,
            BinaryOp::Gt => PredicateOp::Gt,
            BinaryOp::GtEq => PredicateOp::GtEq,
            _ => return None,
        })
    };
    let flip = |op: PredicateOp| match op {
        PredicateOp::Lt => PredicateOp::Gt,
        PredicateOp::LtEq => PredicateOp::GtEq,
        PredicateOp::Gt => PredicateOp::Lt,
        PredicateOp::GtEq => PredicateOp::LtEq,
        other => other,
    };
    match (&**left, &**right) {
        (PhysExpr::Column(i), PhysExpr::Literal(v)) if !v.is_null() => {
            Some(ColumnPredicate::new(*i, storage_op(op)?, v.clone()))
        }
        (PhysExpr::Literal(v), PhysExpr::Column(i)) if !v.is_null() => {
            Some(ColumnPredicate::new(*i, flip(storage_op(op)?), v.clone()))
        }
        _ => None,
    }
}

/// Collects input-column indices referenced by an expression.
pub fn collect_columns(expr: &PhysExpr, out: &mut Vec<usize>) {
    match expr {
        PhysExpr::Column(i) => out.push(*i),
        PhysExpr::Literal(_) => {}
        PhysExpr::Binary { left, right, .. } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        PhysExpr::Unary { expr, .. } => collect_columns(expr, out),
        PhysExpr::IsNull { expr, .. } => collect_columns(expr, out),
        PhysExpr::InList { expr, list, .. } => {
            collect_columns(expr, out);
            for e in list {
                collect_columns(e, out);
            }
        }
        PhysExpr::Like { expr, pattern, .. } => {
            collect_columns(expr, out);
            collect_columns(pattern, out);
        }
        PhysExpr::Case { when_then, else_expr } => {
            for (w, t) in when_then {
                collect_columns(w, out);
                collect_columns(t, out);
            }
            if let Some(e) = else_expr {
                collect_columns(e, out);
            }
        }
        PhysExpr::Cast { expr, .. } => collect_columns(expr, out),
        PhysExpr::ScalarFn { args, .. } => {
            for a in args {
                collect_columns(a, out);
            }
        }
    }
}

/// Shifts every column index by `delta` (used when sinking predicates below
/// a join's right side).
fn shift_columns(expr: PhysExpr, delta: isize) -> PhysExpr {
    map_columns(expr, &|i| (i as isize + delta) as usize)
}

/// Rewrites column indices through `f`.
pub fn map_columns(expr: PhysExpr, f: &impl Fn(usize) -> usize) -> PhysExpr {
    match expr {
        PhysExpr::Column(i) => PhysExpr::Column(f(i)),
        PhysExpr::Literal(v) => PhysExpr::Literal(v),
        PhysExpr::Binary { left, op, right } => PhysExpr::Binary {
            left: Box::new(map_columns(*left, f)),
            op,
            right: Box::new(map_columns(*right, f)),
        },
        PhysExpr::Unary { op, expr } => {
            PhysExpr::Unary { op, expr: Box::new(map_columns(*expr, f)) }
        }
        PhysExpr::IsNull { expr, negated } => {
            PhysExpr::IsNull { expr: Box::new(map_columns(*expr, f)), negated }
        }
        PhysExpr::InList { expr, list, negated } => PhysExpr::InList {
            expr: Box::new(map_columns(*expr, f)),
            list: list.into_iter().map(|e| map_columns(e, f)).collect(),
            negated,
        },
        PhysExpr::Like { expr, pattern, negated } => PhysExpr::Like {
            expr: Box::new(map_columns(*expr, f)),
            pattern: Box::new(map_columns(*pattern, f)),
            negated,
        },
        PhysExpr::Case { when_then, else_expr } => PhysExpr::Case {
            when_then: when_then
                .into_iter()
                .map(|(w, t)| (map_columns(w, f), map_columns(t, f)))
                .collect(),
            else_expr: else_expr.map(|e| Box::new(map_columns(*e, f))),
        },
        PhysExpr::Cast { expr, dtype } => {
            PhysExpr::Cast { expr: Box::new(map_columns(*expr, f)), dtype }
        }
        PhysExpr::ScalarFn { func, args } => {
            PhysExpr::ScalarFn { func, args: args.into_iter().map(|e| map_columns(e, f)).collect() }
        }
    }
}

// ---- projection pushdown ----

fn push_projections(plan: LogicalPlan) -> SqlResult<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Project { input, exprs, schema } => {
            match *input {
                // Project(Scan) and Project(Filter(Scan)).
                LogicalPlan::Scan { table, schema: tschema, projection: None, predicates } => {
                    let mut used = Vec::new();
                    for e in &exprs {
                        collect_columns(e, &mut used);
                    }
                    let (scan, remap) = narrow_scan(table, tschema, predicates, used);
                    let exprs = exprs.into_iter().map(|e| map_columns(e, &remap)).collect();
                    LogicalPlan::Project { input: Box::new(scan), exprs, schema }
                }
                LogicalPlan::Filter { input: finput, predicate } => match *finput {
                    LogicalPlan::Scan { table, schema: tschema, projection: None, predicates } => {
                        let mut used = Vec::new();
                        for e in &exprs {
                            collect_columns(e, &mut used);
                        }
                        collect_columns(&predicate, &mut used);
                        let (scan, remap) = narrow_scan(table, tschema, predicates, used);
                        let predicate = map_columns(predicate, &remap);
                        let exprs = exprs.into_iter().map(|e| map_columns(e, &remap)).collect();
                        LogicalPlan::Project {
                            input: Box::new(LogicalPlan::Filter {
                                input: Box::new(scan),
                                predicate,
                            }),
                            exprs,
                            schema,
                        }
                    }
                    other => LogicalPlan::Project {
                        input: Box::new(LogicalPlan::Filter {
                            input: Box::new(push_projections(other)?),
                            predicate,
                        }),
                        exprs,
                        schema,
                    },
                },
                other => LogicalPlan::Project {
                    input: Box::new(push_projections(other)?),
                    exprs,
                    schema,
                },
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            LogicalPlan::Filter { input: Box::new(push_projections(*input)?), predicate }
        }
        LogicalPlan::Join { left, right, kind, on, filter, schema } => LogicalPlan::Join {
            left: Box::new(push_projections(*left)?),
            right: Box::new(push_projections(*right)?),
            kind,
            on,
            filter,
            schema,
        },
        LogicalPlan::Aggregate { input, group, aggs, schema } => LogicalPlan::Aggregate {
            input: Box::new(push_projections(*input)?),
            group,
            aggs,
            schema,
        },
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(push_projections(*input)?), keys }
        }
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(push_projections(*input)?), n }
        }
        LogicalPlan::UnionAll { inputs, schema } => LogicalPlan::UnionAll {
            inputs: inputs.into_iter().map(push_projections).collect::<SqlResult<Vec<_>>>()?,
            schema,
        },
        LogicalPlan::Distinct { input } => {
            LogicalPlan::Distinct { input: Box::new(push_projections(*input)?) }
        }
        leaf => leaf,
    })
}

/// Builds a narrowed scan over only `used` columns and a remapping closure
/// from old indices to new.
fn narrow_scan(
    table: String,
    tschema: Arc<Schema>,
    predicates: Vec<ColumnPredicate>,
    mut used: Vec<usize>,
) -> (LogicalPlan, impl Fn(usize) -> usize) {
    used.sort_unstable();
    used.dedup();
    // A constant-only projection uses no columns, but the scan must still
    // report the table's row count — keep one column as a row-count carrier
    // (a zero-column batch cannot represent N rows).
    if used.is_empty() && !tschema.is_empty() {
        used.push(0);
    }
    // If everything is used, keep the scan whole.
    if used.len() == tschema.len() {
        let scan = LogicalPlan::Scan { table, schema: tschema, projection: None, predicates };
        return (scan, identity_or_map(None));
    }
    let mapping: std::collections::HashMap<usize, usize> =
        used.iter().enumerate().map(|(new, &old)| (old, new)).collect();
    let scan = LogicalPlan::Scan { table, schema: tschema, projection: Some(used), predicates };
    (scan, identity_or_map(Some(mapping)))
}

fn identity_or_map(
    mapping: Option<std::collections::HashMap<usize, usize>>,
) -> impl Fn(usize) -> usize {
    move |i| match &mapping {
        None => i,
        Some(m) => *m.get(&i).unwrap_or(&i),
    }
}

/// Desugars `NOT(expr)` over comparisons during folding — exposed for tests.
pub fn negate_comparison(op: BinaryOp) -> Option<BinaryOp> {
    Some(match op {
        BinaryOp::Eq => BinaryOp::NotEq,
        BinaryOp::NotEq => BinaryOp::Eq,
        BinaryOp::Lt => BinaryOp::GtEq,
        BinaryOp::LtEq => BinaryOp::Gt,
        BinaryOp::Gt => BinaryOp::LtEq,
        BinaryOp::GtEq => BinaryOp::Lt,
        _ => return None,
    })
}

/// Helper for building NOT expressions in tests.
pub fn not(e: PhysExpr) -> PhysExpr {
    PhysExpr::Unary { op: UnaryOp::Not, expr: Box::new(e) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vertexica_storage::{DataType, Field, Value};

    fn scan(ncols: usize) -> LogicalPlan {
        let fields = (0..ncols).map(|i| Field::new(format!("c{i}"), DataType::Int)).collect();
        LogicalPlan::Scan {
            table: "t".into(),
            schema: Schema::new(fields),
            projection: None,
            predicates: vec![],
        }
    }

    fn cmp(col: usize, op: BinaryOp, v: i64) -> PhysExpr {
        PhysExpr::Binary {
            left: Box::new(PhysExpr::Column(col)),
            op,
            right: Box::new(PhysExpr::Literal(Value::Int(v))),
        }
    }

    #[test]
    fn constant_folding_collapses() {
        let e = PhysExpr::Binary {
            left: Box::new(PhysExpr::Literal(Value::Int(2))),
            op: BinaryOp::Multiply,
            right: Box::new(PhysExpr::Literal(Value::Int(21))),
        };
        let folded = fold_expr(e).unwrap();
        assert!(matches!(folded, PhysExpr::Literal(Value::Int(42))));
    }

    #[test]
    fn folding_keeps_column_refs() {
        let e = cmp(0, BinaryOp::Gt, 5);
        let folded = fold_expr(e).unwrap();
        assert!(matches!(folded, PhysExpr::Binary { .. }));
    }

    #[test]
    fn predicate_sinks_into_scan() {
        let plan =
            LogicalPlan::Filter { input: Box::new(scan(3)), predicate: cmp(1, BinaryOp::Eq, 7) };
        let opt = optimize(plan).unwrap();
        let LogicalPlan::Scan { predicates, .. } = opt else {
            panic!("expected bare scan, got {}", opt.display_indent());
        };
        assert_eq!(predicates.len(), 1);
        assert_eq!(predicates[0].column, 1);
    }

    #[test]
    fn non_sinkable_conjunct_stays() {
        // c0 = c1 cannot become a storage predicate.
        let pred = PhysExpr::Binary {
            left: Box::new(PhysExpr::Column(0)),
            op: BinaryOp::Eq,
            right: Box::new(PhysExpr::Column(1)),
        };
        let both = PhysExpr::Binary {
            left: Box::new(pred),
            op: BinaryOp::And,
            right: Box::new(cmp(2, BinaryOp::Lt, 9)),
        };
        let plan = LogicalPlan::Filter { input: Box::new(scan(3)), predicate: both };
        let opt = optimize(plan).unwrap();
        let LogicalPlan::Filter { input, .. } = opt else { panic!() };
        let LogicalPlan::Scan { predicates, .. } = *input else { panic!() };
        assert_eq!(predicates.len(), 1);
        assert_eq!(predicates[0].column, 2);
    }

    #[test]
    fn flipped_literal_comparison_sinks() {
        // 5 < c0  →  c0 > 5
        let pred = PhysExpr::Binary {
            left: Box::new(PhysExpr::Literal(Value::Int(5))),
            op: BinaryOp::Lt,
            right: Box::new(PhysExpr::Column(0)),
        };
        let plan = LogicalPlan::Filter { input: Box::new(scan(1)), predicate: pred };
        let opt = optimize(plan).unwrap();
        let LogicalPlan::Scan { predicates, .. } = opt else { panic!() };
        assert_eq!(predicates[0].op, PredicateOp::Gt);
    }

    #[test]
    fn projection_pushdown_narrows_scan() {
        let plan = LogicalPlan::Project {
            input: Box::new(scan(5)),
            exprs: vec![PhysExpr::Column(4), PhysExpr::Column(2)],
            schema: Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Int),
            ]),
        };
        let opt = optimize(plan).unwrap();
        let LogicalPlan::Project { input, exprs, .. } = opt else { panic!() };
        let LogicalPlan::Scan { projection, .. } = *input else { panic!() };
        assert_eq!(projection, Some(vec![2, 4]));
        // Exprs remapped: old 4 → new 1, old 2 → new 0.
        assert!(matches!(exprs[0], PhysExpr::Column(1)));
        assert!(matches!(exprs[1], PhysExpr::Column(0)));
    }

    #[test]
    fn filter_pushdown_through_inner_join() {
        let join = LogicalPlan::Join {
            left: Box::new(scan(2)),
            right: Box::new(scan(2)),
            kind: JoinKind::Inner,
            on: vec![(0, 0)],
            filter: None,
            schema: Schema::new(
                (0..4).map(|i| Field::new(format!("c{i}"), DataType::Int)).collect(),
            ),
        };
        // c3 > 1 references only the right side (indices 2,3).
        let plan =
            LogicalPlan::Filter { input: Box::new(join), predicate: cmp(3, BinaryOp::Gt, 1) };
        let opt = optimize(plan).unwrap();
        let LogicalPlan::Join { right, .. } = opt else {
            panic!("expected join at root");
        };
        let LogicalPlan::Scan { predicates, .. } = *right else {
            panic!("expected scan with sunk predicate");
        };
        assert_eq!(predicates.len(), 1);
        assert_eq!(predicates[0].column, 1); // shifted by left width
    }

    #[test]
    fn left_join_filter_not_pushed() {
        let join = LogicalPlan::Join {
            left: Box::new(scan(1)),
            right: Box::new(scan(1)),
            kind: JoinKind::Left,
            on: vec![(0, 0)],
            filter: None,
            schema: Schema::new(
                (0..2).map(|i| Field::new(format!("c{i}"), DataType::Int)).collect(),
            ),
        };
        let plan =
            LogicalPlan::Filter { input: Box::new(join), predicate: cmp(1, BinaryOp::Eq, 1) };
        let opt = optimize(plan).unwrap();
        assert!(matches!(opt, LogicalPlan::Filter { .. }));
    }
}
