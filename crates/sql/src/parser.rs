//! Recursive-descent SQL parser.

use vertexica_storage::{DataType, Value};

use crate::ast::*;
use crate::error::{SqlError, SqlResult};
use crate::lexer::{tokenize, Token, TokenKind};

/// Parses a single SQL statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> SqlResult<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_statement()?;
    p.eat_if(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parses a `;`-separated script into statements.
pub fn parse_script(sql: &str) -> SqlResult<Vec<Statement>> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat_if(&TokenKind::Semicolon) {}
        if p.peek_kind() == &TokenKind::Eof {
            break;
        }
        out.push(p.parse_statement()?);
        if p.peek_kind() != &TokenKind::Eof && !p.eat_if(&TokenKind::Semicolon) {
            return Err(p.err("expected ';' between statements"));
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

// Words that terminate an implicit alias.
const RESERVED: &[&str] = &[
    "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "UNION", "JOIN", "INNER", "LEFT",
    "RIGHT", "CROSS", "ON", "SELECT", "AND", "OR", "NOT", "AS", "SET", "VALUES", "BY", "ASC",
    "DESC", "CASE", "WHEN", "THEN", "ELSE", "END", "DISTINCT", "IS", "IN", "BETWEEN", "LIKE",
    "WITH",
];

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_kind_at(&self, offset: usize) -> &TokenKind {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> SqlError {
        SqlError::Parse { message: msg.into(), position: self.peek().position }
    }

    fn eat_if(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kind().is_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> SqlResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {:?}", self.peek_kind())))
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> SqlResult<()> {
        if self.eat_if(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kind:?}, found {:?}", self.peek_kind())))
        }
    }

    fn expect_eof(&self) -> SqlResult<()> {
        if self.peek_kind() == &TokenKind::Eof {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input: {:?}", self.peek_kind())))
        }
    }

    fn expect_ident(&mut self) -> SqlResult<String> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            TokenKind::QuotedIdent(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn parse_statement(&mut self) -> SqlResult<Statement> {
        if self.peek_kind().is_kw("CREATE") {
            self.parse_create()
        } else if self.peek_kind().is_kw("DROP") {
            self.parse_drop()
        } else if self.peek_kind().is_kw("INSERT") {
            self.parse_insert()
        } else if self.peek_kind().is_kw("UPDATE") {
            self.parse_update()
        } else if self.peek_kind().is_kw("DELETE") {
            self.parse_delete()
        } else if self.peek_kind().is_kw("SELECT") || self.peek_kind().is_kw("WITH") {
            Ok(Statement::Query(Box::new(self.parse_query()?)))
        } else {
            Err(self.err(format!("unexpected statement start: {:?}", self.peek_kind())))
        }
    }

    fn parse_create(&mut self) -> SqlResult<Statement> {
        self.expect_kw("CREATE")?;
        self.expect_kw("TABLE")?;
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.expect_ident()?;
        if self.eat_kw("AS") {
            let query = self.parse_query()?;
            return Ok(Statement::CreateTableAs { name, query: Box::new(query), if_not_exists });
        }
        self.expect(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.expect_ident()?;
            let type_name = self.expect_ident()?;
            let dtype = DataType::parse(&type_name)
                .ok_or_else(|| self.err(format!("unknown type {type_name}")))?;
            // Swallow optional length like VARCHAR(64).
            if self.eat_if(&TokenKind::LParen) {
                match self.peek_kind() {
                    TokenKind::Int(_) => {
                        self.advance();
                    }
                    _ => return Err(self.err("expected length in type")),
                }
                self.expect(&TokenKind::RParen)?;
            }
            let mut nullable = true;
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                nullable = false;
            } else if self.eat_kw("NULL") {
                // explicit NULL — default
            }
            // Ignore PRIMARY KEY annotations (no index support needed).
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                nullable = false;
            }
            columns.push(ColumnDef { name: col_name, dtype, nullable });
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                order_by.push(self.expect_ident()?);
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
        }
        Ok(Statement::CreateTable { name, columns, order_by, if_not_exists })
    }

    fn parse_drop(&mut self) -> SqlResult<Statement> {
        self.expect_kw("DROP")?;
        self.expect_kw("TABLE")?;
        let if_exists = if self.eat_kw("IF") {
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.expect_ident()?;
        Ok(Statement::DropTable { name, if_exists })
    }

    fn parse_insert(&mut self) -> SqlResult<Statement> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.expect_ident()?;
        let mut columns = Vec::new();
        if self.peek_kind() == &TokenKind::LParen {
            // Could be column list or VALUES-less subquery; assume column list.
            self.advance();
            loop {
                columns.push(self.expect_ident()?);
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        if self.eat_kw("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect(&TokenKind::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat_if(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
                rows.push(row);
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
            Ok(Statement::Insert { table, columns, source: InsertSource::Values(rows) })
        } else {
            let query = self.parse_query()?;
            Ok(Statement::Insert { table, columns, source: InsertSource::Query(Box::new(query)) })
        }
    }

    fn parse_update(&mut self) -> SqlResult<Statement> {
        self.expect_kw("UPDATE")?;
        let table = self.expect_ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect(&TokenKind::Eq)?;
            let value = self.parse_expr()?;
            assignments.push((col, value));
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw("WHERE") { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Update { table, assignments, filter })
    }

    fn parse_delete(&mut self) -> SqlResult<Statement> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.expect_ident()?;
        let filter = if self.eat_kw("WHERE") { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Delete { table, filter })
    }

    pub(crate) fn parse_query(&mut self) -> SqlResult<Query> {
        let mut ctes = Vec::new();
        if self.eat_kw("WITH") {
            loop {
                let name = self.expect_ident()?;
                self.expect_kw("AS")?;
                self.expect(&TokenKind::LParen)?;
                let q = self.parse_query()?;
                self.expect(&TokenKind::RParen)?;
                ctes.push((name, q));
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let mut body = SetExpr::Select(Box::new(self.parse_select()?));
        while self.peek_kind().is_kw("UNION") {
            self.advance();
            self.expect_kw("ALL")?;
            let rhs = SetExpr::Select(Box::new(self.parse_select()?));
            body = SetExpr::UnionAll(Box::new(body), Box::new(rhs));
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push(OrderByExpr { expr, asc });
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.peek_kind().clone() {
                TokenKind::Int(n) if n >= 0 => {
                    self.advance();
                    Some(n as u64)
                }
                _ => return Err(self.err("expected non-negative integer after LIMIT")),
            }
        } else {
            None
        };
        Ok(Query { ctes, body, order_by, limit })
    }

    fn parse_select(&mut self) -> SqlResult<Select> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        let from = if self.eat_kw("FROM") { Some(self.parse_table_ref()?) } else { None };
        let filter = if self.eat_kw("WHERE") { Some(self.parse_expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") { Some(self.parse_expr()?) } else { None };
        Ok(Select { distinct, items, from, filter, group_by, having })
    }

    fn parse_select_item(&mut self) -> SqlResult<SelectItem> {
        if self.peek_kind() == &TokenKind::Star {
            self.advance();
            return Ok(SelectItem::Wildcard);
        }
        // alias.*
        if let TokenKind::Ident(name) = self.peek_kind().clone() {
            if self.peek_kind_at(1) == &TokenKind::Dot && self.peek_kind_at(2) == &TokenKind::Star {
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_optional_alias(&mut self) -> SqlResult<Option<String>> {
        if self.eat_kw("AS") {
            return Ok(Some(self.expect_ident()?));
        }
        match self.peek_kind().clone() {
            TokenKind::Ident(s) if !RESERVED.iter().any(|r| s.eq_ignore_ascii_case(r)) => {
                self.advance();
                Ok(Some(s))
            }
            TokenKind::QuotedIdent(s) => {
                self.advance();
                Ok(Some(s))
            }
            _ => Ok(None),
        }
    }

    fn parse_table_ref(&mut self) -> SqlResult<TableRef> {
        let mut left = self.parse_table_factor()?;
        loop {
            let kind = if self.peek_kind().is_kw("JOIN") || self.peek_kind().is_kw("INNER") {
                self.eat_kw("INNER");
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.peek_kind().is_kw("LEFT") {
                self.advance();
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Left
            } else if self.peek_kind().is_kw("RIGHT") {
                self.advance();
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Right
            } else if self.peek_kind().is_kw("CROSS") {
                self.advance();
                self.expect_kw("JOIN")?;
                JoinKind::Cross
            } else if self.peek_kind() == &TokenKind::Comma {
                // `FROM a, b` is a cross join.
                self.advance();
                JoinKind::Cross
            } else {
                break;
            };
            let right = self.parse_table_factor()?;
            let on = if kind == JoinKind::Cross {
                None
            } else {
                self.expect_kw("ON")?;
                Some(self.parse_expr()?)
            };
            left = TableRef::Join { left: Box::new(left), right: Box::new(right), kind, on };
        }
        Ok(left)
    }

    fn parse_table_factor(&mut self) -> SqlResult<TableRef> {
        if self.eat_if(&TokenKind::LParen) {
            let query = self.parse_query()?;
            self.expect(&TokenKind::RParen)?;
            self.eat_kw("AS");
            let alias = self.expect_ident()?;
            return Ok(TableRef::Subquery { query: Box::new(query), alias });
        }
        let name = self.expect_ident()?;
        let alias = self.parse_optional_alias()?;
        Ok(TableRef::Named { name, alias })
    }

    // ---- expressions (precedence climbing) ----

    pub(crate) fn parse_expr(&mut self) -> SqlResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> SqlResult<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("OR") {
            let right = self.parse_and()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> SqlResult<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("AND") {
            let right = self.parse_not()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> SqlResult<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> SqlResult<Expr> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.peek_kind().is_kw("IS") {
            self.advance();
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        // [NOT] IN / BETWEEN / LIKE
        let negated = if self.peek_kind().is_kw("NOT")
            && (self.peek_kind_at(1).is_kw("IN")
                || self.peek_kind_at(1).is_kw("BETWEEN")
                || self.peek_kind_at(1).is_kw("LIKE"))
        {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_kw("IN") {
            self.expect(&TokenKind::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_kw("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like { expr: Box::new(left), pattern: Box::new(pattern), negated });
        }
        let op = match self.peek_kind() {
            TokenKind::Eq => BinaryOp::Eq,
            TokenKind::NotEq => BinaryOp::NotEq,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::LtEq => BinaryOp::LtEq,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::GtEq => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.parse_additive()?;
        Ok(Expr::binary(left, op, right))
    }

    fn parse_additive(&mut self) -> SqlResult<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinaryOp::Plus,
                TokenKind::Minus => BinaryOp::Minus,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> SqlResult<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinaryOp::Multiply,
                TokenKind::Slash => BinaryOp::Divide,
                TokenKind::Percent => BinaryOp::Modulo,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> SqlResult<Expr> {
        if self.eat_if(&TokenKind::Minus) {
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(inner) });
        }
        if self.eat_if(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> SqlResult<Expr> {
        match self.peek_kind().clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Int(v)))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Float(v)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Value::Str(s)))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::QuotedIdent(name) => {
                self.advance();
                self.parse_maybe_qualified(name)
            }
            TokenKind::Ident(word) => {
                // keywords that start expressions
                if word.eq_ignore_ascii_case("NULL") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Null));
                }
                if word.eq_ignore_ascii_case("TRUE") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if word.eq_ignore_ascii_case("FALSE") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                if word.eq_ignore_ascii_case("CASE") {
                    return self.parse_case();
                }
                // Reserved words never begin an expression (catches e.g.
                // `SELECT FROM t`).
                if RESERVED.iter().any(|r| word.eq_ignore_ascii_case(r)) {
                    return Err(self.err(format!("unexpected keyword {word} in expression")));
                }
                if word.eq_ignore_ascii_case("CAST") {
                    self.advance();
                    self.expect(&TokenKind::LParen)?;
                    let inner = self.parse_expr()?;
                    self.expect_kw("AS")?;
                    let tname = self.expect_ident()?;
                    let dtype = DataType::parse(&tname)
                        .ok_or_else(|| self.err(format!("unknown type {tname}")))?;
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Cast { expr: Box::new(inner), dtype });
                }
                self.advance();
                // Function call?
                if self.peek_kind() == &TokenKind::LParen {
                    self.advance();
                    // COUNT(*)
                    if word.eq_ignore_ascii_case("COUNT") && self.peek_kind() == &TokenKind::Star {
                        self.advance();
                        self.expect(&TokenKind::RParen)?;
                        return Ok(Expr::CountStar);
                    }
                    let distinct = self.eat_kw("DISTINCT");
                    let mut args = Vec::new();
                    if self.peek_kind() != &TokenKind::RParen {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_if(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Function { name: word.to_ascii_lowercase(), args, distinct });
                }
                self.parse_maybe_qualified(word)
            }
            other => Err(self.err(format!("unexpected token in expression: {other:?}"))),
        }
    }

    fn parse_maybe_qualified(&mut self, first: String) -> SqlResult<Expr> {
        if self.peek_kind() == &TokenKind::Dot {
            self.advance();
            let col = self.expect_ident()?;
            Ok(Expr::Column(Some(first), col))
        } else {
            Ok(Expr::Column(None, first))
        }
    }

    fn parse_case(&mut self) -> SqlResult<Expr> {
        self.expect_kw("CASE")?;
        let mut when_then = Vec::new();
        while self.eat_kw("WHEN") {
            let w = self.parse_expr()?;
            self.expect_kw("THEN")?;
            let t = self.parse_expr()?;
            when_then.push((w, t));
        }
        if when_then.is_empty() {
            return Err(self.err("CASE requires at least one WHEN"));
        }
        let else_expr = if self.eat_kw("ELSE") { Some(Box::new(self.parse_expr()?)) } else { None };
        self.expect_kw("END")?;
        Ok(Expr::Case { when_then, else_expr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let s = parse_statement("SELECT a, b + 1 AS c FROM t WHERE a > 2 ORDER BY a DESC LIMIT 5")
            .unwrap();
        let Statement::Query(q) = s else { panic!("expected query") };
        assert_eq!(q.limit, Some(5));
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].asc);
        let SetExpr::Select(sel) = &q.body else { panic!("expected select") };
        assert_eq!(sel.items.len(), 2);
        assert!(sel.filter.is_some());
    }

    #[test]
    fn parses_join_chain() {
        let s = parse_statement(
            "SELECT * FROM e1 JOIN e2 ON e1.dst = e2.src LEFT JOIN v ON v.id = e2.dst",
        )
        .unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SetExpr::Select(sel) = &q.body else { panic!() };
        let Some(TableRef::Join { kind, left, .. }) = &sel.from else { panic!() };
        assert_eq!(*kind, JoinKind::Left);
        assert!(matches!(**left, TableRef::Join { kind: JoinKind::Inner, .. }));
    }

    #[test]
    fn parses_group_by_having() {
        let s = parse_statement(
            "SELECT src, COUNT(*) AS cnt FROM edge GROUP BY src HAVING COUNT(*) > 10",
        )
        .unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SetExpr::Select(sel) = &q.body else { panic!() };
        assert_eq!(sel.group_by.len(), 1);
        assert!(sel.having.is_some());
    }

    #[test]
    fn parses_union_all() {
        let s = parse_statement("SELECT 1 UNION ALL SELECT 2 UNION ALL SELECT 3").unwrap();
        let Statement::Query(q) = s else { panic!() };
        assert!(matches!(q.body, SetExpr::UnionAll(_, _)));
    }

    #[test]
    fn parses_cte() {
        let s = parse_statement("WITH deg AS (SELECT src FROM edge) SELECT * FROM deg").unwrap();
        let Statement::Query(q) = s else { panic!() };
        assert_eq!(q.ctes.len(), 1);
        assert_eq!(q.ctes[0].0, "deg");
    }

    #[test]
    fn parses_subquery_in_from() {
        let s =
            parse_statement("SELECT x FROM (SELECT src AS x FROM edge) sub WHERE x > 1").unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SetExpr::Select(sel) = &q.body else { panic!() };
        assert!(matches!(sel.from, Some(TableRef::Subquery { .. })));
    }

    #[test]
    fn parses_ddl() {
        let s = parse_statement(
            "CREATE TABLE vertex (id BIGINT NOT NULL, value VARBINARY, halted BOOLEAN) ORDER BY id",
        )
        .unwrap();
        let Statement::CreateTable { columns, order_by, .. } = s else { panic!() };
        assert_eq!(columns.len(), 3);
        assert!(!columns[0].nullable);
        assert_eq!(order_by, vec!["id".to_string()]);

        let s = parse_statement("DROP TABLE IF EXISTS msg").unwrap();
        assert!(matches!(s, Statement::DropTable { if_exists: true, .. }));
    }

    #[test]
    fn parses_ctas() {
        let s = parse_statement("CREATE TABLE t2 AS SELECT * FROM t1").unwrap();
        assert!(matches!(s, Statement::CreateTableAs { .. }));
    }

    #[test]
    fn parses_dml() {
        let s = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        let Statement::Insert { columns, source, .. } = s else { panic!() };
        assert_eq!(columns.len(), 2);
        assert!(matches!(source, InsertSource::Values(rows) if rows.len() == 2));

        let s = parse_statement("UPDATE v SET value = value + 1 WHERE id = 3").unwrap();
        assert!(matches!(s, Statement::Update { .. }));

        let s = parse_statement("DELETE FROM msg WHERE recipient < 0").unwrap();
        assert!(matches!(s, Statement::Delete { .. }));
    }

    #[test]
    fn parses_case_cast_in_between_like() {
        let s = parse_statement(
            "SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END, CAST(a AS FLOAT), \
             b IN (1, 2, 3), c BETWEEN 1 AND 5, d NOT LIKE 'x%' FROM t",
        )
        .unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SetExpr::Select(sel) = &q.body else { panic!() };
        assert_eq!(sel.items.len(), 5);
    }

    #[test]
    fn parses_count_star_and_distinct() {
        let s = parse_statement("SELECT COUNT(*), COUNT(DISTINCT src) FROM edge").unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SetExpr::Select(sel) = &q.body else { panic!() };
        assert!(matches!(sel.items[0], SelectItem::Expr { expr: Expr::CountStar, .. }));
        assert!(matches!(
            &sel.items[1],
            SelectItem::Expr { expr: Expr::Function { distinct: true, .. }, .. }
        ));
    }

    #[test]
    fn operator_precedence() {
        let s = parse_statement("SELECT 1 + 2 * 3").unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SetExpr::Select(sel) = &q.body else { panic!() };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else { panic!() };
        // Must parse as 1 + (2 * 3).
        let Expr::Binary { op: BinaryOp::Plus, right, .. } = expr else { panic!() };
        assert!(matches!(**right, Expr::Binary { op: BinaryOp::Multiply, .. }));
    }

    #[test]
    fn not_precedence() {
        let s = parse_statement("SELECT * FROM t WHERE NOT a = 1 AND b = 2").unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SetExpr::Select(sel) = &q.body else { panic!() };
        // NOT binds tighter than AND: (NOT (a=1)) AND (b=2)
        let Some(Expr::Binary { op: BinaryOp::And, left, .. }) = &sel.filter else { panic!() };
        assert!(matches!(**left, Expr::Unary { op: UnaryOp::Not, .. }));
    }

    #[test]
    fn parse_script_splits_statements() {
        let stmts =
            parse_script("CREATE TABLE t (a BIGINT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn error_has_position() {
        let e = parse_statement("SELECT FROM").unwrap_err();
        assert!(matches!(e, SqlError::Parse { .. }));
    }

    #[test]
    fn comma_cross_join() {
        let s = parse_statement("SELECT * FROM a, b WHERE a.x = b.y").unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SetExpr::Select(sel) = &q.body else { panic!() };
        assert!(matches!(sel.from, Some(TableRef::Join { kind: JoinKind::Cross, .. })));
    }
}
