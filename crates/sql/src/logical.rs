//! Logical query plans.

use std::sync::Arc;

use vertexica_storage::{ColumnPredicate, Schema, Value};

use crate::ast::JoinKind;
use crate::expr::PhysExpr;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    CountStar,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn parse(name: &str) -> Option<AggFunc> {
        Some(match name {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "avg" => AggFunc::Avg,
            _ => return None,
        })
    }
}

/// A planned aggregate call.
#[derive(Debug, Clone)]
pub struct AggCall {
    pub func: AggFunc,
    /// Argument expression over the aggregate input (None for COUNT(*)).
    pub arg: Option<PhysExpr>,
    pub distinct: bool,
}

/// A relational operator tree.
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// Base-table scan with optional projection and pushed-down predicates.
    Scan {
        table: String,
        schema: Arc<Schema>,
        projection: Option<Vec<usize>>,
        predicates: Vec<ColumnPredicate>,
    },
    /// Literal rows.
    Values {
        schema: Arc<Schema>,
        rows: Vec<Vec<Value>>,
    },
    Filter {
        input: Box<LogicalPlan>,
        predicate: PhysExpr,
    },
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<PhysExpr>,
        schema: Arc<Schema>,
    },
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        kind: JoinKind,
        /// Equi-join key pairs: (left column index, right column index).
        on: Vec<(usize, usize)>,
        /// Residual non-equi condition over the combined schema.
        filter: Option<PhysExpr>,
        schema: Arc<Schema>,
    },
    Aggregate {
        input: Box<LogicalPlan>,
        group: Vec<PhysExpr>,
        aggs: Vec<AggCall>,
        schema: Arc<Schema>,
    },
    Sort {
        input: Box<LogicalPlan>,
        /// (key expression over input schema, ascending?)
        keys: Vec<(PhysExpr, bool)>,
    },
    Limit {
        input: Box<LogicalPlan>,
        n: u64,
    },
    UnionAll {
        inputs: Vec<LogicalPlan>,
        schema: Arc<Schema>,
    },
    Distinct {
        input: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// Output schema of the plan node.
    pub fn schema(&self) -> Arc<Schema> {
        match self {
            LogicalPlan::Scan { schema, projection, .. } => match projection {
                Some(p) => schema.project(p),
                None => schema.clone(),
            },
            LogicalPlan::Values { schema, .. } => schema.clone(),
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Project { schema, .. } => schema.clone(),
            LogicalPlan::Join { schema, .. } => schema.clone(),
            LogicalPlan::Aggregate { schema, .. } => schema.clone(),
            LogicalPlan::Sort { input, .. } => input.schema(),
            LogicalPlan::Limit { input, .. } => input.schema(),
            LogicalPlan::UnionAll { schema, .. } => schema.clone(),
            LogicalPlan::Distinct { input } => input.schema(),
        }
    }

    /// Pretty-prints the plan tree (for EXPLAIN-style debugging and tests).
    pub fn display_indent(&self) -> String {
        fn rec(plan: &LogicalPlan, indent: usize, out: &mut String) {
            let pad = "  ".repeat(indent);
            match plan {
                LogicalPlan::Scan { table, projection, predicates, .. } => {
                    out.push_str(&format!(
                        "{pad}Scan {table} proj={projection:?} preds={}\n",
                        predicates.len()
                    ));
                }
                LogicalPlan::Values { rows, .. } => {
                    out.push_str(&format!("{pad}Values rows={}\n", rows.len()));
                }
                LogicalPlan::Filter { input, predicate } => {
                    out.push_str(&format!("{pad}Filter {predicate:?}\n"));
                    rec(input, indent + 1, out);
                }
                LogicalPlan::Project { input, exprs, .. } => {
                    out.push_str(&format!("{pad}Project {exprs:?}\n"));
                    rec(input, indent + 1, out);
                }
                LogicalPlan::Join { left, right, kind, on, filter, .. } => {
                    out.push_str(&format!("{pad}Join {kind:?} on={on:?} filter={filter:?}\n"));
                    rec(left, indent + 1, out);
                    rec(right, indent + 1, out);
                }
                LogicalPlan::Aggregate { input, group, aggs, .. } => {
                    out.push_str(&format!(
                        "{pad}Aggregate groups={} aggs={}\n",
                        group.len(),
                        aggs.len()
                    ));
                    rec(input, indent + 1, out);
                }
                LogicalPlan::Sort { input, keys } => {
                    out.push_str(&format!("{pad}Sort keys={}\n", keys.len()));
                    rec(input, indent + 1, out);
                }
                LogicalPlan::Limit { input, n } => {
                    out.push_str(&format!("{pad}Limit {n}\n"));
                    rec(input, indent + 1, out);
                }
                LogicalPlan::UnionAll { inputs, .. } => {
                    out.push_str(&format!("{pad}UnionAll inputs={}\n", inputs.len()));
                    for i in inputs {
                        rec(i, indent + 1, out);
                    }
                }
                LogicalPlan::Distinct { input } => {
                    out.push_str(&format!("{pad}Distinct\n"));
                    rec(input, indent + 1, out);
                }
            }
        }
        let mut s = String::new();
        rec(self, 0, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vertexica_storage::{DataType, Field};

    #[test]
    fn scan_schema_respects_projection() {
        let schema =
            Schema::new(vec![Field::new("a", DataType::Int), Field::new("b", DataType::Str)]);
        let scan = LogicalPlan::Scan {
            table: "t".into(),
            schema: schema.clone(),
            projection: Some(vec![1]),
            predicates: vec![],
        };
        assert_eq!(scan.schema().fields[0].name, "b");
        let scan_all =
            LogicalPlan::Scan { table: "t".into(), schema, projection: None, predicates: vec![] };
        assert_eq!(scan_all.schema().len(), 2);
    }

    #[test]
    fn display_shows_tree() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Scan {
                table: "t".into(),
                schema,
                projection: None,
                predicates: vec![],
            }),
            n: 10,
        };
        let s = plan.display_indent();
        assert!(s.contains("Limit 10"));
        assert!(s.contains("Scan t"));
    }

    #[test]
    fn agg_func_parse() {
        assert_eq!(AggFunc::parse("sum"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::parse("nope"), None);
    }
}
