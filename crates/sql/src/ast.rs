//! Abstract syntax tree for the SQL dialect.

use vertexica_storage::{DataType, Value};

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
        /// `ORDER BY` clause naming the ROS sort key columns.
        order_by: Vec<String>,
        if_not_exists: bool,
    },
    CreateTableAs {
        name: String,
        query: Box<Query>,
        if_not_exists: bool,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    Insert {
        table: String,
        /// Optional explicit column list.
        columns: Vec<String>,
        source: InsertSource,
    },
    Update {
        table: String,
        assignments: Vec<(String, Expr)>,
        filter: Option<Expr>,
    },
    Delete {
        table: String,
        filter: Option<Expr>,
    },
    Query(Box<Query>),
}

/// Source of rows for INSERT.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Query(Box<Query>),
}

/// A column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub dtype: DataType,
    pub nullable: bool,
}

/// A full query: optional CTEs, a set-expression body, ordering and limit.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub ctes: Vec<(String, Query)>,
    pub body: SetExpr,
    pub order_by: Vec<OrderByExpr>,
    pub limit: Option<u64>,
}

/// Query body: a SELECT or a UNION ALL chain.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    Select(Box<Select>),
    UnionAll(Box<SetExpr>, Box<SetExpr>),
}

/// A SELECT block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Option<TableRef>,
    pub filter: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

/// An item in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// expression with optional alias
    Expr { expr: Expr, alias: Option<String> },
}

/// A table reference in FROM.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    Named {
        name: String,
        alias: Option<String>,
    },
    Subquery {
        query: Box<Query>,
        alias: String,
    },
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        /// `ON` condition; `None` only for CROSS joins.
        on: Option<Expr>,
    },
}

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Cross,
}

/// A sort key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByExpr {
    pub expr: Expr,
    pub asc: bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Plus,
    Minus,
    Multiply,
    Divide,
    Modulo,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinaryOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// Scalar expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Possibly-qualified column reference: `(qualifier, name)`.
    Column(Option<String>, String),
    Literal(Value),
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    Case {
        when_then: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    Cast {
        expr: Box<Expr>,
        dtype: DataType,
    },
    /// Function call: scalar functions and aggregate functions share this
    /// node; the planner distinguishes them by name.
    Function {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
    },
    /// `COUNT(*)`.
    CountStar,
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column(None, name.to_string())
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
    }

    /// True if this expression contains an aggregate function call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::CountStar => true,
            Expr::Function { name, args, .. } => {
                crate::functions::is_aggregate_function(name)
                    || args.iter().any(|a| a.contains_aggregate())
            }
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(|e| e.contains_aggregate())
            }
            Expr::Between { expr, low, high, .. } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::Case { when_then, else_expr } => {
                when_then.iter().any(|(w, t)| w.contains_aggregate() || t.contains_aggregate())
                    || else_expr.as_ref().is_some_and(|e| e.contains_aggregate())
            }
            Expr::Cast { expr, .. } => expr.contains_aggregate(),
            Expr::Column(..) | Expr::Literal(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_equality() {
        let a = Expr::binary(Expr::col("x"), BinaryOp::Plus, Expr::lit(1i64));
        let b = Expr::binary(Expr::col("x"), BinaryOp::Plus, Expr::lit(1i64));
        let c = Expr::binary(Expr::col("y"), BinaryOp::Plus, Expr::lit(1i64));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn contains_aggregate_detects_nested() {
        let agg =
            Expr::Function { name: "sum".into(), args: vec![Expr::col("x")], distinct: false };
        let wrapped = Expr::binary(agg, BinaryOp::Divide, Expr::lit(2i64));
        assert!(wrapped.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
        assert!(Expr::CountStar.contains_aggregate());
    }

    #[test]
    fn comparison_classification() {
        assert!(BinaryOp::Eq.is_comparison());
        assert!(!BinaryOp::Plus.is_comparison());
    }
}
