//! Vectorized physical execution of logical plans.

use std::collections::hash_map::Entry;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use vertexica_common::FxHashMap;
use vertexica_storage::{
    Bitmap, Catalog, Column, ColumnBuilder, DataType, RecordBatch, Schema, Value,
};

use crate::ast::JoinKind;
use crate::error::{SqlError, SqlResult};
use crate::expr::PhysExpr;
use crate::logical::{AggCall, AggFunc, LogicalPlan};

/// Execution context (catalog access).
pub struct ExecContext<'a> {
    pub catalog: &'a Catalog,
}

/// Executes a logical plan to completion.
pub fn execute(plan: &LogicalPlan, ctx: &ExecContext<'_>) -> SqlResult<Vec<RecordBatch>> {
    match plan {
        LogicalPlan::Scan { table, projection, predicates, .. } => {
            // Snapshot a cursor under the read lock, then decode with the
            // lock released — a long scan must not block writers.
            let mut cursor = {
                let t = ctx.catalog.get(table)?;
                let guard = t.read();
                guard.scan_cursor(projection.as_deref(), predicates)?
            };
            let mut out = Vec::new();
            while let Some(batch) = cursor.next_batch()? {
                out.push(batch);
            }
            Ok(out)
        }
        LogicalPlan::Values { schema, rows } => {
            Ok(vec![RecordBatch::from_rows(schema.clone(), rows)?])
        }
        LogicalPlan::Filter { input, predicate } => {
            let batches = execute(input, ctx)?;
            let mut out = Vec::with_capacity(batches.len());
            for batch in batches {
                if batch.num_rows() == 0 {
                    continue;
                }
                let sel = predicate.eval_predicate(&batch)?;
                if sel.all() {
                    out.push(batch);
                } else if sel.any() {
                    out.push(batch.filter(&sel)?);
                }
            }
            Ok(out)
        }
        LogicalPlan::Project { input, exprs, schema } => {
            // Late materialization for filter → project: evaluate the
            // predicate on the undisturbed batch, then gather only the
            // columns the projection actually reads through the selection
            // vector. Unreferenced columns never pay the row-shuffle.
            if let LogicalPlan::Filter { input: finput, predicate } = input.as_ref() {
                let batches = execute(finput, ctx)?;
                let mut referenced: Vec<usize> = Vec::new();
                for e in exprs {
                    crate::optimizer::collect_columns(e, &mut referenced);
                }
                referenced.sort_unstable();
                referenced.dedup();
                let mut out = Vec::with_capacity(batches.len().max(1));
                for batch in &batches {
                    if batch.num_rows() == 0 {
                        continue;
                    }
                    let sel = predicate.eval_predicate(batch)?;
                    if !sel.any() {
                        continue;
                    }
                    let selected = if sel.all() {
                        batch.clone()
                    } else {
                        gather_selected(batch, &sel, &referenced)?
                    };
                    out.push(project_batch(&selected, exprs, schema)?);
                }
                if out.is_empty() {
                    out.push(RecordBatch::empty(schema.clone()));
                }
                return Ok(out);
            }
            let batches = execute(input, ctx)?;
            let mut out = Vec::with_capacity(batches.len().max(1));
            for batch in &batches {
                out.push(project_batch(batch, exprs, schema)?);
            }
            if out.is_empty() {
                out.push(RecordBatch::empty(schema.clone()));
            }
            Ok(out)
        }
        LogicalPlan::Join { left, right, kind, on, filter, schema } => {
            let lb = execute(left, ctx)?;
            let rb = execute(right, ctx)?;
            let lbatch = RecordBatch::concat(left.schema(), &lb)?;
            let rbatch = RecordBatch::concat(right.schema(), &rb)?;
            let joined = match kind {
                JoinKind::Cross => cross_join(&lbatch, &rbatch, schema)?,
                JoinKind::Inner => {
                    hash_join(&lbatch, &rbatch, on, filter.as_ref(), schema, false, false)?
                }
                JoinKind::Left => {
                    hash_join(&lbatch, &rbatch, on, filter.as_ref(), schema, true, false)?
                }
                JoinKind::Right => {
                    hash_join(&lbatch, &rbatch, on, filter.as_ref(), schema, true, true)?
                }
            };
            Ok(vec![joined])
        }
        LogicalPlan::Aggregate { input, group, aggs, schema } => {
            let batches = execute(input, ctx)?;
            hash_aggregate(&batches, input.schema(), group, aggs, schema)
        }
        LogicalPlan::Sort { input, keys } => {
            let batches = execute(input, ctx)?;
            let merged = RecordBatch::concat(input.schema(), &batches)?;
            if merged.num_rows() == 0 {
                return Ok(vec![merged]);
            }
            let mut key_cols = Vec::with_capacity(keys.len());
            for (e, asc) in keys {
                key_cols.push((e.eval(&merged)?, *asc));
            }
            let mut indices: Vec<usize> = (0..merged.num_rows()).collect();
            indices.sort_by(|&a, &b| {
                for (col, asc) in &key_cols {
                    let ord = col.value(a).total_cmp(&col.value(b));
                    if !ord.is_eq() {
                        return if *asc { ord } else { ord.reverse() };
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(vec![merged.take(&indices)?])
        }
        LogicalPlan::Limit { input, n } => {
            let batches = execute(input, ctx)?;
            let mut remaining = *n as usize;
            let mut out = Vec::new();
            for batch in batches {
                if remaining == 0 {
                    break;
                }
                if batch.num_rows() <= remaining {
                    remaining -= batch.num_rows();
                    out.push(batch);
                } else {
                    let idx: Vec<usize> = (0..remaining).collect();
                    out.push(batch.take(&idx)?);
                    remaining = 0;
                }
            }
            Ok(out)
        }
        LogicalPlan::UnionAll { inputs, schema } => {
            let mut out = Vec::new();
            for input in inputs {
                for batch in execute(input, ctx)? {
                    // Re-stamp with the union schema (names/nullability may
                    // differ per branch; types are already harmonized).
                    out.push(RecordBatch::new(schema.clone(), batch.columns().to_vec())?);
                }
            }
            Ok(out)
        }
        LogicalPlan::Distinct { input } => {
            let batches = execute(input, ctx)?;
            let merged = RecordBatch::concat(input.schema(), &batches)?;
            let mut seen: FxHashMap<GroupKey, ()> = FxHashMap::default();
            let mut keep = Vec::new();
            for i in 0..merged.num_rows() {
                let key = GroupKey(merged.row(i));
                if let Entry::Vacant(e) = seen.entry(key) {
                    e.insert(());
                    keep.push(i);
                }
            }
            Ok(vec![merged.take(&keep)?])
        }
    }
}

/// Gathers only `referenced` (sorted, deduped) columns through the selection
/// vector; every other slot gets a same-length placeholder of the right
/// dtype. The fused projection never reads the placeholders — they exist
/// only so column indices keep lining up with the input schema.
fn gather_selected(
    batch: &RecordBatch,
    sel: &vertexica_storage::Bitmap,
    referenced: &[usize],
) -> SqlResult<RecordBatch> {
    use vertexica_storage::ColumnData;
    let k = sel.count_ones();
    let mut cols = Vec::with_capacity(batch.num_columns());
    for i in 0..batch.num_columns() {
        if referenced.binary_search(&i).is_ok() {
            cols.push(batch.column(i).filter(sel));
        } else {
            let data = match batch.schema().fields[i].dtype {
                DataType::Bool => ColumnData::Bool(vec![false; k]),
                DataType::Int => ColumnData::Int(vec![0; k]),
                DataType::Float => ColumnData::Float(vec![0.0; k]),
                DataType::Str => ColumnData::Str(vec![String::new(); k]),
                DataType::Blob => ColumnData::Blob(vec![Vec::new(); k]),
            };
            cols.push(Column::new(data, None));
        }
    }
    RecordBatch::new(batch.schema().clone(), cols).map_err(Into::into)
}

/// Evaluates projection expressions over a batch, coercing to the output
/// schema where needed.
fn project_batch(
    batch: &RecordBatch,
    exprs: &[PhysExpr],
    schema: &Arc<Schema>,
) -> SqlResult<RecordBatch> {
    let mut cols = Vec::with_capacity(exprs.len());
    for (e, f) in exprs.iter().zip(&schema.fields) {
        let c = e.eval(batch)?;
        cols.push(coerce_column(c, f.dtype)?);
    }
    RecordBatch::new(schema.clone(), cols).map_err(Into::into)
}

/// Coerces a column to a target type (no-op when already matching).
pub fn coerce_column(col: Column, dtype: DataType) -> SqlResult<Column> {
    if col.dtype() == dtype {
        return Ok(col);
    }
    let mut b = ColumnBuilder::with_capacity(dtype, col.len());
    for i in 0..col.len() {
        b.push(col.value(i)).map_err(SqlError::from)?;
    }
    Ok(b.finish())
}

/// A hashable row key for grouping/distinct (floats hash by bits, NULLs are
/// equal to each other — SQL GROUP BY semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupKey(pub Vec<Value>);

impl Eq for GroupKey {}

impl Hash for GroupKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for v in &self.0 {
            match v {
                Value::Null => 0u8.hash(state),
                Value::Bool(b) => {
                    1u8.hash(state);
                    b.hash(state);
                }
                Value::Int(i) => {
                    2u8.hash(state);
                    i.hash(state);
                }
                Value::Float(f) => {
                    3u8.hash(state);
                    // Canonicalize NaN so all NaNs group together.
                    let bits = if f.is_nan() { f64::NAN.to_bits() } else { f.to_bits() };
                    bits.hash(state);
                }
                Value::Str(s) => {
                    4u8.hash(state);
                    s.hash(state);
                }
                Value::Blob(b) => {
                    5u8.hash(state);
                    b.hash(state);
                }
            }
        }
    }
}

// ---- joins ----

/// A hashed equi-join **build side**, reusable across any number of probe
/// batches — the engine's streaming-join primitive. The build batch is
/// hashed exactly once; probes then stream through
/// [`JoinBuild::probe_pairs`] / [`JoinBuild::probe_matches`] one batch at a
/// time, so a pull-based scan can feed the probe side without ever
/// materializing it (see `Database::stream_hash_join`). The eager
/// [`LogicalPlan::Join`] executor is a single-probe-batch special case of
/// the same kernels.
///
/// Three key strategies, chosen by the build keys' **declared types** (not
/// by the accident of whether this batch happens to contain a NULL):
///
/// * single BIGINT key — `FxHashMap<i64, _>`, the vertex-id join shape;
/// * composite `(BIGINT, BIGINT)` key — edge-identity joins;
/// * generic dynamic-`Value` keys with scratch-buffer reuse.
///
/// **NULL keys never match, on every strategy** (SQL equi-join semantics):
/// build rows with a NULL key column are never inserted, and probe rows
/// with a NULL key match nothing (null-extending under outer joins). The
/// typed fast paths check per-row validity — a nullable BIGINT key column
/// stays on the fast path instead of silently matching NULL = NULL or
/// falling back to the slow generic path.
pub struct JoinBuild {
    batch: RecordBatch,
    keys: Vec<usize>,
    map: KeyMap,
}

enum KeyMap {
    /// Single BIGINT key (vertex-id joins).
    Int(FxHashMap<i64, Vec<usize>>),
    /// Composite two-column BIGINT key ((src, dst) edge identity).
    Int2(FxHashMap<(i64, i64), Vec<usize>>),
    /// Dynamic-value keys, scratch-buffer reuse: a fresh `Vec<Value>` is
    /// only allocated when a *distinct* build key enters the table.
    Generic(FxHashMap<GroupKey, Vec<usize>>),
}

/// True when every named key column of `batch` is BIGINT — the typed
/// fast-path shape. Nullability does not matter: the kernels skip NULL keys
/// per row.
fn int_typed(batch: &RecordBatch, keys: &[usize]) -> bool {
    keys.iter().all(|&c| batch.column(c).dtype() == DataType::Int)
}

/// `(raw data, validity)` per BIGINT key column.
fn int_key_data<'a>(
    batch: &'a RecordBatch,
    keys: &[usize],
) -> Option<Vec<(&'a [i64], Option<&'a Bitmap>)>> {
    keys.iter()
        .map(|&c| {
            let col = batch.column(c);
            col.as_int().map(|v| (v, col.validity()))
        })
        .collect()
}

#[inline]
fn row_valid(validity: Option<&Bitmap>, i: usize) -> bool {
    validity.is_none_or(|b| b.get(i))
}

impl JoinBuild {
    /// Hashes `batch` on `key_columns`, picking the typed fast path when
    /// every key column is BIGINT.
    pub fn new(batch: RecordBatch, key_columns: Vec<usize>) -> Self {
        let force_generic = !(int_typed(&batch, &key_columns) && key_columns.len() <= 2);
        Self::with_strategy(batch, key_columns, force_generic)
    }

    /// Like [`JoinBuild::new`] but lets the caller force the generic key
    /// strategy — needed when the *probe* side's key types are known not to
    /// be BIGINT, so typed build keys could never be compared against them.
    fn with_strategy(batch: RecordBatch, key_columns: Vec<usize>, force_generic: bool) -> Self {
        let n = batch.num_rows();
        let map = if !force_generic && key_columns.len() == 1 {
            let cols = int_key_data(&batch, &key_columns).expect("int-typed key checked");
            let (k0, v0) = cols[0];
            let mut table: FxHashMap<i64, Vec<usize>> = FxHashMap::default();
            table.reserve(n);
            for (i, &k) in k0.iter().enumerate() {
                if row_valid(v0, i) {
                    table.entry(k).or_default().push(i);
                }
            }
            KeyMap::Int(table)
        } else if !force_generic && key_columns.len() == 2 {
            let cols = int_key_data(&batch, &key_columns).expect("int-typed keys checked");
            let ((k0, v0), (k1, v1)) = (cols[0], cols[1]);
            let mut table: FxHashMap<(i64, i64), Vec<usize>> = FxHashMap::default();
            table.reserve(n);
            for i in 0..n {
                if row_valid(v0, i) && row_valid(v1, i) {
                    table.entry((k0[i], k1[i])).or_default().push(i);
                }
            }
            KeyMap::Int2(table)
        } else {
            let mut table: FxHashMap<GroupKey, Vec<usize>> = FxHashMap::default();
            let mut scratch: Vec<Value> = Vec::with_capacity(key_columns.len());
            for i in 0..n {
                scratch.clear();
                scratch.extend(key_columns.iter().map(|&c| batch.column(c).value(i)));
                if scratch.iter().any(|v| v.is_null()) {
                    continue; // NULL keys never match.
                }
                let key = GroupKey(std::mem::take(&mut scratch));
                match table.get_mut(&key) {
                    Some(rows) => {
                        rows.push(i);
                        scratch = key.0; // recover the buffer
                    }
                    None => {
                        table.insert(key, vec![i]);
                        scratch = Vec::with_capacity(key_columns.len());
                    }
                }
            }
            KeyMap::Generic(table)
        };
        JoinBuild { batch, keys: key_columns, map }
    }

    /// The hashed build-side batch.
    pub fn batch(&self) -> &RecordBatch {
        &self.batch
    }

    /// The build-side key columns this table was hashed on.
    pub fn key_columns(&self) -> &[usize] {
        &self.keys
    }

    /// Rows in the build side (including NULL-key rows, which match nothing).
    pub fn num_rows(&self) -> usize {
        self.batch.num_rows()
    }

    /// Streams every probe row's build-side match list to `f`. NULL probe
    /// keys (and unmatched keys) yield an empty slice.
    fn for_each_probe_row(
        &self,
        probe: &RecordBatch,
        probe_keys: &[usize],
        mut f: impl FnMut(usize, &[usize]),
    ) -> SqlResult<()> {
        if probe_keys.len() != self.keys.len() {
            return Err(SqlError::Execution(format!(
                "join probe key arity {} does not match build arity {}",
                probe_keys.len(),
                self.keys.len()
            )));
        }
        let n = probe.num_rows();
        match &self.map {
            KeyMap::Int(table) => {
                let cols = int_key_data(probe, probe_keys).ok_or_else(|| {
                    SqlError::Execution("BIGINT-keyed join probed with non-BIGINT key".into())
                })?;
                let (k0, v0) = cols[0];
                for (i, k) in k0.iter().enumerate() {
                    let matches: &[usize] = if row_valid(v0, i) {
                        table.get(k).map(Vec::as_slice).unwrap_or(&[])
                    } else {
                        &[]
                    };
                    f(i, matches);
                }
            }
            KeyMap::Int2(table) => {
                let cols = int_key_data(probe, probe_keys).ok_or_else(|| {
                    SqlError::Execution("BIGINT-keyed join probed with non-BIGINT key".into())
                })?;
                let ((k0, v0), (k1, v1)) = (cols[0], cols[1]);
                for i in 0..n {
                    let matches: &[usize] = if row_valid(v0, i) && row_valid(v1, i) {
                        table.get(&(k0[i], k1[i])).map(Vec::as_slice).unwrap_or(&[])
                    } else {
                        &[]
                    };
                    f(i, matches);
                }
            }
            KeyMap::Generic(table) => {
                let mut scratch: Vec<Value> = Vec::with_capacity(probe_keys.len());
                for i in 0..n {
                    scratch.clear();
                    scratch.extend(probe_keys.iter().map(|&c| probe.column(c).value(i)));
                    if scratch.iter().any(|v| v.is_null()) {
                        f(i, &[]);
                        continue;
                    }
                    let key = GroupKey(std::mem::take(&mut scratch));
                    f(i, table.get(&key).map(Vec::as_slice).unwrap_or(&[]));
                    scratch = key.0; // probe lookups never surrender the buffer
                }
            }
        }
        Ok(())
    }

    /// Probes one batch, producing `(probe_row, Some(build_row))` per match;
    /// with `outer`, unmatched (or NULL-key) probe rows yield
    /// `(probe_row, None)` exactly once.
    pub fn probe_pairs(
        &self,
        probe: &RecordBatch,
        probe_keys: &[usize],
        outer: bool,
    ) -> SqlResult<Vec<(usize, Option<usize>)>> {
        let mut pairs: Vec<(usize, Option<usize>)> = Vec::with_capacity(probe.num_rows());
        self.for_each_probe_row(probe, probe_keys, |i, matches| {
            if matches.is_empty() {
                if outer {
                    pairs.push((i, None));
                }
            } else {
                pairs.extend(matches.iter().map(|&m| (i, Some(m))));
            }
        })?;
        Ok(pairs)
    }

    /// Probes one batch, returning each probe row's build-row match list
    /// (empty = no match or NULL key) — the shape multi-build compositions
    /// like the 3-way-join input re-shape consume.
    pub fn probe_matches(
        &self,
        probe: &RecordBatch,
        probe_keys: &[usize],
    ) -> SqlResult<Vec<Vec<usize>>> {
        let mut out: Vec<Vec<usize>> = Vec::with_capacity(probe.num_rows());
        self.for_each_probe_row(probe, probe_keys, |_, matches| out.push(matches.to_vec()))?;
        Ok(out)
    }
}

/// Materializes one streaming-join step: probes `build` with `probe` and
/// builds the joined batch (probe columns, then build columns) under
/// `schema`. Used by `Database::stream_hash_join`; one probe batch in, one
/// joined batch out.
pub(crate) fn join_probe_batch(
    probe: &RecordBatch,
    build: &JoinBuild,
    probe_keys: &[usize],
    outer: bool,
    schema: &Arc<Schema>,
) -> SqlResult<RecordBatch> {
    let pairs = build.probe_pairs(probe, probe_keys, outer)?;
    let lr_pairs: Vec<(Option<usize>, Option<usize>)> =
        pairs.into_iter().map(|(p, b)| (Some(p), b)).collect();
    materialize_join_lr(probe, build.batch(), &lr_pairs, None, schema, outer, true)
}

#[allow(clippy::too_many_arguments)]
fn hash_join(
    left: &RecordBatch,
    right: &RecordBatch,
    on: &[(usize, usize)],
    residual: Option<&PhysExpr>,
    schema: &Arc<Schema>,
    outer: bool,
    flipped: bool, // true = RIGHT join (preserve right side)
) -> SqlResult<RecordBatch> {
    if on.is_empty() {
        // No equi keys: degenerate to a filtered cross product.
        let crossed = cross_join_indices(left.num_rows(), right.num_rows());
        return materialize_join(left, right, &crossed, residual, schema, outer, flipped);
    }

    // Build side: the non-preserved side for outer joins.
    let (probe, build, probe_keys, build_keys, probe_is_left) = if flipped {
        let pk: Vec<usize> = on.iter().map(|(_, r)| *r).collect();
        let bk: Vec<usize> = on.iter().map(|(l, _)| *l).collect();
        (right, left, pk, bk, false)
    } else {
        let pk: Vec<usize> = on.iter().map(|(l, _)| *l).collect();
        let bk: Vec<usize> = on.iter().map(|(_, r)| *r).collect();
        (left, right, pk, bk, true)
    };

    // The typed fast paths require BIGINT keys on *both* sides (NULLs are
    // fine — the kernels skip them per row); otherwise hash dynamic values.
    let force_generic =
        !(int_typed(probe, &probe_keys) && int_typed(build, &build_keys) && probe_keys.len() <= 2);
    let hashed = JoinBuild::with_strategy(build.clone(), build_keys, force_generic);
    let pairs = hashed.probe_pairs(probe, &probe_keys, outer)?;

    // Map probe/build pairs back to (left, right) order.
    let lr_pairs: Vec<(Option<usize>, Option<usize>)> = pairs
        .into_iter()
        .map(|(p, b)| if probe_is_left { (Some(p), b) } else { (b, Some(p)) })
        .collect();
    materialize_join_lr(left, right, &lr_pairs, residual, schema, outer, probe_is_left)
}

fn cross_join_indices(n_left: usize, n_right: usize) -> Vec<(Option<usize>, Option<usize>)> {
    let mut out = Vec::with_capacity(n_left * n_right);
    for l in 0..n_left {
        for r in 0..n_right {
            out.push((Some(l), Some(r)));
        }
    }
    out
}

fn cross_join(
    left: &RecordBatch,
    right: &RecordBatch,
    schema: &Arc<Schema>,
) -> SqlResult<RecordBatch> {
    let pairs = cross_join_indices(left.num_rows(), right.num_rows());
    materialize_join_lr(left, right, &pairs, None, schema, false, true)
}

fn materialize_join(
    left: &RecordBatch,
    right: &RecordBatch,
    pairs: &[(Option<usize>, Option<usize>)],
    residual: Option<&PhysExpr>,
    schema: &Arc<Schema>,
    outer: bool,
    flipped: bool,
) -> SqlResult<RecordBatch> {
    materialize_join_lr(left, right, pairs, residual, schema, outer, !flipped)
}

/// Builds the output batch from matched (left,right) row pairs, applying the
/// residual ON filter. For outer joins, preserved-side rows whose matches all
/// fail the residual are re-emitted null-extended.
fn materialize_join_lr(
    left: &RecordBatch,
    right: &RecordBatch,
    pairs: &[(Option<usize>, Option<usize>)],
    residual: Option<&PhysExpr>,
    schema: &Arc<Schema>,
    outer: bool,
    left_preserved: bool,
) -> SqlResult<RecordBatch> {
    let nl = left.num_columns();
    let build_batch = |pairs: &[(Option<usize>, Option<usize>)]| -> SqlResult<RecordBatch> {
        let mut cols = Vec::with_capacity(schema.len());
        for (ci, f) in schema.fields.iter().enumerate() {
            let (src, side_left) =
                if ci < nl { (left.column(ci), true) } else { (right.column(ci - nl), false) };
            let pick = |pair: &(Option<usize>, Option<usize>)| {
                if side_left {
                    pair.0
                } else {
                    pair.1
                }
            };
            let mut b = ColumnBuilder::with_capacity(f.dtype, pairs.len());
            // Typed fast paths for the hot column shapes (ids, weights).
            if src.validity().is_none() && f.dtype == src.dtype() {
                if let Some(vals) = src.as_int() {
                    for pair in pairs {
                        match pick(pair) {
                            Some(i) => b.push_int(vals[i]),
                            None => b.push_null(),
                        }
                    }
                    cols.push(b.finish());
                    continue;
                }
                if let Some(vals) = src.as_float() {
                    for pair in pairs {
                        match pick(pair) {
                            Some(i) => b.push_float(vals[i]),
                            None => b.push_null(),
                        }
                    }
                    cols.push(b.finish());
                    continue;
                }
            }
            for pair in pairs {
                match pick(pair) {
                    Some(i) => b.push(src.value(i)).map_err(SqlError::from)?,
                    None => b.push_null(),
                }
            }
            cols.push(b.finish());
        }
        RecordBatch::new(schema.clone(), cols).map_err(Into::into)
    };

    let Some(residual) = residual else {
        return build_batch(pairs);
    };

    // Evaluate the residual on the candidate rows.
    let candidate = build_batch(pairs)?;
    let mask = residual.eval_predicate(&candidate)?;
    if !outer {
        return candidate.filter(&mask).map_err(Into::into);
    }

    // Outer join: keep passing pairs; track which preserved rows survive.
    let mut kept: Vec<(Option<usize>, Option<usize>)> = Vec::new();
    let mut survived: std::collections::HashSet<usize> = std::collections::HashSet::new();
    for (idx, pair) in pairs.iter().enumerate() {
        let preserved_idx = if left_preserved { pair.0 } else { pair.1 };
        if mask.get(idx) {
            kept.push(*pair);
            if let Some(i) = preserved_idx {
                survived.insert(i);
            }
        }
    }
    // Preserved rows that matched on keys but failed every residual check —
    // and rows that were already unmatched — must appear null-extended once.
    let mut emitted_null: std::collections::HashSet<usize> = std::collections::HashSet::new();
    for pair in pairs {
        let (preserved_idx, other) =
            if left_preserved { (pair.0, pair.1) } else { (pair.1, pair.0) };
        let Some(i) = preserved_idx else { continue };
        let unmatched_pair = other.is_none();
        if (unmatched_pair || !survived.contains(&i)) && emitted_null.insert(i) {
            kept.push(if left_preserved { (Some(i), None) } else { (None, Some(i)) });
        }
    }
    build_batch(&kept)
}

// ---- aggregation ----

enum Acc {
    Count(i64),
    CountDistinct(std::collections::HashSet<GroupKey>),
    SumInt { sum: i64, any: bool },
    SumFloat { sum: f64, any: bool },
    SumDistinct { seen: std::collections::HashSet<GroupKey>, is_float: bool },
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: i64 },
}

impl Acc {
    fn new(call: &AggCall, arg_type: Option<DataType>) -> Acc {
        match call.func {
            AggFunc::CountStar => Acc::Count(0),
            AggFunc::Count => {
                if call.distinct {
                    Acc::CountDistinct(Default::default())
                } else {
                    Acc::Count(0)
                }
            }
            AggFunc::Sum => {
                if call.distinct {
                    Acc::SumDistinct {
                        seen: Default::default(),
                        is_float: arg_type == Some(DataType::Float),
                    }
                } else if arg_type == Some(DataType::Float) {
                    Acc::SumFloat { sum: 0.0, any: false }
                } else {
                    Acc::SumInt { sum: 0, any: false }
                }
            }
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, v: &Value) -> SqlResult<()> {
        match self {
            Acc::Count(n) => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            Acc::CountDistinct(set) => {
                if !v.is_null() {
                    set.insert(GroupKey(vec![v.clone()]));
                }
            }
            Acc::SumInt { sum, any } => {
                if let Value::Int(x) = v {
                    *sum = sum.wrapping_add(*x);
                    *any = true;
                } else if !v.is_null() {
                    return Err(SqlError::Execution(format!("SUM over non-numeric {v}")));
                }
            }
            Acc::SumFloat { sum, any } => {
                if let Some(x) = v.as_float() {
                    *sum += x;
                    *any = true;
                } else if !v.is_null() {
                    return Err(SqlError::Execution(format!("SUM over non-numeric {v}")));
                }
            }
            Acc::SumDistinct { seen, .. } => {
                if !v.is_null() {
                    seen.insert(GroupKey(vec![v.clone()]));
                }
            }
            Acc::Min(cur) => {
                if !v.is_null() && cur.as_ref().is_none_or(|c| v.total_cmp(c).is_lt()) {
                    *cur = Some(v.clone());
                }
            }
            Acc::Max(cur) => {
                if !v.is_null() && cur.as_ref().is_none_or(|c| v.total_cmp(c).is_gt()) {
                    *cur = Some(v.clone());
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(x) = v.as_float() {
                    *sum += x;
                    *n += 1;
                } else if !v.is_null() {
                    return Err(SqlError::Execution(format!("AVG over non-numeric {v}")));
                }
            }
        }
        Ok(())
    }

    fn update_count_star(&mut self) {
        if let Acc::Count(n) = self {
            *n += 1;
        }
    }

    fn finish(self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(n),
            Acc::CountDistinct(set) => Value::Int(set.len() as i64),
            Acc::SumInt { sum, any } => {
                if any {
                    Value::Int(sum)
                } else {
                    Value::Null
                }
            }
            Acc::SumFloat { sum, any } => {
                if any {
                    Value::Float(sum)
                } else {
                    Value::Null
                }
            }
            Acc::SumDistinct { seen, is_float } => {
                if seen.is_empty() {
                    Value::Null
                } else if is_float {
                    Value::Float(seen.iter().map(|k| k.0[0].as_float().unwrap_or(0.0)).sum())
                } else {
                    Value::Int(seen.iter().map(|k| k.0[0].as_int().unwrap_or(0)).sum())
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
        }
    }
}

/// One input batch with its pre-evaluated group-key and aggregate-argument
/// columns.
type EvaluatedBatch<'a> = (&'a RecordBatch, Vec<Column>, Vec<Option<Column>>);

fn hash_aggregate(
    batches: &[RecordBatch],
    input_schema: Arc<Schema>,
    group: &[PhysExpr],
    aggs: &[AggCall],
    out_schema: &Arc<Schema>,
) -> SqlResult<Vec<RecordBatch>> {
    let arg_types: Vec<Option<DataType>> = aggs
        .iter()
        .map(|a| a.arg.as_ref().map(|e| e.data_type(&input_schema)).transpose())
        .collect::<SqlResult<Vec<_>>>()?;
    let new_accs =
        || -> Vec<Acc> { aggs.iter().zip(&arg_types).map(|(a, t)| Acc::new(a, *t)).collect() };

    // Evaluate group keys and aggregate arguments for every batch up front so
    // the key-path decision (typed vs generic) is made once, globally.
    let mut evaluated: Vec<EvaluatedBatch<'_>> = Vec::new();
    for batch in batches {
        if batch.num_rows() == 0 {
            continue;
        }
        let group_cols: Vec<Column> =
            group.iter().map(|e| e.eval(batch)).collect::<SqlResult<Vec<_>>>()?;
        let arg_cols: Vec<Option<Column>> = aggs
            .iter()
            .map(|a| a.arg.as_ref().map(|e| e.eval(batch)).transpose())
            .collect::<SqlResult<Vec<_>>>()?;
        evaluated.push((batch, group_cols, arg_cols));
    }

    let mut order: Vec<GroupKey> = Vec::new();
    let mut acc_table: Vec<Vec<Acc>> = Vec::new();

    // Fast path for a single BIGINT group key with no nulls anywhere (the
    // vertex-id shape): avoids the per-row `Vec<Value>` key allocation.
    let int_fast = group.len() == 1
        && evaluated.iter().all(|(_, g, _)| g[0].validity().is_none() && g[0].as_int().is_some());
    if int_fast {
        let mut int_groups: FxHashMap<i64, usize> = FxHashMap::default();
        for (batch, group_cols, arg_cols) in &evaluated {
            let keys = group_cols[0].as_int().expect("checked int");
            for (row, &key) in keys.iter().enumerate().take(batch.num_rows()) {
                let slot = match int_groups.entry(key) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        let idx = acc_table.len();
                        e.insert(idx);
                        order.push(GroupKey(vec![Value::Int(key)]));
                        acc_table.push(new_accs());
                        idx
                    }
                };
                for (acc, arg) in acc_table[slot].iter_mut().zip(arg_cols) {
                    match arg {
                        Some(col) => acc.update(&col.value(row))?,
                        None => acc.update_count_star(),
                    }
                }
            }
        }
    } else {
        let mut groups: FxHashMap<GroupKey, usize> = FxHashMap::default();
        for (batch, group_cols, arg_cols) in &evaluated {
            for row in 0..batch.num_rows() {
                let key = GroupKey(group_cols.iter().map(|c| c.value(row)).collect());
                let slot = match groups.entry(key.clone()) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        let idx = acc_table.len();
                        e.insert(idx);
                        order.push(key);
                        acc_table.push(new_accs());
                        idx
                    }
                };
                for (acc, arg) in acc_table[slot].iter_mut().zip(arg_cols) {
                    match arg {
                        Some(col) => acc.update(&col.value(row))?,
                        None => acc.update_count_star(),
                    }
                }
            }
        }
    }

    // Global aggregate over empty input still yields one row.
    if group.is_empty() && order.is_empty() {
        order.push(GroupKey(vec![]));
        acc_table.push(new_accs());
    }

    let mut builders: Vec<ColumnBuilder> = out_schema
        .fields
        .iter()
        .map(|f| ColumnBuilder::with_capacity(f.dtype, order.len()))
        .collect();
    for (key, accs) in order.into_iter().zip(acc_table) {
        for (i, v) in key.0.iter().enumerate() {
            builders[i].push(v.clone()).map_err(SqlError::from)?;
        }
        for (j, acc) in accs.into_iter().enumerate() {
            builders[group.len() + j].push(acc.finish()).map_err(SqlError::from)?;
        }
    }
    let cols: Vec<Column> = builders.into_iter().map(|b| b.finish()).collect();
    Ok(vec![RecordBatch::new(out_schema.clone(), cols)?])
}

#[cfg(test)]
mod tests {
    use super::*;
    use vertexica_storage::{Field, TableOptions};

    fn setup() -> Catalog {
        let cat = Catalog::new();
        let edge = cat
            .create_table(
                "edge",
                Schema::new(vec![
                    Field::not_null("src", DataType::Int),
                    Field::not_null("dst", DataType::Int),
                    Field::new("weight", DataType::Float),
                ]),
                TableOptions::default(),
            )
            .unwrap();
        let mut t = edge.write();
        for (s, d, w) in [(0i64, 1i64, 1.0), (0, 2, 2.0), (1, 2, 3.0), (2, 0, 4.0), (2, 3, 5.0)] {
            t.insert_row(vec![Value::Int(s), Value::Int(d), Value::Float(w)]).unwrap();
        }
        drop(t);
        cat
    }

    fn run(cat: &Catalog, plan: &LogicalPlan) -> Vec<Vec<Value>> {
        let ctx = ExecContext { catalog: cat };
        let batches = execute(plan, &ctx).unwrap();
        let mut rows = Vec::new();
        for b in batches {
            rows.extend(b.rows());
        }
        rows
    }

    fn scan(cat: &Catalog, name: &str) -> LogicalPlan {
        let schema = cat.get(name).unwrap().read().schema().clone();
        LogicalPlan::Scan { table: name.into(), schema, projection: None, predicates: vec![] }
    }

    #[test]
    fn scan_returns_all_rows() {
        let cat = setup();
        assert_eq!(run(&cat, &scan(&cat, "edge")).len(), 5);
    }

    #[test]
    fn filter_executes() {
        let cat = setup();
        let plan = LogicalPlan::Filter {
            input: Box::new(scan(&cat, "edge")),
            predicate: PhysExpr::Binary {
                left: Box::new(PhysExpr::Column(0)),
                op: crate::ast::BinaryOp::Eq,
                right: Box::new(PhysExpr::lit(2i64)),
            },
        };
        let rows = run(&cat, &plan);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn inner_join_matches() {
        let cat = setup();
        // Self-join: e1.dst = e2.src (paths of length 2).
        let schema = Schema::new(
            ["src", "dst", "weight", "src2", "dst2", "weight2"]
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    Field::new(*n, if i % 3 == 2 { DataType::Float } else { DataType::Int })
                })
                .collect(),
        );
        let plan = LogicalPlan::Join {
            left: Box::new(scan(&cat, "edge")),
            right: Box::new(scan(&cat, "edge")),
            kind: JoinKind::Inner,
            on: vec![(1, 0)],
            filter: None,
            schema,
        };
        let rows = run(&cat, &plan);
        // Count 2-paths by hand: edges (0,1),(0,2),(1,2),(2,0),(2,3)
        // dst=1 → src=1: (0,1)->(1,2) : 1
        // dst=2 → src=2: (0,2)->(2,0),(0,2)->(2,3),(1,2)->(2,0),(1,2)->(2,3) : 4
        // dst=0 → src=0: (2,0)->(0,1),(2,0)->(0,2) : 2
        // dst=3 → src=3: none
        assert_eq!(rows.len(), 7);
    }

    #[test]
    fn left_join_null_extends() {
        let cat = setup();
        // edge LEFT JOIN edge2 ON dst = src: dst=3 has no outgoing edges.
        let schema = Schema::new(
            (0..6)
                .map(|i| {
                    Field::new(
                        format!("c{i}"),
                        if i % 3 == 2 { DataType::Float } else { DataType::Int },
                    )
                })
                .collect(),
        );
        let plan = LogicalPlan::Join {
            left: Box::new(scan(&cat, "edge")),
            right: Box::new(scan(&cat, "edge")),
            kind: JoinKind::Left,
            on: vec![(1, 0)],
            filter: None,
            schema,
        };
        let rows = run(&cat, &plan);
        assert_eq!(rows.len(), 8); // 7 matches + 1 null-extended for (2,3)
        let unmatched: Vec<_> = rows.iter().filter(|r| r[3].is_null()).collect();
        assert_eq!(unmatched.len(), 1);
        assert_eq!(unmatched[0][1], Value::Int(3));
    }

    #[test]
    fn aggregate_group_by() {
        let cat = setup();
        let out_schema = Schema::new(vec![
            Field::new("src", DataType::Int),
            Field::new("cnt", DataType::Int),
            Field::new("total", DataType::Float),
        ]);
        let plan = LogicalPlan::Aggregate {
            input: Box::new(scan(&cat, "edge")),
            group: vec![PhysExpr::Column(0)],
            aggs: vec![
                AggCall { func: AggFunc::CountStar, arg: None, distinct: false },
                AggCall { func: AggFunc::Sum, arg: Some(PhysExpr::Column(2)), distinct: false },
            ],
            schema: out_schema,
        };
        let mut rows = run(&cat, &plan);
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec![Value::Int(0), Value::Int(2), Value::Float(3.0)]);
        assert_eq!(rows[2], vec![Value::Int(2), Value::Int(2), Value::Float(9.0)]);
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let cat = Catalog::new();
        cat.create_table(
            "empty",
            Schema::new(vec![Field::new("x", DataType::Int)]),
            TableOptions::default(),
        )
        .unwrap();
        let out_schema = Schema::new(vec![Field::new("count", DataType::Int)]);
        let plan = LogicalPlan::Aggregate {
            input: Box::new(scan(&cat, "empty")),
            group: vec![],
            aggs: vec![AggCall { func: AggFunc::CountStar, arg: None, distinct: false }],
            schema: out_schema,
        };
        let rows = run(&cat, &plan);
        assert_eq!(rows, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn sort_and_limit() {
        let cat = setup();
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(scan(&cat, "edge")),
                keys: vec![(PhysExpr::Column(2), false)],
            }),
            n: 2,
        };
        let rows = run(&cat, &plan);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][2], Value::Float(5.0));
        assert_eq!(rows[1][2], Value::Float(4.0));
    }

    #[test]
    fn distinct_dedups() {
        let cat = setup();
        let plan = LogicalPlan::Distinct {
            input: Box::new(LogicalPlan::Project {
                input: Box::new(scan(&cat, "edge")),
                exprs: vec![PhysExpr::Column(0)],
                schema: Schema::new(vec![Field::new("src", DataType::Int)]),
            }),
        };
        let rows = run(&cat, &plan);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn cross_join_counts() {
        let cat = setup();
        let schema = Schema::new(
            (0..6)
                .map(|i| {
                    Field::new(
                        format!("c{i}"),
                        if i % 3 == 2 { DataType::Float } else { DataType::Int },
                    )
                })
                .collect(),
        );
        let plan = LogicalPlan::Join {
            left: Box::new(scan(&cat, "edge")),
            right: Box::new(scan(&cat, "edge")),
            kind: JoinKind::Cross,
            on: vec![],
            filter: None,
            schema,
        };
        assert_eq!(run(&cat, &plan).len(), 25);
    }

    #[test]
    fn group_key_nan_canonical() {
        use std::collections::HashSet;
        let mut s: HashSet<GroupKey> = HashSet::new();
        s.insert(GroupKey(vec![Value::Float(f64::NAN)]));
        s.insert(GroupKey(vec![Value::Float(f64::NAN)]));
        // PartialEq on NaN is false, but hashing is canonical; the set treats
        // them as distinct entries under Eq — acceptable for SQL since NaN
        // rarely appears in group keys; document via this test.
        assert!(!s.is_empty());
    }

    fn nullable_int_batch(name: &str, keys: &[Option<i64>]) -> RecordBatch {
        let schema = Schema::new(vec![
            Field::new(name, DataType::Int),
            Field::not_null("tag", DataType::Int),
        ]);
        let rows: Vec<Vec<Value>> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| vec![k.map(Value::Int).unwrap_or(Value::Null), Value::Int(i as i64)])
            .collect();
        RecordBatch::from_rows(schema, &rows).unwrap()
    }

    /// The headline NULL-key regression: a nullable BIGINT join key must
    /// stay on the typed fast path *and* never match NULL = NULL (or a NULL
    /// slot's 0 sentinel against a real key 0). The old fast-path kernels
    /// had no per-row validity check — they were only safe behind an
    /// all-or-nothing `validity().is_none()` bail to the generic path, so
    /// putting nullable columns on the fast path (or reusing the kernels
    /// per probe batch, as the streaming join does) would have silently
    /// produced the 0-key cross matches this test pins. It fails if the
    /// per-row checks are removed.
    #[test]
    fn nullable_bigint_fast_path_skips_null_keys() {
        let build = nullable_int_batch("k", &[Some(1), None, Some(0), Some(0), Some(3)]);
        let probe = nullable_int_batch("k", &[Some(1), None, Some(0), Some(2)]);

        let fast = JoinBuild::new(build.clone(), vec![0]);
        assert!(
            matches!(fast.map, KeyMap::Int(_)),
            "nullable BIGINT keys must not evict the join from the typed fast path"
        );
        let generic = JoinBuild::with_strategy(build, vec![0], true);
        assert!(matches!(generic.map, KeyMap::Generic(_)));

        for outer in [false, true] {
            let f = fast.probe_pairs(&probe, &[0], outer).unwrap();
            let g = generic.probe_pairs(&probe, &[0], outer).unwrap();
            assert_eq!(f, g, "fast and generic paths diverged (outer={outer})");
            // key 1 → 1 match, key 0 → 2 matches; NULL and 2 match nothing.
            let matched = f.iter().filter(|(_, m)| m.is_some()).count();
            assert_eq!(matched, 3, "NULL keys must never match (outer={outer})");
            if outer {
                let null_extended: Vec<usize> =
                    f.iter().filter(|(_, m)| m.is_none()).map(|(i, _)| *i).collect();
                assert_eq!(null_extended, vec![1, 3], "NULL-key probe rows null-extend once");
            }
        }
    }

    /// Composite (BIGINT, BIGINT) keys: a NULL in *either* component kills
    /// the row on both build and probe sides, identically to generic.
    #[test]
    fn nullable_composite_bigint_fast_path_skips_null_keys() {
        let schema =
            Schema::new(vec![Field::new("a", DataType::Int), Field::new("b", DataType::Int)]);
        let mk = |rows: &[(Option<i64>, Option<i64>)]| {
            let rows: Vec<Vec<Value>> = rows
                .iter()
                .map(|(a, b)| {
                    vec![
                        a.map(Value::Int).unwrap_or(Value::Null),
                        b.map(Value::Int).unwrap_or(Value::Null),
                    ]
                })
                .collect();
            RecordBatch::from_rows(schema.clone(), &rows).unwrap()
        };
        let build = mk(&[(Some(0), Some(0)), (Some(0), None), (None, Some(0)), (Some(1), Some(2))]);
        let probe = mk(&[(Some(0), Some(0)), (None, None), (Some(0), None), (Some(1), Some(2))]);

        let fast = JoinBuild::new(build.clone(), vec![0, 1]);
        assert!(matches!(fast.map, KeyMap::Int2(_)));
        let generic = JoinBuild::with_strategy(build, vec![0, 1], true);
        for outer in [false, true] {
            let f = fast.probe_pairs(&probe, &[0, 1], outer).unwrap();
            let g = generic.probe_pairs(&probe, &[0, 1], outer).unwrap();
            assert_eq!(f, g, "composite fast path diverged from generic (outer={outer})");
            let matched = f.iter().filter(|(_, m)| m.is_some()).count();
            assert_eq!(matched, 2, "only the two fully-non-NULL keys match");
        }
    }

    #[test]
    fn join_build_probe_matches_lists_per_row() {
        let build = nullable_int_batch("k", &[Some(5), Some(5), None, Some(7)]);
        let jb = JoinBuild::new(build, vec![0]);
        let probe = nullable_int_batch("k", &[Some(5), Some(6), None, Some(7)]);
        let matches = jb.probe_matches(&probe, &[0]).unwrap();
        assert_eq!(matches, vec![vec![0, 1], vec![], vec![], vec![3]]);
        assert_eq!(jb.num_rows(), 4);
        assert_eq!(jb.key_columns(), &[0]);
    }

    #[test]
    fn right_join_preserves_right() {
        let cat = Catalog::new();
        let a = cat
            .create_table(
                "a",
                Schema::new(vec![Field::new("x", DataType::Int)]),
                TableOptions::default(),
            )
            .unwrap();
        a.write().insert_row(vec![Value::Int(1)]).unwrap();
        let b = cat
            .create_table(
                "b",
                Schema::new(vec![Field::new("y", DataType::Int)]),
                TableOptions::default(),
            )
            .unwrap();
        b.write().insert_row(vec![Value::Int(1)]).unwrap();
        b.write().insert_row(vec![Value::Int(2)]).unwrap();
        let schema =
            Schema::new(vec![Field::new("x", DataType::Int), Field::new("y", DataType::Int)]);
        let plan = LogicalPlan::Join {
            left: Box::new(scan(&cat, "a")),
            right: Box::new(scan(&cat, "b")),
            kind: JoinKind::Right,
            on: vec![(0, 0)],
            filter: None,
            schema,
        };
        let mut rows = run(&cat, &plan);
        rows.sort_by(|p, q| p[1].total_cmp(&q[1]));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![Value::Int(1), Value::Int(1)]);
        assert_eq!(rows[1], vec![Value::Null, Value::Int(2)]);
    }
}
