//! SQL engine over `vertexica-storage` — the query layer of the "Vertica"
//! substrate.
//!
//! A classic pipeline: [`lexer`] → [`parser`] (AST in [`ast`]) → [`planner`]
//! (logical plan in [`logical`]) → [`optimizer`] (predicate/projection
//! pushdown, constant folding) → [`physical`] (vectorized operators over
//! record batches). The [`engine::Database`] façade owns the catalog, the
//! scalar-function and transform-UDF registries (Vertica UDx equivalents) and
//! the stored-procedure registry that Vertexica's coordinator runs in.
//!
//! The dialect covers what the paper's workloads need: `CREATE TABLE` (+ `AS
//! SELECT`), `INSERT` (values and query), `UPDATE`, `DELETE`, `SELECT` with
//! joins (INNER/LEFT/RIGHT/CROSS), `WHERE`, `GROUP BY`/`HAVING`, `ORDER BY`,
//! `LIMIT`, `DISTINCT`, `UNION ALL`, subqueries in `FROM`, non-recursive
//! `WITH` CTEs, `CASE`, `CAST`, `IN`, `BETWEEN`, `LIKE`, `IS [NOT] NULL`, and
//! a library of scalar/aggregate functions.

pub mod ast;
pub mod engine;
pub mod error;
pub mod expr;
pub mod functions;
pub mod lexer;
pub mod logical;
pub mod optimizer;
pub mod parser;
pub mod physical;
pub mod planner;
pub mod udf;

pub use engine::{Database, QueryResult};
pub use error::{SqlError, SqlResult};
pub use physical::JoinBuild;
pub use udf::TransformUdf;
